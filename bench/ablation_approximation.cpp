// Ablation (Section 1 claim): "although the greedy algorithm proposed by
// Guha and Khuller does not have a constant approximation ratio, it
// performs much better than several approaches with constant ratios on
// randomly generated networks."  Compare the centralized greedy CDS, the
// constant-approximation cluster CDS, and the distributed coverage
// condition — plus the coverage condition applied as a post-reduction to
// both (the Section 1 composition claim).

#include "bench_common.hpp"

#include <iomanip>

#include "algorithms/clustering.hpp"
#include "algorithms/guha_khuller.hpp"
#include "core/cds_reduce.hpp"
#include "graph/unit_disk.hpp"
#include "sim/generic_protocol.hpp"
#include "verify/cds_check.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
    const auto opts = bench::parse_options(argc, argv);
    bench::Bench bench("ablation_approximation", opts);
    std::cout << "Ablation: CDS size — centralized greedy vs constant-approx cluster\n"
                 "CDS vs distributed coverage condition (static, 2-hop, degree prio),\n"
                 "with '+red' columns showing coverage-condition post-reduction.\n\n";

    for (double d : {6.0, 18.0}) {
        std::cout << "== d=" << static_cast<int>(d) << " ==\n";
        std::cout << "n    greedy  cluster  cluster+red  coverage  coverage+red  runs\n";
        std::cout << "-----------------------------------------------------------------\n";
        for (std::size_t n : {20u, 40u, 60u, 80u, 100u}) {
            UnitDiskParams params;
            params.node_count = n;
            params.average_degree = d;
            Rng gen(opts.seed + n);
            double greedy = 0, cluster = 0, cluster_red = 0, coverage = 0, coverage_red = 0;
            const std::size_t runs = std::max<std::size_t>(opts.max_runs / 4, 20);
            for (std::size_t i = 0; i < runs; ++i) {
                const auto net = generate_network_checked(params, gen);
                const PriorityKeys keys(net.graph, PriorityScheme::kDegree);

                const auto g1 = guha_khuller_cds(net.graph);
                const auto c1 = cluster_cds(net.graph);
                const auto c2 = reduce_cds(net.graph, c1, 2, PriorityScheme::kDegree);
                const auto v1 =
                    generic_static_forward_set(net.graph, 2, keys, CoverageOptions{});
                const auto v2 = reduce_cds(net.graph, v1, 2, PriorityScheme::kDegree);

                greedy += static_cast<double>(set_size(g1));
                cluster += static_cast<double>(set_size(c1));
                cluster_red += static_cast<double>(set_size(c2));
                coverage += static_cast<double>(set_size(v1));
                coverage_red += static_cast<double>(set_size(v2));
            }
            const double r = static_cast<double>(runs);
            std::cout << std::left << std::setw(5) << n << std::fixed << std::setprecision(2)
                      << std::setw(8) << greedy / r << std::setw(9) << cluster / r
                      << std::setw(13) << cluster_red / r << std::setw(10) << coverage / r
                      << std::setw(14) << coverage_red / r << runs << '\n';
        }
        std::cout << '\n';
    }
    return bench.finish();
}
