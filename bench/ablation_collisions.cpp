// Ablation (Section 1 / cited WCNC'04 claim): "packet collision can be
// relieved with a small forwarding jitter delay."  Under a collision model
// where same-instant arrivals destroy each other, synchronized forwarding
// (FR, zero jitter) suffers badly — the broadcast storm; a small random
// jitter desynchronizes the waves and restores delivery.  Pruning helps
// too: fewer transmissions, fewer collisions.

#include <iomanip>
#include <iostream>

#include "algorithms/flooding.hpp"
#include "algorithms/generic.hpp"
#include "bench_common.hpp"
#include "graph/unit_disk.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
    const auto opts = bench::parse_options(argc, argv);
    bench::Bench bench("ablation_collisions", opts);
    std::cout << "Ablation: collisions vs forwarding jitter (n=80, d=8)\n"
                 "Collision model: same-instant arrivals at a node destroy each other.\n\n";
    std::cout << "jitter   flooding   generic-FR   generic-FRB\n";
    std::cout << "----------------------------------------------\n";

    UnitDiskParams params;
    params.node_count = 80;
    params.average_degree = 8.0;
    const std::size_t runs = std::max<std::size_t>(opts.max_runs / 4, 25);

    const FloodingAlgorithm flooding;
    const GenericBroadcast fr(generic_fr_config(2));
    const GenericBroadcast frb(generic_frb_config(2));

    auto mean_delivery = [&](const BroadcastAlgorithm& algo, double jitter) {
        Rng gen(opts.seed + static_cast<std::uint64_t>(jitter * 1000));
        double total = 0;
        for (std::size_t i = 0; i < runs; ++i) {
            const auto net = generate_network_checked(params, gen);
            MediumConfig medium;
            medium.collisions = true;
            medium.jitter = jitter;
            Rng run = gen.fork();
            const auto result = algo.broadcast_traced(net.graph, 0, run, medium);
            total += static_cast<double>(result.received_count) /
                     static_cast<double>(params.node_count);
        }
        return total / static_cast<double>(runs);
    };

    for (double jitter : {0.0, 0.01, 0.05, 0.2, 0.5}) {
        std::cout << std::fixed << std::setprecision(2) << std::setw(9) << std::left << jitter
                  << std::setprecision(4) << std::setw(11) << mean_delivery(flooding, jitter)
                  << std::setw(13) << mean_delivery(fr, jitter) << mean_delivery(frb, jitter)
                  << '\n';
    }
    std::cout << "\nExpected: zero jitter collapses synchronized schemes (every wave\n"
                 "collides); even 0.01 units of jitter restores near-full delivery.\n"
                 "FRB is naturally desynchronized by its backoff.\n";
    return bench.finish();
}
