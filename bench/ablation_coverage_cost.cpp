// Ablation (Section 6 claim): with k-hop information the full coverage
// condition costs O(D^3) and the strong coverage condition O(D^2), D the
// network density.  Microbenchmark the *condition check itself* (views are
// precomputed — collecting them is hello-protocol work, not decision
// work) across densities with google-benchmark.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/coverage.hpp"
#include "core/view.hpp"
#include "graph/unit_disk.hpp"

namespace {

using namespace adhoc;

struct Fixture {
    UnitDiskNetwork net;
    std::unique_ptr<PriorityKeys> keys;
    std::vector<View> views;  // per-node static 2-hop views

    explicit Fixture(double degree) {
        Rng rng(static_cast<std::uint64_t>(degree * 100) + 7);
        UnitDiskParams params;
        params.node_count = 100;
        params.average_degree = degree;
        net = generate_network_checked(params, rng);
        keys = std::make_unique<PriorityKeys>(net.graph, PriorityScheme::kId);
        views.reserve(net.graph.node_count());
        for (NodeId v = 0; v < net.graph.node_count(); ++v) {
            views.push_back(make_static_view(net.graph, v, 2, *keys));
        }
    }
};

Fixture& fixture_for(double degree) {
    static Fixture f6(6.0);
    static Fixture f12(12.0);
    static Fixture f18(18.0);
    static Fixture f24(24.0);
    static Fixture f36(36.0);
    if (degree == 6.0) return f6;
    if (degree == 12.0) return f12;
    if (degree == 18.0) return f18;
    if (degree == 24.0) return f24;
    return f36;
}

void run_check(benchmark::State& state, const CoverageOptions& opts) {
    Fixture& f = fixture_for(static_cast<double>(state.range(0)));
    NodeId v = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(coverage_condition_holds(f.views[v], v, opts));
        v = (v + 1) % static_cast<NodeId>(f.views.size());
    }
}

void BM_FullCoverage(benchmark::State& state) { run_check(state, CoverageOptions{}); }

void BM_StrongCoverage(benchmark::State& state) {
    run_check(state, CoverageOptions{.strong = true});
}

void BM_BoundedCoverage(benchmark::State& state) {
    run_check(state, CoverageOptions{.max_path_hops = 3});  // Span's variant
}

BENCHMARK(BM_FullCoverage)->Arg(6)->Arg(12)->Arg(18)->Arg(24)->Arg(36);
BENCHMARK(BM_StrongCoverage)->Arg(6)->Arg(12)->Arg(18)->Arg(24)->Arg(36);
BENCHMARK(BM_BoundedCoverage)->Arg(6)->Arg(12)->Arg(18)->Arg(24)->Arg(36);

}  // namespace

BENCHMARK_MAIN();
