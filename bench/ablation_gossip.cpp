// Ablation (Section 1 claim): the probabilistic approach "cannot guarantee
// full coverage" and conservative p "yields a relatively large forward
// node set".  Sweep p and report forward counts and delivery ratios next
// to the deterministic generic algorithm.

#include <iomanip>
#include <iostream>

#include "algorithms/generic.hpp"
#include "algorithms/gossip.hpp"
#include "bench_common.hpp"
#include "graph/unit_disk.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
    const auto opts = bench::parse_options(argc, argv);
    bench::Bench bench("ablation_gossip", opts);
    std::cout << "Ablation: gossip(p) vs deterministic pruning (n=80, d=6)\n\n";
    std::cout << "p      mean fwd   delivery ratio   full-delivery runs\n";
    std::cout << "----------------------------------------------------\n";

    UnitDiskParams params;
    params.node_count = 80;
    params.average_degree = 6.0;

    auto evaluate = [&](const BroadcastAlgorithm& algo) {
        Rng gen(opts.seed);
        double fwd = 0, delivered = 0;
        std::size_t full = 0;
        const std::size_t runs = std::max<std::size_t>(opts.max_runs / 2, 50);
        for (std::size_t i = 0; i < runs; ++i) {
            const auto net = generate_network_checked(params, gen);
            Rng run = gen.fork();
            const NodeId src = static_cast<NodeId>(run.index(params.node_count));
            const auto result = algo.broadcast(net.graph, src, run);
            fwd += static_cast<double>(result.forward_count);
            delivered += static_cast<double>(result.received_count) /
                         static_cast<double>(params.node_count);
            full += result.full_delivery ? 1 : 0;
        }
        std::cout << std::fixed << std::setprecision(2) << std::setw(8) << std::left
                  << fwd / static_cast<double>(runs) << ' ' << std::setw(16)
                  << delivered / static_cast<double>(runs) << full << '/' << runs << '\n';
    };

    for (double p : {0.4, 0.6, 0.7, 0.8, 0.9, 1.0}) {
        std::cout << std::fixed << std::setprecision(1) << p << "    ";
        evaluate(GossipAlgorithm(p));
    }
    std::cout << "generic-fr (deterministic):\n       ";
    evaluate(GenericBroadcast(generic_fr_config(2)));
    return bench.finish();
}
