// Ablation: view quality vs broadcast efficiency.  Lossy hello exchanges
// leave nodes with sub-views (fewer known 2-hop edges); Theorem 2 keeps
// the broadcast correct, but pruning weakens — quantify the forward-count
// cost of hello loss, alongside the hello overhead itself.

#include <iomanip>
#include <iostream>

#include "algorithms/generic.hpp"
#include "bench_common.hpp"
#include "graph/unit_disk.hpp"
#include "sim/hello.hpp"
#include "sim/generic_protocol.hpp"
#include "verify/cds_check.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
    const auto opts = bench::parse_options(argc, argv);
    bench::Bench bench("ablation_hello_loss", opts);
    std::cout << "Ablation: hello loss vs pruning efficiency (n=80, d=6, k=2,\n"
                 "generic FR; neighbor discovery reliable per Theorem 2's 1-hop\n"
                 "requirement)\n\n";
    std::cout << "hello loss  mean fwd  delivery  hello B/node/period\n";
    std::cout << "----------------------------------------------------\n";

    UnitDiskParams params;
    params.node_count = 80;
    params.average_degree = 6.0;
    const std::size_t runs = std::max<std::size_t>(opts.max_runs / 4, 25);

    for (double loss : {0.0, 0.1, 0.3, 0.5, 0.7, 0.9}) {
        Rng gen(opts.seed);
        double fwd = 0, delivered = 0, bytes = 0;
        for (std::size_t i = 0; i < runs; ++i) {
            const auto net = generate_network_checked(params, gen);
            HelloProtocol hello(net.graph,
                                HelloConfig{.rounds = 2, .loss_probability = loss});
            Rng hrng = gen.fork();
            hello.run(hrng);
            std::vector<LocalTopology> views;
            for (NodeId v = 0; v < net.graph.node_count(); ++v) {
                views.push_back(hello.view_of(v));
            }
            bytes += static_cast<double>(hello.total_bytes()) /
                     static_cast<double>(net.graph.node_count());

            GenericAgent agent(net.graph, generic_fr_config(2), std::move(views));
            Simulator sim(net.graph);
            Rng rng = gen.fork();
            const auto result = sim.run(0, agent, rng);
            fwd += static_cast<double>(result.forward_count);
            delivered += result.full_delivery ? 1.0 : 0.0;
        }
        const double r = static_cast<double>(runs);
        std::cout << std::fixed << std::setprecision(1) << std::setw(12) << std::left << loss
                  << std::setprecision(2) << std::setw(10) << fwd / r << std::setprecision(3)
                  << std::setw(10) << delivered / r << std::setprecision(0) << bytes / r
                  << '\n';
    }
    std::cout << "\nExpected: delivery stays 1.000 at every loss level (Theorem 2);\n"
                 "forward counts rise toward flooding as views degrade.\n";
    return bench.finish();
}
