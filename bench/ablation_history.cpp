// Ablation (Section 7.2 claim): "extra broadcast state information has
// little impact on performance" — sweep the piggybacked history depth h
// for the generic FR algorithm.  Expected: h=1 -> h=2 gives a small gain,
// h beyond 2 is flat.

#include "bench_common.hpp"

#include "algorithms/generic.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
    const auto opts = bench::parse_options(argc, argv);

    std::vector<GenericBroadcast> variants;
    variants.reserve(5);
    for (std::size_t h : {0u, 1u, 2u, 4u, 8u}) {
        GenericConfig cfg = generic_fr_config(2, PriorityScheme::kId);
        cfg.history = h;
        variants.emplace_back(cfg, "h=" + std::to_string(h));
    }
    std::vector<const BroadcastAlgorithm*> algos;
    for (const auto& v : variants) algos.push_back(&v);

    std::cout << "Ablation: piggybacked visited-history depth h (generic FR, 2-hop)\n\n";
    bench::Bench bench("ablation_history", opts);
    bench.run_panel("d=6, 2-hop", algos, 6.0);
    bench.run_panel("d=18, 2-hop", algos, 18.0);
    return bench.finish();
}
