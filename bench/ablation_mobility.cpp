// Ablation (Section 1 / assumption 4): broadcast under stale topology
// views.  Nodes move under random waypoint for `staleness` seconds after
// the hello snapshot; forward decisions use the old topology while packets
// follow the new one.  Expected: delivery degrades with staleness, and the
// redundancy spectrum (flooding > FRB > FR) ranks robustness — "the effect
// of moderate mobility can be balanced by a slight increase in the
// broadcast redundancy".

#include <iomanip>
#include <iostream>

#include "algorithms/flooding.hpp"
#include "algorithms/generic.hpp"
#include "bench_common.hpp"
#include "sim/mobility.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
    const auto opts = bench::parse_options(argc, argv);
    bench::Bench bench("ablation_mobility", opts);
    std::cout << "Ablation: delivery ratio vs view staleness (n=60, d=8, random\n"
                 "waypoint 1-10 units/s)\n\n";
    std::cout << "staleness  flooding  generic-FRB  generic-FR\n";
    std::cout << "---------------------------------------------\n";

    UnitDiskParams net;
    net.node_count = 60;
    net.average_degree = 8.0;
    WaypointParams move;

    const FloodingAlgorithm flooding;
    const GenericBroadcast frb(generic_frb_config(2));
    const GenericBroadcast fr(generic_fr_config(2));
    const std::size_t runs = std::max<std::size_t>(opts.max_runs / 4, 25);

    auto mean_delivery = [&](const BroadcastAlgorithm& algo, double staleness) {
        double total = 0;
        for (std::size_t i = 0; i < runs; ++i) {
            Rng rng(opts.seed + i * 977 + static_cast<std::uint64_t>(staleness * 100));
            total += stale_view_broadcast(algo, net, move, staleness, 0, rng).delivery_ratio;
        }
        return total / static_cast<double>(runs);
    };

    for (double staleness : {0.0, 1.0, 2.0, 4.0, 8.0, 16.0}) {
        std::cout << std::fixed << std::setprecision(1) << std::setw(11) << std::left
                  << staleness << std::setprecision(4) << std::setw(10)
                  << mean_delivery(flooding, staleness) << std::setw(13)
                  << mean_delivery(frb, staleness) << mean_delivery(fr, staleness) << '\n';
    }
    return bench.finish();
}
