// Ablation: how far from the true optimum do the schemes land?  The
// minimum CDS is NP-complete (Section 1); at n <= 20 the exact solver
// gives ground truth.  Reports mean CDS sizes and the ratio to optimum for
// the centralized greedy, the cluster CDS, the static coverage condition,
// and one dynamic broadcast (forward count, source included — slightly
// different metric, shown for context).

#include <iomanip>
#include <iostream>

#include "algorithms/clustering.hpp"
#include "algorithms/generic.hpp"
#include "algorithms/guha_khuller.hpp"
#include "analysis/exact_cds.hpp"
#include "bench_common.hpp"
#include "graph/unit_disk.hpp"
#include "sim/generic_protocol.hpp"
#include "verify/cds_check.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
    const auto opts = bench::parse_options(argc, argv);
    bench::Bench bench("ablation_optimality_gap", opts);
    std::cout << "Ablation: approximation quality vs exact minimum CDS (d=5)\n\n";
    std::cout << "n    optimum  greedy          coverage        cluster         generic-FR fwd\n";
    std::cout << "--------------------------------------------------------------------------\n";

    const std::size_t runs = std::max<std::size_t>(opts.max_runs / 4, 25);
    for (std::size_t n : {12u, 16u, 20u}) {
        UnitDiskParams params;
        params.node_count = n;
        params.average_degree = 5.0;
        Rng gen(opts.seed + n);
        double opt = 0, greedy = 0, coverage = 0, cluster = 0, dynamic_fwd = 0;
        for (std::size_t i = 0; i < runs; ++i) {
            const auto net = generate_network_checked(params, gen);
            opt += static_cast<double>(*minimum_cds_size(net.graph));
            greedy += static_cast<double>(set_size(guha_khuller_cds(net.graph)));
            const PriorityKeys keys(net.graph, PriorityScheme::kDegree);
            coverage += static_cast<double>(
                set_size(generic_static_forward_set(net.graph, 2, keys, {})));
            cluster += static_cast<double>(set_size(cluster_cds(net.graph)));
            Rng run = gen.fork();
            const GenericBroadcast fr(generic_fr_config(2, PriorityScheme::kDegree));
            dynamic_fwd += static_cast<double>(
                fr.broadcast(net.graph, static_cast<NodeId>(run.index(n)), run)
                    .forward_count);
        }
        const double r = static_cast<double>(runs);
        auto cell = [&](double x) {
            std::ostringstream s;
            s << std::fixed << std::setprecision(2) << x / r << " (" << std::setprecision(2)
              << x / opt << "x)";
            return s.str();
        };
        std::cout << std::left << std::setw(5) << n << std::setw(9) << std::fixed
                  << std::setprecision(2) << opt / r << std::setw(16) << cell(greedy)
                  << std::setw(16) << cell(coverage) << std::setw(16) << cell(cluster)
                  << cell(dynamic_fwd) << '\n';
    }
    std::cout << "\nExpected: greedy closest to optimum; coverage condition within ~1.5x;\n"
                 "cluster CDS (constant worst-case ratio) worst on random networks.\n";
    return bench.finish();
}
