// Ablation (Section 4.2): the relaxed neighbor-designating rule.  "A
// designated node does not need to forward the packet if it meets the
// coverage condition" with its S=1.5 priority.  Compare strict vs relaxed
// for the pure ND and hybrid selection policies.

#include "bench_common.hpp"

#include "algorithms/generic.hpp"
#include "algorithms/hybrid.hpp"

using namespace adhoc;

namespace {

GenericBroadcast make(Selection sel, bool strict, const char* label) {
    GenericConfig cfg = hybrid_config(sel);
    cfg.selection = sel;
    cfg.strict_designation = strict;
    return GenericBroadcast(cfg, label);
}

}  // namespace

int main(int argc, char** argv) {
    const auto opts = bench::parse_options(argc, argv);

    const GenericBroadcast nd_strict =
        make(Selection::kNeighborDesignating, true, "ND strict");
    const GenericBroadcast nd_relaxed =
        make(Selection::kNeighborDesignating, false, "ND relaxed");
    const GenericBroadcast hy_strict = make(Selection::kHybridMaxDegree, true, "MaxDeg strict");
    const GenericBroadcast hy_relaxed =
        make(Selection::kHybridMaxDegree, false, "MaxDeg relaxed");
    const std::vector<const BroadcastAlgorithm*> algos{&nd_strict, &nd_relaxed, &hy_strict,
                                                       &hy_relaxed};

    std::cout << "Ablation: strict vs relaxed designation (Section 4.2's S=1.5 rule;\n"
                 "first-receipt, 2-hop, ID priority)\n\n";
    bench::Bench bench("ablation_relaxed", opts);
    bench.run_panel("d=6, 2-hop", algos, 6.0);
    bench.run_panel("d=18, 2-hop", algos, 18.0);
    return bench.finish();
}
