// Ablation (Section 6.3 claim): "PDP avoids the extra cost in TDP ...
// but achieves almost the same performance improvement."  Compare DP, TDP
// and PDP head to head, plus the per-packet piggyback cost TDP pays.

#include "bench_common.hpp"

#include "algorithms/dominant_pruning.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
    const auto opts = bench::parse_options(argc, argv);

    const DominantPruningAlgorithm dp(DominantPruningVariant::kDp);
    const DominantPruningAlgorithm tdp(DominantPruningVariant::kTdp);
    const DominantPruningAlgorithm pdp(DominantPruningVariant::kPdp);
    const DominantPruningAlgorithm ahbp(DominantPruningVariant::kAhbp);
    const std::vector<const BroadcastAlgorithm*> algos{&dp, &tdp, &pdp, &ahbp};

    std::cout << "Ablation: the neighbor-designating family (2-hop, greedy designation)\n"
              << "TDP piggybacks N2(u) in every packet (O(n) extra bytes); PDP and\n"
              << "AHBP pay nothing.  Expected: TDP <= PDP <= DP with TDP ~ PDP;\n"
              << "AHBP's sibling-gateway elimination lands near PDP.\n\n";
    bench::Bench bench("ablation_tdp_pdp", opts);
    bench.run_panel("d=6, 2-hop", algos, 6.0);
    bench.run_panel("d=18, 2-hop", algos, 18.0);
    return bench.finish();
}
