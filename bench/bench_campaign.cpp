// Campaign driver: runs a named set of the paper's sweep figures/ablations
// in one invocation, sharded over the campaign runner's thread pool, with
// progress/ETA on stderr and one BENCH_<figure>.json per figure when
// --json DIR is given.
//
//   bench_campaign --list
//   bench_campaign --figures fig10_timing,fig12_space --runs 200 --jobs 0
//   bench_campaign --full --jobs 8 --json results/json
//
// Exit status is nonzero if any figure records a delivery failure (see
// bench_common.hpp) — the campaign keeps going so one regression doesn't
// hide another.

#include "bench_common.hpp"

#include <algorithm>
#include <filesystem>
#include <functional>
#include <sstream>

#include "algorithms/dominant_pruning.hpp"
#include "algorithms/generic.hpp"
#include "algorithms/hybrid.hpp"
#include "algorithms/lenwb.hpp"
#include "algorithms/mpr.hpp"
#include "algorithms/rule_k.hpp"
#include "algorithms/sba.hpp"
#include "algorithms/span.hpp"

using namespace adhoc;

namespace {

struct FigureSpec {
    const char* name;
    const char* caption;
    // Builds the figure's algorithms and runs its panels through the session.
    std::function<void(bench::Bench&)> run;
};

// Each spec mirrors the panels of the standalone binary of the same name.
const std::vector<FigureSpec>& figure_registry() {
    static const std::vector<FigureSpec> specs{
        {"fig10_timing", "timing options (2-hop, ID priority)",
         [](bench::Bench& b) {
             const GenericBroadcast stat(generic_static_config(2, PriorityScheme::kId),
                                         "Static");
             const GenericBroadcast fr(generic_fr_config(2, PriorityScheme::kId), "FR");
             const GenericBroadcast frb(generic_frb_config(2, PriorityScheme::kId), "FRB");
             const GenericBroadcast frbd(generic_frbd_config(2, PriorityScheme::kId), "FRBD");
             const std::vector<const BroadcastAlgorithm*> algos{&stat, &fr, &frb, &frbd};
             b.run_panel("d=6, 2-hop", algos, 6.0);
             b.run_panel("d=18, 2-hop", algos, 18.0);
         }},
        {"fig11_selection", "selection options (first-receipt, 2-hop, ID priority)",
         [](bench::Bench& b) {
             GenericConfig nd_cfg = generic_fr_config(2, PriorityScheme::kId);
             nd_cfg.selection = Selection::kNeighborDesignating;
             const GenericBroadcast sp(generic_fr_config(2, PriorityScheme::kId), "SP");
             const GenericBroadcast nd(nd_cfg, "ND");
             const GenericBroadcast maxdeg = make_hybrid_maxdeg();
             const GenericBroadcast minpri = make_hybrid_minpri();
             const std::vector<const BroadcastAlgorithm*> algos{&sp, &nd, &maxdeg, &minpri};
             b.run_panel("d=6, 2-hop", algos, 6.0);
             b.run_panel("d=18, 2-hop", algos, 18.0);
         }},
        {"fig12_space", "space options (first-receipt self-pruning, ID priority)",
         [](bench::Bench& b) {
             const GenericBroadcast k2(generic_fr_config(2, PriorityScheme::kId), "2-hop");
             const GenericBroadcast k3(generic_fr_config(3, PriorityScheme::kId), "3-hop");
             const GenericBroadcast k4(generic_fr_config(4, PriorityScheme::kId), "4-hop");
             const GenericBroadcast k5(generic_fr_config(5, PriorityScheme::kId), "5-hop");
             const GenericBroadcast kg(generic_fr_config(0, PriorityScheme::kId), "global");
             const std::vector<const BroadcastAlgorithm*> algos{&k2, &k3, &k4, &k5, &kg};
             b.run_panel("d=6", algos, 6.0);
             b.run_panel("d=18", algos, 18.0);
         }},
        {"fig13_priority", "priority options (first-receipt self-pruning, 2-hop)",
         [](bench::Bench& b) {
             const GenericBroadcast id(generic_fr_config(2, PriorityScheme::kId), "ID");
             const GenericBroadcast deg(generic_fr_config(2, PriorityScheme::kDegree),
                                        "Degree");
             const GenericBroadcast ncr(generic_fr_config(2, PriorityScheme::kNcr), "NCR");
             const std::vector<const BroadcastAlgorithm*> algos{&id, &deg, &ncr};
             b.run_panel("d=6, 2-hop", algos, 6.0);
             b.run_panel("d=18, 2-hop", algos, 18.0);
         }},
        {"fig14_static", "static algorithms (NCR priority; MPR: designating time)",
         [](bench::Bench& b) {
             const MprAlgorithm mpr;
             for (std::size_t k : {2u, 3u}) {
                 const SpanAlgorithm span(
                     SpanConfig{.hops = k, .priority = PriorityScheme::kNcr});
                 const RuleKAlgorithm rule_k(
                     RuleKConfig{.hops = k, .priority = PriorityScheme::kNcr});
                 const GenericBroadcast generic(generic_static_config(k, PriorityScheme::kNcr),
                                                "Generic");
                 const std::vector<const BroadcastAlgorithm*> algos{&mpr, &span, &rule_k,
                                                                    &generic};
                 b.run_panel("d=6, " + std::to_string(k) + "-hop", algos, 6.0);
                 b.run_panel("d=18, " + std::to_string(k) + "-hop", algos, 18.0);
             }
         }},
        {"fig15_first_receipt", "first-receipt algorithms (Degree priority)",
         [](bench::Bench& b) {
             const DominantPruningAlgorithm dp(DominantPruningVariant::kDp);
             const DominantPruningAlgorithm pdp(DominantPruningVariant::kPdp);
             for (std::size_t k : {2u, 3u}) {
                 const LenwbAlgorithm lenwb(LenwbConfig{.hops = k});
                 const GenericBroadcast generic(generic_fr_config(k, PriorityScheme::kDegree),
                                                "Generic");
                 const std::vector<const BroadcastAlgorithm*> algos{&dp, &pdp, &lenwb,
                                                                    &generic};
                 b.run_panel("d=6, " + std::to_string(k) + "-hop", algos, 6.0);
                 b.run_panel("d=18, " + std::to_string(k) + "-hop", algos, 18.0);
             }
         }},
        {"fig16_backoff", "first-receipt-with-backoff algorithms",
         [](bench::Bench& b) {
             for (std::size_t k : {2u, 3u}) {
                 const SbaAlgorithm sba(SbaConfig{.hops = k, .history = k > 2 ? 2u : 1u});
                 const GenericBroadcast generic(generic_frb_config(k, PriorityScheme::kId),
                                                "Generic");
                 const std::vector<const BroadcastAlgorithm*> algos{&sba, &generic};
                 b.run_panel("d=6, " + std::to_string(k) + "-hop", algos, 6.0);
                 b.run_panel("d=18, " + std::to_string(k) + "-hop", algos, 18.0);
             }
         }},
        {"ablation_history", "piggybacked visited-history depth h (generic FR, 2-hop)",
         [](bench::Bench& b) {
             std::vector<GenericBroadcast> variants;
             variants.reserve(5);
             for (std::size_t h : {0u, 1u, 2u, 4u, 8u}) {
                 GenericConfig cfg = generic_fr_config(2, PriorityScheme::kId);
                 cfg.history = h;
                 variants.emplace_back(cfg, "h=" + std::to_string(h));
             }
             std::vector<const BroadcastAlgorithm*> algos;
             for (const auto& v : variants) algos.push_back(&v);
             b.run_panel("d=6, 2-hop", algos, 6.0);
             b.run_panel("d=18, 2-hop", algos, 18.0);
         }},
        {"ablation_tdp_pdp", "the neighbor-designating family (2-hop, greedy designation)",
         [](bench::Bench& b) {
             const DominantPruningAlgorithm dp(DominantPruningVariant::kDp);
             const DominantPruningAlgorithm tdp(DominantPruningVariant::kTdp);
             const DominantPruningAlgorithm pdp(DominantPruningVariant::kPdp);
             const DominantPruningAlgorithm ahbp(DominantPruningVariant::kAhbp);
             const std::vector<const BroadcastAlgorithm*> algos{&dp, &tdp, &pdp, &ahbp};
             b.run_panel("d=6, 2-hop", algos, 6.0);
             b.run_panel("d=18, 2-hop", algos, 18.0);
         }},
        {"ablation_relaxed", "strict vs relaxed designation (Section 4.2's S=1.5 rule)",
         [](bench::Bench& b) {
             auto make = [](Selection sel, bool strict, const char* label) {
                 GenericConfig cfg = hybrid_config(sel);
                 cfg.selection = sel;
                 cfg.strict_designation = strict;
                 return GenericBroadcast(cfg, label);
             };
             const GenericBroadcast nd_strict =
                 make(Selection::kNeighborDesignating, true, "ND strict");
             const GenericBroadcast nd_relaxed =
                 make(Selection::kNeighborDesignating, false, "ND relaxed");
             const GenericBroadcast hy_strict =
                 make(Selection::kHybridMaxDegree, true, "MaxDeg strict");
             const GenericBroadcast hy_relaxed =
                 make(Selection::kHybridMaxDegree, false, "MaxDeg relaxed");
             const std::vector<const BroadcastAlgorithm*> algos{&nd_strict, &nd_relaxed,
                                                                &hy_strict, &hy_relaxed};
             b.run_panel("d=6, 2-hop", algos, 6.0);
             b.run_panel("d=18, 2-hop", algos, 18.0);
         }},
    };
    return specs;
}

std::vector<std::string> split_csv(const std::string& list) {
    std::vector<std::string> out;
    std::istringstream in(list);
    std::string item;
    while (std::getline(in, item, ',')) {
        if (!item.empty()) out.push_back(item);
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    bench::BenchOptions opts = bench::parse_options(argc, argv);
    opts.progress = true;  // the campaign driver always reports progress

    std::vector<std::string> wanted;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--figures" && i + 1 < argc) {
            wanted = split_csv(argv[++i]);
        } else if (arg == "--list") {
            for (const auto& spec : figure_registry()) {
                std::cout << spec.name << "  —  " << spec.caption << '\n';
            }
            return 0;
        }
    }
    if (wanted.empty()) {
        for (const auto& spec : figure_registry()) wanted.emplace_back(spec.name);
    }

    const std::string json_dir = opts.json_path;  // --json names a DIRECTORY here
    if (!json_dir.empty()) std::filesystem::create_directories(json_dir);

    int exit_code = 0;
    std::size_t done = 0;
    for (const std::string& name : wanted) {
        const auto& registry = figure_registry();
        const auto it = std::find_if(registry.begin(), registry.end(),
                                     [&](const FigureSpec& s) { return s.name == name; });
        if (it == registry.end()) {
            std::cerr << "unknown figure: " << name << " (see --list)\n";
            return 2;
        }
        std::cerr << "=== [" << ++done << "/" << wanted.size() << "] " << it->name << ": "
                  << it->caption << " ===\n";
        std::cout << it->name << ": " << it->caption << "\n\n";

        bench::BenchOptions fig_opts = opts;
        if (!json_dir.empty()) {
            fig_opts.json_path = json_dir + "/BENCH_" + name + ".json";
        }
        bench::Bench bench(name, fig_opts);
        it->run(bench);
        exit_code = std::max(exit_code, bench.finish());
    }
    return exit_code;
}
