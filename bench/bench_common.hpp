/// \file bench_common.hpp
/// \brief Shared scaffolding for the figure-reproduction benches.
///
/// Every fig*.cpp binary runs the paper's sweep (n = 20..100, d ∈ {6, 18})
/// for its algorithm set and prints paper-style tables.  Command line:
///   --runs N     cap repetitions per cell (default 200)
///   --full       run until the paper's CI rule (90% CI within ±1%) or 2000
///   --seed S     change the base seed
///   --jobs N     shard runs over N worker threads (0 = all hardware
///                threads).  Results are bit-for-bit identical at any
///                value; only wall-clock time changes.
///   --json PATH  mirror results into a machine-readable BENCH JSON file
///                (schema adhoc-bench-v1, see runner/json_sink.hpp)
///   --csv        additionally emit CSV blocks
///   --gnuplot P  write gnuplot-ready data files P_<panel>.dat
///   --progress   progress/ETA line per panel on stderr
///
/// Benches create one `Bench` session, run panels through it, and return
/// `finish()` from main: the session aggregates delivery failures across
/// panels (deterministic schemes must never fail delivery — a nonzero
/// count makes the process exit nonzero), tracks wall time, and writes the
/// JSON sink.

#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "faults/fault_plan.hpp"
#include "faults/outcome.hpp"
#include "io/cli.hpp"
#include "runner/campaign.hpp"
#include "runner/json_sink.hpp"
#include "runner/progress.hpp"
#include "stats/experiment.hpp"
#include "stats/table.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/telemetry.hpp"

namespace adhoc::bench {

/// Outcome-class tally shared by the robustness benches (bench_resilience
/// and bench_scale's --resilience panel): counts of runs per
/// delivered/degraded/partitioned class, printed as the "D/g/p" split.
struct OutcomeMix {
    std::size_t delivered = 0;
    std::size_t degraded = 0;
    std::size_t partitioned = 0;

    void add(faults::DeliveryOutcome outcome) {
        switch (outcome) {
            case faults::DeliveryOutcome::kDelivered: ++delivered; break;
            case faults::DeliveryOutcome::kDegraded: ++degraded; break;
            case faults::DeliveryOutcome::kPartitioned: ++partitioned; break;
        }
    }

    [[nodiscard]] std::string split() const {
        return std::to_string(delivered) + '/' + std::to_string(degraded) + '/' +
               std::to_string(partitioned);
    }
};

/// One-line human summary of a fault plan for bench cell headers:
/// "<crashes> crashes (<recovers> recover), <flaps> link flaps, <asym>
/// asym links".  Sections with zero entries are omitted; an empty plan
/// reads "fault-free".
inline std::string fault_plan_summary(const faults::FaultPlan& plan) {
    std::size_t crashes = 0;
    std::size_t recovers = 0;
    std::size_t flaps = 0;
    for (const faults::FaultEvent& e : plan.events) {
        switch (e.kind) {
            case faults::FaultKind::kNodeCrash: ++crashes; break;
            case faults::FaultKind::kNodeRecover: ++recovers; break;
            case faults::FaultKind::kLinkDown: ++flaps; break;
            case faults::FaultKind::kLinkUp: break;  // counted by their kLinkDown
        }
    }
    std::string out;
    const auto append = [&out](const std::string& part) {
        if (!out.empty()) out += ", ";
        out += part;
    };
    if (crashes > 0) {
        append(std::to_string(crashes) + " crashes (" + std::to_string(recovers) +
               " recover)");
    }
    if (flaps > 0) append(std::to_string(flaps) + " link flaps");
    if (!plan.asymmetry.empty()) {
        append(std::to_string(plan.asymmetry.size()) + " asym links");
    }
    if (!plan.hello_bursts.empty()) {
        append(std::to_string(plan.hello_bursts.size()) + " hello bursts");
    }
    return out.empty() ? "fault-free" : out;
}

struct BenchOptions {
    std::size_t max_runs = 200;
    std::size_t min_runs = 30;
    std::uint64_t seed = 42;
    std::size_t jobs = 1;        ///< 0 = all hardware threads
    bool csv = false;
    bool progress = false;       ///< progress/ETA on stderr
    std::string gnuplot_prefix;  ///< empty = no data files
    std::string json_path;       ///< empty = no JSON sink
};

inline BenchOptions parse_options(int argc, char** argv) {
    BenchOptions opts;
    // Numeric values must parse in full (io/cli.hpp): "--runs 5x" used to
    // silently run 5 and "--runs x" ran 0.  Unknown arguments are still
    // ignored — wrappers (bench_campaign) route their own flags through
    // the same argv.
    const auto numeric = [&](const char* flag, const char* text) -> std::size_t {
        const auto value = io::parse_size(text);
        if (!value) {
            std::cerr << "invalid value for " << flag << ": '" << text
                      << "' (usage: --help)\n";
            std::exit(2);
        }
        return *value;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--runs" && i + 1 < argc) {
            opts.max_runs = numeric("--runs", argv[++i]);
        } else if (arg == "--full") {
            opts.max_runs = 2000;
        } else if (arg == "--seed" && i + 1 < argc) {
            const auto seed = io::parse_u64(argv[i + 1]);
            if (!seed) {
                std::cerr << "invalid value for --seed: '" << argv[i + 1]
                          << "' (usage: --help)\n";
                std::exit(2);
            }
            opts.seed = *seed;
            ++i;
        } else if (arg == "--jobs" && i + 1 < argc) {
            opts.jobs = numeric("--jobs", argv[++i]);
        } else if (arg == "--json" && i + 1 < argc) {
            opts.json_path = argv[++i];
        } else if (arg == "--csv") {
            opts.csv = true;
        } else if (arg == "--progress") {
            opts.progress = true;
        } else if (arg == "--gnuplot" && i + 1 < argc) {
            opts.gnuplot_prefix = argv[++i];
        } else if (arg == "--help") {
            std::cout << "options: --runs N | --full | --seed S | --jobs N | --json PATH | "
                         "--csv | --gnuplot PREFIX | --progress\n";
            std::exit(0);
        }
    }
    return opts;
}

inline ExperimentConfig sweep_config(const BenchOptions& opts, double degree) {
    ExperimentConfig cfg;
    cfg.average_degree = degree;
    cfg.min_runs = opts.min_runs;
    cfg.max_runs = opts.max_runs;
    cfg.seed = opts.seed;
    cfg.jobs = opts.jobs;
    return cfg;
}

/// One bench invocation: runs panels, collects them for the JSON sink, and
/// turns delivery failures into a nonzero exit status.
class Bench {
  public:
    Bench(std::string name, BenchOptions opts)
        : name_(std::move(name)),
          opts_(std::move(opts)),
          start_(std::chrono::steady_clock::now()) {}

    /// Runs one panel (one density) and prints the table (plus CSV if asked).
    void run_panel(const std::string& title,
                   const std::vector<const BroadcastAlgorithm*>& algorithms, double degree) {
        runner::CampaignOptions campaign;
        campaign.jobs = opts_.jobs;
        telemetry::Snapshot panel_metrics;
        if (telemetry::enabled()) campaign.telemetry_out = &panel_metrics;
        runner::ProgressMeter meter(std::cerr, name_ + " " + title);
        if (opts_.progress) {
            campaign.on_progress = [&meter](const runner::CampaignProgress& p) {
                meter.update(p.cells_done, p.cells_total, p.runs_done);
            };
        }
        auto series = runner::run_campaign(algorithms, sweep_config(opts_, degree), campaign);
        if (opts_.progress) meter.finish();
        metrics_.merge(panel_metrics);  // panels run serially: fixed merge order

        std::cout << format_table(title, series) << '\n';
        if (opts_.csv) {
            std::cout << "-- csv --\n";
            write_csv(std::cout, series);
            std::cout << '\n';
        }
        if (!opts_.gnuplot_prefix.empty()) {
            std::string slug = title;
            for (char& c : slug) {
                if (c == ' ' || c == ',' || c == '=') c = '_';
            }
            std::ofstream data(opts_.gnuplot_prefix + "_" + slug + ".dat");
            write_gnuplot(data, title, series);
        }
        // Correctness guard: deterministic schemes must never fail delivery.
        for (const auto& s : series) {
            for (const auto& p : s.points) {
                if (p.delivery_failures != 0) {
                    std::cerr << "WARNING: " << s.name << " failed delivery "
                              << p.delivery_failures << "x at n=" << p.node_count << '\n';
                    delivery_failures_ += p.delivery_failures;
                }
            }
        }
        panels_.push_back({title, degree, std::move(series)});
    }

    /// For benches with bespoke loops: fold external failures into the guard.
    void note_delivery_failure(std::size_t count = 1) { delivery_failures_ += count; }

    [[nodiscard]] const BenchOptions& options() const noexcept { return opts_; }

    /// Writes the JSON sink (if requested) and returns the process exit
    /// code: nonzero iff any delivery failure was observed.
    [[nodiscard]] int finish() {
        if (!opts_.json_path.empty()) {
            runner::BenchRunInfo info;
            info.name = name_;
            info.seed = opts_.seed;
            info.jobs = opts_.jobs;
            info.min_runs = opts_.min_runs;
            info.max_runs = opts_.max_runs;
            info.wall_seconds =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
                    .count();
            info.delivery_failures = delivery_failures_;
            if (telemetry::enabled() && !metrics_.empty()) {
                // Timing excluded: the embedded object is bit-identical at
                // any --jobs value (see telemetry/sinks.hpp).
                info.metrics_json =
                    telemetry::metrics_json(metrics_, /*include_timing=*/false);
            }
            std::ofstream out(opts_.json_path);
            if (!out) {
                std::cerr << name_ << ": cannot write " << opts_.json_path << '\n';
                return 1;
            }
            runner::write_bench_json(out, info, panels_);
        }
        if (delivery_failures_ != 0) {
            std::cerr << name_ << ": " << delivery_failures_
                      << " delivery failure(s) — deterministic schemes must deliver to "
                         "every node\n";
            return 1;
        }
        return 0;
    }

  private:
    std::string name_;
    BenchOptions opts_;
    std::chrono::steady_clock::time_point start_;
    std::vector<runner::PanelResult> panels_;
    telemetry::Snapshot metrics_;  ///< campaign aggregates, panel order
    std::size_t delivery_failures_ = 0;
};

}  // namespace adhoc::bench
