/// \file bench_common.hpp
/// \brief Shared scaffolding for the figure-reproduction benches.
///
/// Every fig*.cpp binary runs the paper's sweep (n = 20..100, d ∈ {6, 18})
/// for its algorithm set and prints paper-style tables.  Command line:
///   --runs N     cap repetitions per cell (default 200)
///   --full       run until the paper's CI rule (90% CI within ±1%) or 2000
///   --seed S     change the base seed
///   --csv        additionally emit CSV blocks
///   --gnuplot P  write gnuplot-ready data files P_<panel>.dat

#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "stats/experiment.hpp"
#include "stats/table.hpp"

namespace adhoc::bench {

struct BenchOptions {
    std::size_t max_runs = 200;
    std::size_t min_runs = 30;
    std::uint64_t seed = 42;
    bool csv = false;
    std::string gnuplot_prefix;  ///< empty = no data files
};

inline BenchOptions parse_options(int argc, char** argv) {
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--runs" && i + 1 < argc) {
            opts.max_runs = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--full") {
            opts.max_runs = 2000;
        } else if (arg == "--seed" && i + 1 < argc) {
            opts.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--csv") {
            opts.csv = true;
        } else if (arg == "--gnuplot" && i + 1 < argc) {
            opts.gnuplot_prefix = argv[++i];
        } else if (arg == "--help") {
            std::cout << "options: --runs N | --full | --seed S | --csv | --gnuplot PREFIX\n";
            std::exit(0);
        }
    }
    return opts;
}

inline ExperimentConfig sweep_config(const BenchOptions& opts, double degree) {
    ExperimentConfig cfg;
    cfg.average_degree = degree;
    cfg.min_runs = opts.min_runs;
    cfg.max_runs = opts.max_runs;
    cfg.seed = opts.seed;
    return cfg;
}

/// Runs one panel (one density) and prints the table (plus CSV if asked).
inline void run_panel(const std::string& title,
                      const std::vector<const BroadcastAlgorithm*>& algorithms,
                      const BenchOptions& opts, double degree) {
    const auto series = run_sweep(algorithms, sweep_config(opts, degree));
    std::cout << format_table(title, series) << '\n';
    if (opts.csv) {
        std::cout << "-- csv --\n";
        write_csv(std::cout, series);
        std::cout << '\n';
    }
    if (!opts.gnuplot_prefix.empty()) {
        std::string slug = title;
        for (char& c : slug) {
            if (c == ' ' || c == ',' || c == '=') c = '_';
        }
        std::ofstream data(opts.gnuplot_prefix + "_" + slug + ".dat");
        write_gnuplot(data, title, series);
    }
    // Correctness guard: deterministic schemes must never fail delivery.
    for (const auto& s : series) {
        for (const auto& p : s.points) {
            if (p.delivery_failures != 0) {
                std::cerr << "WARNING: " << s.name << " failed delivery "
                          << p.delivery_failures << "x at n=" << p.node_count << '\n';
            }
        }
    }
}

}  // namespace adhoc::bench
