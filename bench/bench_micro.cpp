/// \file bench_micro.cpp
/// \brief Hot-path microbenchmarks: reference vs optimized kernels.
///
/// Times the decision/generation kernels that dominate campaign wall time,
/// each in two implementations — the retained `reference::` naive version
/// and the production compact-view/spatial-grid version — and verifies
/// during the same run that both produce identical results.  Emits a
/// machine-readable document (schema adhoc-micro-v1) for the CI regression
/// gate (tools/check_bench.py compares speedup ratios against the
/// committed BENCH_micro.baseline.json).
///
///   bench_micro [--smoke] [--seed S] [--json PATH]
///
/// --smoke restricts the sweep to n <= 500 with fewer repetitions (the CI
/// configuration); the default sweeps n in {100, 500, 1000, 2000}.  Exits
/// nonzero if any kernel's optimized output diverges from its reference.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <queue>

#include "core/coverage.hpp"
#include "core/priority.hpp"
#include "core/view.hpp"
#include "graph/unit_disk.hpp"
#include "runner/json_sink.hpp"
#include "sim/event_queue.hpp"
#include "sim/node_agent.hpp"
#include "stats/rng.hpp"

namespace {

using namespace adhoc;

struct MicroOptions {
    bool smoke = false;
    std::uint64_t seed = 42;
    std::string json_path = "BENCH_micro.json";
};

MicroOptions parse(int argc, char** argv) {
    MicroOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            opts.smoke = true;
        } else if (arg == "--seed" && i + 1 < argc) {
            opts.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--json" && i + 1 < argc) {
            opts.json_path = argv[++i];
        } else if (arg == "--help") {
            std::cout << "options: --smoke | --seed S | --json PATH\n";
            std::exit(0);
        }
    }
    return opts;
}

/// Best-of-reps ns per call of `fn`: each repetition is timed separately
/// and the minimum is reported, which discards scheduler/frequency noise
/// far better than the mean — important for the CI regression gate, which
/// compares speedup ratios across runs.
template <typename Fn>
double time_ns(Fn&& fn, std::size_t reps) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best, std::chrono::duration<double, std::nano>(t1 - t0).count());
    }
    return best;
}

bool same_graph(const Graph& a, const Graph& b) {
    if (a.node_count() != b.node_count() || a.edge_count() != b.edge_count()) return false;
    for (NodeId v = 0; v < a.node_count(); ++v) {
        const auto& na = a.neighbors(v);
        const auto& nb = b.neighbors(v);
        if (!std::equal(na.begin(), na.end(), nb.begin(), nb.end())) return false;
    }
    return true;
}

/// One problem instance: random placement at roughly degree-6 density, a
/// global dynamic view with ~20% visited / ~10% designated state, and a
/// 2-hop KnowledgeBase holding the same broadcast state.
struct Fixture {
    std::vector<Point2D> positions;
    double range = 0.0;
    Graph graph;
    PriorityKeys keys;
    std::vector<char> visited;
    std::vector<char> designated;

    Fixture(std::size_t n, std::uint64_t seed) {
        Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * n));
        const double area = 100.0;
        positions.resize(n);
        for (Point2D& p : positions) {
            p.x = rng.uniform(0.0, area);
            p.y = rng.uniform(0.0, area);
        }
        // Range for expected average degree ~6 under uniform placement.
        range = std::sqrt(6.0 * area * area / (3.14159265358979323846 * static_cast<double>(n)));
        graph = unit_disk_graph(positions, range);
        keys = PriorityKeys(graph, PriorityScheme::kNcr);
        visited.assign(n, 0);
        designated.assign(n, 0);
        for (NodeId v = 0; v < n; ++v) {
            if (rng.chance(0.2)) {
                visited[v] = 1;
            } else if (rng.chance(0.1)) {
                designated[v] = 1;
            }
        }
    }
};

bool same_outcome(const CoverageOutcome& a, const CoverageOutcome& b) {
    return a.covered == b.covered && a.uncovered_u == b.uncovered_u &&
           a.uncovered_w == b.uncovered_w;
}

/// The pre-calendar scheduler, verbatim: std::priority_queue on
/// (time, seq).  Kept as the reference side of the event_queue kernel.
class RefEventQueue {
  public:
    void push(double time, EventKind kind, NodeId node, std::size_t payload) {
        queue_.push(Event{time, next_seq_++, kind, node, payload});
    }
    [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
    Event pop() {
        Event e = queue_.top();
        queue_.pop();
        return e;
    }
    void clear() {
        queue_ = {};
        next_seq_ = 0;
    }

  private:
    std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
    std::uint64_t next_seq_ = 0;
};

/// Drives a queue through the simulator's access pattern: seed a backlog,
/// then a sustained pop-one-push-two cascade (the shape a broadcast fanout
/// produces), then drain and clear.  Returns a digest of the pop order.
template <typename Queue>
std::uint64_t scheduler_workload(Queue& q, std::size_t n, std::uint64_t seed) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto fold = [&h](const Event& e) {
        h = (h ^ e.seq) * 0x100000001b3ULL;
        h = (h ^ static_cast<std::uint64_t>(e.time * 8.0)) * 0x100000001b3ULL;
    };
    std::uint64_t x = seed | 1;
    const auto next_delay = [&x] {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;  // xorshift64: cheap, identical on both sides
        return 1.0 + static_cast<double>(x % 64) / 16.0;
    };
    q.clear();
    double now = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        q.push(next_delay(), EventKind::kDelivery, static_cast<NodeId>(i), i);
    }
    for (std::size_t i = 0; i < 2 * n; ++i) {
        const Event e = q.pop();
        fold(e);
        now = e.time;
        if (i < n) {  // fanout phase, then pure drain
            q.push(now + next_delay(), EventKind::kDelivery, e.node, i);
            q.push(now + next_delay(), EventKind::kTimer, e.node, i);
        }
    }
    while (!q.empty()) fold(q.pop());
    return h;
}

}  // namespace

int main(int argc, char** argv) {
    const MicroOptions opts = parse(argc, argv);
    const std::vector<std::size_t> sizes =
        opts.smoke ? std::vector<std::size_t>{100, 500}
                   : std::vector<std::size_t>{100, 500, 1000, 2000};

    const auto start = std::chrono::steady_clock::now();
    std::vector<runner::MicroKernelResult> results;
    bool all_match = true;
    // Sink defeating dead-code elimination of the timed bodies.
    volatile std::size_t guard = 0;

    for (const std::size_t n : sizes) {
        Fixture fx(n, opts.seed);
        std::cout << "n=" << n << " (" << fx.graph.edge_count() << " edges)\n";

        auto push = [&](const char* name, std::size_t reps, double ref_ns, double opt_ns,
                        bool match) {
            results.push_back({name, n, reps, ref_ns, opt_ns, ref_ns / opt_ns, match});
            all_match = all_match && match;
            std::cout << "  " << name << ": ref " << ref_ns << " ns, opt " << opt_ns
                      << " ns, speedup " << ref_ns / opt_ns << (match ? "" : "  MISMATCH")
                      << '\n';
        };

        // --- unit-disk generation: all-pairs scan vs spatial grid ---
        {
            const std::size_t reps = opts.smoke ? 10 : (n <= 500 ? 20 : 10);
            const Graph gref = reference::unit_disk_graph(fx.positions, fx.range);
            const bool match = same_graph(gref, fx.graph);
            const double ref_ns = time_ns(
                [&] { guard = guard + reference::unit_disk_graph(fx.positions, fx.range).edge_count(); },
                reps);
            const double opt_ns =
                time_ns([&] { guard = guard + unit_disk_graph(fx.positions, fx.range).edge_count(); },
                        reps);
            push("unit_disk_gen", reps, ref_ns, opt_ns, match);
        }

        // --- scheduler: reference priority_queue vs calendar queue ---
        //
        // Push/pop/clear under the simulator's pop-one-push-two cascade;
        // sized at 8x n so the larger fixtures cross the calendar
        // threshold while the smoke sizes stay in pure heap mode.
        {
            const std::size_t events = 8 * n;
            RefEventQueue ref_q;
            EventQueue opt_q;
            const bool match = scheduler_workload(ref_q, events, opts.seed) ==
                               scheduler_workload(opt_q, events, opts.seed);
            const std::size_t reps = opts.smoke ? 10 : (n <= 500 ? 20 : 10);
            const double per = static_cast<double>(3 * events);  // ops per workload
            const double ref_ns =
                time_ns([&] { guard = guard + scheduler_workload(ref_q, events, opts.seed); },
                        reps) /
                per;
            const double opt_ns =
                time_ns([&] { guard = guard + scheduler_workload(opt_q, events, opts.seed); },
                        reps) /
                per;
            push("event_queue_ops", reps, ref_ns, opt_ns, match);
        }

        // 2-hop knowledge base carrying the broadcast state — the exact
        // configuration every simulated decision runs against.
        KnowledgeBase kb(fx.graph, 2);
        for (NodeId v = 0; v < n; ++v) {
            kb.load_visited(v, fx.visited);
            kb.load_designated(v, fx.designated);
        }

        // --- per-decision view construction: owning copy vs borrowed cache ---
        {
            // The pre-refactor path: copy the cached topology and build a
            // fresh status vector for every decision.
            auto build_ref = [&](NodeId v) {
                const LocalTopology& topo = kb.at(v).topology();
                std::vector<NodeStatus> status(n, NodeStatus::kInvisible);
                for (NodeId x = 0; x < n; ++x) {
                    if (!topo.visible[x]) continue;
                    status[x] = fx.visited[x]      ? NodeStatus::kVisited
                                : fx.designated[x] ? NodeStatus::kDesignated
                                                   : NodeStatus::kUnvisited;
                }
                return View(Graph(topo.graph), std::vector<char>(topo.visible),
                            std::move(status), &fx.keys, std::vector<NodeId>(topo.members));
            };
            bool match = true;
            for (NodeId v = 0; v < n && match; ++v) {
                const View a = build_ref(v);
                const View b = kb.view_of(v, fx.keys);
                for (NodeId x = 0; x < n && match; ++x) {
                    match = a.visible(x) == b.visible(x) && a.priority(x) == b.priority(x);
                }
            }
            const std::size_t reps = opts.smoke ? 10 : (n <= 500 ? 20 : 10);
            const double ref_ns = time_ns(
                                      [&] {
                                          for (NodeId v = 0; v < n; ++v) {
                                              guard = guard + build_ref(v).node_count();
                                          }
                                      },
                                      reps) /
                                  static_cast<double>(n);
            const double opt_ns = time_ns(
                                      [&] {
                                          for (NodeId v = 0; v < n; ++v) {
                                              guard = guard + kb.view_of(v, fx.keys).node_count();
                                          }
                                      },
                                      reps) /
                                  static_cast<double>(n);
            push("view_build", reps, ref_ns, opt_ns, match);
        }

        // --- coverage condition, one decision per node on its 2-hop view ---
        //
        // This is the simulation hot path: the reference kernel pays O(n)
        // per call (global-id masks and scans) regardless of how small the
        // local view is, while the compact kernel only touches the k-hop
        // neighborhood after compilation.
        for (const bool strong : {false, true}) {
            const CoverageOptions copts{.strong = strong};
            bool match = true;
            for (NodeId v = 0; v < n && match; ++v) {
                const View view = kb.view_of(v, fx.keys);
                match = same_outcome(evaluate_coverage(view, v, copts),
                                     reference::evaluate_coverage(view, v, copts));
            }
            const std::size_t reps = opts.smoke ? 8 : (n <= 500 ? 10 : 6);
            const double ref_ns =
                time_ns(
                    [&] {
                        for (NodeId v = 0; v < n; ++v) {
                            guard = guard + reference::evaluate_coverage(kb.view_of(v, fx.keys), v, copts)
                                         .covered;
                        }
                    },
                    reps) /
                static_cast<double>(n);
            const double opt_ns =
                time_ns(
                    [&] {
                        for (NodeId v = 0; v < n; ++v) {
                            guard = guard + evaluate_coverage(kb.view_of(v, fx.keys), v, copts).covered;
                        }
                    },
                    reps) /
                static_cast<double>(n);
            push(strong ? "coverage_strong" : "coverage_full", reps, ref_ns, opt_ns, match);
        }
    }

    if (!opts.json_path.empty()) {
        runner::MicroRunInfo info;
        info.name = "bench_micro";
        info.seed = opts.seed;
        info.smoke = opts.smoke;
        info.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        std::ofstream out(opts.json_path);
        if (!out) {
            std::cerr << "bench_micro: cannot write " << opts.json_path << '\n';
            return 1;
        }
        runner::write_micro_json(out, info, results);
    }

    if (!all_match) {
        std::cerr << "bench_micro: optimized kernels diverged from reference\n";
        return 1;
    }
    return 0;
}
