/// \file bench_resilience.cpp
/// \brief Robustness campaign: delivery under node crashes and lossy links.
///
/// Sweeps crash rate (loss fixed) and symmetric loss (crash rate fixed)
/// for flooding, the generic self-pruning framework and two pruning
/// baselines (DP, Wu-Li), all wrapped in the NACK recovery layer
/// (src/faults/recovery.hpp).  Per cell it reports the mean delivery
/// ratio over *reachable* nodes, the forward-node overhead, the
/// delivered/degraded/partitioned outcome split and the repair traffic.
///
/// Determinism: every run's simulation RNG and fault plan derive from
/// `runner::derive_run_seed` substreams of (seed, cell, run index); runs
/// are sharded over a thread pool but merged in run-index order, and the
/// JSON sink (schema adhoc-resilience-v1) carries no wall-clock or jobs
/// fields — the file is byte-identical at any --jobs value.
///
/// Extra flag (on top of bench_common's): --smoke shrinks the sweep to a
/// sanity-size grid for CI.
///
/// Partitioned runs are *not* failures (the topology, not the protocol,
/// made delivery impossible): the bench always exits 0 unless the sink
/// cannot be written.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <sstream>
#include <vector>

#include "algorithms/dominant_pruning.hpp"
#include "algorithms/flooding.hpp"
#include "algorithms/generic.hpp"
#include "algorithms/wu_li.hpp"
#include "bench_common.hpp"
#include "faults/fault_plan.hpp"
#include "faults/outcome.hpp"
#include "faults/recovery.hpp"
#include "graph/unit_disk.hpp"
#include "runner/seed.hpp"
#include "runner/thread_pool.hpp"

using namespace adhoc;

namespace {

struct Cell {
    double crash_rate = 0.0;
    double loss = 0.0;
    /// >= 0: run under the kSinr backend with this capture threshold
    /// (alpha = 3, zero noise, vulnerability window 0.25, interference
    /// truncated at twice the communication range).  < 0: ideal medium.
    double beta = -1.0;
};

/// Per-algorithm outcome of one run.
struct RunOutcome {
    double delivery_ratio = 0.0;
    std::size_t forward = 0;
    faults::DeliveryOutcome outcome = faults::DeliveryOutcome::kDelivered;
    std::size_t retransmits = 0;
    std::size_t sinr_rejections = 0;
    std::size_t captures = 0;
};

/// Per-algorithm aggregate over one cell, merged in run-index order.  The
/// outcome tally lives in the shared bench::OutcomeMix so the D/g/p
/// bookkeeping stays identical to bench_scale's resilience panel.
struct AlgoStats {
    double delivery_sum = 0.0;
    double forward_sum = 0.0;
    bench::OutcomeMix mix;
    std::size_t retransmits = 0;
    std::size_t sinr_rejections = 0;
    std::size_t captures = 0;

    void add(const RunOutcome& r) {
        delivery_sum += r.delivery_ratio;
        forward_sum += static_cast<double>(r.forward);
        mix.add(r.outcome);
        retransmits += r.retransmits;
        sinr_rejections += r.sinr_rejections;
        captures += r.captures;
    }
};

struct CellResult {
    Cell cell;
    std::vector<AlgoStats> stats;  ///< one per algorithm
    std::string plan_note;         ///< run-0 fault plan, summarized
};

struct Panel {
    std::string title;
    std::vector<CellResult> cells;
};

/// Runs one cell: `runs` independent topologies, each with its own fault
/// plan, all four algorithms per topology.  Sharded over `pool`; the
/// result vector is indexed by run so aggregation order is fixed.
CellResult run_cell(const Cell& cell, std::size_t cell_tag,
                    const std::vector<const BroadcastAlgorithm*>& algorithms,
                    const bench::BenchOptions& opts, std::size_t node_count, double degree,
                    std::size_t runs, runner::ThreadPool& pool) {
    std::vector<std::vector<RunOutcome>> per_run(runs);
    std::atomic<std::size_t> remaining{runs};
    std::mutex done_mutex;
    std::condition_variable done_cv;

    // Cell substream: decorrelates cells without touching the run-seed
    // derivation contract (satellite of the jobs-invariance guarantee).
    const std::uint64_t cell_seed =
        opts.seed ^ runner::splitmix64(0xbe5111e4ceULL + cell_tag);

    for (std::size_t run = 0; run < runs; ++run) {
        pool.submit([&, run] {
            Rng rng(runner::derive_run_seed(cell_seed, node_count, degree, run));
            UnitDiskParams params;
            params.node_count = node_count;
            params.average_degree = degree;
            const UnitDiskNetwork net = generate_network_checked(params, rng);
            const NodeId source = static_cast<NodeId>(rng.index(net.graph.node_count()));

            faults::FaultSpec spec;
            spec.crash_rate = cell.crash_rate;
            const faults::FaultPlan plan =
                faults::make_fault_plan(spec, net.graph, source, cell_seed, run);

            MediumConfig medium;
            medium.loss_probability = cell.loss;
            if (cell.beta >= 0.0) {
                medium.backend = MediumBackend::kSinr;
                medium.sinr.beta = cell.beta;
                medium.sinr.vulnerability_window = 0.25;
                medium.sinr.interference_range = 2.0 * net.range;
                medium.positions = net.positions;
            }
            faults::RecoveryConfig recovery;  // defaults: NACK layer armed

            std::vector<RunOutcome> outcomes(algorithms.size());
            for (std::size_t a = 0; a < algorithms.size(); ++a) {
                Rng algo_rng = rng.fork();
                const ResilientResult r = algorithms[a]->broadcast_resilient(
                    net.graph, source, algo_rng, medium, plan, recovery);
                outcomes[a].delivery_ratio = r.summary.delivery_ratio;
                outcomes[a].forward = r.result.forward_count;
                outcomes[a].outcome = r.summary.outcome;
                outcomes[a].retransmits = r.result.retransmit_count;
                outcomes[a].sinr_rejections = r.result.sinr_rejections;
                outcomes[a].captures = r.result.captures;
            }
            per_run[run] = std::move(outcomes);
            if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lock(done_mutex);
                done_cv.notify_all();
            }
        });
    }
    {
        std::unique_lock<std::mutex> lock(done_mutex);
        done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
    }

    CellResult result;
    result.cell = cell;
    result.stats.resize(algorithms.size());
    for (std::size_t run = 0; run < runs; ++run) {  // fixed order: jobs-invariant sums
        for (std::size_t a = 0; a < algorithms.size(); ++a) {
            result.stats[a].add(per_run[run][a]);
        }
    }
    {
        // Regenerate run 0's plan (pure function of its seeds) for the
        // human-readable cell annotation — stdout only, never the sink.
        Rng rng(runner::derive_run_seed(cell_seed, node_count, degree, 0));
        UnitDiskParams params;
        params.node_count = node_count;
        params.average_degree = degree;
        const UnitDiskNetwork net = generate_network_checked(params, rng);
        const NodeId source = static_cast<NodeId>(rng.index(net.graph.node_count()));
        faults::FaultSpec spec;
        spec.crash_rate = cell.crash_rate;
        result.plan_note = bench::fault_plan_summary(
            faults::make_fault_plan(spec, net.graph, source, cell_seed, 0));
    }
    return result;
}

void print_panel(const Panel& panel, const std::vector<const BroadcastAlgorithm*>& algorithms,
                 std::size_t runs) {
    std::cout << panel.title << "  (mean delivery ratio | outcomes D/g/p per "
              << runs << " runs)\n";
    std::cout << "crash  loss  beta ";
    for (const BroadcastAlgorithm* a : algorithms) {
        std::cout << " | " << std::setw(20) << std::left << a->name();
    }
    std::cout << "\n";
    for (const CellResult& cr : panel.cells) {
        std::cout << std::fixed << std::setprecision(2) << std::setw(5) << cr.cell.crash_rate
                  << ' ' << std::setw(5) << cr.cell.loss << ' ' << std::setw(5)
                  << cr.cell.beta;
        for (const AlgoStats& s : cr.stats) {
            std::ostringstream col;
            col << std::fixed << std::setprecision(4)
                << s.delivery_sum / static_cast<double>(runs) << ' ' << std::setw(8)
                << s.mix.split();
            std::cout << " | " << std::setw(20) << std::left << col.str();
        }
        std::cout << "  [run0: " << cr.plan_note << "]\n";
    }
    std::cout << '\n';
}

/// adhoc-resilience-v1 sink.  Deliberately excludes wall-clock time and
/// --jobs so the bytes depend only on (seed, sweep, runs).
void write_json(std::ostream& out, const std::vector<Panel>& panels,
                const std::vector<const BroadcastAlgorithm*>& algorithms,
                const bench::BenchOptions& opts, std::size_t node_count, double degree,
                std::size_t runs) {
    out << std::setprecision(17);
    out << "{\n";
    out << "  \"schema\": \"adhoc-resilience-v1\",\n";
    out << "  \"name\": \"bench_resilience\",\n";
    out << "  \"seed\": \"" << opts.seed << "\",\n";
    out << "  \"node_count\": " << node_count << ",\n";
    out << "  \"average_degree\": " << degree << ",\n";
    out << "  \"runs_per_cell\": " << runs << ",\n";
    out << "  \"panels\": [\n";
    for (std::size_t p = 0; p < panels.size(); ++p) {
        const Panel& panel = panels[p];
        out << "    {\n";
        out << "      \"title\": \"" << runner::json_escape(panel.title) << "\",\n";
        out << "      \"cells\": [\n";
        for (std::size_t c = 0; c < panel.cells.size(); ++c) {
            const CellResult& cr = panel.cells[c];
            out << "        {\"crash_rate\": " << cr.cell.crash_rate
                << ", \"loss\": " << cr.cell.loss << ", \"beta\": " << cr.cell.beta
                << ", \"algorithms\": [\n";
            for (std::size_t a = 0; a < algorithms.size(); ++a) {
                const AlgoStats& s = cr.stats[a];
                out << "          {\"name\": \"" << runner::json_escape(algorithms[a]->name())
                    << "\", \"delivery_ratio\": "
                    << s.delivery_sum / static_cast<double>(runs)
                    << ", \"forward_mean\": " << s.forward_sum / static_cast<double>(runs)
                    << ", \"delivered\": " << s.mix.delivered
                    << ", \"degraded\": " << s.mix.degraded
                    << ", \"partitioned\": " << s.mix.partitioned
                    << ", \"retransmits\": " << s.retransmits
                    << ", \"sinr_rejections\": " << s.sinr_rejections
                    << ", \"captures\": " << s.captures << "}"
                    << (a + 1 < algorithms.size() ? "," : "") << "\n";
            }
            out << "        ]}" << (c + 1 < panel.cells.size() ? "," : "") << "\n";
        }
        out << "      ]\n";
        out << "    }" << (p + 1 < panels.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
    const bench::BenchOptions opts = bench::parse_options(argc, argv);
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke") smoke = true;
    }

    const std::size_t node_count = smoke ? 24 : 60;
    const double degree = 6.0;
    const std::size_t runs =
        smoke ? 6 : std::max<std::size_t>(opts.max_runs / 5, 10);

    const FloodingAlgorithm flooding;
    const GenericBroadcast generic(generic_fr_config(2), "Generic FR");
    const DominantPruningAlgorithm dp(DominantPruningVariant::kDp);
    const WuLiAlgorithm wu_li;
    const std::vector<const BroadcastAlgorithm*> algorithms = {&flooding, &generic, &dp,
                                                               &wu_li};

    const std::vector<double> crash_axis =
        smoke ? std::vector<double>{0.0, 0.2} : std::vector<double>{0.0, 0.05, 0.1, 0.2, 0.3};
    const std::vector<double> loss_axis =
        smoke ? std::vector<double>{0.0, 0.3} : std::vector<double>{0.0, 0.1, 0.2, 0.3, 0.5};

    runner::ThreadPool pool(opts.jobs);
    std::cout << "bench_resilience: n=" << node_count << " d=" << degree << " runs=" << runs
              << " (recovery layer on; partitioned runs are not failures)\n\n";

    std::vector<Panel> panels;
    std::size_t cell_tag = 0;

    Panel crash_panel;
    crash_panel.title = "delivery vs crash rate (loss=0)";
    for (const double crash : crash_axis) {
        crash_panel.cells.push_back(run_cell({crash, 0.0}, cell_tag++, algorithms, opts,
                                             node_count, degree, runs, pool));
    }
    print_panel(crash_panel, algorithms, runs);
    panels.push_back(std::move(crash_panel));

    Panel loss_panel;
    loss_panel.title = "delivery vs loss (crash_rate=0.1)";
    for (const double loss : loss_axis) {
        loss_panel.cells.push_back(run_cell({0.1, loss}, cell_tag++, algorithms, opts,
                                            node_count, degree, runs, pool));
    }
    print_panel(loss_panel, algorithms, runs);
    panels.push_back(std::move(loss_panel));

    // SINR interference sweep (fault-free, lossless): how much delivery
    // each scheme loses as the capture threshold tightens.  beta = 0 is
    // the degenerate backend — it must match the ideal-medium row of the
    // crash panel's crash=0 cell in delivery, with zero rejections.
    const std::vector<double> beta_axis = smoke ? std::vector<double>{0.0, 0.5}
                                                : std::vector<double>{0.0, 0.1, 0.25, 0.5, 1.0};
    Panel sinr_panel;
    sinr_panel.title = "delivery vs SINR capture threshold (crash=0, loss=0)";
    for (const double beta : beta_axis) {
        sinr_panel.cells.push_back(run_cell({0.0, 0.0, beta}, cell_tag++, algorithms, opts,
                                            node_count, degree, runs, pool));
    }
    print_panel(sinr_panel, algorithms, runs);
    panels.push_back(std::move(sinr_panel));

    if (!opts.json_path.empty()) {
        std::ofstream out(opts.json_path);
        if (!out) {
            std::cerr << "bench_resilience: cannot write " << opts.json_path << '\n';
            return 1;
        }
        write_json(out, panels, algorithms, opts, node_count, degree, runs);
    }
    return 0;
}
