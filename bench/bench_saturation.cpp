/// \file bench_saturation.cpp
/// \brief Saturation campaign: thousands of concurrent broadcast sessions
/// through one long-lived network under churn, vs offered load.
///
/// Sweeps the session arrival rate for four forwarding policies (flooding,
/// the generic static and FR self-pruning configurations, Wu-Li), all
/// running through the continuous-traffic engine (src/traffic/) with the
/// summary-vector recovery plane armed and a crash+link-churn fault plan
/// applied.  Per cell it reports steady-state throughput, p50/p95/p99
/// session delivery latency, bytes per node, duplicate-cache pressure and
/// the delivered/degraded/partitioned split.
///
/// Determinism: every run's topology, workload, fault plan and simulation
/// RNG derive from `runner::derive_run_seed` substreams of (seed, cell,
/// run index); runs are sharded over a thread pool but merged in run-index
/// order, and the JSON sink (schema adhoc-saturation-v1) carries no
/// wall-clock or jobs fields — the file is byte-identical at any --jobs
/// value.
///
/// Extra flag (on top of bench_common's): --smoke shrinks the sweep for CI
/// while keeping >= 1000 concurrent sessions per algorithm cell.
///
/// Partitioned/degraded sessions are *not* failures (the churn plan, not
/// the protocol, made delivery impossible); the bench exits nonzero only
/// when a session escapes classification, a duplicate cache exceeds its
/// ceiling, or the sink cannot be written.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <iterator>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "faults/fault_plan.hpp"
#include "graph/unit_disk.hpp"
#include "runner/seed.hpp"
#include "runner/thread_pool.hpp"
#include "telemetry/sinks.hpp"
#include "traffic/engine.hpp"
#include "traffic/policy.hpp"
#include "traffic/workload.hpp"

using namespace adhoc;

namespace {

constexpr const char* kPolicies[] = {"flooding", "generic-static", "generic-fr", "wu-li"};

struct Cell {
    double load = 1.0;  ///< mean session arrivals per time unit
};

/// Per-algorithm outcome of one run.
struct RunOutcome {
    std::size_t delivered = 0;
    std::size_t degraded = 0;
    std::size_t partitioned = 0;
    std::size_t unclassified = 0;  ///< must stay 0 (hard failure)
    std::size_t data_tx = 0;
    std::size_t bytes = 0;  ///< data + control
    std::size_t duplicates = 0;
    std::size_t sv_beacons = 0;
    std::size_t pulls = 0;
    std::size_t repairs = 0;
    std::size_t cache_peak = 0;
    std::size_t cache_ceiling = 0;
    bool cache_overflow = false;  ///< peak > ceiling (hard failure)
    std::uint64_t latency_max = 0;
    std::vector<std::uint64_t> latency_hist;
    double completion_time = 0.0;
};

/// Per-algorithm aggregate over one cell, merged in run-index order.
struct AlgoStats {
    std::size_t delivered = 0;
    std::size_t degraded = 0;
    std::size_t partitioned = 0;
    std::size_t unclassified = 0;
    std::size_t data_tx = 0;
    std::size_t bytes = 0;
    std::size_t duplicates = 0;
    std::size_t sv_beacons = 0;
    std::size_t pulls = 0;
    std::size_t repairs = 0;
    std::size_t cache_peak = 0;
    std::size_t cache_ceiling = 0;
    bool cache_overflow = false;
    std::uint64_t latency_max = 0;
    std::vector<std::uint64_t> latency_hist;
    double completion_sum = 0.0;

    void add(const RunOutcome& r) {
        delivered += r.delivered;
        degraded += r.degraded;
        partitioned += r.partitioned;
        unclassified += r.unclassified;
        data_tx += r.data_tx;
        bytes += r.bytes;
        duplicates += r.duplicates;
        sv_beacons += r.sv_beacons;
        pulls += r.pulls;
        repairs += r.repairs;
        cache_peak = std::max(cache_peak, r.cache_peak);
        cache_ceiling = std::max(cache_ceiling, r.cache_ceiling);
        cache_overflow = cache_overflow || r.cache_overflow;
        latency_max = std::max(latency_max, r.latency_max);
        if (latency_hist.empty()) latency_hist.resize(r.latency_hist.size(), 0);
        for (std::size_t i = 0; i < r.latency_hist.size(); ++i) {
            latency_hist[i] += r.latency_hist[i];
        }
        completion_sum += r.completion_time;
    }

    [[nodiscard]] double throughput() const {
        return completion_sum > 0.0 ? static_cast<double>(delivered) / completion_sum : 0.0;
    }

    [[nodiscard]] std::uint64_t latency_quantile(double q) const {
        return telemetry::histogram_quantile(traffic::latency_bounds(), latency_hist,
                                             latency_max, q);
    }
};

struct CellResult {
    Cell cell;
    std::vector<AlgoStats> stats;  ///< one per policy, kPolicies order
};

struct Panel {
    std::string title;
    std::vector<CellResult> cells;
};

/// Runs one cell: `runs` independent topologies, each with its own
/// workload and churn plan, all four policies per topology.  Sharded over
/// `pool`; the result vector is indexed by run so aggregation order is
/// fixed.
CellResult run_cell(const Cell& cell, std::size_t cell_tag, const bench::BenchOptions& opts,
                    std::size_t node_count, double degree, std::size_t runs,
                    std::size_t sessions_per_run, runner::ThreadPool& pool) {
    std::vector<std::vector<RunOutcome>> per_run(runs);
    std::atomic<std::size_t> remaining{runs};
    std::mutex done_mutex;
    std::condition_variable done_cv;

    const std::uint64_t cell_seed =
        opts.seed ^ runner::splitmix64(0x5a70a71049ULL + cell_tag);

    for (std::size_t run = 0; run < runs; ++run) {
        pool.submit([&, run] {
            Rng rng(runner::derive_run_seed(cell_seed, node_count, degree, run));
            UnitDiskParams params;
            params.node_count = node_count;
            params.average_degree = degree;
            const UnitDiskNetwork net = generate_network_checked(params, rng);

            traffic::TrafficConfig tc;
            tc.sessions = sessions_per_run;
            tc.rate = cell.load;
            const traffic::Workload wl =
                traffic::make_workload(tc, net.graph.node_count(), cell_seed, run);

            // The PR 5 churn plan: crashes with recovery plus link flaps
            // across most of the arrival window, sources unprotected.
            faults::FaultSpec spec;
            spec.crash_rate = 0.15;
            spec.crash_window = wl.horizon * 0.8;
            spec.recover_probability = 0.7;
            spec.link_churn_rate = 0.2;
            spec.churn_window = wl.horizon * 0.8;
            spec.protect_source = false;
            const faults::FaultPlan plan =
                faults::make_fault_plan(spec, net.graph, 0, cell_seed, run);

            std::vector<RunOutcome> outcomes(std::size(kPolicies));
            for (std::size_t a = 0; a < std::size(kPolicies); ++a) {
                const auto policy = traffic::make_policy(net.graph, kPolicies[a]);
                traffic::TrafficEngine engine(net.graph, *policy);
                engine.attach_faults(&plan);
                Rng algo_rng = rng.fork();
                const traffic::TrafficResult r = engine.run(wl, algo_rng);

                RunOutcome& o = outcomes[a];
                o.delivered = r.delivered;
                o.degraded = r.degraded;
                o.partitioned = r.partitioned;
                o.unclassified =
                    r.sessions.size() - (r.delivered + r.degraded + r.partitioned);
                o.data_tx = r.data_transmissions;
                o.bytes = r.data_bytes + r.control_bytes;
                o.duplicates = r.duplicates_suppressed;
                o.sv_beacons = r.sv_beacons;
                o.pulls = r.pulls_sent;
                o.repairs = r.repairs_served;
                o.cache_peak = r.cache_peak_bytes;
                o.cache_ceiling = r.cache_ceiling_bytes;
                o.cache_overflow = r.cache_peak_bytes > r.cache_ceiling_bytes;
                o.latency_hist = r.latency_hist;
                o.completion_time = r.completion_time;
                for (const traffic::SessionOutcome& s : r.sessions) {
                    if (s.last_delivery > s.start_time) {
                        o.latency_max = std::max(
                            o.latency_max,
                            static_cast<std::uint64_t>(
                                std::ceil(s.last_delivery - s.start_time)));
                    }
                }
            }
            per_run[run] = std::move(outcomes);
            if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lock(done_mutex);
                done_cv.notify_all();
            }
        });
    }
    {
        std::unique_lock<std::mutex> lock(done_mutex);
        done_cv.wait(lock, [&] { return remaining.load(std::memory_order_acquire) == 0; });
    }

    CellResult result;
    result.cell = cell;
    result.stats.resize(std::size(kPolicies));
    for (std::size_t run = 0; run < runs; ++run) {  // fixed order: jobs-invariant sums
        for (std::size_t a = 0; a < std::size(kPolicies); ++a) {
            result.stats[a].add(per_run[run][a]);
        }
    }
    return result;
}

void print_panel(const Panel& panel, std::size_t runs, std::size_t sessions_per_run) {
    std::cout << panel.title << "  (outcomes D/g/p over " << runs << " runs x "
              << sessions_per_run << " sessions | thrpt = delivered/sim-time)\n";
    std::cout << " load";
    for (const char* name : kPolicies) {
        std::cout << " | " << std::setw(26) << std::left << name;
    }
    std::cout << "\n";
    for (const CellResult& cr : panel.cells) {
        std::cout << std::fixed << std::setprecision(2) << std::setw(5) << cr.cell.load;
        for (const AlgoStats& s : cr.stats) {
            std::ostringstream col;
            col << s.delivered << '/' << s.degraded << '/' << s.partitioned << ' '
                << std::fixed << std::setprecision(2) << s.throughput() << " p95="
                << s.latency_quantile(0.95);
            std::cout << " | " << std::setw(26) << std::left << col.str();
        }
        std::cout << '\n';
    }
    std::cout << '\n';
}

/// adhoc-saturation-v1 sink.  Deliberately excludes wall-clock time and
/// --jobs so the bytes depend only on (seed, sweep, runs).
void write_json(std::ostream& out, const std::vector<Panel>& panels,
                const bench::BenchOptions& opts, std::size_t node_count, double degree,
                std::size_t runs, std::size_t sessions_per_run) {
    out << std::setprecision(17);
    out << "{\n";
    out << "  \"schema\": \"adhoc-saturation-v1\",\n";
    out << "  \"name\": \"bench_saturation\",\n";
    out << "  \"seed\": \"" << opts.seed << "\",\n";
    out << "  \"node_count\": " << node_count << ",\n";
    out << "  \"average_degree\": " << degree << ",\n";
    out << "  \"runs_per_cell\": " << runs << ",\n";
    out << "  \"sessions_per_run\": " << sessions_per_run << ",\n";
    out << "  \"panels\": [\n";
    for (std::size_t p = 0; p < panels.size(); ++p) {
        const Panel& panel = panels[p];
        out << "    {\n";
        out << "      \"title\": \"" << runner::json_escape(panel.title) << "\",\n";
        out << "      \"cells\": [\n";
        for (std::size_t c = 0; c < panel.cells.size(); ++c) {
            const CellResult& cr = panel.cells[c];
            out << "        {\"load\": " << cr.cell.load << ", \"algorithms\": [\n";
            for (std::size_t a = 0; a < std::size(kPolicies); ++a) {
                const AlgoStats& s = cr.stats[a];
                out << "          {\"name\": \"" << kPolicies[a] << "\""
                    << ", \"delivered\": " << s.delivered
                    << ", \"degraded\": " << s.degraded
                    << ", \"partitioned\": " << s.partitioned
                    << ", \"throughput\": " << s.throughput()
                    << ", \"latency_p50\": " << s.latency_quantile(0.50)
                    << ", \"latency_p95\": " << s.latency_quantile(0.95)
                    << ", \"latency_p99\": " << s.latency_quantile(0.99)
                    << ", \"data_tx\": " << s.data_tx << ", \"bytes_per_node\": "
                    << static_cast<double>(s.bytes) /
                           static_cast<double>(runs * node_count)
                    << ", \"duplicates\": " << s.duplicates
                    << ", \"sv_beacons\": " << s.sv_beacons << ", \"pulls\": " << s.pulls
                    << ", \"repairs\": " << s.repairs
                    << ", \"cache_peak_bytes\": " << s.cache_peak
                    << ", \"cache_ceiling_bytes\": " << s.cache_ceiling << "}"
                    << (a + 1 < std::size(kPolicies) ? "," : "") << "\n";
            }
            out << "        ]}" << (c + 1 < panel.cells.size() ? "," : "") << "\n";
        }
        out << "      ]\n";
        out << "    }" << (p + 1 < panels.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
    const bench::BenchOptions opts = bench::parse_options(argc, argv);
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke") smoke = true;
    }

    // Smoke keeps >= 1000 sessions per algorithm cell (2 runs x 550).
    const std::size_t node_count = smoke ? 24 : 60;
    const double degree = 6.0;
    const std::size_t runs = smoke ? 2 : std::max<std::size_t>(opts.max_runs / 40, 4);
    const std::size_t sessions_per_run = smoke ? 550 : 1000;

    const std::vector<double> load_axis =
        smoke ? std::vector<double>{2.0, 8.0} : std::vector<double>{0.5, 1.0, 2.0, 4.0, 8.0};

    runner::ThreadPool pool(opts.jobs);
    std::cout << "bench_saturation: n=" << node_count << " d=" << degree << " runs=" << runs
              << " sessions/run=" << sessions_per_run
              << " (summary-vector recovery on; churn plan applied)\n\n";

    std::vector<Panel> panels;
    std::size_t cell_tag = 0;

    Panel load_panel;
    load_panel.title = "saturation vs offered load (churn crash=0.15 link=0.2)";
    for (const double load : load_axis) {
        load_panel.cells.push_back(run_cell({load}, cell_tag++, opts, node_count, degree,
                                            runs, sessions_per_run, pool));
    }
    print_panel(load_panel, runs, sessions_per_run);
    panels.push_back(std::move(load_panel));

    // Hard failures: a session that escaped classification or a duplicate
    // cache that outgrew its configured ceiling.
    std::size_t violations = 0;
    for (const Panel& panel : panels) {
        for (const CellResult& cr : panel.cells) {
            for (std::size_t a = 0; a < std::size(kPolicies); ++a) {
                const AlgoStats& s = cr.stats[a];
                if (s.unclassified != 0) {
                    std::cerr << "bench_saturation: " << s.unclassified
                              << " unclassified sessions (" << kPolicies[a] << ", load "
                              << cr.cell.load << ")\n";
                    ++violations;
                }
                if (s.cache_overflow) {
                    std::cerr << "bench_saturation: duplicate cache exceeded its ceiling ("
                              << kPolicies[a] << ", load " << cr.cell.load << ")\n";
                    ++violations;
                }
            }
        }
    }

    if (!opts.json_path.empty()) {
        std::ofstream out(opts.json_path);
        if (!out) {
            std::cerr << "bench_saturation: cannot write " << opts.json_path << '\n';
            return 1;
        }
        write_json(out, panels, opts, node_count, degree, runs, sessions_per_run);
    }
    return violations == 0 ? 0 : 1;
}
