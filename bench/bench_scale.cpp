/// \file bench_scale.cpp
/// \brief Million-node scaling campaign for the sharded broadcast engine.
///
/// Sweeps n in {10^3, 10^4, 10^5, 10^6} on a constant-density unit-disk
/// placement (analytic degree-6 range, so generation stays O(n) through the
/// spatial grid) and runs blind flooding, self-pruning, and the paper's
/// generic coverage decision (static and first-receipt self-pruning,
/// scratch-compiled k-hop views) per size through `ScaleEngine`.  Reports
/// events/sec, engine bytes/node and process peak RSS, and — on sizes where
/// it is affordable — the same broadcasts through the reference `Simulator`
/// to anchor a speedup_vs_legacy ratio and cross-check outcomes (generic
/// runs additionally check transmission-digest equality; their cap is
/// n <= 10^3 because `GenericAgent`'s knowledge base is O(n^2) memory).
///
///   bench_scale [--smoke] [--max-n N] [--jobs J] [--seed S]
///               [--json PATH] [--no-timing]
///
/// Sharding happens *inside* each run (the engine's partitioned event
/// wheels), so `--jobs` changes wall clock only: every simulation output —
/// counts, completion times, the canonical order digest — is identical at
/// any jobs value.  `--no-timing` additionally zeroes the wall-clock,
/// events/sec, RSS and speedup fields in the JSON (schema adhoc-scale-v1),
/// making the file *byte-identical* across jobs values; the CI scale-smoke
/// job diffs a --jobs 1 run against a --jobs 8 run exactly that way.
///
/// Exits nonzero when flooding misses component-exact delivery, when any
/// engine policy disagrees with flooding on reached nodes, or when a legacy
/// cross-check (at sizes where it runs) diverges from the engine's outcome.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "algorithms/flooding.hpp"
#include "algorithms/generic.hpp"
#include "graph/unit_disk.hpp"
#include "runner/seed.hpp"
#include "sim/scale_engine.hpp"
#include "stats/rng.hpp"

namespace {

using namespace adhoc;

struct ScaleOptions {
    bool smoke = false;
    bool timing = true;
    std::size_t max_n = 1'000'000;
    std::size_t jobs = 8;
    std::uint64_t seed = 42;
    std::string json_path = "BENCH_scale.json";
};

ScaleOptions parse(int argc, char** argv) {
    ScaleOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            opts.smoke = true;
        } else if (arg == "--no-timing") {
            opts.timing = false;
        } else if (arg == "--max-n" && i + 1 < argc) {
            opts.max_n = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--jobs" && i + 1 < argc) {
            opts.jobs = std::strtoull(argv[++i], nullptr, 10);
            if (opts.jobs == 0) opts.jobs = 1;
        } else if (arg == "--seed" && i + 1 < argc) {
            opts.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--json" && i + 1 < argc) {
            opts.json_path = argv[++i];
        } else if (arg == "--help") {
            std::cout << "options: --smoke | --max-n N | --jobs J | --seed S | "
                         "--json PATH | --no-timing\n";
            std::exit(0);
        }
    }
    return opts;
}

/// Peak resident set of this process in bytes (Linux VmHWM), 0 elsewhere.
std::size_t peak_rss_bytes() {
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) == 0) {
            return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024;
        }
    }
    return 0;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct Row {
    std::size_t nodes = 0;
    std::size_t edges = 0;
    const char* policy = "";
    ScaleResult result;
    double engine_bytes_per_node = 0.0;
    // Timing block — zeroed under --no-timing so the JSON is byte-identical
    // across --jobs values.
    double wall_seconds = 0.0;
    double events_per_sec = 0.0;
    std::size_t rss_bytes = 0;
    double legacy_events_per_sec = 0.0;  ///< 0 = legacy not run at this size
    double speedup_vs_legacy = 0.0;
};

void write_json(std::ostream& out, const ScaleOptions& opts, const std::vector<Row>& rows) {
    out << std::setprecision(17);
    out << "{\n";
    out << "  \"schema\": \"adhoc-scale-v1\",\n";
    out << "  \"name\": \"bench_scale\",\n";
    out << "  \"seed\": \"" << opts.seed << "\",\n";
    out << "  \"wheels\": 8,\n";
    out << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        char digest[32];
        std::snprintf(digest, sizeof digest, "%016llx",
                      static_cast<unsigned long long>(r.result.order_digest));
        out << "    {\"nodes\": " << r.nodes << ", \"edges\": " << r.edges
            << ", \"policy\": \"" << r.policy << "\""
            << ", \"delivered_events\": " << r.result.delivered_events
            << ", \"forward_count\": " << r.result.forward_count
            << ", \"received_count\": " << r.result.received_count
            << ", \"full_delivery\": " << (r.result.full_delivery ? "true" : "false")
            << ", \"windows\": " << r.result.windows
            << ", \"peak_queue_events\": " << r.result.peak_queue_events
            << ", \"completion_time\": " << r.result.completion_time
            << ", \"order_digest\": \"" << digest << "\""
            << ", \"engine_bytes_per_node\": " << r.engine_bytes_per_node
            << ", \"wall_seconds\": " << r.wall_seconds
            << ", \"events_per_sec\": " << r.events_per_sec
            << ", \"peak_rss_bytes\": " << r.rss_bytes
            << ", \"legacy_events_per_sec\": " << r.legacy_events_per_sec
            << ", \"speedup_vs_legacy\": " << r.speedup_vs_legacy << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
    const ScaleOptions opts = parse(argc, argv);
    std::vector<std::size_t> sizes{1'000, 10'000, 100'000, 1'000'000};
    if (opts.smoke) sizes = {1'000, 10'000};
    std::erase_if(sizes, [&](std::size_t n) { return n > opts.max_n; });

    // Legacy Simulator cross-check/anchor only where it is cheap enough;
    // at 10^5+ the serial machine is exactly the bottleneck this bench
    // exists to bypass.
    constexpr std::size_t kLegacyCap = 10'000;

    std::cout << "bench_scale: sizes";
    for (const std::size_t n : sizes) std::cout << ' ' << n;
    std::cout << "  jobs=" << opts.jobs << " wheels=8"
              << (opts.timing ? "" : "  (timing suppressed)") << "\n\n";

    std::vector<Row> rows;
    std::size_t violations = 0;

    for (const std::size_t n : sizes) {
        // Constant-density placement: analytic degree-6 range keeps graph
        // construction O(n) (range_for_link_count would be O(n^2) pairs).
        Rng rng(runner::splitmix64(opts.seed ^ (0x5ca1eULL * n)));
        const double area = 1000.0;
        std::vector<Point2D> positions(n);
        for (Point2D& p : positions) {
            p.x = rng.uniform(0.0, area);
            p.y = rng.uniform(0.0, area);
        }
        const double range =
            std::sqrt(6.0 * area * area / (3.14159265358979323846 * static_cast<double>(n)));
        const Graph graph = unit_disk_graph(positions, range);
        const NodeId source = 0;

        ScaleConfig cfg;
        cfg.jobs = opts.jobs;
        ScaleEngine engine(graph, cfg);

        ScaleConfig pruned_cfg = cfg;
        pruned_cfg.policy = ScalePolicy::kSelfPrune;
        ScaleEngine pruned(graph, pruned_cfg);

        // Generic coverage at scale: scratch views keep per-wheel memory
        // O(k-hop ball) regardless of n (cached views are O(n) each).
        ScaleConfig static_cfg = cfg;
        static_cfg.policy = ScalePolicy::kGenericCoverage;
        static_cfg.generic = generic_static_config(2);
        static_cfg.view_mode = ScaleViewMode::kScratch;
        ScaleEngine generic_static(graph, static_cfg);

        ScaleConfig fr_cfg = static_cfg;
        fr_cfg.generic = generic_fr_config(2);
        ScaleEngine generic_fr(graph, fr_cfg);

        // Best-of-reps timing (bench_micro's discipline): a warm run pays
        // the cold allocations, then the minimum over repetitions discards
        // scheduler noise.  10^6 nodes keeps a single timed run.
        const std::size_t reps = opts.timing ? (n <= 100'000 ? 3 : 1) : 1;
        const auto timed_run = [&](ScaleEngine& e, ScaleResult& out) {
            double wall = std::numeric_limits<double>::infinity();
            (void)e.run(source);  // warm-up
            for (std::size_t r = 0; r < reps; ++r) {
                const auto t0 = std::chrono::steady_clock::now();
                out = e.run(source);
                wall = std::min(wall, seconds_since(t0));
            }
            return wall;
        };
        ScaleResult flood;
        ScaleResult prune;
        ScaleResult gstatic;
        ScaleResult gfr;
        const double flood_wall = timed_run(engine, flood);
        const double prune_wall = timed_run(pruned, prune);
        const double gstatic_wall = timed_run(generic_static, gstatic);
        const double gfr_wall = timed_run(generic_fr, gfr);

        double legacy_eps = 0.0;
        if (n <= kLegacyCap) {
            FloodingAlgorithm legacy;
            BroadcastResult ref;
            double legacy_wall = std::numeric_limits<double>::infinity();
            for (std::size_t r = 0; r < 3; ++r) {
                Rng legacy_rng(opts.seed);
                const auto t2 = std::chrono::steady_clock::now();
                ref = legacy.broadcast(graph, source, legacy_rng);
                legacy_wall = std::min(legacy_wall, seconds_since(t2));
            }
            if (ref.forward_count != flood.forward_count ||
                ref.received_count != flood.received_count) {
                std::cerr << "bench_scale: engine flooding diverged from Simulator at n=" << n
                          << " (forwards " << flood.forward_count << " vs " << ref.forward_count
                          << ", received " << flood.received_count << " vs "
                          << ref.received_count << ")\n";
                ++violations;
            }
            if (legacy_wall > 0.0) {
                legacy_eps = static_cast<double>(flood.delivered_events) / legacy_wall;
            }
        }
        // Generic cross-check caps at 10^3: `GenericAgent` keeps a
        // per-node knowledge base, O(n^2) memory on the serial machine.
        constexpr std::size_t kGenericLegacyCap = 1'000;
        if (n <= kGenericLegacyCap) {
            const auto check_generic = [&](const char* policy, const GenericConfig& gc,
                                           const ScaleResult& got) {
                Rng legacy_rng(opts.seed);
                const BroadcastResult ref = GenericBroadcast(gc).broadcast_traced(
                    graph, source, legacy_rng, MediumConfig{});
                const std::uint64_t want_digest = reference_transmission_digest(ref.trace);
                if (ref.forward_count != got.forward_count ||
                    ref.received_count != got.received_count ||
                    want_digest != got.order_digest) {
                    std::cerr << "bench_scale: engine " << policy
                              << " diverged from Simulator at n=" << n << " (forwards "
                              << got.forward_count << " vs " << ref.forward_count
                              << ", received " << got.received_count << " vs "
                              << ref.received_count << ", digest "
                              << (want_digest == got.order_digest ? "equal" : "DIFFERS")
                              << ")\n";
                    ++violations;
                }
            };
            check_generic("generic_static", static_cfg.generic, gstatic);
            check_generic("generic_fr", fr_cfg.generic, gfr);
        }
        // Constant-density placements are not guaranteed connected (an
        // expected ~e^-6 fraction of nodes is isolated), so the coverage
        // invariant is component-exact delivery, not full delivery.
        std::size_t component = 1;
        {
            std::vector<char> seen(n, 0);
            std::vector<NodeId> stack{source};
            seen[source] = 1;
            while (!stack.empty()) {
                const NodeId v = stack.back();
                stack.pop_back();
                for (NodeId w : graph.neighbors(v)) {
                    if (!seen[w]) {
                        seen[w] = 1;
                        ++component;
                        stack.push_back(w);
                    }
                }
            }
        }
        if (flood.received_count != component) {
            std::cerr << "bench_scale: flooding reached " << flood.received_count
                      << " nodes but the source component holds " << component << " at n=" << n
                      << "\n";
            ++violations;
        }
        const auto check_delivery = [&](const char* policy, const ScaleResult& res) {
            if (res.received_count != flood.received_count) {
                std::cerr << "bench_scale: " << policy << " reached " << res.received_count
                          << " nodes vs flooding's " << flood.received_count << " at n=" << n
                          << "\n";
                ++violations;
            }
        };
        check_delivery("self_prune", prune);
        check_delivery("generic_static", gstatic);
        check_delivery("generic_fr", gfr);

        const std::size_t rss = peak_rss_bytes();
        const auto make_row = [&](const char* policy, const ScaleResult& res, double wall,
                                  double engine_bytes) {
            Row row;
            row.nodes = n;
            row.edges = graph.edge_count();
            row.policy = policy;
            row.result = res;
            row.engine_bytes_per_node = engine_bytes / static_cast<double>(n);
            if (opts.timing) {
                row.wall_seconds = wall;
                row.events_per_sec =
                    wall > 0.0 ? static_cast<double>(res.delivered_events) / wall : 0.0;
                row.rss_bytes = rss;
                if (std::strcmp(policy, "flood") == 0 && legacy_eps > 0.0) {
                    row.legacy_events_per_sec = legacy_eps;
                    row.speedup_vs_legacy = row.events_per_sec / legacy_eps;
                }
            }
            return row;
        };
        rows.push_back(make_row("flood", flood, flood_wall,
                                static_cast<double>(engine.state_bytes())));
        rows.push_back(make_row("self_prune", prune, prune_wall,
                                static_cast<double>(pruned.state_bytes())));
        rows.push_back(make_row("generic_static", gstatic, gstatic_wall,
                                static_cast<double>(generic_static.state_bytes())));
        rows.push_back(make_row("generic_fr", gfr, gfr_wall,
                                static_cast<double>(generic_fr.state_bytes())));

        const Row& fr = rows[rows.size() - 4];
        std::cout << "n=" << std::setw(8) << n << "  edges=" << graph.edge_count()
                  << "  flood events=" << flood.delivered_events << " windows="
                  << flood.windows;
        if (opts.timing) {
            std::cout << "  " << std::fixed << std::setprecision(0) << fr.events_per_sec
                      << " ev/s";
            if (fr.speedup_vs_legacy > 0.0) {
                std::cout << "  speedup_vs_legacy=" << std::setprecision(2)
                          << fr.speedup_vs_legacy << "x";
            }
            std::cout << std::defaultfloat;
        }
        std::cout << "  forwards prune=" << prune.forward_count
                  << " gstatic=" << gstatic.forward_count << " gfr=" << gfr.forward_count
                  << " /" << n << "\n";
    }

    if (!opts.json_path.empty()) {
        std::ofstream out(opts.json_path);
        if (!out) {
            std::cerr << "bench_scale: cannot write " << opts.json_path << '\n';
            return 1;
        }
        write_json(out, opts, rows);
    }
    return violations == 0 ? 0 : 1;
}
