/// \file bench_scale.cpp
/// \brief Million-node scaling campaign for the sharded broadcast engine.
///
/// Sweeps n in {10^3, 10^4, 10^5, 10^6} on a constant-density unit-disk
/// placement (analytic degree-6 range, so generation stays O(n) through the
/// spatial grid) and runs blind flooding, self-pruning, and the paper's
/// generic coverage decision (static and first-receipt self-pruning,
/// scratch-compiled k-hop views) per size through `ScaleEngine`.  Reports
/// events/sec, engine bytes/node and process peak RSS, and — on sizes where
/// it is affordable — the same broadcasts through the reference `Simulator`
/// to anchor a speedup_vs_legacy ratio and cross-check outcomes (generic
/// runs additionally check transmission-digest equality; their cap is
/// n <= 10^3 because `GenericAgent`'s knowledge base is O(n^2) memory).
///
///   bench_scale [--smoke] [--resilience] [--max-n N] [--jobs J] [--seed S]
///               [--json PATH] [--no-timing]
///
/// `--resilience` switches to the fault/recovery panel: the same
/// placements swept over crash {0, 5%, 15%} x link-churn {off, on} fault
/// cells with the windowed NACK recovery layer attached, classified per
/// run via `faults::classify_outcome` (schema adhoc-scale-resilience-v1,
/// default sink BENCH_scale_resilience.json).
///
/// Sharding happens *inside* each run (the engine's partitioned event
/// wheels), so `--jobs` changes wall clock only: every simulation output —
/// counts, completion times, the canonical order digest — is identical at
/// any jobs value.  `--no-timing` additionally zeroes the wall-clock,
/// events/sec, RSS and speedup fields in the JSON (schema adhoc-scale-v1),
/// making the file *byte-identical* across jobs values; the CI scale-smoke
/// job diffs a --jobs 1 run against a --jobs 8 run exactly that way.
///
/// Exits nonzero when flooding misses component-exact delivery, when any
/// engine policy disagrees with flooding on reached nodes, or when a legacy
/// cross-check (at sizes where it runs) diverges from the engine's outcome.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "algorithms/flooding.hpp"
#include "algorithms/generic.hpp"
#include "bench_common.hpp"
#include "faults/fault_plan.hpp"
#include "faults/outcome.hpp"
#include "faults/recovery.hpp"
#include "graph/unit_disk.hpp"
#include "runner/seed.hpp"
#include "sim/scale_engine.hpp"
#include "stats/rng.hpp"

namespace {

using namespace adhoc;

struct ScaleOptions {
    bool smoke = false;
    bool timing = true;
    bool resilience = false;  ///< run the fault/recovery panel instead
    std::size_t max_n = 1'000'000;
    std::size_t jobs = 8;
    std::uint64_t seed = 42;
    std::string json_path;  ///< empty = mode-dependent default
};

ScaleOptions parse(int argc, char** argv) {
    ScaleOptions opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            opts.smoke = true;
        } else if (arg == "--no-timing") {
            opts.timing = false;
        } else if (arg == "--resilience") {
            opts.resilience = true;
        } else if (arg == "--max-n" && i + 1 < argc) {
            opts.max_n = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--jobs" && i + 1 < argc) {
            opts.jobs = std::strtoull(argv[++i], nullptr, 10);
            if (opts.jobs == 0) opts.jobs = 1;
        } else if (arg == "--seed" && i + 1 < argc) {
            opts.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--json" && i + 1 < argc) {
            opts.json_path = argv[++i];
        } else if (arg == "--help") {
            std::cout << "options: --smoke | --resilience | --max-n N | --jobs J | "
                         "--seed S | --json PATH | --no-timing\n";
            std::exit(0);
        }
    }
    if (opts.json_path.empty()) {
        opts.json_path = opts.resilience ? "BENCH_scale_resilience.json" : "BENCH_scale.json";
    }
    return opts;
}

/// Peak resident set of this process in bytes (Linux VmHWM), 0 elsewhere.
std::size_t peak_rss_bytes() {
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmHWM:", 0) == 0) {
            return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024;
        }
    }
    return 0;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Constant-density placement shared by both panels: analytic degree-6
/// range keeps graph construction O(n) (range_for_link_count would be
/// O(n^2) pairs).  Pure function of (seed, n).
Graph make_placement(const ScaleOptions& opts, std::size_t n) {
    Rng rng(runner::splitmix64(opts.seed ^ (0x5ca1eULL * n)));
    const double area = 1000.0;
    std::vector<Point2D> positions(n);
    for (Point2D& p : positions) {
        p.x = rng.uniform(0.0, area);
        p.y = rng.uniform(0.0, area);
    }
    const double range =
        std::sqrt(6.0 * area * area / (3.14159265358979323846 * static_cast<double>(n)));
    return unit_disk_graph(positions, range);
}

struct Row {
    std::size_t nodes = 0;
    std::size_t edges = 0;
    const char* policy = "";
    ScaleResult result;
    double engine_bytes_per_node = 0.0;
    // Timing block — zeroed under --no-timing so the JSON is byte-identical
    // across --jobs values.
    double wall_seconds = 0.0;
    double events_per_sec = 0.0;
    std::size_t rss_bytes = 0;
    double legacy_events_per_sec = 0.0;  ///< 0 = legacy not run at this size
    double speedup_vs_legacy = 0.0;
};

void write_json(std::ostream& out, const ScaleOptions& opts, const std::vector<Row>& rows) {
    out << std::setprecision(17);
    out << "{\n";
    out << "  \"schema\": \"adhoc-scale-v1\",\n";
    out << "  \"name\": \"bench_scale\",\n";
    out << "  \"seed\": \"" << opts.seed << "\",\n";
    out << "  \"wheels\": 8,\n";
    out << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        char digest[32];
        std::snprintf(digest, sizeof digest, "%016llx",
                      static_cast<unsigned long long>(r.result.order_digest));
        out << "    {\"nodes\": " << r.nodes << ", \"edges\": " << r.edges
            << ", \"policy\": \"" << r.policy << "\""
            << ", \"delivered_events\": " << r.result.delivered_events
            << ", \"forward_count\": " << r.result.forward_count
            << ", \"received_count\": " << r.result.received_count
            << ", \"full_delivery\": " << (r.result.full_delivery ? "true" : "false")
            << ", \"windows\": " << r.result.windows
            << ", \"peak_queue_events\": " << r.result.peak_queue_events
            << ", \"completion_time\": " << r.result.completion_time
            << ", \"order_digest\": \"" << digest << "\""
            << ", \"engine_bytes_per_node\": " << r.engine_bytes_per_node
            << ", \"wall_seconds\": " << r.wall_seconds
            << ", \"events_per_sec\": " << r.events_per_sec
            << ", \"peak_rss_bytes\": " << r.rss_bytes
            << ", \"legacy_events_per_sec\": " << r.legacy_events_per_sec
            << ", \"speedup_vs_legacy\": " << r.speedup_vs_legacy << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
}

/// One (size, policy, fault cell) aggregate of the resilience panel.
/// Everything except the timing block is a pure function of the seed, so
/// the JSON is byte-identical at any --jobs value under --no-timing.
struct ResilienceRow {
    std::size_t nodes = 0;
    const char* policy = "";
    double crash_rate = 0.0;
    bool churn = false;
    std::size_t runs = 0;
    double delivery_ratio = 0.0;  ///< mean over runs
    bench::OutcomeMix mix;
    std::size_t received_sum = 0;
    std::size_t forward_sum = 0;
    std::size_t retransmits = 0;
    std::size_t controls = 0;
    std::size_t fault_suppressed = 0;
    std::size_t delivered_events = 0;
    std::size_t windows = 0;
    double completion_sum = 0.0;
    /// FNV-style fold of the per-run canonical order digests.
    std::uint64_t order_digest = 0xcbf29ce484222325ULL;
    double wall_seconds = 0.0;
    double events_per_sec = 0.0;
};

void write_resilience_json(std::ostream& out, const ScaleOptions& opts,
                           const std::vector<ResilienceRow>& rows) {
    out << std::setprecision(17);
    out << "{\n";
    out << "  \"schema\": \"adhoc-scale-resilience-v1\",\n";
    out << "  \"name\": \"bench_scale_resilience\",\n";
    out << "  \"seed\": \"" << opts.seed << "\",\n";
    out << "  \"wheels\": 8,\n";
    out << "  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ResilienceRow& r = rows[i];
        char digest[32];
        std::snprintf(digest, sizeof digest, "%016llx",
                      static_cast<unsigned long long>(r.order_digest));
        out << "    {\"nodes\": " << r.nodes << ", \"policy\": \"" << r.policy << "\""
            << ", \"crash_rate\": " << r.crash_rate
            << ", \"churn\": " << (r.churn ? "true" : "false") << ", \"runs\": " << r.runs
            << ", \"delivery_ratio\": " << r.delivery_ratio
            << ", \"delivered\": " << r.mix.delivered << ", \"degraded\": " << r.mix.degraded
            << ", \"partitioned\": " << r.mix.partitioned
            << ", \"received_sum\": " << r.received_sum
            << ", \"forward_sum\": " << r.forward_sum
            << ", \"retransmits\": " << r.retransmits << ", \"control_count\": " << r.controls
            << ", \"fault_suppressed\": " << r.fault_suppressed
            << ", \"delivered_events\": " << r.delivered_events
            << ", \"windows\": " << r.windows << ", \"completion_sum\": " << r.completion_sum
            << ", \"order_digest\": \"" << digest << "\""
            << ", \"wall_seconds\": " << r.wall_seconds
            << ", \"events_per_sec\": " << r.events_per_sec << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
}

/// The --resilience panel: crash/churn fault cells on the same placements
/// as the scaling panel, run through all four engine policies with the
/// windowed NACK recovery layer attached.  Every fault plan and every
/// simulation output is a pure function of the seed; `--jobs` (and the
/// engine's wheel count) change wall clock only.
int run_resilience(const ScaleOptions& opts) {
    std::vector<std::size_t> sizes{1'000, 10'000, 100'000, 1'000'000};
    if (opts.smoke) sizes = {1'000, 10'000};
    std::erase_if(sizes, [&](std::size_t n) { return n > opts.max_n; });

    struct Cell {
        double crash_rate;
        bool churn;
    };
    // crash {0, 5%, 15%} x churn {off, on}; the fault-free cell anchors
    // the delivery floor the CI gate checks against.
    const std::vector<Cell> cells{{0.0, false}, {0.0, true},  {0.05, false},
                                  {0.05, true}, {0.15, false}, {0.15, true}};

    // Window-aligned recovery: the engine requires beacon/NACK timers to
    // be integer multiples of its delivery delay (1.0), so the serial
    // simulator's 0.5 default is lifted to 1.0 (docs/SCALING.md).
    faults::RecoveryConfig recovery;
    recovery.enabled = true;
    recovery.nack_delay = 1.0;

    std::cout << "bench_scale --resilience: sizes";
    for (const std::size_t n : sizes) std::cout << ' ' << n;
    std::cout << "  jobs=" << opts.jobs << " wheels=8  recovery=nack@1.0"
              << (opts.timing ? "" : "  (timing suppressed)") << "\n\n";

    std::vector<ResilienceRow> rows;
    std::size_t violations = 0;

    for (const std::size_t n : sizes) {
        const Graph graph = make_placement(opts, n);
        const NodeId source = 0;
        // Repetitions vary the fault plan (run index), not the placement;
        // a single run keeps the 10^5/10^6 cells affordable.
        const std::size_t runs = n <= 10'000 ? 3 : 1;

        ScaleConfig cfg;
        cfg.jobs = opts.jobs;
        ScaleEngine flood_engine(graph, cfg);
        ScaleConfig pruned_cfg = cfg;
        pruned_cfg.policy = ScalePolicy::kSelfPrune;
        ScaleEngine pruned(graph, pruned_cfg);
        ScaleConfig static_cfg = cfg;
        static_cfg.policy = ScalePolicy::kGenericCoverage;
        static_cfg.generic = generic_static_config(2);
        static_cfg.view_mode = ScaleViewMode::kScratch;
        ScaleEngine generic_static(graph, static_cfg);
        ScaleConfig fr_cfg = static_cfg;
        fr_cfg.generic = generic_fr_config(2);
        ScaleEngine generic_fr(graph, fr_cfg);

        struct Policy {
            const char* name;
            ScaleEngine* engine;
        };
        const Policy policies[] = {{"flood", &flood_engine},
                                   {"self_prune", &pruned},
                                   {"generic_static", &generic_static},
                                   {"generic_fr", &generic_fr}};
        for (const Policy& p : policies) p.engine->set_recovery(recovery);

        for (const Cell& cell : cells) {
            // One plan per run, shared across policies so every policy row
            // in a cell faces the identical fault schedule.
            const std::uint64_t cell_tag =
                static_cast<std::uint64_t>(cell.crash_rate * 1000.0) * 2 +
                (cell.churn ? 1 : 0);
            const std::uint64_t cell_seed =
                runner::splitmix64(opts.seed ^ (0xfa170a115ULL + cell_tag * 0x9e3779b97f4a7c15ULL));
            faults::FaultSpec spec;
            spec.crash_rate = cell.crash_rate;
            spec.crash_window = 6.0;
            if (cell.churn) {
                spec.link_churn_rate = 0.1;
                spec.churn_window = 8.0;
            }
            std::vector<faults::FaultPlan> plans;
            plans.reserve(runs);
            for (std::size_t run = 0; run < runs; ++run) {
                plans.push_back(faults::make_fault_plan(spec, graph, source, cell_seed, run));
            }

            std::cout << "n=" << std::setw(8) << n << "  crash=" << cell.crash_rate
                      << "  churn=" << (cell.churn ? "on " : "off") << "  [run0: "
                      << bench::fault_plan_summary(plans[0]) << "]\n";

            for (const Policy& p : policies) {
                ResilienceRow row;
                row.nodes = n;
                row.policy = p.name;
                row.crash_rate = cell.crash_rate;
                row.churn = cell.churn;
                row.runs = runs;
                const auto t0 = std::chrono::steady_clock::now();
                for (std::size_t run = 0; run < runs; ++run) {
                    p.engine->attach_faults(&plans[run]);
                    const ScaleResult res = p.engine->run(source);
                    const faults::ResilienceSummary sum = faults::classify_outcome(
                        graph, source, p.engine->received_mask(), plans[run]);
                    row.delivery_ratio += sum.delivery_ratio;
                    row.mix.add(sum.outcome);
                    row.received_sum += res.received_count;
                    row.forward_sum += res.forward_count;
                    row.retransmits += res.retransmit_count;
                    row.controls += res.control_count;
                    row.fault_suppressed += res.fault_suppressed;
                    row.delivered_events += res.delivered_events;
                    row.windows += res.windows;
                    row.completion_sum += res.completion_time;
                    row.order_digest = (row.order_digest ^ res.order_digest) * 0x100000001b3ULL;
                }
                p.engine->attach_faults(nullptr);
                const double wall = seconds_since(t0);
                row.delivery_ratio /= static_cast<double>(runs);
                if (opts.timing) {
                    row.wall_seconds = wall;
                    row.events_per_sec =
                        wall > 0.0 ? static_cast<double>(row.delivered_events) / wall : 0.0;
                }
                // Fault-free cells must deliver the full source component:
                // any degraded run there is a real bug, not bad luck
                // (isolated nodes classify as partitioned, which is fine).
                if (cell.crash_rate == 0.0 && !cell.churn &&
                    (row.mix.degraded != 0 || row.delivery_ratio < 1.0)) {
                    std::cerr << "bench_scale: " << p.name
                              << " dropped reachable nodes in the fault-free cell at n=" << n
                              << " (delivery_ratio=" << row.delivery_ratio << ", "
                              << row.mix.degraded << " degraded)\n";
                    ++violations;
                }
                std::cout << "    " << std::setw(14) << std::left << p.name << std::right
                          << "  delivery=" << std::fixed << std::setprecision(4)
                          << row.delivery_ratio << std::defaultfloat << "  D/g/p="
                          << row.mix.split() << "  retx=" << row.retransmits
                          << "  ctrl=" << row.controls << "  suppressed="
                          << row.fault_suppressed << "\n";
                rows.push_back(row);
            }
        }
        std::cout << "\n";
    }

    if (!opts.json_path.empty()) {
        std::ofstream out(opts.json_path);
        if (!out) {
            std::cerr << "bench_scale: cannot write " << opts.json_path << '\n';
            return 1;
        }
        write_resilience_json(out, opts, rows);
    }
    return violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    const ScaleOptions opts = parse(argc, argv);
    if (opts.resilience) return run_resilience(opts);
    std::vector<std::size_t> sizes{1'000, 10'000, 100'000, 1'000'000};
    if (opts.smoke) sizes = {1'000, 10'000};
    std::erase_if(sizes, [&](std::size_t n) { return n > opts.max_n; });

    // Legacy Simulator cross-check/anchor only where it is cheap enough;
    // at 10^5+ the serial machine is exactly the bottleneck this bench
    // exists to bypass.
    constexpr std::size_t kLegacyCap = 10'000;

    std::cout << "bench_scale: sizes";
    for (const std::size_t n : sizes) std::cout << ' ' << n;
    std::cout << "  jobs=" << opts.jobs << " wheels=8"
              << (opts.timing ? "" : "  (timing suppressed)") << "\n\n";

    std::vector<Row> rows;
    std::size_t violations = 0;

    for (const std::size_t n : sizes) {
        const Graph graph = make_placement(opts, n);
        const NodeId source = 0;

        ScaleConfig cfg;
        cfg.jobs = opts.jobs;
        ScaleEngine engine(graph, cfg);

        ScaleConfig pruned_cfg = cfg;
        pruned_cfg.policy = ScalePolicy::kSelfPrune;
        ScaleEngine pruned(graph, pruned_cfg);

        // Generic coverage at scale: scratch views keep per-wheel memory
        // O(k-hop ball) regardless of n (cached views are O(n) each).
        ScaleConfig static_cfg = cfg;
        static_cfg.policy = ScalePolicy::kGenericCoverage;
        static_cfg.generic = generic_static_config(2);
        static_cfg.view_mode = ScaleViewMode::kScratch;
        ScaleEngine generic_static(graph, static_cfg);

        ScaleConfig fr_cfg = static_cfg;
        fr_cfg.generic = generic_fr_config(2);
        ScaleEngine generic_fr(graph, fr_cfg);

        // Best-of-reps timing (bench_micro's discipline): a warm run pays
        // the cold allocations, then the minimum over repetitions discards
        // scheduler noise.  10^6 nodes keeps a single timed run.
        const std::size_t reps = opts.timing ? (n <= 100'000 ? 3 : 1) : 1;
        const auto timed_run = [&](ScaleEngine& e, ScaleResult& out) {
            double wall = std::numeric_limits<double>::infinity();
            (void)e.run(source);  // warm-up
            for (std::size_t r = 0; r < reps; ++r) {
                const auto t0 = std::chrono::steady_clock::now();
                out = e.run(source);
                wall = std::min(wall, seconds_since(t0));
            }
            return wall;
        };
        ScaleResult flood;
        ScaleResult prune;
        ScaleResult gstatic;
        ScaleResult gfr;
        const double flood_wall = timed_run(engine, flood);
        const double prune_wall = timed_run(pruned, prune);
        const double gstatic_wall = timed_run(generic_static, gstatic);
        const double gfr_wall = timed_run(generic_fr, gfr);

        double legacy_eps = 0.0;
        if (n <= kLegacyCap) {
            FloodingAlgorithm legacy;
            BroadcastResult ref;
            double legacy_wall = std::numeric_limits<double>::infinity();
            for (std::size_t r = 0; r < 3; ++r) {
                Rng legacy_rng(opts.seed);
                const auto t2 = std::chrono::steady_clock::now();
                ref = legacy.broadcast(graph, source, legacy_rng);
                legacy_wall = std::min(legacy_wall, seconds_since(t2));
            }
            if (ref.forward_count != flood.forward_count ||
                ref.received_count != flood.received_count) {
                std::cerr << "bench_scale: engine flooding diverged from Simulator at n=" << n
                          << " (forwards " << flood.forward_count << " vs " << ref.forward_count
                          << ", received " << flood.received_count << " vs "
                          << ref.received_count << ")\n";
                ++violations;
            }
            if (legacy_wall > 0.0) {
                legacy_eps = static_cast<double>(flood.delivered_events) / legacy_wall;
            }
        }
        // Generic cross-check caps at 10^3: `GenericAgent` keeps a
        // per-node knowledge base, O(n^2) memory on the serial machine.
        constexpr std::size_t kGenericLegacyCap = 1'000;
        if (n <= kGenericLegacyCap) {
            const auto check_generic = [&](const char* policy, const GenericConfig& gc,
                                           const ScaleResult& got) {
                Rng legacy_rng(opts.seed);
                const BroadcastResult ref = GenericBroadcast(gc).broadcast_traced(
                    graph, source, legacy_rng, MediumConfig{});
                const std::uint64_t want_digest = reference_transmission_digest(ref.trace);
                if (ref.forward_count != got.forward_count ||
                    ref.received_count != got.received_count ||
                    want_digest != got.order_digest) {
                    std::cerr << "bench_scale: engine " << policy
                              << " diverged from Simulator at n=" << n << " (forwards "
                              << got.forward_count << " vs " << ref.forward_count
                              << ", received " << got.received_count << " vs "
                              << ref.received_count << ", digest "
                              << (want_digest == got.order_digest ? "equal" : "DIFFERS")
                              << ")\n";
                    ++violations;
                }
            };
            check_generic("generic_static", static_cfg.generic, gstatic);
            check_generic("generic_fr", fr_cfg.generic, gfr);
        }
        // Constant-density placements are not guaranteed connected (an
        // expected ~e^-6 fraction of nodes is isolated), so the coverage
        // invariant is component-exact delivery, not full delivery.
        std::size_t component = 1;
        {
            std::vector<char> seen(n, 0);
            std::vector<NodeId> stack{source};
            seen[source] = 1;
            while (!stack.empty()) {
                const NodeId v = stack.back();
                stack.pop_back();
                for (NodeId w : graph.neighbors(v)) {
                    if (!seen[w]) {
                        seen[w] = 1;
                        ++component;
                        stack.push_back(w);
                    }
                }
            }
        }
        if (flood.received_count != component) {
            std::cerr << "bench_scale: flooding reached " << flood.received_count
                      << " nodes but the source component holds " << component << " at n=" << n
                      << "\n";
            ++violations;
        }
        const auto check_delivery = [&](const char* policy, const ScaleResult& res) {
            if (res.received_count != flood.received_count) {
                std::cerr << "bench_scale: " << policy << " reached " << res.received_count
                          << " nodes vs flooding's " << flood.received_count << " at n=" << n
                          << "\n";
                ++violations;
            }
        };
        check_delivery("self_prune", prune);
        check_delivery("generic_static", gstatic);
        check_delivery("generic_fr", gfr);

        const std::size_t rss = peak_rss_bytes();
        const auto make_row = [&](const char* policy, const ScaleResult& res, double wall,
                                  double engine_bytes) {
            Row row;
            row.nodes = n;
            row.edges = graph.edge_count();
            row.policy = policy;
            row.result = res;
            row.engine_bytes_per_node = engine_bytes / static_cast<double>(n);
            if (opts.timing) {
                row.wall_seconds = wall;
                row.events_per_sec =
                    wall > 0.0 ? static_cast<double>(res.delivered_events) / wall : 0.0;
                row.rss_bytes = rss;
                if (std::strcmp(policy, "flood") == 0 && legacy_eps > 0.0) {
                    row.legacy_events_per_sec = legacy_eps;
                    row.speedup_vs_legacy = row.events_per_sec / legacy_eps;
                }
            }
            return row;
        };
        rows.push_back(make_row("flood", flood, flood_wall,
                                static_cast<double>(engine.state_bytes())));
        rows.push_back(make_row("self_prune", prune, prune_wall,
                                static_cast<double>(pruned.state_bytes())));
        rows.push_back(make_row("generic_static", gstatic, gstatic_wall,
                                static_cast<double>(generic_static.state_bytes())));
        rows.push_back(make_row("generic_fr", gfr, gfr_wall,
                                static_cast<double>(generic_fr.state_bytes())));

        const Row& fr = rows[rows.size() - 4];
        std::cout << "n=" << std::setw(8) << n << "  edges=" << graph.edge_count()
                  << "  flood events=" << flood.delivered_events << " windows="
                  << flood.windows;
        if (opts.timing) {
            std::cout << "  " << std::fixed << std::setprecision(0) << fr.events_per_sec
                      << " ev/s";
            if (fr.speedup_vs_legacy > 0.0) {
                std::cout << "  speedup_vs_legacy=" << std::setprecision(2)
                          << fr.speedup_vs_legacy << "x";
            }
            std::cout << std::defaultfloat;
        }
        std::cout << "  forwards prune=" << prune.forward_count
                  << " gstatic=" << gstatic.forward_count << " gfr=" << gfr.forward_count
                  << " /" << n << "\n";
    }

    if (!opts.json_path.empty()) {
        std::ofstream out(opts.json_path);
        if (!out) {
            std::cerr << "bench_scale: cannot write " << opts.json_path << '\n';
            return 1;
        }
        write_json(out, opts, rows);
    }
    return violations == 0 ? 0 : 1;
}
