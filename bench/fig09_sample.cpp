// Figure 9: one sample 100-node ad hoc network (d≈6) with the forward
// node sets of the static, first-receipt (FR) and first-receipt-with-
// backoff (FRB) generic algorithms under 2-hop and 3-hop information.
// Prints the forward counts (the paper reports 49/45/41 at 2-hop and
// 46/42/36 at 3-hop on its sample) and writes SVG renderings next to the
// binary (fig09_<variant>.svg).

#include <fstream>
#include <iostream>

#include "algorithms/generic.hpp"
#include "bench_common.hpp"
#include "graph/unit_disk.hpp"
#include "io/svg.hpp"

using namespace adhoc;

namespace {

struct Variant {
    const char* label;
    GenericConfig config;
};

}  // namespace

int main(int argc, char** argv) {
    const auto opts = bench::parse_options(argc, argv);
    bench::Bench bench("fig09_sample", opts);

    Rng rng(opts.seed + 2003);
    UnitDiskParams params;
    params.node_count = 100;
    params.average_degree = 6.0;
    const auto net = generate_network_checked(params, rng);
    const NodeId source = 0;

    std::cout << "Figure 9: sample 100-node network, source " << source << " ("
              << net.graph.edge_count() << " links, range " << net.range << ")\n\n";
    std::cout << "variant        forward nodes\n------------------------------\n";

    for (std::size_t k : {2u, 3u}) {
        const Variant variants[] = {
            {"static", generic_static_config(k, PriorityScheme::kId)},
            {"FR", generic_fr_config(k, PriorityScheme::kId)},
            {"FRB", generic_frb_config(k, PriorityScheme::kId)},
        };
        for (const Variant& v : variants) {
            const GenericBroadcast algo(v.config);
            Rng run(opts.seed + 7);
            const auto result = algo.broadcast(net.graph, source, run);
            if (!result.full_delivery) bench.note_delivery_failure();
            std::cout << k << "-hop " << v.label << (result.full_delivery ? "" : " [PARTIAL]")
                      << std::string(12 - std::string(v.label).size(), ' ')
                      << result.forward_count << '\n';

            SvgOptions svg;
            svg.forward = result.transmitted;
            svg.source = source;
            svg.title = "Figure 9 (" + std::to_string(k) + "-hop " + v.label +
                        "): " + std::to_string(result.forward_count) + " forward nodes";
            std::ofstream out("fig09_" + std::to_string(k) + "hop_" + v.label + ".svg");
            write_svg(out, net.graph, net.positions, svg);
        }
    }
    std::cout << "\nSVG plots written to fig09_*.svg\n";
    return bench.finish();
}
