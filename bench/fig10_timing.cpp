// Figure 10: performance of the generic protocol under different TIMING
// options (Static / FR / FRB / FRBD), 2-hop information, id priority,
// d = 6 and d = 18.
//
// Expected shape (paper): Static > FR > FRB >= FRBD.

#include "bench_common.hpp"

#include "algorithms/generic.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
    const auto opts = bench::parse_options(argc, argv);

    const GenericBroadcast stat(generic_static_config(2, PriorityScheme::kId), "Static");
    const GenericBroadcast fr(generic_fr_config(2, PriorityScheme::kId), "FR");
    const GenericBroadcast frb(generic_frb_config(2, PriorityScheme::kId), "FRB");
    const GenericBroadcast frbd(generic_frbd_config(2, PriorityScheme::kId), "FRBD");
    const std::vector<const BroadcastAlgorithm*> algos{&stat, &fr, &frb, &frbd};

    std::cout << "Figure 10: timing options (2-hop, ID priority)\n\n";
    bench::Bench bench("fig10_timing", opts);
    bench.run_panel("d=6, 2-hop", algos, 6.0);
    bench.run_panel("d=18, 2-hop", algos, 18.0);
    return bench.finish();
}
