// Figure 11: performance of dynamic (first-receipt) algorithms under
// different SELECTION options: self-pruning (SP), neighbor-designating
// (ND), and the two hybrid single-designation policies (MaxDeg / MinPri),
// 2-hop information, id priority, strict designation.
//
// Expected shape (paper, sparse): MinPri worst; ND/SP/MaxDeg close with
// MaxDeg best.  Dense n=100: ND falls behind.

#include "bench_common.hpp"

#include "algorithms/generic.hpp"
#include "algorithms/hybrid.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
    const auto opts = bench::parse_options(argc, argv);

    GenericConfig nd_cfg = generic_fr_config(2, PriorityScheme::kId);
    nd_cfg.selection = Selection::kNeighborDesignating;

    const GenericBroadcast sp(generic_fr_config(2, PriorityScheme::kId), "SP");
    const GenericBroadcast nd(nd_cfg, "ND");
    const GenericBroadcast maxdeg = make_hybrid_maxdeg();
    const GenericBroadcast minpri = make_hybrid_minpri();
    const std::vector<const BroadcastAlgorithm*> algos{&sp, &nd, &maxdeg, &minpri};

    std::cout << "Figure 11: selection options (first-receipt, 2-hop, ID priority)\n\n";
    bench::Bench bench("fig11_selection", opts);
    bench.run_panel("d=6, 2-hop", algos, 6.0);
    bench.run_panel("d=18, 2-hop", algos, 18.0);
    return bench.finish();
}
