// Figure 12: performance of dynamic self-pruning under different SPACE
// options: k-hop local views for k = 2..5 and global information.
//
// Expected shape (paper): monotone improvement with diminishing returns;
// 2-/3-hop close to global.

#include "bench_common.hpp"

#include "algorithms/generic.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
    const auto opts = bench::parse_options(argc, argv);

    const GenericBroadcast k2(generic_fr_config(2, PriorityScheme::kId), "2-hop");
    const GenericBroadcast k3(generic_fr_config(3, PriorityScheme::kId), "3-hop");
    const GenericBroadcast k4(generic_fr_config(4, PriorityScheme::kId), "4-hop");
    const GenericBroadcast k5(generic_fr_config(5, PriorityScheme::kId), "5-hop");
    const GenericBroadcast kg(generic_fr_config(0, PriorityScheme::kId), "global");
    const std::vector<const BroadcastAlgorithm*> algos{&k2, &k3, &k4, &k5, &kg};

    std::cout << "Figure 12: space options (first-receipt self-pruning, ID priority)\n\n";
    bench::Bench bench("fig12_space", opts);
    bench.run_panel("d=6", algos, 6.0);
    bench.run_panel("d=18", algos, 18.0);
    return bench.finish();
}
