// Figure 13: performance of dynamic self-pruning under different PRIORITY
// options: node id (ID), node degree (Degree), neighborhood connectivity
// ratio (NCR); 2-hop information.
//
// Expected shape (paper): ID > Degree > NCR in sparse networks; all three
// close in dense networks.

#include "bench_common.hpp"

#include "algorithms/generic.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
    const auto opts = bench::parse_options(argc, argv);

    const GenericBroadcast id(generic_fr_config(2, PriorityScheme::kId), "ID");
    const GenericBroadcast deg(generic_fr_config(2, PriorityScheme::kDegree), "Degree");
    const GenericBroadcast ncr(generic_fr_config(2, PriorityScheme::kNcr), "NCR");
    const std::vector<const BroadcastAlgorithm*> algos{&id, &deg, &ncr};

    std::cout << "Figure 13: priority options (first-receipt self-pruning, 2-hop)\n\n";
    bench::Bench bench("fig13_priority", opts);
    bench.run_panel("d=6, 2-hop", algos, 6.0);
    bench.run_panel("d=18, 2-hop", algos, 18.0);
    return bench.finish();
}
