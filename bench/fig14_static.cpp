// Figure 14: static broadcast algorithms — MPR, enhanced Span, Dai-Wu
// Rule k, and the Generic static algorithm; 2-hop and 3-hop information;
// NCR priority for all self-pruning algorithms (Span's original config);
// MPR uses its designating-time rule.
//
// Expected shape (paper, worst to best): MPR, Span, Rule k, Generic.

#include "bench_common.hpp"

#include "algorithms/generic.hpp"
#include "algorithms/mpr.hpp"
#include "algorithms/rule_k.hpp"
#include "algorithms/span.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
    const auto opts = bench::parse_options(argc, argv);
    std::cout << "Figure 14: static algorithms (NCR priority; MPR: designating time)\n\n";

    bench::Bench bench("fig14_static", opts);
    const MprAlgorithm mpr;
    for (std::size_t k : {2u, 3u}) {
        const SpanAlgorithm span(SpanConfig{.hops = k, .priority = PriorityScheme::kNcr});
        const RuleKAlgorithm rule_k(RuleKConfig{.hops = k, .priority = PriorityScheme::kNcr});
        const GenericBroadcast generic(generic_static_config(k, PriorityScheme::kNcr),
                                       "Generic");
        const std::vector<const BroadcastAlgorithm*> algos{&mpr, &span, &rule_k, &generic};
        bench.run_panel("d=6, " + std::to_string(k) + "-hop", algos, 6.0);
        bench.run_panel("d=18, " + std::to_string(k) + "-hop", algos, 18.0);
    }
    return bench.finish();
}
