// Figure 15: first-receipt broadcast algorithms — DP, PDP, LENWB, and the
// Generic FR algorithm; 2-hop and 3-hop information; node degree as the
// priority (LENWB's original config).
//
// Expected shape (paper, worst to best): DP, PDP, LENWB, Generic.

#include "bench_common.hpp"

#include "algorithms/dominant_pruning.hpp"
#include "algorithms/generic.hpp"
#include "algorithms/lenwb.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
    const auto opts = bench::parse_options(argc, argv);
    std::cout << "Figure 15: first-receipt algorithms (Degree priority)\n\n";

    bench::Bench bench("fig15_first_receipt", opts);
    const DominantPruningAlgorithm dp(DominantPruningVariant::kDp);
    const DominantPruningAlgorithm pdp(DominantPruningVariant::kPdp);
    for (std::size_t k : {2u, 3u}) {
        const LenwbAlgorithm lenwb(LenwbConfig{.hops = k});
        const GenericBroadcast generic(generic_fr_config(k, PriorityScheme::kDegree),
                                       "Generic");
        const std::vector<const BroadcastAlgorithm*> algos{&dp, &pdp, &lenwb, &generic};
        bench.run_panel("d=6, " + std::to_string(k) + "-hop", algos, 6.0);
        bench.run_panel("d=18, " + std::to_string(k) + "-hop", algos, 18.0);
    }
    return bench.finish();
}
