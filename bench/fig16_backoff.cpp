// Figure 16: first-receipt-with-backoff algorithms — SBA and the Generic
// FRB algorithm; 2-hop and 3-hop information.
//
// Expected shape (paper): Generic significantly outperforms SBA (SBA
// requires direct neighbor coverage by visited nodes; Generic allows
// indirect coverage via higher-priority replacement paths).

#include "bench_common.hpp"

#include "algorithms/generic.hpp"
#include "algorithms/sba.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
    const auto opts = bench::parse_options(argc, argv);
    std::cout << "Figure 16: first-receipt-with-backoff algorithms\n\n";

    bench::Bench bench("fig16_backoff", opts);
    for (std::size_t k : {2u, 3u}) {
        const SbaAlgorithm sba(SbaConfig{.hops = k, .history = k > 2 ? 2u : 1u});
        const GenericBroadcast generic(generic_frb_config(k, PriorityScheme::kId), "Generic");
        const std::vector<const BroadcastAlgorithm*> algos{&sba, &generic};
        bench.run_panel("d=6, " + std::to_string(k) + "-hop", algos, 6.0);
        bench.run_panel("d=18, " + std::to_string(k) + "-hop", algos, 18.0);
    }
    return bench.finish();
}
