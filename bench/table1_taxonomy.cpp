// Table 1: the taxonomy of existing distributed broadcast algorithms
// compared in the simulation, plus one demonstration broadcast per entry
// on a shared sample network.

#include <iostream>

#include "algorithms/registry.hpp"
#include "bench_common.hpp"
#include "graph/unit_disk.hpp"
#include "stats/table.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
    const auto opts = bench::parse_options(argc, argv);
    bench::Bench bench("table1_taxonomy", opts);

    std::cout << "Table 1: distributed broadcast algorithms under the generic framework\n\n";

    Rng rng(opts.seed);
    UnitDiskParams params;
    params.node_count = 80;
    params.average_degree = 6.0;
    const auto net = generate_network_checked(params, rng);

    const auto registry = make_registry();
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"key", "algorithm", "category", "selection", "info",
                    "fwd (n=80,d=6)", "delivery"});
    for (const auto& e : registry) {
        Rng run(opts.seed + 1);
        const auto result = e.algorithm->broadcast(net.graph, 0, run);
        // Gossip is probabilistic and may legitimately miss nodes; every
        // deterministic entry must achieve full delivery.
        if (!result.full_delivery && e.key.rfind("gossip", 0) != 0) {
            bench.note_delivery_failure();
        }
        rows.push_back({e.key, e.algorithm->name(), to_string(e.category),
                        to_string(e.style), e.hop_info,
                        std::to_string(result.forward_count),
                        result.full_delivery ? "full" : "PARTIAL"});
    }
    std::cout << format_grid(rows);
    return bench.finish();
}
