// Latency table backing Section 4.1/7.1: backoff-based timings buy smaller
// forward sets "at the cost of prolonging the completion time of the
// broadcast process".  Reports mean completion time next to mean forward
// count for the four timings plus SBA (propagation delay = 1 time unit per
// hop, backoff window = 8).

#include <iomanip>
#include <iostream>

#include "algorithms/generic.hpp"
#include "algorithms/sba.hpp"
#include "bench_common.hpp"
#include "graph/unit_disk.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
    const auto opts = bench::parse_options(argc, argv);
    bench::Bench bench("table_latency", opts);
    std::cout << "Latency vs efficiency (n=80, d=6, 2-hop; delay unit = 1 hop)\n\n";
    std::cout << "algorithm      mean fwd   mean completion  delay vs FR\n";
    std::cout << "-------------------------------------------------------\n";

    UnitDiskParams params;
    params.node_count = 80;
    params.average_degree = 6.0;
    const std::size_t runs = std::max<std::size_t>(opts.max_runs / 2, 50);

    const GenericBroadcast stat(generic_static_config(2, PriorityScheme::kId), "Static");
    const GenericBroadcast fr(generic_fr_config(2), "FR");
    const GenericBroadcast frb(generic_frb_config(2), "FRB");
    const GenericBroadcast frbd(generic_frbd_config(2), "FRBD");
    const SbaAlgorithm sba;

    double fr_latency = 0.0;
    auto evaluate = [&](const BroadcastAlgorithm& algo, bool is_fr) {
        Rng gen(opts.seed);
        double fwd = 0, completion = 0;
        for (std::size_t i = 0; i < runs; ++i) {
            const auto net = generate_network_checked(params, gen);
            Rng run = gen.fork();
            const auto result =
                algo.broadcast(net.graph, static_cast<NodeId>(run.index(80)), run);
            fwd += static_cast<double>(result.forward_count);
            completion += result.completion_time;
        }
        const double r = static_cast<double>(runs);
        if (is_fr) fr_latency = completion / r;
        std::cout << std::left << std::setw(15) << algo.name().substr(0, 14) << std::fixed
                  << std::setprecision(2) << std::setw(11) << fwd / r << std::setw(17)
                  << completion / r;
        if (fr_latency > 0.0) {
            std::cout << std::setprecision(2) << (completion / r) / fr_latency << "x";
        }
        std::cout << '\n';
    };

    evaluate(fr, true);
    evaluate(stat, false);
    evaluate(frb, false);
    evaluate(frbd, false);
    evaluate(sba, false);

    std::cout << "\nReading: FR and Static finish in network-eccentricity time; the\n"
                 "backoff schemes trade a multiple of that for their smaller forward\n"
                 "sets (Section 4.1: appropriate for less delay-sensitive traffic).\n";
    return bench.finish();
}
