// Cost-effectiveness table backing Section 7.1's conclusions: forward
// counts side by side with the hello-round and per-packet overheads each
// configuration pays.  "Overall, there is no single combination of
// implementation options that is the best for all circumstances."

#include <iomanip>
#include <iostream>

#include "algorithms/generic.hpp"
#include "bench_common.hpp"
#include "graph/unit_disk.hpp"
#include "stats/overhead.hpp"
#include "stats/table.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
    const auto opts = bench::parse_options(argc, argv);
    bench::Bench bench("table_overhead", opts);
    std::cout << "Overhead vs efficiency of generic-protocol configurations (n=80, d=6)\n\n";

    struct Config {
        std::string label;
        GenericConfig cfg;
    };
    const std::vector<Config> configs{
        {"static k=2 ID", generic_static_config(2, PriorityScheme::kId)},
        {"FR k=2 ID", generic_fr_config(2, PriorityScheme::kId)},
        {"FR k=2 Degree", generic_fr_config(2, PriorityScheme::kDegree)},
        {"FR k=2 NCR", generic_fr_config(2, PriorityScheme::kNcr)},
        {"FR k=3 ID", generic_fr_config(3, PriorityScheme::kId)},
        {"FRB k=2 ID", generic_frb_config(2, PriorityScheme::kId)},
        {"FRB k=3 Degree", generic_frb_config(3, PriorityScheme::kDegree)},
    };

    UnitDiskParams params;
    params.node_count = 80;
    params.average_degree = 6.0;
    const std::size_t runs = std::max<std::size_t>(opts.max_runs / 2, 40);

    std::vector<std::vector<std::string>> rows;
    rows.push_back({"configuration", "fwd", "hello rounds", "recompute/bcast",
                    "piggyback B/pkt", "extra delay"});
    for (const Config& c : configs) {
        Rng gen(opts.seed);
        const GenericBroadcast algo(c.cfg);
        double fwd = 0;
        for (std::size_t i = 0; i < runs; ++i) {
            const auto net = generate_network_checked(params, gen);
            Rng run = gen.fork();
            fwd += static_cast<double>(
                algo.broadcast(net.graph, static_cast<NodeId>(run.index(80)), run)
                    .forward_count);
        }
        const auto info = information_cost(c.cfg.hops, c.cfg.priority, c.cfg.timing);
        std::ostringstream fwd_s;
        fwd_s << std::fixed << std::setprecision(2) << fwd / static_cast<double>(runs);
        std::ostringstream piggy;
        piggy << std::fixed << std::setprecision(1)
              << estimated_piggyback_bytes(c.cfg.history, /*avg_designated=*/0.0);
        rows.push_back({c.label, fwd_s.str(), std::to_string(info.hello_rounds),
                        info.per_broadcast_recompute ? "yes" : "no", piggy.str(),
                        c.cfg.timing == Timing::kFirstReceipt ||
                                c.cfg.timing == Timing::kStatic
                            ? "none"
                            : "backoff"});
    }
    std::cout << format_grid(rows);
    std::cout << "\nReading: ID priority needs the fewest hello rounds but the largest\n"
                 "forward set; NCR the reverse; backoff trades end-to-end delay for\n"
                 "further pruning (Section 7.1's trade-off conclusions).\n";
    return bench.finish();
}
