file(REMOVE_RECURSE
  "CMakeFiles/ablation_approximation.dir/ablation_approximation.cpp.o"
  "CMakeFiles/ablation_approximation.dir/ablation_approximation.cpp.o.d"
  "ablation_approximation"
  "ablation_approximation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_approximation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
