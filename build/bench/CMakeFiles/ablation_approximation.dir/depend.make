# Empty dependencies file for ablation_approximation.
# This may be replaced when dependencies are built.
