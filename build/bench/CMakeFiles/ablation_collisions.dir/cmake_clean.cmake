file(REMOVE_RECURSE
  "CMakeFiles/ablation_collisions.dir/ablation_collisions.cpp.o"
  "CMakeFiles/ablation_collisions.dir/ablation_collisions.cpp.o.d"
  "ablation_collisions"
  "ablation_collisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_collisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
