# Empty compiler generated dependencies file for ablation_collisions.
# This may be replaced when dependencies are built.
