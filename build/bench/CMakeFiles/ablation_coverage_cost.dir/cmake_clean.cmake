file(REMOVE_RECURSE
  "CMakeFiles/ablation_coverage_cost.dir/ablation_coverage_cost.cpp.o"
  "CMakeFiles/ablation_coverage_cost.dir/ablation_coverage_cost.cpp.o.d"
  "ablation_coverage_cost"
  "ablation_coverage_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coverage_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
