# Empty dependencies file for ablation_coverage_cost.
# This may be replaced when dependencies are built.
