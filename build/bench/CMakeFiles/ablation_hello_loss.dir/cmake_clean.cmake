file(REMOVE_RECURSE
  "CMakeFiles/ablation_hello_loss.dir/ablation_hello_loss.cpp.o"
  "CMakeFiles/ablation_hello_loss.dir/ablation_hello_loss.cpp.o.d"
  "ablation_hello_loss"
  "ablation_hello_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hello_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
