# Empty dependencies file for ablation_hello_loss.
# This may be replaced when dependencies are built.
