file(REMOVE_RECURSE
  "CMakeFiles/ablation_optimality_gap.dir/ablation_optimality_gap.cpp.o"
  "CMakeFiles/ablation_optimality_gap.dir/ablation_optimality_gap.cpp.o.d"
  "ablation_optimality_gap"
  "ablation_optimality_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_optimality_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
