# Empty dependencies file for ablation_optimality_gap.
# This may be replaced when dependencies are built.
