file(REMOVE_RECURSE
  "CMakeFiles/ablation_relaxed.dir/ablation_relaxed.cpp.o"
  "CMakeFiles/ablation_relaxed.dir/ablation_relaxed.cpp.o.d"
  "ablation_relaxed"
  "ablation_relaxed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_relaxed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
