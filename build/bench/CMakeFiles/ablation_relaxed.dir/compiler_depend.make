# Empty compiler generated dependencies file for ablation_relaxed.
# This may be replaced when dependencies are built.
