file(REMOVE_RECURSE
  "CMakeFiles/ablation_tdp_pdp.dir/ablation_tdp_pdp.cpp.o"
  "CMakeFiles/ablation_tdp_pdp.dir/ablation_tdp_pdp.cpp.o.d"
  "ablation_tdp_pdp"
  "ablation_tdp_pdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tdp_pdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
