# Empty compiler generated dependencies file for ablation_tdp_pdp.
# This may be replaced when dependencies are built.
