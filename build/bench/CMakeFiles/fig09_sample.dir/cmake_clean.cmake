file(REMOVE_RECURSE
  "CMakeFiles/fig09_sample.dir/fig09_sample.cpp.o"
  "CMakeFiles/fig09_sample.dir/fig09_sample.cpp.o.d"
  "fig09_sample"
  "fig09_sample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_sample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
