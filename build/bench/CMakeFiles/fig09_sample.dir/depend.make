# Empty dependencies file for fig09_sample.
# This may be replaced when dependencies are built.
