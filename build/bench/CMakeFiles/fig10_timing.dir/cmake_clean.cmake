file(REMOVE_RECURSE
  "CMakeFiles/fig10_timing.dir/fig10_timing.cpp.o"
  "CMakeFiles/fig10_timing.dir/fig10_timing.cpp.o.d"
  "fig10_timing"
  "fig10_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
