file(REMOVE_RECURSE
  "CMakeFiles/fig11_selection.dir/fig11_selection.cpp.o"
  "CMakeFiles/fig11_selection.dir/fig11_selection.cpp.o.d"
  "fig11_selection"
  "fig11_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
