# Empty dependencies file for fig11_selection.
# This may be replaced when dependencies are built.
