# Empty dependencies file for fig12_space.
# This may be replaced when dependencies are built.
