file(REMOVE_RECURSE
  "CMakeFiles/fig13_priority.dir/fig13_priority.cpp.o"
  "CMakeFiles/fig13_priority.dir/fig13_priority.cpp.o.d"
  "fig13_priority"
  "fig13_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
