# Empty dependencies file for fig13_priority.
# This may be replaced when dependencies are built.
