file(REMOVE_RECURSE
  "CMakeFiles/fig14_static.dir/fig14_static.cpp.o"
  "CMakeFiles/fig14_static.dir/fig14_static.cpp.o.d"
  "fig14_static"
  "fig14_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
