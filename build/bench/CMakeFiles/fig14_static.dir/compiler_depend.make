# Empty compiler generated dependencies file for fig14_static.
# This may be replaced when dependencies are built.
