file(REMOVE_RECURSE
  "CMakeFiles/fig15_first_receipt.dir/fig15_first_receipt.cpp.o"
  "CMakeFiles/fig15_first_receipt.dir/fig15_first_receipt.cpp.o.d"
  "fig15_first_receipt"
  "fig15_first_receipt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_first_receipt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
