# Empty dependencies file for fig15_first_receipt.
# This may be replaced when dependencies are built.
