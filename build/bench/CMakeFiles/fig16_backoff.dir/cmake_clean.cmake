file(REMOVE_RECURSE
  "CMakeFiles/fig16_backoff.dir/fig16_backoff.cpp.o"
  "CMakeFiles/fig16_backoff.dir/fig16_backoff.cpp.o.d"
  "fig16_backoff"
  "fig16_backoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_backoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
