# Empty compiler generated dependencies file for fig16_backoff.
# This may be replaced when dependencies are built.
