file(REMOVE_RECURSE
  "CMakeFiles/table_latency.dir/table_latency.cpp.o"
  "CMakeFiles/table_latency.dir/table_latency.cpp.o.d"
  "table_latency"
  "table_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
