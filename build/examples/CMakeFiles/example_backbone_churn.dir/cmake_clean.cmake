file(REMOVE_RECURSE
  "CMakeFiles/example_backbone_churn.dir/backbone_churn.cpp.o"
  "CMakeFiles/example_backbone_churn.dir/backbone_churn.cpp.o.d"
  "example_backbone_churn"
  "example_backbone_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_backbone_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
