# Empty compiler generated dependencies file for example_backbone_churn.
# This may be replaced when dependencies are built.
