file(REMOVE_RECURSE
  "CMakeFiles/example_backbone_unicast.dir/backbone_unicast.cpp.o"
  "CMakeFiles/example_backbone_unicast.dir/backbone_unicast.cpp.o.d"
  "example_backbone_unicast"
  "example_backbone_unicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_backbone_unicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
