# Empty compiler generated dependencies file for example_backbone_unicast.
# This may be replaced when dependencies are built.
