file(REMOVE_RECURSE
  "CMakeFiles/example_broadcast_cli.dir/broadcast_cli.cpp.o"
  "CMakeFiles/example_broadcast_cli.dir/broadcast_cli.cpp.o.d"
  "example_broadcast_cli"
  "example_broadcast_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_broadcast_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
