# Empty dependencies file for example_broadcast_cli.
# This may be replaced when dependencies are built.
