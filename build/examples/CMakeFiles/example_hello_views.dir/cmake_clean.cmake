file(REMOVE_RECURSE
  "CMakeFiles/example_hello_views.dir/hello_views.cpp.o"
  "CMakeFiles/example_hello_views.dir/hello_views.cpp.o.d"
  "example_hello_views"
  "example_hello_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hello_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
