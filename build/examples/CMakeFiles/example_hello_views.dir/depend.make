# Empty dependencies file for example_hello_views.
# This may be replaced when dependencies are built.
