file(REMOVE_RECURSE
  "CMakeFiles/example_network_atlas.dir/network_atlas.cpp.o"
  "CMakeFiles/example_network_atlas.dir/network_atlas.cpp.o.d"
  "example_network_atlas"
  "example_network_atlas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_network_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
