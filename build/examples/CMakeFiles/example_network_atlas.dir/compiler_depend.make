# Empty compiler generated dependencies file for example_network_atlas.
# This may be replaced when dependencies are built.
