file(REMOVE_RECURSE
  "CMakeFiles/example_route_discovery.dir/route_discovery.cpp.o"
  "CMakeFiles/example_route_discovery.dir/route_discovery.cpp.o.d"
  "example_route_discovery"
  "example_route_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_route_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
