# Empty dependencies file for example_route_discovery.
# This may be replaced when dependencies are built.
