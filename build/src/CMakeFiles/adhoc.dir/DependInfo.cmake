
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/algorithm.cpp" "src/CMakeFiles/adhoc.dir/algorithms/algorithm.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/algorithms/algorithm.cpp.o.d"
  "/root/repo/src/algorithms/clustering.cpp" "src/CMakeFiles/adhoc.dir/algorithms/clustering.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/algorithms/clustering.cpp.o.d"
  "/root/repo/src/algorithms/dominant_pruning.cpp" "src/CMakeFiles/adhoc.dir/algorithms/dominant_pruning.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/algorithms/dominant_pruning.cpp.o.d"
  "/root/repo/src/algorithms/flooding.cpp" "src/CMakeFiles/adhoc.dir/algorithms/flooding.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/algorithms/flooding.cpp.o.d"
  "/root/repo/src/algorithms/generic.cpp" "src/CMakeFiles/adhoc.dir/algorithms/generic.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/algorithms/generic.cpp.o.d"
  "/root/repo/src/algorithms/gossip.cpp" "src/CMakeFiles/adhoc.dir/algorithms/gossip.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/algorithms/gossip.cpp.o.d"
  "/root/repo/src/algorithms/guha_khuller.cpp" "src/CMakeFiles/adhoc.dir/algorithms/guha_khuller.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/algorithms/guha_khuller.cpp.o.d"
  "/root/repo/src/algorithms/hybrid.cpp" "src/CMakeFiles/adhoc.dir/algorithms/hybrid.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/algorithms/hybrid.cpp.o.d"
  "/root/repo/src/algorithms/lenwb.cpp" "src/CMakeFiles/adhoc.dir/algorithms/lenwb.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/algorithms/lenwb.cpp.o.d"
  "/root/repo/src/algorithms/mpr.cpp" "src/CMakeFiles/adhoc.dir/algorithms/mpr.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/algorithms/mpr.cpp.o.d"
  "/root/repo/src/algorithms/registry.cpp" "src/CMakeFiles/adhoc.dir/algorithms/registry.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/algorithms/registry.cpp.o.d"
  "/root/repo/src/algorithms/rule_k.cpp" "src/CMakeFiles/adhoc.dir/algorithms/rule_k.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/algorithms/rule_k.cpp.o.d"
  "/root/repo/src/algorithms/sba.cpp" "src/CMakeFiles/adhoc.dir/algorithms/sba.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/algorithms/sba.cpp.o.d"
  "/root/repo/src/algorithms/span.cpp" "src/CMakeFiles/adhoc.dir/algorithms/span.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/algorithms/span.cpp.o.d"
  "/root/repo/src/algorithms/stojmenovic.cpp" "src/CMakeFiles/adhoc.dir/algorithms/stojmenovic.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/algorithms/stojmenovic.cpp.o.d"
  "/root/repo/src/algorithms/wu_li.cpp" "src/CMakeFiles/adhoc.dir/algorithms/wu_li.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/algorithms/wu_li.cpp.o.d"
  "/root/repo/src/analysis/exact_cds.cpp" "src/CMakeFiles/adhoc.dir/analysis/exact_cds.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/analysis/exact_cds.cpp.o.d"
  "/root/repo/src/core/backbone.cpp" "src/CMakeFiles/adhoc.dir/core/backbone.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/core/backbone.cpp.o.d"
  "/root/repo/src/core/cds_reduce.cpp" "src/CMakeFiles/adhoc.dir/core/cds_reduce.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/core/cds_reduce.cpp.o.d"
  "/root/repo/src/core/coverage.cpp" "src/CMakeFiles/adhoc.dir/core/coverage.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/core/coverage.cpp.o.d"
  "/root/repo/src/core/designation.cpp" "src/CMakeFiles/adhoc.dir/core/designation.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/core/designation.cpp.o.d"
  "/root/repo/src/core/maxmin.cpp" "src/CMakeFiles/adhoc.dir/core/maxmin.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/core/maxmin.cpp.o.d"
  "/root/repo/src/core/priority.cpp" "src/CMakeFiles/adhoc.dir/core/priority.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/core/priority.cpp.o.d"
  "/root/repo/src/core/view.cpp" "src/CMakeFiles/adhoc.dir/core/view.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/core/view.cpp.o.d"
  "/root/repo/src/graph/digraph.cpp" "src/CMakeFiles/adhoc.dir/graph/digraph.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/graph/digraph.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/adhoc.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/adhoc.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/khop.cpp" "src/CMakeFiles/adhoc.dir/graph/khop.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/graph/khop.cpp.o.d"
  "/root/repo/src/graph/metrics.cpp" "src/CMakeFiles/adhoc.dir/graph/metrics.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/graph/metrics.cpp.o.d"
  "/root/repo/src/graph/traversal.cpp" "src/CMakeFiles/adhoc.dir/graph/traversal.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/graph/traversal.cpp.o.d"
  "/root/repo/src/graph/unit_disk.cpp" "src/CMakeFiles/adhoc.dir/graph/unit_disk.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/graph/unit_disk.cpp.o.d"
  "/root/repo/src/io/dot.cpp" "src/CMakeFiles/adhoc.dir/io/dot.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/io/dot.cpp.o.d"
  "/root/repo/src/io/edge_list.cpp" "src/CMakeFiles/adhoc.dir/io/edge_list.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/io/edge_list.cpp.o.d"
  "/root/repo/src/io/svg.cpp" "src/CMakeFiles/adhoc.dir/io/svg.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/io/svg.cpp.o.d"
  "/root/repo/src/io/wire.cpp" "src/CMakeFiles/adhoc.dir/io/wire.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/io/wire.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/adhoc.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/generic_protocol.cpp" "src/CMakeFiles/adhoc.dir/sim/generic_protocol.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/sim/generic_protocol.cpp.o.d"
  "/root/repo/src/sim/hello.cpp" "src/CMakeFiles/adhoc.dir/sim/hello.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/sim/hello.cpp.o.d"
  "/root/repo/src/sim/mobility.cpp" "src/CMakeFiles/adhoc.dir/sim/mobility.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/sim/mobility.cpp.o.d"
  "/root/repo/src/sim/node_agent.cpp" "src/CMakeFiles/adhoc.dir/sim/node_agent.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/sim/node_agent.cpp.o.d"
  "/root/repo/src/sim/packet.cpp" "src/CMakeFiles/adhoc.dir/sim/packet.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/sim/packet.cpp.o.d"
  "/root/repo/src/sim/session.cpp" "src/CMakeFiles/adhoc.dir/sim/session.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/sim/session.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/adhoc.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/adhoc.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/sim/trace.cpp.o.d"
  "/root/repo/src/stats/experiment.cpp" "src/CMakeFiles/adhoc.dir/stats/experiment.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/stats/experiment.cpp.o.d"
  "/root/repo/src/stats/overhead.cpp" "src/CMakeFiles/adhoc.dir/stats/overhead.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/stats/overhead.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/CMakeFiles/adhoc.dir/stats/summary.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/stats/summary.cpp.o.d"
  "/root/repo/src/stats/table.cpp" "src/CMakeFiles/adhoc.dir/stats/table.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/stats/table.cpp.o.d"
  "/root/repo/src/verify/cds_check.cpp" "src/CMakeFiles/adhoc.dir/verify/cds_check.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/verify/cds_check.cpp.o.d"
  "/root/repo/src/verify/invariants.cpp" "src/CMakeFiles/adhoc.dir/verify/invariants.cpp.o" "gcc" "src/CMakeFiles/adhoc.dir/verify/invariants.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
