file(REMOVE_RECURSE
  "libadhoc.a"
)
