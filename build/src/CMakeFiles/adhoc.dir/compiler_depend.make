# Empty compiler generated dependencies file for adhoc.
# This may be replaced when dependencies are built.
