file(REMOVE_RECURSE
  "CMakeFiles/cds_check_test.dir/cds_check_test.cpp.o"
  "CMakeFiles/cds_check_test.dir/cds_check_test.cpp.o.d"
  "cds_check_test"
  "cds_check_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cds_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
