# Empty compiler generated dependencies file for cds_check_test.
# This may be replaced when dependencies are built.
