file(REMOVE_RECURSE
  "CMakeFiles/cds_reduce_test.dir/cds_reduce_test.cpp.o"
  "CMakeFiles/cds_reduce_test.dir/cds_reduce_test.cpp.o.d"
  "cds_reduce_test"
  "cds_reduce_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cds_reduce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
