# Empty dependencies file for cds_reduce_test.
# This may be replaced when dependencies are built.
