file(REMOVE_RECURSE
  "CMakeFiles/designation_test.dir/designation_test.cpp.o"
  "CMakeFiles/designation_test.dir/designation_test.cpp.o.d"
  "designation_test"
  "designation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/designation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
