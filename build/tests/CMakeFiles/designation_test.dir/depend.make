# Empty dependencies file for designation_test.
# This may be replaced when dependencies are built.
