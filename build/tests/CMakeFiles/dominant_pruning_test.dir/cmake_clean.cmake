file(REMOVE_RECURSE
  "CMakeFiles/dominant_pruning_test.dir/dominant_pruning_test.cpp.o"
  "CMakeFiles/dominant_pruning_test.dir/dominant_pruning_test.cpp.o.d"
  "dominant_pruning_test"
  "dominant_pruning_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dominant_pruning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
