# Empty compiler generated dependencies file for dominant_pruning_test.
# This may be replaced when dependencies are built.
