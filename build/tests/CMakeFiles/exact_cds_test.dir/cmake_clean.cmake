file(REMOVE_RECURSE
  "CMakeFiles/exact_cds_test.dir/exact_cds_test.cpp.o"
  "CMakeFiles/exact_cds_test.dir/exact_cds_test.cpp.o.d"
  "exact_cds_test"
  "exact_cds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_cds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
