# Empty dependencies file for exact_cds_test.
# This may be replaced when dependencies are built.
