file(REMOVE_RECURSE
  "CMakeFiles/generic_protocol_test.dir/generic_protocol_test.cpp.o"
  "CMakeFiles/generic_protocol_test.dir/generic_protocol_test.cpp.o.d"
  "generic_protocol_test"
  "generic_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generic_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
