# Empty dependencies file for generic_protocol_test.
# This may be replaced when dependencies are built.
