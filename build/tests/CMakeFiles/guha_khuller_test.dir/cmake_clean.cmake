file(REMOVE_RECURSE
  "CMakeFiles/guha_khuller_test.dir/guha_khuller_test.cpp.o"
  "CMakeFiles/guha_khuller_test.dir/guha_khuller_test.cpp.o.d"
  "guha_khuller_test"
  "guha_khuller_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guha_khuller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
