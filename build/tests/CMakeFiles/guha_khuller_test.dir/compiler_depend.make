# Empty compiler generated dependencies file for guha_khuller_test.
# This may be replaced when dependencies are built.
