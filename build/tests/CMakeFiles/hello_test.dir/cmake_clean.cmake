file(REMOVE_RECURSE
  "CMakeFiles/hello_test.dir/hello_test.cpp.o"
  "CMakeFiles/hello_test.dir/hello_test.cpp.o.d"
  "hello_test"
  "hello_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hello_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
