file(REMOVE_RECURSE
  "CMakeFiles/khop_test.dir/khop_test.cpp.o"
  "CMakeFiles/khop_test.dir/khop_test.cpp.o.d"
  "khop_test"
  "khop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/khop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
