file(REMOVE_RECURSE
  "CMakeFiles/lenwb_test.dir/lenwb_test.cpp.o"
  "CMakeFiles/lenwb_test.dir/lenwb_test.cpp.o.d"
  "lenwb_test"
  "lenwb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lenwb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
