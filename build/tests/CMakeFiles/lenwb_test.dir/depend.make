# Empty dependencies file for lenwb_test.
# This may be replaced when dependencies are built.
