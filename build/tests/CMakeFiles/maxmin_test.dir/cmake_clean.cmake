file(REMOVE_RECURSE
  "CMakeFiles/maxmin_test.dir/maxmin_test.cpp.o"
  "CMakeFiles/maxmin_test.dir/maxmin_test.cpp.o.d"
  "maxmin_test"
  "maxmin_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxmin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
