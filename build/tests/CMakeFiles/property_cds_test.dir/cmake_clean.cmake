file(REMOVE_RECURSE
  "CMakeFiles/property_cds_test.dir/property_cds_test.cpp.o"
  "CMakeFiles/property_cds_test.dir/property_cds_test.cpp.o.d"
  "property_cds_test"
  "property_cds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_cds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
