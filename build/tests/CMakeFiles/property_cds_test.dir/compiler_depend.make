# Empty compiler generated dependencies file for property_cds_test.
# This may be replaced when dependencies are built.
