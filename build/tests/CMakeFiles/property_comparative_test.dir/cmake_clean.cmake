file(REMOVE_RECURSE
  "CMakeFiles/property_comparative_test.dir/property_comparative_test.cpp.o"
  "CMakeFiles/property_comparative_test.dir/property_comparative_test.cpp.o.d"
  "property_comparative_test"
  "property_comparative_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_comparative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
