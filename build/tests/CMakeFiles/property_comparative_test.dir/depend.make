# Empty dependencies file for property_comparative_test.
# This may be replaced when dependencies are built.
