file(REMOVE_RECURSE
  "CMakeFiles/property_config_matrix_test.dir/property_config_matrix_test.cpp.o"
  "CMakeFiles/property_config_matrix_test.dir/property_config_matrix_test.cpp.o.d"
  "property_config_matrix_test"
  "property_config_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_config_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
