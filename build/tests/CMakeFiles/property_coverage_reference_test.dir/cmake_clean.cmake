file(REMOVE_RECURSE
  "CMakeFiles/property_coverage_reference_test.dir/property_coverage_reference_test.cpp.o"
  "CMakeFiles/property_coverage_reference_test.dir/property_coverage_reference_test.cpp.o.d"
  "property_coverage_reference_test"
  "property_coverage_reference_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_coverage_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
