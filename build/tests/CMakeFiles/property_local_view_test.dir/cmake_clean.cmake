file(REMOVE_RECURSE
  "CMakeFiles/property_local_view_test.dir/property_local_view_test.cpp.o"
  "CMakeFiles/property_local_view_test.dir/property_local_view_test.cpp.o.d"
  "property_local_view_test"
  "property_local_view_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_local_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
