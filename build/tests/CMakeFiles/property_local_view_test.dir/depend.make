# Empty dependencies file for property_local_view_test.
# This may be replaced when dependencies are built.
