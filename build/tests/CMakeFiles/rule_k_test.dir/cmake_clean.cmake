file(REMOVE_RECURSE
  "CMakeFiles/rule_k_test.dir/rule_k_test.cpp.o"
  "CMakeFiles/rule_k_test.dir/rule_k_test.cpp.o.d"
  "rule_k_test"
  "rule_k_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_k_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
