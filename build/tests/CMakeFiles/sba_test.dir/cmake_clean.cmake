file(REMOVE_RECURSE
  "CMakeFiles/sba_test.dir/sba_test.cpp.o"
  "CMakeFiles/sba_test.dir/sba_test.cpp.o.d"
  "sba_test"
  "sba_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sba_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
