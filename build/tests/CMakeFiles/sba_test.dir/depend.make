# Empty dependencies file for sba_test.
# This may be replaced when dependencies are built.
