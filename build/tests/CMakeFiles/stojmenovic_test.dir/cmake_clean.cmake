file(REMOVE_RECURSE
  "CMakeFiles/stojmenovic_test.dir/stojmenovic_test.cpp.o"
  "CMakeFiles/stojmenovic_test.dir/stojmenovic_test.cpp.o.d"
  "stojmenovic_test"
  "stojmenovic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stojmenovic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
