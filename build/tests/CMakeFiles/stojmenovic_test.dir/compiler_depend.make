# Empty compiler generated dependencies file for stojmenovic_test.
# This may be replaced when dependencies are built.
