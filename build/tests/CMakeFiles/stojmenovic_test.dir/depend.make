# Empty dependencies file for stojmenovic_test.
# This may be replaced when dependencies are built.
