file(REMOVE_RECURSE
  "CMakeFiles/unit_disk_test.dir/unit_disk_test.cpp.o"
  "CMakeFiles/unit_disk_test.dir/unit_disk_test.cpp.o.d"
  "unit_disk_test"
  "unit_disk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_disk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
