# Empty dependencies file for unit_disk_test.
# This may be replaced when dependencies are built.
