file(REMOVE_RECURSE
  "CMakeFiles/wu_li_test.dir/wu_li_test.cpp.o"
  "CMakeFiles/wu_li_test.dir/wu_li_test.cpp.o.d"
  "wu_li_test"
  "wu_li_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wu_li_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
