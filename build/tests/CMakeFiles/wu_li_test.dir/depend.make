# Empty dependencies file for wu_li_test.
# This may be replaced when dependencies are built.
