// backbone_churn: watch a virtual backbone adapt to link churn.
//
//   $ example_backbone_churn [seed]
//
// Builds the static generic CDS on a random network, then flips random
// links and shows how few nodes each incremental update re-evaluates
// (versus recomputing all n), that the backbone stays a CDS, and how its
// size drifts — the paper's "relatively stable CDS that forms a virtual
// backbone" in action.

#include <iomanip>
#include <iostream>

#include "core/backbone.hpp"
#include "graph/traversal.hpp"
#include "graph/unit_disk.hpp"
#include "verify/cds_check.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
    const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 21u;
    Rng rng(seed);
    UnitDiskParams params;
    params.node_count = 100;
    params.average_degree = 8.0;
    const auto net = generate_network_checked(params, rng);

    Backbone backbone(net.graph, /*hops=*/2, PriorityScheme::kDegree);
    std::cout << "initial backbone: " << set_size(backbone.forward_set()) << " of "
              << net.graph.node_count() << " nodes\n\n";
    std::cout << "step  event           backbone  re-evaluated  still CDS\n";
    std::cout << "--------------------------------------------------------\n";

    Graph current = net.graph;
    Rng churn(seed + 1);
    for (int step = 1; step <= 15; ++step) {
        const NodeId u = static_cast<NodeId>(churn.index(current.node_count()));
        const NodeId v = static_cast<NodeId>(churn.index(current.node_count()));
        if (u == v) continue;
        std::string event;
        if (current.has_edge(u, v)) {
            current.remove_edge(u, v);
            backbone.remove_edge(u, v);
            event = "down " + std::to_string(u) + "-" + std::to_string(v);
        } else {
            current.add_edge(u, v);
            backbone.add_edge(u, v);
            event = "up   " + std::to_string(u) + "-" + std::to_string(v);
        }
        const bool cds_ok = !is_connected(current) || is_cds(current, backbone.forward_set());
        std::cout << std::left << std::setw(6) << step << std::setw(16) << event
                  << std::setw(10) << set_size(backbone.forward_set()) << std::setw(14)
                  << backbone.last_reevaluated() << (cds_ok ? "yes" : "NO") << '\n';
    }
    std::cout << "\ntotal status evaluations across 15 updates: "
              << backbone.total_reevaluated() << " (full recomputation would be "
              << 15 * net.graph.node_count() << ")\n";
    return 0;
}
