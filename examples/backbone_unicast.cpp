// backbone_unicast: the paper's other use for the static CDS — "a virtual
// backbone, which facilitates both broadcasting and unicasting".
//
//   $ example_backbone_unicast [seed]
//
// Routes unicast traffic over the backbone only (enter at the nearest
// member, traverse members, exit to the destination) and measures the hop
// stretch versus true shortest paths, for the generic static CDS and the
// centralized greedy CDS.  Small backbones save routing state at the cost
// of a little stretch.

#include <iomanip>
#include <iostream>
#include <optional>

#include "algorithms/guha_khuller.hpp"
#include "core/backbone.hpp"
#include "graph/traversal.hpp"
#include "graph/unit_disk.hpp"
#include "verify/cds_check.hpp"

using namespace adhoc;

namespace {

/// Hop length of the backbone route u -> v: direct edges allowed at entry
/// and exit, everything in between must be backbone members.
std::optional<std::size_t> backbone_route_hops(const Graph& g, const std::vector<char>& cds,
                                               NodeId from, NodeId to) {
    if (from == to) return 0;
    if (g.has_edge(from, to)) return 1;
    // Allowed interior: members; endpoints appended around the member walk.
    std::vector<char> allowed = cds;
    allowed[from] = 1;
    allowed[to] = 1;
    const auto path = shortest_path_filtered(g, from, to, allowed);
    if (!path) return std::nullopt;
    return path->size() - 1;
}

void evaluate(const char* label, const Graph& g, const std::vector<char>& cds, Rng& rng) {
    double stretch_sum = 0;
    std::size_t pairs = 0, failures = 0;
    for (int i = 0; i < 300; ++i) {
        const NodeId a = static_cast<NodeId>(rng.index(g.node_count()));
        const NodeId b = static_cast<NodeId>(rng.index(g.node_count()));
        if (a == b) continue;
        const auto direct = shortest_path(g, a, b);
        const auto via = backbone_route_hops(g, cds, a, b);
        if (!direct) continue;
        if (!via) {
            ++failures;
            continue;
        }
        stretch_sum += static_cast<double>(*via) / static_cast<double>(direct->size() - 1);
        ++pairs;
    }
    std::cout << std::left << std::setw(18) << label << std::setw(10) << set_size(cds)
              << std::fixed << std::setprecision(3) << std::setw(12)
              << (pairs ? stretch_sum / static_cast<double>(pairs) : 0.0) << failures << '\n';
}

}  // namespace

int main(int argc, char** argv) {
    const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 33u;
    Rng rng(seed);
    UnitDiskParams params;
    params.node_count = 100;
    params.average_degree = 8.0;
    const auto net = generate_network_checked(params, rng);

    std::cout << "unicast over the virtual backbone (n=100, d=8, 300 random pairs)\n\n";
    std::cout << "backbone          size      stretch     unreachable\n";
    std::cout << "----------------------------------------------------\n";

    const Backbone generic(net.graph, 2, PriorityScheme::kDegree);
    Rng r1(seed + 1);
    evaluate("generic static", net.graph, generic.forward_set(), r1);

    const auto greedy = guha_khuller_cds(net.graph);
    Rng r2(seed + 1);
    evaluate("guha-khuller", net.graph, greedy, r2);

    std::vector<char> everyone(net.graph.node_count(), 1);
    Rng r3(seed + 1);
    evaluate("full graph", net.graph, everyone, r3);

    std::cout << "\nA CDS guarantees every pair is routable through it (0 unreachable);\n"
                 "the stretch over true shortest paths is the price of the compact\n"
                 "backbone.\n";
    return 0;
}
