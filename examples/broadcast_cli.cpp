// broadcast_cli: run any registered algorithm on a generated or supplied
// topology from the command line.
//
//   $ example_broadcast_cli --list
//   $ example_broadcast_cli --algo generic-fr --nodes 80 --degree 6 --source 3
//   $ example_broadcast_cli --algo mpr --graph topo.txt --source 0 --trace
//
// The graph file format is the edge-list format of io/edge_list.hpp.

#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>

#include "algorithms/registry.hpp"
#include "graph/unit_disk.hpp"
#include "io/edge_list.hpp"
#include "verify/cds_check.hpp"

using namespace adhoc;

namespace {

struct CliOptions {
    std::string algo = "generic-fr";
    std::size_t nodes = 60;
    double degree = 6.0;
    NodeId source = 0;
    std::uint64_t seed = 1;
    std::string graph_file;
    bool trace = false;
    bool list = false;
};

std::optional<CliOptions> parse(int argc, char** argv) {
    CliOptions o;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
        if (a == "--list") {
            o.list = true;
        } else if (a == "--trace") {
            o.trace = true;
        } else if (a == "--algo") {
            if (const char* v = next()) o.algo = v;
        } else if (a == "--nodes") {
            if (const char* v = next()) o.nodes = std::strtoull(v, nullptr, 10);
        } else if (a == "--degree") {
            if (const char* v = next()) o.degree = std::strtod(v, nullptr);
        } else if (a == "--source") {
            if (const char* v = next()) o.source = static_cast<NodeId>(std::strtoul(v, nullptr, 10));
        } else if (a == "--seed") {
            if (const char* v = next()) o.seed = std::strtoull(v, nullptr, 10);
        } else if (a == "--graph") {
            if (const char* v = next()) o.graph_file = v;
        } else {
            std::cerr << "unknown option " << a << "\nusage: --list | --algo KEY "
                         "[--nodes N --degree D | --graph FILE] [--source S] [--seed X] "
                         "[--trace]\n";
            return std::nullopt;
        }
    }
    return o;
}

}  // namespace

int main(int argc, char** argv) {
    const auto opts = parse(argc, argv);
    if (!opts) return 2;

    const auto registry = make_registry();
    if (opts->list) {
        std::cout << "available algorithms:\n";
        for (const auto& e : registry) {
            std::cout << "  " << e.key << "  (" << to_string(e.category) << ", "
                      << to_string(e.style) << ", " << e.hop_info << ")\n";
        }
        return 0;
    }

    const BroadcastAlgorithm* algo = find_algorithm(registry, opts->algo);
    if (algo == nullptr) {
        std::cerr << "unknown algorithm '" << opts->algo << "' (try --list)\n";
        return 2;
    }

    Graph graph;
    if (!opts->graph_file.empty()) {
        std::ifstream in(opts->graph_file);
        if (!in) {
            std::cerr << "cannot open " << opts->graph_file << '\n';
            return 2;
        }
        std::string error;
        auto parsed = read_edge_list(in, &error);
        if (!parsed) {
            std::cerr << "parse error: " << error << '\n';
            return 2;
        }
        graph = std::move(*parsed);
    } else {
        Rng rng(opts->seed);
        UnitDiskParams params;
        params.node_count = opts->nodes;
        params.average_degree = opts->degree;
        graph = generate_network_checked(params, rng).graph;
    }
    if (!graph.contains(opts->source)) {
        std::cerr << "source " << opts->source << " out of range\n";
        return 2;
    }

    Rng rng(opts->seed + 1);
    const auto result = algo->broadcast_traced(graph, opts->source, rng, {});
    std::cout << algo->name() << " on " << graph.node_count() << " nodes from "
              << opts->source << ":\n  forward nodes : " << result.forward_count
              << "\n  delivered     : " << result.received_count << "/"
              << graph.node_count() << "\n  completion    : " << result.completion_time
              << "\n  CDS           : "
              << (check_broadcast(graph, opts->source, result).cds.ok() ? "yes" : "no")
              << '\n';
    if (opts->trace) std::cout << "\ntrace:\n" << result.trace.to_string();
    return result.full_delivery ? 0 : 1;
}
