// hello_views: watch local views being built by the hello protocol.
//
//   $ example_hello_views
//
// Demonstrates Definition 2 operationally: runs k hello rounds on a small
// network, shows one node's growing view per round, verifies the lossless
// run equals the analytic G_k(v), then degrades the exchange with loss and
// shows the broadcast compensating with extra forwards (Theorem 2 keeps it
// correct).

#include <iostream>

#include "algorithms/generic.hpp"
#include "graph/unit_disk.hpp"
#include "sim/generic_protocol.hpp"
#include "sim/hello.hpp"

using namespace adhoc;

int main() {
    Rng rng(7);
    UnitDiskParams params;
    params.node_count = 30;
    params.average_degree = 6.0;
    const auto net = generate_network_checked(params, rng);
    const NodeId v = 0;

    std::cout << "network: 30 nodes, " << net.graph.edge_count() << " links; watching node "
              << v << " (degree " << net.graph.degree(v) << ")\n\n";

    std::cout << "view growth per hello round:\n";
    for (std::size_t k = 1; k <= 4; ++k) {
        HelloProtocol hello(net.graph, HelloConfig{.rounds = k});
        Rng hrng(1);
        hello.run(hrng);
        const auto view = hello.view_of(v);
        std::size_t visible = 0;
        for (char c : view.visible) visible += (c != 0);
        const bool matches = (view.graph == local_topology(net.graph, v, k).graph);
        std::cout << "  after round " << k << ": sees " << visible << " nodes, "
                  << view.graph.edge_count() << " links"
                  << (matches ? "  == analytic G_k(v)" : "  (MISMATCH!)") << "; protocol sent "
                  << hello.total_bytes() << " bytes total\n";
    }

    std::cout << "\nbroadcast from node 0 over hello-built 2-hop views:\n";
    for (double loss : {0.0, 0.5}) {
        HelloProtocol hello(net.graph, HelloConfig{.rounds = 2, .loss_probability = loss});
        Rng hrng(2);
        hello.run(hrng);
        std::vector<LocalTopology> views;
        for (NodeId u = 0; u < net.graph.node_count(); ++u) views.push_back(hello.view_of(u));

        GenericAgent agent(net.graph, generic_fr_config(2), std::move(views));
        Simulator sim(net.graph);
        Rng brng(3);
        const auto result = sim.run(0, agent, brng);
        std::cout << "  hello loss " << loss << ": " << result.forward_count
                  << " forward nodes, delivery "
                  << (result.full_delivery ? "complete" : "INCOMPLETE")
                  << " (worse views => less pruning, never a coverage hole)\n";
    }
    return 0;
}
