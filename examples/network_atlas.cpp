// Network atlas: generate a batch of random ad hoc networks, broadcast
// with several algorithms, and emit SVG + DOT renderings of the forward
// sets — a visual tour of how the schemes differ on the same topology.
//
//   $ example_network_atlas [seed]
//
// Writes atlas_<algorithm>.svg and atlas_topology.dot into the current
// directory and prints a comparison table.

#include <fstream>
#include <iostream>

#include "algorithms/generic.hpp"
#include "algorithms/mpr.hpp"
#include "algorithms/sba.hpp"
#include "graph/metrics.hpp"
#include "graph/unit_disk.hpp"
#include "io/dot.hpp"
#include "io/svg.hpp"
#include "stats/table.hpp"

using namespace adhoc;

int main(int argc, char** argv) {
    const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7u;
    Rng rng(seed);
    UnitDiskParams params;
    params.node_count = 80;
    params.average_degree = 8.0;
    const auto net = generate_network_checked(params, rng);
    const NodeId source = 0;

    std::cout << "atlas network: n=" << net.graph.node_count()
              << " links=" << net.graph.edge_count()
              << " diameter-ish avg degree=" << average_degree(net.graph)
              << " clustering=" << clustering_coefficient(net.graph) << "\n\n";

    {
        std::ofstream dot("atlas_topology.dot");
        write_dot(dot, net.graph, {});
    }

    struct Entry {
        std::string label;
        const BroadcastAlgorithm* algorithm;
    };
    const GenericBroadcast generic_fr(generic_fr_config(2), "generic-fr");
    const GenericBroadcast generic_frb(generic_frb_config(2), "generic-frb");
    const GenericBroadcast generic_static(generic_static_config(2), "generic-static");
    const MprAlgorithm mpr;
    const SbaAlgorithm sba;
    const std::vector<Entry> entries{
        {"generic-static", &generic_static},
        {"generic-fr", &generic_fr},
        {"generic-frb", &generic_frb},
        {"mpr", &mpr},
        {"sba", &sba},
    };

    std::vector<std::vector<std::string>> rows;
    rows.push_back({"algorithm", "forward", "completion", "delivery"});
    for (const Entry& e : entries) {
        Rng run(seed + 1);
        const auto result = e.algorithm->broadcast_traced(net.graph, source, run, {});
        rows.push_back({e.label, std::to_string(result.forward_count),
                        std::to_string(result.completion_time),
                        result.full_delivery ? "full" : "PARTIAL"});

        SvgOptions svg;
        svg.forward = result.transmitted;
        svg.source = source;
        svg.title = e.label + ": " + std::to_string(result.forward_count) + " forward nodes";
        std::ofstream out("atlas_" + e.label + ".svg");
        write_svg(out, net.graph, net.positions, svg);

        // Time-lapse companion plot: nodes colored by first-receive time.
        TimelineOptions timeline;
        timeline.receive_time =
            receive_times_from_trace(net.graph.node_count(), result.trace, source);
        timeline.forward = result.transmitted;
        timeline.source = source;
        timeline.title = e.label + ": propagation timeline";
        std::ofstream tout("atlas_" + e.label + "_timeline.svg");
        write_svg_timeline(tout, net.graph, net.positions, timeline);
    }
    std::cout << format_grid(rows)
              << "\nwrote atlas_topology.dot, atlas_<algorithm>.svg and "
                 "atlas_<algorithm>_timeline.svg\n";
    return 0;
}
