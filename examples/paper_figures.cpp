// Walkthrough of the paper's illustrative figures (1, 2, 4, 6) on their
// toy networks, printing what the framework decides at each step.  This is
// the "read the paper alongside the code" example.

#include <iostream>

#include "core/coverage.hpp"
#include "core/maxmin.hpp"
#include "core/view.hpp"

using namespace adhoc;

namespace {

void figure1() {
    std::cout << "== Figure 1: three-node network, broadcast from v ==\n";
    Graph g(3);  // 0=u, 1=v, 2=w
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(0, 2);
    const PriorityKeys keys(g, PriorityScheme::kId);

    // View (b): v has transmitted.
    std::vector<char> visited{0, 1, 0};
    const std::vector<char> none(3, 0);
    for (NodeId x : {0u, 2u}) {
        const View view = make_dynamic_view(g, x, 0, keys, visited, none);
        const bool covered = coverage_condition_holds(view, x);
        std::cout << "  node " << (x == 0 ? "u" : "w") << ": coverage condition "
                  << (covered ? "holds -> non-forward" : "fails -> forward") << '\n';
    }
    std::cout << "  => the two retransmissions of plain flooding are pruned\n\n";
}

void figure2() {
    std::cout << "== Figure 2: maximal replacement path via MAX_MIN ==\n";
    Graph g(10);  // 0=u, 1=w, 2=v, 9=y (visited)
    g.add_edge(2, 0);
    g.add_edge(2, 1);
    g.add_edge(0, 9);
    g.add_edge(9, 6);
    g.add_edge(6, 4);
    g.add_edge(4, 1);
    g.add_edge(0, 3);
    g.add_edge(3, 1);
    g.add_edge(0, 5);
    g.add_edge(5, 7);
    g.add_edge(7, 6);
    const PriorityKeys keys(g, PriorityScheme::kId);
    std::vector<char> visited(10, 0);
    visited[9] = 1;
    const View view = make_dynamic_view(g, 2, 0, keys, visited, std::vector<char>(10, 0));
    const Priority pv = keys.evaluate(2, NodeStatus::kUnvisited);

    std::cout << "  max-min node for (u,w,v): " << max_min_node(view, 0, 1, pv) << '\n';
    const auto path = max_min_path(view, 0, 1, pv);
    std::cout << "  maximal replacement path: u";
    if (path) {
        for (NodeId x : *path) std::cout << " - " << (x == 9 ? std::string("y") : std::to_string(x));
    }
    std::cout << " - w   (paper: u-y-6-4-w)\n\n";
}

void figure4() {
    std::cout << "== Figure 4 logic: static vs dynamic pruning ==\n";
    Graph g(6);
    g.add_edge(3, 1);
    g.add_edge(3, 5);
    g.add_edge(1, 2);
    g.add_edge(2, 5);
    const PriorityKeys keys(g, PriorityScheme::kId);

    const View stat = make_static_view(g, 3, 0, keys);
    std::cout << "  static view:  node 3 " << (coverage_condition_holds(stat, 3)
              ? "prunes" : "must forward (node 2 has lower priority)") << '\n';

    std::vector<char> visited(6, 0);
    visited[2] = 1;  // node 2 is the source and has transmitted
    const View dyn = make_dynamic_view(g, 3, 0, keys, visited, std::vector<char>(6, 0));
    std::cout << "  dynamic view: node 3 " << (coverage_condition_holds(dyn, 3)
              ? "prunes (visited node 2 now outranks it)" : "must forward") << "\n\n";
}

void figure6() {
    std::cout << "== Figure 6(a): full vs strong coverage, 2- vs 3-hop views ==\n";
    Graph g(9);
    g.add_edge(4, 1);
    g.add_edge(4, 2);
    g.add_edge(4, 3);
    g.add_edge(1, 3);
    g.add_edge(1, 5);
    g.add_edge(5, 6);
    g.add_edge(6, 2);
    g.add_edge(3, 7);
    g.add_edge(7, 8);
    g.add_edge(8, 2);
    const PriorityKeys keys(g, PriorityScheme::kId);

    const View v3 = make_static_view(g, 4, 3, keys);
    const View v2 = make_static_view(g, 4, 2, keys);
    std::cout << "  node 4, 3-hop view, full condition:   "
              << (coverage_condition_holds(v3, 4) ? "non-forward" : "forward") << '\n';
    std::cout << "  node 4, 3-hop view, strong condition: "
              << (coverage_condition_holds(v3, 4, {.strong = true}) ? "non-forward"
                                                                    : "forward") << '\n';
    std::cout << "  node 4, 2-hop view, full condition:   "
              << (coverage_condition_holds(v2, 4) ? "non-forward"
                                                  : "forward (link 7-8 invisible)") << "\n\n";

    std::cout << "== Figure 6(b): merged visited nodes ==\n";
    Graph h(5);
    h.add_edge(2, 0);
    h.add_edge(2, 1);
    h.add_edge(2, 3);
    h.add_edge(2, 4);
    h.add_edge(3, 0);
    h.add_edge(3, 4);
    const PriorityKeys hk(h, PriorityScheme::kId);
    std::vector<char> visited(5, 0);
    visited[0] = visited[1] = 1;
    const View hv = make_dynamic_view(h, 2, 0, hk, visited, std::vector<char>(5, 0));
    std::cout << "  node 2 with two (non-adjacent) visited neighbors:\n";
    std::cout << "    strong condition, visited merged:     "
              << (coverage_condition_holds(hv, 2, {.strong = true}) ? "non-forward"
                                                                    : "forward") << '\n';
    std::cout << "    strong condition, merge disabled:     "
              << (coverage_condition_holds(hv, 2, {.strong = true, .merge_visited = false})
                      ? "non-forward"
                      : "forward") << '\n';
}

}  // namespace

int main() {
    figure1();
    figure2();
    figure4();
    figure6();
    return 0;
}
