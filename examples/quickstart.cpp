// Quickstart: build a small ad hoc network, run the generic broadcast
// protocol, and inspect the result.
//
//   $ example_quickstart
//
// Walks through the public API in the order a new user meets it:
//  1. build or generate a topology,
//  2. pick a protocol configuration (the four axes of the paper),
//  3. run one broadcast,
//  4. verify the forward set is a connected dominating set.

#include <iostream>

#include "algorithms/generic.hpp"
#include "graph/unit_disk.hpp"
#include "verify/cds_check.hpp"

using namespace adhoc;

int main() {
    // 1. A random connected unit disk graph: 50 nodes in a 100x100 area,
    //    average degree 6 — the paper's sparse setting.
    Rng rng(2003);
    UnitDiskParams params;
    params.node_count = 50;
    params.average_degree = 6.0;
    const UnitDiskNetwork net = generate_network_checked(params, rng);
    std::cout << "network: " << net.graph.node_count() << " nodes, "
              << net.graph.edge_count() << " links, range " << net.range << "\n";

    // 2. The generic protocol, first-receipt self-pruning with 2-hop
    //    information and id priority (the most common configuration).
    GenericConfig config = generic_fr_config(/*hops=*/2, PriorityScheme::kId);
    const GenericBroadcast algorithm(config);

    // 3. Broadcast from node 0.
    const NodeId source = 0;
    const BroadcastResult result = algorithm.broadcast(net.graph, source, rng);
    std::cout << "broadcast from node " << source << ": " << result.forward_count
              << " forward nodes (flooding would use " << net.graph.node_count() << "), "
              << result.received_count << "/" << net.graph.node_count()
              << " nodes reached in " << result.completion_time << " time units\n";

    // 4. The paper's correctness guarantee (Theorems 1-2): the nodes that
    //    transmitted form a connected dominating set.
    const BroadcastVerdict verdict = check_broadcast(net.graph, source, result);
    std::cout << "full delivery: " << (verdict.full_delivery ? "yes" : "NO") << "\n"
              << "forward set is a CDS: " << (verdict.cds.ok() ? "yes" : "NO") << "\n";

    // Bonus: the same network under a stronger configuration — backoff
    // timing prunes further by snooping neighbors during the wait.
    const GenericBroadcast frb(generic_frb_config(2));
    const BroadcastResult result_frb = frb.broadcast(net.graph, source, rng);
    std::cout << "with random backoff (FRB): " << result_frb.forward_count
              << " forward nodes\n";

    return verdict.ok() ? 0 : 1;
}
