// Route discovery: the workload the paper's introduction motivates.
// On-demand routing protocols (AODV/DSR-style) flood a route request
// (RREQ) through the network; efficient broadcasting directly reduces
// route-discovery overhead.  This example runs RREQ floods with plain
// flooding vs the generic protocol, reconstructs the discovered route from
// the broadcast trace, and compares overhead.
//
//   $ example_route_discovery [seed]

#include <algorithm>
#include <iostream>
#include <map>

#include "algorithms/flooding.hpp"
#include "algorithms/generic.hpp"
#include "graph/traversal.hpp"
#include "graph/unit_disk.hpp"

using namespace adhoc;

namespace {

/// Replays a broadcast trace and extracts the reverse path a RREQ builds:
/// each node remembers the first neighbor it heard the request from.
std::vector<NodeId> discovered_route(const Graph& g, const Trace& trace, NodeId source,
                                     NodeId destination) {
    std::map<NodeId, NodeId> first_heard_from;
    for (const TraceEvent& e : trace.events()) {
        if (e.kind == TraceKind::kReceive && !first_heard_from.contains(e.node)) {
            first_heard_from[e.node] = e.other;
        }
    }
    std::vector<NodeId> route;
    NodeId at = destination;
    while (at != source) {
        route.push_back(at);
        const auto it = first_heard_from.find(at);
        if (it == first_heard_from.end()) return {};  // request never arrived
        at = it->second;
    }
    route.push_back(source);
    std::reverse(route.begin(), route.end());
    return route;
}

void discover(const char* label, const BroadcastAlgorithm& algo, const Graph& g,
              NodeId source, NodeId destination, std::uint64_t seed) {
    Rng rng(seed);
    const auto result = algo.broadcast_traced(g, source, rng, {});
    const auto route = discovered_route(g, result.trace, source, destination);
    std::cout << label << ": " << result.forward_count << " RREQ transmissions, route ";
    if (route.empty()) {
        std::cout << "NOT FOUND\n";
        return;
    }
    for (std::size_t i = 0; i < route.size(); ++i) {
        std::cout << (i ? "->" : "") << route[i];
    }
    std::cout << " (" << route.size() - 1 << " hops)\n";
}

}  // namespace

int main(int argc, char** argv) {
    const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11u;
    Rng rng(seed);
    UnitDiskParams params;
    params.node_count = 100;
    params.average_degree = 6.0;
    const auto net = generate_network_checked(params, rng);

    // Pick the destination as a node far from the source.
    const NodeId source = 0;
    const auto dist = bfs_distances(net.graph, source);
    NodeId destination = 0;
    for (NodeId v = 0; v < net.graph.node_count(); ++v) {
        if (dist[v] != kUnreachable && dist[v] > dist[destination]) destination = v;
    }
    std::cout << "route discovery " << source << " -> " << destination << " ("
              << dist[destination] << " hops shortest) on " << net.graph.node_count()
              << " nodes\n\n";

    const FloodingAlgorithm flooding;
    const GenericBroadcast generic(generic_fr_config(2));
    const GenericBroadcast generic_frb(generic_frb_config(2));
    discover("flooding   ", flooding, net.graph, source, destination, seed);
    discover("generic FR ", generic, net.graph, source, destination, seed);
    discover("generic FRB", generic_frb, net.graph, source, destination, seed);

    std::cout << "\nEvery scheme finds a route; the pruned broadcasts pay a fraction of\n"
                 "the RREQ overhead (the broadcast-storm problem the paper addresses).\n";
    return 0;
}
