#include "algorithms/algorithm.hpp"

#include <cassert>

namespace adhoc {

BroadcastResult BroadcastAlgorithm::broadcast(const Graph& g, NodeId source, Rng& rng) const {
    auto agent = make_agent(g);
    Simulator sim(g);
    return sim.run(source, *agent, rng);
}

BroadcastResult BroadcastAlgorithm::broadcast_traced(const Graph& g, NodeId source, Rng& rng,
                                                     MediumConfig medium) const {
    auto agent = make_agent(g);
    Simulator sim(g, medium);
    sim.enable_trace();
    return sim.run(source, *agent, rng);
}

BroadcastResult BroadcastAlgorithm::broadcast_with_stale_knowledge(const Graph& knowledge,
                                                                   const Graph& actual,
                                                                   NodeId source,
                                                                   Rng& rng) const {
    assert(knowledge.node_count() == actual.node_count());
    auto agent = make_agent(knowledge);
    Simulator sim(actual);
    return sim.run(source, *agent, rng);
}

ResilientResult BroadcastAlgorithm::broadcast_resilient(const Graph& g, NodeId source,
                                                        Rng& rng, MediumConfig medium,
                                                        const faults::FaultPlan& plan,
                                                        const faults::RecoveryConfig& recovery,
                                                        bool trace) const {
    auto agent = make_agent(g);
    faults::RecoveryAgent wrapped(*agent, recovery);
    Agent& top = recovery.enabled ? static_cast<Agent&>(wrapped) : *agent;
    Simulator sim(g, medium);
    if (trace) sim.enable_trace();
    sim.attach_faults(&plan);
    ResilientResult rr;
    rr.result = sim.run(source, top, rng);
    rr.summary = faults::classify_outcome(g, source, rr.result, plan);
    return rr;
}

std::unique_ptr<Agent> StaticCdsAlgorithm::make_agent(const Graph& g) const {
    return std::make_unique<StaticSetAgent>(g, forward_set(g));
}

StaticSetAgent::StaticSetAgent(const Graph& g, std::vector<char> forward_set,
                               std::size_t history)
    : forward_(std::move(forward_set)),
      first_state_(g.node_count()),
      seen_(g.node_count(), 0),
      history_(history) {
    assert(forward_.size() == g.node_count());
}

void StaticSetAgent::start(Simulator& sim, NodeId source, Rng& /*rng*/) {
    // The source always forwards, whether or not it is in the CDS.
    sim.transmit(source, chain_state(BroadcastState{}, source, {}, history_));
}

void StaticSetAgent::on_receive(Simulator& sim, NodeId node, const Transmission& tx,
                                Rng& /*rng*/) {
    if (seen_[node]) return;
    seen_[node] = 1;
    first_state_[node] = tx.state;
    if (forward_[node]) {
        sim.transmit(node, chain_state(first_state_[node], node, {}, history_));
    } else {
        sim.note_prune(node);
    }
}

}  // namespace adhoc
