/// \file algorithm.hpp
/// \brief Top-level broadcast-algorithm interface used by benches, tests
/// and examples.
///
/// Every protocol in the repository — the generic framework and every
/// special case of Section 6 — is exposed behind this small interface: run
/// one broadcast on one topology and report what happened.  Construction is
/// cheap; all per-topology state is built inside `broadcast`.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"
#include "faults/outcome.hpp"
#include "faults/recovery.hpp"
#include "graph/graph.hpp"
#include "sim/medium.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace adhoc {

/// Outcome of one faulted broadcast: the raw run plus its
/// graceful-degradation classification.
struct ResilientResult {
    BroadcastResult result;
    faults::ResilienceSummary summary;
};

class BroadcastAlgorithm {
  public:
    virtual ~BroadcastAlgorithm() = default;

    /// Display name ("DP", "Generic FR", ...), stable across runs.
    [[nodiscard]] virtual std::string name() const = 0;

    /// Runs one broadcast from `source` over `g` (collision-free medium).
    [[nodiscard]] virtual BroadcastResult broadcast(const Graph& g, NodeId source,
                                                    Rng& rng) const;

    /// Like `broadcast` but with event tracing and a configurable medium
    /// (loss/jitter injection).  Default implementation for agent-based
    /// algorithms; others may override.
    [[nodiscard]] virtual BroadcastResult broadcast_traced(const Graph& g, NodeId source,
                                                           Rng& rng,
                                                           MediumConfig medium) const;

    /// Stale-view broadcast: protocol decisions are made against
    /// `knowledge` (the hello-derived topology snapshot) while packets
    /// propagate over `actual` (the topology at broadcast time).  Both
    /// graphs must share the node-id space.  Used by the mobility
    /// experiments; with knowledge == actual this equals `broadcast`.
    [[nodiscard]] BroadcastResult broadcast_with_stale_knowledge(const Graph& knowledge,
                                                                 const Graph& actual,
                                                                 NodeId source,
                                                                 Rng& rng) const;

    /// Faulted broadcast: runs under `plan` (node churn, link churn,
    /// asymmetric loss) with the NACK recovery layer wrapped around this
    /// algorithm's agent when `recovery.enabled`.  Always terminates —
    /// every recovery budget is bounded — and classifies the wreckage as
    /// delivered / degraded / partitioned.  With an empty plan and
    /// recovery disabled this equals `broadcast_traced`.
    [[nodiscard]] ResilientResult broadcast_resilient(const Graph& g, NodeId source, Rng& rng,
                                                      MediumConfig medium,
                                                      const faults::FaultPlan& plan,
                                                      const faults::RecoveryConfig& recovery,
                                                      bool trace = false) const;

  protected:
    /// Helper: create this algorithm's agent for one topology.  The base
    /// `broadcast`/`broadcast_traced` are implemented in terms of it.
    [[nodiscard]] virtual std::unique_ptr<Agent> make_agent(const Graph& g) const = 0;
};

/// A static (proactive) CDS construction: maps a topology to a forward-node
/// mask.  Static broadcast algorithms are "forward set + relay on first
/// receipt"; this interface lets tests check the CDS property directly
/// without simulating.
class StaticCdsAlgorithm : public BroadcastAlgorithm {
  public:
    /// The proactively computed forward set (independent of any source).
    [[nodiscard]] virtual std::vector<char> forward_set(const Graph& g) const = 0;

  protected:
    [[nodiscard]] std::unique_ptr<Agent> make_agent(const Graph& g) const override;
};

/// Agent that relays on first receipt iff the node is in a precomputed
/// forward set (the source always transmits).  Shared by all static
/// algorithms.
class StaticSetAgent : public Agent {
  public:
    StaticSetAgent(const Graph& g, std::vector<char> forward_set, std::size_t history = 1);

    void start(Simulator& sim, NodeId source, Rng& rng) override;
    void on_receive(Simulator& sim, NodeId node, const Transmission& tx, Rng& rng) override;

  private:
    std::vector<char> forward_;
    std::vector<BroadcastState> first_state_;
    std::vector<char> seen_;
    std::size_t history_;
};

}  // namespace adhoc
