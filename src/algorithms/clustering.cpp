#include "algorithms/clustering.hpp"

#include <cassert>

#include "graph/traversal.hpp"

namespace adhoc {

std::vector<char> lowest_id_mis(const Graph& g) {
    std::vector<char> in_mis(g.node_count(), 0);
    for (NodeId v = 0; v < g.node_count(); ++v) {
        bool blocked = false;
        for (NodeId u : g.neighbors(v)) {
            if (u < v && in_mis[u]) {
                blocked = true;
                break;
            }
        }
        in_mis[v] = blocked ? 0 : 1;
    }
    return in_mis;
}

std::vector<NodeId> cluster_heads(const Graph& g) {
    const auto mis = lowest_id_mis(g);
    std::vector<NodeId> head(g.node_count(), kInvalidNode);
    for (NodeId v = 0; v < g.node_count(); ++v) {
        if (mis[v]) {
            head[v] = v;
            continue;
        }
        for (NodeId u : g.neighbors(v)) {  // sorted: first hit = smallest id
            if (mis[u]) {
                head[v] = u;
                break;
            }
        }
        assert(head[v] != kInvalidNode && "MIS must dominate");
    }
    return head;
}

std::vector<char> cluster_cds(const Graph& g) {
    const std::size_t n = g.node_count();
    std::vector<char> cds = lowest_id_mis(g);
    if (n <= 1) return cds;

    // Connect the heads over a BFS spanning structure of the "within 3
    // hops" head adjacency; each join adds the <=2 intermediate gateways.
    std::vector<NodeId> heads;
    for (NodeId v = 0; v < n; ++v) {
        if (cds[v]) heads.push_back(v);
    }
    std::vector<char> joined(n, 0);
    joined[heads.front()] = 1;
    std::size_t joined_count = 1;
    while (joined_count < heads.size()) {
        // Expand from each joined head to unjoined heads within 3 hops.
        bool progress = false;
        for (NodeId u : heads) {
            if (!joined[u]) continue;
            const auto dist = bfs_distances(g, u);
            for (NodeId w : heads) {
                if (joined[w] || dist[w] > 3) continue;
                const auto path = shortest_path(g, u, w);
                assert(path.has_value());
                for (NodeId x : *path) cds[x] = 1;  // adds <=2 gateways
                joined[w] = 1;
                ++joined_count;
                progress = true;
            }
        }
        assert(progress && "3-hop head adjacency of a connected UDG is connected");
        if (!progress) break;  // defensive on non-UDG inputs
    }
    return cds;
}

}  // namespace adhoc
