/// \file clustering.hpp
/// \brief Cluster/MIS-based CDS construction (Lin-Gerla clustering; Wan,
/// Alzoubi & Frieder style connection) — the paper's Section 1 reference
/// point for constant-approximation schemes.
///
/// "The basic idea is to partition an ad hoc network into several regions
/// ... and select a constant number of nodes from each region to form a
/// CDS."  On unit disk graphs a maximal independent set (the cluster
/// heads) is a constant-factor dominating set, and any two nearest MIS
/// nodes are at most 3 hops apart, so connecting them over a spanning tree
/// adds at most two gateway nodes per edge — a constant-approximation CDS.
/// The paper argues (and `bench/ablation_approximation` reproduces) that
/// the greedy and coverage-condition schemes beat it on random networks
/// despite its better worst case.

#pragma once

#include "algorithms/algorithm.hpp"

namespace adhoc {

/// Maximal independent set by ascending node id (a node joins unless a
/// smaller-id neighbor already did).  On a UDG this is the cluster-head
/// set of lowest-id clustering.
[[nodiscard]] std::vector<char> lowest_id_mis(const Graph& g);

/// Per-node cluster-head assignment under lowest-id clustering: heads map
/// to themselves, members to their smallest-id head neighbor.
[[nodiscard]] std::vector<NodeId> cluster_heads(const Graph& g);

/// Constant-approximation CDS: MIS heads plus gateway connectors along a
/// spanning tree of the 3-hop head adjacency.  Precondition: connected g.
[[nodiscard]] std::vector<char> cluster_cds(const Graph& g);

/// Broadcast over the cluster CDS.
class ClusterCdsAlgorithm final : public StaticCdsAlgorithm {
  public:
    [[nodiscard]] std::string name() const override { return "Cluster CDS"; }
    [[nodiscard]] std::vector<char> forward_set(const Graph& g) const override {
        return cluster_cds(g);
    }
};

}  // namespace adhoc
