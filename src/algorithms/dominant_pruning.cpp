#include "algorithms/dominant_pruning.hpp"

#include <algorithm>

#include "core/designation.hpp"
#include "graph/khop.hpp"
#include "graph/traversal.hpp"

namespace adhoc {

std::string to_string(DominantPruningVariant variant) {
    switch (variant) {
        case DominantPruningVariant::kDp: return "DP";
        case DominantPruningVariant::kTdp: return "TDP";
        case DominantPruningVariant::kPdp: return "PDP";
        case DominantPruningVariant::kAhbp: return "AHBP";
    }
    return "?";
}

namespace {

class DominantPruningAgent final : public Agent {
  public:
    DominantPruningAgent(const Graph& g, DominantPruningVariant variant)
        : graph_(&g), variant_(variant) {}

    void start(Simulator& sim, NodeId source, Rng& /*rng*/) override {
        forward(sim, source, kInvalidNode, BroadcastState{});
    }

    void on_receive(Simulator& sim, NodeId node, const Transmission& tx, Rng& /*rng*/) override {
        if (sim.has_transmitted(node)) return;
        // The sender's record is the last history entry; check whether it
        // designated us.  Undesignated nodes never forward.
        const auto& hist = tx.state.history;
        if (hist.empty() || hist.back().node != tx.sender) return;
        const auto& d = hist.back().designated;
        if (std::find(d.begin(), d.end(), node) == d.end()) {
            sim.note_prune(node);
            return;
        }
        forward(sim, node, tx.sender, tx.state);
    }

  private:
    void forward(Simulator& sim, NodeId v, NodeId u, const BroadcastState& received) {
        const Graph& g = *graph_;

        // Uncovered 2-hop targets Y (strict distance 2 from v).
        const auto dist_v = bfs_distances(g, v);
        std::vector<char> in_y(g.node_count(), 0);
        for (NodeId y = 0; y < g.node_count(); ++y) {
            if (dist_v[y] == 2) in_y[y] = 1;
        }
        if (u != kInvalidNode) {
            in_y[u] = 0;
            for (NodeId y : g.neighbors(u)) in_y[y] = 0;  // DP: minus N(u)
            switch (variant_) {
                case DominantPruningVariant::kDp:
                    break;
                case DominantPruningVariant::kPdp:
                    // Minus N(w) for every common neighbor w of u and v.
                    for (NodeId w : g.neighbors(u)) {
                        if (!g.has_edge(w, v)) continue;
                        for (NodeId y : g.neighbors(w)) in_y[y] = 0;
                    }
                    break;
                case DominantPruningVariant::kTdp:
                    // Minus the piggybacked N2(u).
                    for (NodeId y : received.sender_two_hop) in_y[y] = 0;
                    break;
                case DominantPruningVariant::kAhbp:
                    // Minus N[d] for the sender's other gateways: they
                    // will cover their own neighborhoods.
                    if (!received.history.empty() && received.history.back().node == u) {
                        for (NodeId d : received.history.back().designated) {
                            if (d == v) continue;
                            in_y[d] = 0;
                            for (NodeId y : g.neighbors(d)) in_y[y] = 0;
                        }
                    }
                    break;
            }
        }
        std::vector<NodeId> targets;
        for (NodeId y = 0; y < g.node_count(); ++y) {
            if (in_y[y]) targets.push_back(y);
        }

        // Candidates X = N(v) − N[u].
        std::vector<NodeId> candidates;
        for (NodeId w : g.neighbors(v)) {
            if (u != kInvalidNode && (w == u || g.has_edge(w, u))) continue;
            candidates.push_back(w);
        }

        std::vector<NodeId> designated = greedy_cover(g, candidates, targets);
        for (NodeId d : designated) sim.note_designation(v, d);

        BroadcastState st = chain_state(received, v, std::move(designated), /*h=*/1);
        if (variant_ == DominantPruningVariant::kTdp) {
            st.sender_two_hop = k_hop_nodes(g, v, 2);  // piggyback N2(v)
        }
        sim.transmit(v, std::move(st));
    }

    const Graph* graph_;
    DominantPruningVariant variant_;
};

}  // namespace

std::unique_ptr<Agent> DominantPruningAlgorithm::make_agent(const Graph& g) const {
    return std::make_unique<DominantPruningAgent>(g, variant_);
}

}  // namespace adhoc
