/// \file dominant_pruning.hpp
/// \brief Dominant pruning (Lim & Kim) and Lou & Wu's TDP/PDP extensions
/// (Section 6.3).
///
/// All three are dynamic neighbor-designating algorithms: a forward node v
/// that received the packet from u selects its local forward set from
/// X = N(v) − N(u) with the greedy set-cover heuristic so as to cover the
/// uncovered 2-hop targets Y:
///
///   DP  : Y = N2(v) − N(u) − N(v)
///   TDP : Y = N2(v) − N2(u) − N(v)        (u piggybacks N2(u))
///   PDP : Y = N2(v) − N(u) − N(v) − N(N(u) ∩ N(v))   (no piggybacking)
///   AHBP: Y = N2(v) − N(u) − N(v) − N(D(u) \ {v})    (Peng & Lu's Ad Hoc
///         Broadcast Protocol [18]: the other relay gateways designated by
///         the same sender will cover their own neighborhoods)
///
/// Only designated nodes (and the source) forward.

#pragma once

#include "algorithms/algorithm.hpp"

namespace adhoc {

enum class DominantPruningVariant : std::uint8_t {
    kDp,    ///< dominant pruning
    kTdp,   ///< total dominant pruning (piggybacks N2 of the sender)
    kPdp,   ///< partial dominant pruning
    kAhbp,  ///< AHBP: eliminate coverage of the sender's other gateways
};

[[nodiscard]] std::string to_string(DominantPruningVariant variant);

class DominantPruningAlgorithm final : public BroadcastAlgorithm {
  public:
    explicit DominantPruningAlgorithm(DominantPruningVariant variant) : variant_(variant) {}

    [[nodiscard]] std::string name() const override { return to_string(variant_); }
    [[nodiscard]] DominantPruningVariant variant() const noexcept { return variant_; }

  protected:
    [[nodiscard]] std::unique_ptr<Agent> make_agent(const Graph& g) const override;

  private:
    DominantPruningVariant variant_;
};

}  // namespace adhoc
