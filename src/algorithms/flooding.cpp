#include "algorithms/flooding.hpp"

namespace adhoc {

namespace {

class FloodingAgent final : public Agent {
  public:
    explicit FloodingAgent(const Graph& g) : seen_(g.node_count(), 0) {}

    void start(Simulator& sim, NodeId source, Rng& /*rng*/) override {
        seen_[source] = 1;
        sim.transmit(source, chain_state({}, source, {}, /*h=*/1));
    }

    void on_receive(Simulator& sim, NodeId node, const Transmission& tx, Rng& /*rng*/) override {
        if (seen_[node]) return;
        seen_[node] = 1;
        sim.transmit(node, chain_state(tx.state, node, {}, /*h=*/1));
    }

  private:
    std::vector<char> seen_;
};

}  // namespace

std::unique_ptr<Agent> FloodingAlgorithm::make_agent(const Graph& g) const {
    return std::make_unique<FloodingAgent>(g);
}

}  // namespace adhoc
