/// \file flooding.hpp
/// \brief Blind flooding: every node forwards exactly once (Section 1).
///
/// The baseline every pruning scheme is measured against; its forward-node
/// count is always n on a connected graph, and it trivially ensures
/// coverage under the collision-free assumption.

#pragma once

#include "algorithms/algorithm.hpp"

namespace adhoc {

class FloodingAlgorithm final : public BroadcastAlgorithm {
  public:
    [[nodiscard]] std::string name() const override { return "Flooding"; }

  protected:
    [[nodiscard]] std::unique_ptr<Agent> make_agent(const Graph& g) const override;
};

}  // namespace adhoc
