#include "algorithms/generic.hpp"

namespace adhoc {

GenericConfig generic_static_config(std::size_t hops, PriorityScheme priority) {
    GenericConfig cfg;
    cfg.timing = Timing::kStatic;
    cfg.selection = Selection::kSelfPruning;
    cfg.hops = hops;
    cfg.priority = priority;
    return cfg;
}

GenericConfig generic_fr_config(std::size_t hops, PriorityScheme priority) {
    GenericConfig cfg;
    cfg.timing = Timing::kFirstReceipt;
    cfg.selection = Selection::kSelfPruning;
    cfg.hops = hops;
    cfg.priority = priority;
    cfg.history = 2;
    return cfg;
}

GenericConfig generic_frb_config(std::size_t hops, PriorityScheme priority) {
    GenericConfig cfg = generic_fr_config(hops, priority);
    cfg.timing = Timing::kRandomBackoff;
    return cfg;
}

GenericConfig generic_frbd_config(std::size_t hops, PriorityScheme priority) {
    GenericConfig cfg = generic_fr_config(hops, priority);
    cfg.timing = Timing::kDegreeBackoff;
    return cfg;
}

}  // namespace adhoc
