/// \file generic.hpp
/// \brief The generic framework as a BroadcastAlgorithm, plus the named
/// configurations used throughout the paper's evaluation.

#pragma once

#include <optional>

#include "algorithms/algorithm.hpp"
#include "sim/generic_protocol.hpp"

namespace adhoc {

/// Algorithm 1 with an arbitrary configuration of the four axes.
class GenericBroadcast final : public BroadcastAlgorithm {
  public:
    explicit GenericBroadcast(GenericConfig config, std::string label = {})
        : config_(config), label_(std::move(label)) {}

    [[nodiscard]] std::string name() const override {
        return label_.empty() ? "Generic " + config_.summary() : label_;
    }
    [[nodiscard]] const GenericConfig& config() const noexcept { return config_; }

  protected:
    [[nodiscard]] std::unique_ptr<Agent> make_agent(const Graph& g) const override {
        return std::make_unique<GenericAgent>(g, config_);
    }

  private:
    GenericConfig config_;
    std::string label_;
};

// ---- Named paper configurations ------------------------------------

/// Static self-pruning generic algorithm ("Generic" in Figure 14).
[[nodiscard]] GenericConfig generic_static_config(std::size_t hops,
                                                  PriorityScheme priority = PriorityScheme::kNcr);

/// First-receipt generic algorithm ("Generic" in Figure 15; h = 2).
[[nodiscard]] GenericConfig generic_fr_config(std::size_t hops,
                                              PriorityScheme priority = PriorityScheme::kDegree);

/// First-receipt-with-backoff generic algorithm ("Generic" in Figure 16).
[[nodiscard]] GenericConfig generic_frb_config(std::size_t hops,
                                               PriorityScheme priority = PriorityScheme::kId);

/// FRBD: backoff proportional to the inverse of node degree (Figure 10).
[[nodiscard]] GenericConfig generic_frbd_config(std::size_t hops,
                                                PriorityScheme priority = PriorityScheme::kId);

}  // namespace adhoc
