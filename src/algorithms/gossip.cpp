#include "algorithms/gossip.hpp"

#include <cassert>
#include <sstream>

namespace adhoc {

namespace {

class GossipAgent final : public Agent {
  public:
    GossipAgent(const Graph& g, double p) : seen_(g.node_count(), 0), p_(p) {}

    void start(Simulator& sim, NodeId source, Rng& /*rng*/) override {
        seen_[source] = 1;
        sim.transmit(source, chain_state({}, source, {}, /*h=*/1));
    }

    void on_receive(Simulator& sim, NodeId node, const Transmission& tx, Rng& rng) override {
        if (seen_[node]) return;
        seen_[node] = 1;
        if (rng.chance(p_)) {
            sim.transmit(node, chain_state(tx.state, node, {}, /*h=*/1));
        } else {
            sim.note_prune(node);
        }
    }

  private:
    std::vector<char> seen_;
    double p_;
};

}  // namespace

GossipAlgorithm::GossipAlgorithm(double p) : p_(p) {
    assert(p >= 0.0 && p <= 1.0);
}

std::string GossipAlgorithm::name() const {
    std::ostringstream out;
    out << "Gossip(p=" << p_ << ")";
    return out.str();
}

std::unique_ptr<Agent> GossipAlgorithm::make_agent(const Graph& g) const {
    return std::make_unique<GossipAgent>(g, p_);
}

}  // namespace adhoc
