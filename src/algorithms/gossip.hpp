/// \file gossip.hpp
/// \brief Probabilistic (gossip) flooding baseline (Section 1).
///
/// Each node forwards the first received copy with probability p.  The
/// paper's introduction uses this family to motivate deterministic schemes:
/// gossip cannot guarantee coverage, and conservative p values yield large
/// forward sets.  The `ablation_gossip` bench reproduces that trade-off.

#pragma once

#include "algorithms/algorithm.hpp"

namespace adhoc {

class GossipAlgorithm final : public BroadcastAlgorithm {
  public:
    /// \param p forwarding probability in [0, 1]; the source always sends.
    explicit GossipAlgorithm(double p);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] double probability() const noexcept { return p_; }

  protected:
    [[nodiscard]] std::unique_ptr<Agent> make_agent(const Graph& g) const override;

  private:
    double p_;
};

}  // namespace adhoc
