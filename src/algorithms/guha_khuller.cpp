#include "algorithms/guha_khuller.hpp"

#include <cassert>

namespace adhoc {

namespace {

enum class Color : unsigned char { kWhite, kGray, kBlack };

}  // namespace

std::vector<char> guha_khuller_cds(const Graph& g) {
    const std::size_t n = g.node_count();
    std::vector<char> cds(n, 0);
    if (n <= 1) return cds;

    std::vector<Color> color(n, Color::kWhite);
    std::size_t white_count = n;

    auto white_degree = [&](NodeId v) {
        std::size_t d = 0;
        for (NodeId u : g.neighbors(v)) d += (color[u] == Color::kWhite);
        return d;
    };
    auto blacken = [&](NodeId v) {
        if (color[v] == Color::kWhite) --white_count;
        color[v] = Color::kBlack;
        cds[v] = 1;
        for (NodeId u : g.neighbors(v)) {
            if (color[u] == Color::kWhite) {
                color[u] = Color::kGray;
                --white_count;
            }
        }
    };

    // Seed: the maximum-degree node.
    NodeId seed = 0;
    for (NodeId v = 1; v < n; ++v) {
        if (g.degree(v) > g.degree(seed)) seed = v;
    }
    blacken(seed);

    // Greedy: repeatedly blacken the gray node covering the most white
    // nodes.  Growing only from gray nodes keeps the black set connected.
    while (white_count > 0) {
        NodeId best = kInvalidNode;
        std::size_t best_gain = 0;
        for (NodeId v = 0; v < n; ++v) {
            if (color[v] != Color::kGray) continue;
            const std::size_t gain = white_degree(v);
            if (gain > best_gain || (gain == best_gain && gain > 0 && v < best)) {
                best = v;
                best_gain = gain;
            }
        }
        // Connected input => some gray node always borders a white one.
        assert(best != kInvalidNode && best_gain > 0);
        if (best == kInvalidNode) break;
        blacken(best);
    }
    return cds;
}

}  // namespace adhoc
