/// \file guha_khuller.hpp
/// \brief Guha & Khuller's centralized greedy CDS (Algorithmica '98).
///
/// The paper's Section 1 discusses this algorithm as the classic
/// global-information baseline: it lacks a constant approximation ratio on
/// unit disk graphs yet "performs much better than several approaches with
/// constant ratios on randomly generated networks".  We implement the
/// first Guha-Khuller heuristic (grow a tree from the max-degree node,
/// greedily coloring) as the centralized quality yardstick the distributed
/// schemes are measured against in `bench/ablation_approximation`.

#pragma once

#include "algorithms/algorithm.hpp"

namespace adhoc {

/// Centralized greedy CDS of `g` (empty for n <= 1; a single node when one
/// node dominates the graph).  Precondition: `g` connected.
[[nodiscard]] std::vector<char> guha_khuller_cds(const Graph& g);

/// Broadcast algorithm relaying over the centralized greedy CDS.
class GuhaKhullerAlgorithm final : public StaticCdsAlgorithm {
  public:
    [[nodiscard]] std::string name() const override { return "Guha-Khuller (global)"; }
    [[nodiscard]] std::vector<char> forward_set(const Graph& g) const override {
        return guha_khuller_cds(g);
    }
};

}  // namespace adhoc
