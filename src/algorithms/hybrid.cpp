#include "algorithms/hybrid.hpp"

namespace adhoc {

GenericConfig hybrid_config(Selection selection, PriorityScheme priority, std::size_t hops) {
    GenericConfig cfg;
    cfg.timing = Timing::kFirstReceipt;
    cfg.selection = selection;
    cfg.hops = hops;
    cfg.priority = priority;
    cfg.history = 2;
    cfg.strict_designation = true;
    return cfg;
}

GenericBroadcast make_hybrid_maxdeg(std::size_t hops) {
    return GenericBroadcast(hybrid_config(Selection::kHybridMaxDegree, PriorityScheme::kId, hops),
                            "MaxDeg");
}

GenericBroadcast make_hybrid_minpri(std::size_t hops) {
    return GenericBroadcast(hybrid_config(Selection::kHybridMinId, PriorityScheme::kId, hops),
                            "MinPri");
}

}  // namespace adhoc
