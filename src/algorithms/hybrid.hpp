/// \file hybrid.hpp
/// \brief The dynamic hybrid algorithms of Section 6.4 (MaxDeg / MinPri).
///
/// A hybrid node self-prunes via the coverage condition unless designated;
/// a forward node additionally designates exactly one neighbor (not the
/// sender, not already designated) that covers at least one uncovered
/// 2-hop neighbor — chosen by maximum effective degree (MaxDeg) or lowest
/// id (MinPri).  These are thin named wrappers over the generic protocol.

#pragma once

#include "algorithms/generic.hpp"

namespace adhoc {

/// Hybrid configuration (first-receipt, 2-hop, strict designation).
[[nodiscard]] GenericConfig hybrid_config(Selection selection,
                                          PriorityScheme priority = PriorityScheme::kId,
                                          std::size_t hops = 2);

/// "MaxDeg" — designates the max-effective-degree neighbor (the new
/// algorithm Figure 11 highlights).
[[nodiscard]] GenericBroadcast make_hybrid_maxdeg(std::size_t hops = 2);

/// "MinPri" — designates the lowest-id neighbor.
[[nodiscard]] GenericBroadcast make_hybrid_minpri(std::size_t hops = 2);

}  // namespace adhoc
