#include "algorithms/lenwb.hpp"

#include <sstream>

#include "core/coverage.hpp"
#include "sim/node_agent.hpp"

namespace adhoc {

namespace {

class LenwbAgent final : public Agent {
  public:
    LenwbAgent(const Graph& g, LenwbConfig config)
        : graph_(&g),
          config_(config),
          keys_(g, config.priority),
          knowledge_(g, config.hops) {}

    void start(Simulator& sim, NodeId source, Rng& /*rng*/) override {
        sim.transmit(source, chain_state({}, source, {}, /*h=*/1));
    }

    void on_receive(Simulator& sim, NodeId node, const Transmission& tx, Rng& /*rng*/) override {
        const bool first = knowledge_.observe(node, tx);
        if (!first || sim.has_transmitted(node)) return;

        const View view = knowledge_.view_of(node, keys_);
        const Priority self = keys_.evaluate(node, NodeStatus::kUnvisited);
        // C: nodes connected to the sender via higher-priority nodes.
        const auto in_c = connected_via_higher_priority(view, tx.sender, self);
        bool all_covered = true;
        for (NodeId y : graph_->neighbors(node)) {
            if (!in_c[y]) {
                all_covered = false;
                break;
            }
        }
        if (all_covered) {
            sim.note_prune(node);
        } else {
            sim.transmit(node,
                         chain_state(knowledge_.first_state(node), node, {}, /*h=*/1));
        }
    }

  private:
    const Graph* graph_;
    LenwbConfig config_;
    PriorityKeys keys_;
    KnowledgeBase knowledge_;
};

}  // namespace

std::string LenwbAlgorithm::name() const {
    std::ostringstream out;
    out << "LENWB (k=" << config_.hops << ")";
    return out.str();
}

std::unique_ptr<Agent> LenwbAlgorithm::make_agent(const Graph& g) const {
    return std::make_unique<LenwbAgent>(g, config_);
}

}  // namespace adhoc
