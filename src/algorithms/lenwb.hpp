/// \file lenwb.hpp
/// \brief LENWB (Sucec & Marsic) — Section 6.2.
///
/// First-receipt self-pruning: when node v receives its first copy from u,
/// it computes the set C of nodes connected to u via nodes with priorities
/// higher than Pr(v) (node degree, tie-broken by id).  If N(v) ⊆ C, v is a
/// non-forward node.  This is the strong coverage condition with a coverage
/// set of one visited node plus higher-priority unvisited nodes.

#pragma once

#include "algorithms/algorithm.hpp"
#include "core/priority.hpp"

namespace adhoc {

struct LenwbConfig {
    std::size_t hops = 2;  ///< restricted implementation radius (2 or 3)
    PriorityScheme priority = PriorityScheme::kDegree;  ///< original config
};

class LenwbAlgorithm final : public BroadcastAlgorithm {
  public:
    explicit LenwbAlgorithm(LenwbConfig config = {}) : config_(config) {}

    [[nodiscard]] std::string name() const override;

  protected:
    [[nodiscard]] std::unique_ptr<Agent> make_agent(const Graph& g) const override;

  private:
    LenwbConfig config_;
};

}  // namespace adhoc
