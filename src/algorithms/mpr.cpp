#include "algorithms/mpr.hpp"

#include <algorithm>

#include "core/designation.hpp"
#include "graph/khop.hpp"
#include "graph/traversal.hpp"

namespace adhoc {

std::vector<std::vector<NodeId>> compute_mpr_sets(const Graph& g) {
    std::vector<std::vector<NodeId>> mpr(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) {
        // Strict 2-hop neighbors: distance exactly 2.
        const auto dist = bfs_distances(g, v);
        std::vector<NodeId> targets;
        for (NodeId y = 0; y < g.node_count(); ++y) {
            if (dist[y] == 2) targets.push_back(y);
        }
        const auto nbrs = g.neighbors(v);
        mpr[v] = greedy_cover(g, nbrs, targets);
    }
    return mpr;
}

namespace {

class MprAgent final : public Agent {
  public:
    explicit MprAgent(const Graph& g)
        : mpr_(compute_mpr_sets(g)), seen_(g.node_count(), 0) {}

    void start(Simulator& sim, NodeId source, Rng& /*rng*/) override {
        seen_[source] = 1;
        for (NodeId d : mpr_[source]) sim.note_designation(source, d);
        sim.transmit(source, chain_state({}, source, mpr_[source], /*h=*/1));
    }

    void on_receive(Simulator& sim, NodeId node, const Transmission& tx, Rng& /*rng*/) override {
        if (seen_[node]) return;  // designating time = first receipt only
        seen_[node] = 1;
        const auto& sender_mprs = mpr_[tx.sender];
        const bool designated =
            std::find(sender_mprs.begin(), sender_mprs.end(), node) != sender_mprs.end();
        if (designated) {
            for (NodeId d : mpr_[node]) sim.note_designation(node, d);
            sim.transmit(node, chain_state(tx.state, node, mpr_[node], /*h=*/1));
        } else {
            sim.note_prune(node);
        }
    }

  private:
    std::vector<std::vector<NodeId>> mpr_;
    std::vector<char> seen_;
};

}  // namespace

std::unique_ptr<Agent> MprAlgorithm::make_agent(const Graph& g) const {
    return std::make_unique<MprAgent>(g);
}

}  // namespace adhoc
