/// \file mpr.hpp
/// \brief Multipoint relays (Qayyum et al., OLSR) — Section 6.3.
///
/// Each node proactively selects a minimal set of 1-hop neighbors (its
/// MPRs) covering its entire 2-hop neighborhood via the greedy set-cover
/// heuristic.  Forwarding rule with the designating-time relaxation: a node
/// retransmits iff the *first* copy it received came from a node that
/// selected it as MPR — if the first sender is not a designator, the
/// packet is never forwarded, because the first designator's own MPRs
/// (earlier designating time, hence higher priority) already cover N(v).

#pragma once

#include "algorithms/algorithm.hpp"

namespace adhoc {

/// MPR(v) for every node: greedy 1-hop cover of the strict 2-hop
/// neighborhood (visited nodes are not considered — MPR is static).
[[nodiscard]] std::vector<std::vector<NodeId>> compute_mpr_sets(const Graph& g);

class MprAlgorithm final : public BroadcastAlgorithm {
  public:
    [[nodiscard]] std::string name() const override { return "MPR"; }

  protected:
    [[nodiscard]] std::unique_ptr<Agent> make_agent(const Graph& g) const override;
};

}  // namespace adhoc
