#include "algorithms/registry.hpp"

#include "algorithms/clustering.hpp"
#include "algorithms/dominant_pruning.hpp"
#include "algorithms/flooding.hpp"
#include "algorithms/guha_khuller.hpp"
#include "algorithms/generic.hpp"
#include "algorithms/gossip.hpp"
#include "algorithms/hybrid.hpp"
#include "algorithms/lenwb.hpp"
#include "algorithms/mpr.hpp"
#include "algorithms/rule_k.hpp"
#include "algorithms/sba.hpp"
#include "algorithms/span.hpp"
#include "algorithms/stojmenovic.hpp"
#include "algorithms/wu_li.hpp"

namespace adhoc {

std::string to_string(AlgorithmCategory category) {
    switch (category) {
        case AlgorithmCategory::kBaseline: return "Baseline";
        case AlgorithmCategory::kStatic: return "Static";
        case AlgorithmCategory::kFirstReceipt: return "First-receipt";
        case AlgorithmCategory::kFirstReceiptWithBackoff: return "First-receipt-with-backoff";
    }
    return "?";
}

std::string to_string(SelectionStyle style) {
    switch (style) {
        case SelectionStyle::kNone: return "-";
        case SelectionStyle::kSelfPruning: return "Self-pruning";
        case SelectionStyle::kNeighborDesignating: return "Neighbor-designating";
        case SelectionStyle::kHybrid: return "Hybrid";
    }
    return "?";
}

std::vector<RegistryEntry> make_registry() {
    std::vector<RegistryEntry> reg;
    auto add = [&reg](std::string key, AlgorithmCategory cat, SelectionStyle style,
                      std::string hops, std::unique_ptr<BroadcastAlgorithm> algo) {
        reg.push_back(RegistryEntry{std::move(key), cat, style, std::move(hops),
                                    std::move(algo)});
    };

    using Cat = AlgorithmCategory;
    using Sty = SelectionStyle;

    // Baselines.
    add("flooding", Cat::kBaseline, Sty::kNone, "0-hop", std::make_unique<FloodingAlgorithm>());
    add("gossip-0.7", Cat::kBaseline, Sty::kNone, "0-hop",
        std::make_unique<GossipAlgorithm>(0.7));

    // Static algorithms (Section 6.1).
    add("wu-li", Cat::kStatic, Sty::kSelfPruning, "2-hop",
        std::make_unique<WuLiAlgorithm>(WuLiConfig{.hops = 2, .priority = PriorityScheme::kId}));
    add("rule-k", Cat::kStatic, Sty::kSelfPruning, "2-hop",
        std::make_unique<RuleKAlgorithm>(RuleKConfig{.hops = 2}));
    add("span", Cat::kStatic, Sty::kSelfPruning, "3-hop",
        std::make_unique<SpanAlgorithm>(SpanConfig{.hops = 3}));
    add("mpr", Cat::kStatic, Sty::kNeighborDesignating, "2-hop",
        std::make_unique<MprAlgorithm>());
    add("generic-static", Cat::kStatic, Sty::kSelfPruning, "2-hop",
        std::make_unique<GenericBroadcast>(generic_static_config(2), "Generic static"));
    add("guha-khuller", Cat::kStatic, Sty::kSelfPruning, "global",
        std::make_unique<GuhaKhullerAlgorithm>());
    add("cluster-cds", Cat::kStatic, Sty::kSelfPruning, "global",
        std::make_unique<ClusterCdsAlgorithm>());

    // First-receipt algorithms (Sections 6.2-6.4).
    add("dp", Cat::kFirstReceipt, Sty::kNeighborDesignating, "2-hop",
        std::make_unique<DominantPruningAlgorithm>(DominantPruningVariant::kDp));
    add("tdp", Cat::kFirstReceipt, Sty::kNeighborDesignating, "2-hop",
        std::make_unique<DominantPruningAlgorithm>(DominantPruningVariant::kTdp));
    add("pdp", Cat::kFirstReceipt, Sty::kNeighborDesignating, "2-hop",
        std::make_unique<DominantPruningAlgorithm>(DominantPruningVariant::kPdp));
    add("ahbp", Cat::kFirstReceipt, Sty::kNeighborDesignating, "2-hop",
        std::make_unique<DominantPruningAlgorithm>(DominantPruningVariant::kAhbp));
    add("lenwb", Cat::kFirstReceipt, Sty::kSelfPruning, "2-hop",
        std::make_unique<LenwbAlgorithm>());
    add("generic-fr", Cat::kFirstReceipt, Sty::kSelfPruning, "2-hop",
        std::make_unique<GenericBroadcast>(generic_fr_config(2), "Generic FR"));
    add("hybrid-maxdeg", Cat::kFirstReceipt, Sty::kHybrid, "2-hop",
        std::make_unique<GenericBroadcast>(hybrid_config(Selection::kHybridMaxDegree),
                                           "MaxDeg"));
    add("hybrid-minpri", Cat::kFirstReceipt, Sty::kHybrid, "2-hop",
        std::make_unique<GenericBroadcast>(hybrid_config(Selection::kHybridMinId), "MinPri"));

    // First-receipt-with-backoff algorithms.
    add("sba", Cat::kFirstReceiptWithBackoff, Sty::kSelfPruning, "2-hop",
        std::make_unique<SbaAlgorithm>());
    add("stojmenovic", Cat::kFirstReceiptWithBackoff, Sty::kSelfPruning, "2-hop",
        std::make_unique<StojmenovicAlgorithm>());
    add("generic-frb", Cat::kFirstReceiptWithBackoff, Sty::kSelfPruning, "2-hop",
        std::make_unique<GenericBroadcast>(generic_frb_config(2), "Generic FRB"));
    add("generic-frbd", Cat::kFirstReceiptWithBackoff, Sty::kSelfPruning, "2-hop",
        std::make_unique<GenericBroadcast>(generic_frbd_config(2), "Generic FRBD"));

    return reg;
}

const BroadcastAlgorithm* find_algorithm(const std::vector<RegistryEntry>& registry,
                                         const std::string& key) {
    for (const RegistryEntry& e : registry) {
        if (e.key == key) return e.algorithm.get();
    }
    return nullptr;
}

std::optional<ScaleConfig> scale_config_for(const std::string& key) {
    ScaleConfig cfg;
    if (key == "flooding") {
        cfg.policy = ScalePolicy::kFlood;
        return cfg;
    }
    if (key == "generic-static") {
        cfg.policy = ScalePolicy::kGenericCoverage;
        cfg.generic = generic_static_config(2);
        return cfg;
    }
    if (key == "generic-fr") {
        cfg.policy = ScalePolicy::kGenericCoverage;
        cfg.generic = generic_fr_config(2);
        return cfg;
    }
    return std::nullopt;
}

}  // namespace adhoc
