/// \file registry.hpp
/// \brief Name-indexed registry of every algorithm in the repository.
///
/// Used by the examples' command-line front-ends and the taxonomy bench.
/// Names are lowercase-kebab ("dp", "generic-fr", "hybrid-maxdeg", ...).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "algorithms/algorithm.hpp"

namespace adhoc {

/// Category per the paper's Table 1.
enum class AlgorithmCategory : std::uint8_t {
    kBaseline,                 ///< flooding / gossip
    kStatic,                   ///< proactive CDS
    kFirstReceipt,             ///< dynamic, decide at first receipt
    kFirstReceiptWithBackoff,  ///< dynamic, decide after backoff
};

/// Selection style per Table 1.
enum class SelectionStyle : std::uint8_t {
    kNone,                 ///< baselines
    kSelfPruning,
    kNeighborDesignating,
    kHybrid,
};

[[nodiscard]] std::string to_string(AlgorithmCategory category);
[[nodiscard]] std::string to_string(SelectionStyle style);

struct RegistryEntry {
    std::string key;
    AlgorithmCategory category;
    SelectionStyle style;
    std::string hop_info;  ///< "2-hop", "3-hop", ...
    std::unique_ptr<BroadcastAlgorithm> algorithm;
};

/// Builds the full registry (one entry per named configuration).
[[nodiscard]] std::vector<RegistryEntry> make_registry();

/// Finds an algorithm by key; nullptr when absent.  The returned pointer
/// is owned by `registry`.
[[nodiscard]] const BroadcastAlgorithm* find_algorithm(
    const std::vector<RegistryEntry>& registry, const std::string& key);

}  // namespace adhoc
