/// \file registry.hpp
/// \brief Name-indexed registry of every algorithm in the repository.
///
/// Used by the examples' command-line front-ends and the taxonomy bench.
/// Names are lowercase-kebab ("dp", "generic-fr", "hybrid-maxdeg", ...).

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algorithms/algorithm.hpp"
#include "sim/scale_engine.hpp"

namespace adhoc {

/// Category per the paper's Table 1.
enum class AlgorithmCategory : std::uint8_t {
    kBaseline,                 ///< flooding / gossip
    kStatic,                   ///< proactive CDS
    kFirstReceipt,             ///< dynamic, decide at first receipt
    kFirstReceiptWithBackoff,  ///< dynamic, decide after backoff
};

/// Selection style per Table 1.
enum class SelectionStyle : std::uint8_t {
    kNone,                 ///< baselines
    kSelfPruning,
    kNeighborDesignating,
    kHybrid,
};

[[nodiscard]] std::string to_string(AlgorithmCategory category);
[[nodiscard]] std::string to_string(SelectionStyle style);

struct RegistryEntry {
    std::string key;
    AlgorithmCategory category;
    SelectionStyle style;
    std::string hop_info;  ///< "2-hop", "3-hop", ...
    std::unique_ptr<BroadcastAlgorithm> algorithm;
};

/// Builds the full registry (one entry per named configuration).
[[nodiscard]] std::vector<RegistryEntry> make_registry();

/// Finds an algorithm by key; nullptr when absent.  The returned pointer
/// is owned by `registry`.
[[nodiscard]] const BroadcastAlgorithm* find_algorithm(
    const std::vector<RegistryEntry>& registry, const std::string& key);

/// Maps a registry key onto a `ScaleEngine` configuration that reproduces
/// the named algorithm *exactly* (byte-identical forward set against the
/// serial Simulator), or nullopt when no such mapping exists.
///
/// Only exact equivalences are returned — this is the scale plane's
/// honesty contract, enforced by the differential tests:
///  - "flooding"        -> kFlood
///  - "generic-static"  -> kGenericCoverage with generic_static_config(2)
///  - "generic-fr"      -> kGenericCoverage with generic_fr_config(2)
/// Everything else is nullopt: backoff timings and neighbor designation
/// need per-node timers/pullback events; wu-li and rule-k run a marking
/// precheck (degree < 2 / pairwise-connected neighborhood) that diverges
/// from the pure coverage condition on clique neighborhoods; gossip is
/// randomized.  `wheels`/`jobs`/`view_mode` are left at their defaults for
/// the caller to tune — they never change the result.
[[nodiscard]] std::optional<ScaleConfig> scale_config_for(const std::string& key);

}  // namespace adhoc
