#include "algorithms/rule_k.hpp"

#include <sstream>

#include "core/coverage.hpp"
#include "core/view.hpp"

namespace adhoc {

std::vector<char> rule_k_forward_set(const Graph& g, const RuleKConfig& config) {
    const PriorityKeys keys(g, config.priority);
    // Restricted implementation (Section 6.1): with k-hop information the
    // coverage nodes are limited to k-1 hops from the evaluated node.
    const CoverageOptions opts{.strong = true, .coverage_radius = config.hops - 1};

    std::vector<char> forward(g.node_count(), 0);
    for (NodeId v = 0; v < g.node_count(); ++v) {
        // Marking process first: nodes whose neighborhood is a clique are
        // never gateways.
        if (g.degree(v) < 2 || g.neighbors_pairwise_connected(v)) continue;
        const View view = make_static_view(g, v, config.hops, keys);
        forward[v] = coverage_condition_holds(view, v, opts) ? 0 : 1;
    }
    return forward;
}

std::string RuleKAlgorithm::name() const {
    std::ostringstream out;
    out << "Rule k (k=" << config_.hops << ", " << to_string(config_.priority) << ")";
    return out.str();
}

}  // namespace adhoc
