/// \file rule_k.hpp
/// \brief Dai and Wu's generalized pruning Rule k (Section 6.1).
///
/// A gateway becomes a non-gateway if all of its neighbors are also
/// neighbors of any one of k coverage nodes that are *self-connected* (form
/// a connected subgraph) and have higher priorities — i.e. exactly the
/// strong coverage condition on a static view.  The restricted
/// implementation searches coverage nodes within 2- or 3-hop information,
/// which the paper notes is as efficient as Rule 1 and more efficient than
/// Rule 2.

#pragma once

#include "algorithms/algorithm.hpp"
#include "core/priority.hpp"

namespace adhoc {

struct RuleKConfig {
    std::size_t hops = 2;  ///< 2 or 3: local-view radius
    PriorityScheme priority = PriorityScheme::kNcr;  ///< Figure 14 config
};

/// Forward set under restricted Rule k: marked nodes that fail the strong
/// coverage condition on their static k-hop view.
[[nodiscard]] std::vector<char> rule_k_forward_set(const Graph& g, const RuleKConfig& config);

class RuleKAlgorithm final : public StaticCdsAlgorithm {
  public:
    explicit RuleKAlgorithm(RuleKConfig config = {}) : config_(config) {}

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::vector<char> forward_set(const Graph& g) const override {
        return rule_k_forward_set(g, config_);
    }

  private:
    RuleKConfig config_;
};

}  // namespace adhoc
