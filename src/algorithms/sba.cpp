#include "algorithms/sba.hpp"

#include <algorithm>
#include <sstream>

#include "graph/traversal.hpp"
#include "sim/node_agent.hpp"

namespace adhoc {

namespace {

class SbaAgent final : public Agent {
  public:
    SbaAgent(const Graph& g, SbaConfig config)
        : graph_(&g), config_(config), knowledge_(g, config.hops) {
        max_neighbor_degree_.assign(g.node_count(), 0);
        for (NodeId v = 0; v < g.node_count(); ++v) {
            for (NodeId u : g.neighbors(v)) {
                max_neighbor_degree_[v] = std::max(max_neighbor_degree_[v], g.degree(u));
            }
        }
    }

    void start(Simulator& sim, NodeId source, Rng& /*rng*/) override {
        knowledge_.mark_received(source);
        sim.transmit(source, chain_state({}, source, {}, config_.history));
    }

    void on_receive(Simulator& sim, NodeId node, const Transmission& tx, Rng& rng) override {
        const bool first = knowledge_.observe(node, tx);
        if (!first || sim.has_transmitted(node)) return;
        // Backoff scaled by (1 + max neighbor degree)/(1 + own degree):
        // well-covered, low-degree nodes wait longer.
        const double scale = (1.0 + static_cast<double>(max_neighbor_degree_[node])) /
                             (1.0 + static_cast<double>(graph_->degree(node)));
        sim.schedule_timer(node, rng.uniform(0.0, config_.backoff_window * scale));
    }

    void on_timer(Simulator& sim, NodeId node, std::size_t /*timer_kind*/,
                  Rng& /*rng*/) override {
        if (sim.has_transmitted(node)) return;
        if (uncovered_neighbor_exists(node)) {
            sim.transmit(node, chain_state(knowledge_.first_state(node), node, {},
                                           config_.history));
        } else {
            sim.note_prune(node);
        }
    }

  private:
    /// True iff some neighbor of `node` is not dominated by a known visited
    /// node whose neighborhood is fully visible in the local view.
    bool uncovered_neighbor_exists(NodeId node) const {
        const ConstKnowledgeRef kn = knowledge_.at(node);
        const Graph& local = kn.topology().graph;
        // Distances within the local view tell which visited nodes have a
        // fully known neighborhood (dist <= k-1).
        const auto dist = bfs_distances(local, node);

        const std::size_t radius =
            knowledge_.hops() == 0 ? kUnreachable - 1 : knowledge_.hops() - 1;
        std::vector<char> covered(graph_->node_count(), 0);
        for (NodeId x = 0; x < graph_->node_count(); ++x) {
            if (!kn.visited(x) || !kn.topology().visible[x]) continue;
            if (dist[x] == kUnreachable || dist[x] > radius) continue;
            covered[x] = 1;
            for (NodeId y : local.neighbors(x)) covered[y] = 1;
        }
        for (NodeId y : graph_->neighbors(node)) {
            if (!covered[y]) return true;
        }
        return false;
    }

    const Graph* graph_;
    SbaConfig config_;
    KnowledgeBase knowledge_;
    std::vector<std::size_t> max_neighbor_degree_;
};

}  // namespace

std::string SbaAlgorithm::name() const {
    std::ostringstream out;
    out << "SBA (k=" << config_.hops << ")";
    return out.str();
}

std::unique_ptr<Agent> SbaAlgorithm::make_agent(const Graph& g) const {
    return std::make_unique<SbaAgent>(g, config_);
}

}  // namespace adhoc
