/// \file sba.hpp
/// \brief Scalable Broadcast Algorithm (Peng & Lu) — Section 6.2.
///
/// First-receipt-with-backoff self-pruning: on the first copy, node v
/// starts a random backoff scaled by (1 + Δ)/(1 + deg(v)) where Δ is the
/// maximum degree among v's neighbors (high-degree nodes fire early).
/// Every transmission heard from a neighbor u removes N[u] from v's
/// uncovered set; when the timer fires, v forwards iff some neighbor is
/// still uncovered.  This is the strong coverage condition restricted to
/// coverage sets of *visited neighbors* only.
///
/// `hops` controls the information radius: with k = 3 the node also knows
/// the neighborhoods of 2-hop nodes, so visited nodes learned from the
/// piggybacked history (h = 1: the sender's predecessor) contribute their
/// coverage too — this is the k-sweep the paper's Figure 16 runs.

#pragma once

#include "algorithms/algorithm.hpp"

namespace adhoc {

struct SbaConfig {
    std::size_t hops = 2;        ///< information radius (2 = original SBA)
    std::size_t history = 1;     ///< piggybacked visited records
    double backoff_window = 8.0;
};

class SbaAlgorithm final : public BroadcastAlgorithm {
  public:
    explicit SbaAlgorithm(SbaConfig config = {}) : config_(config) {}

    [[nodiscard]] std::string name() const override;

  protected:
    [[nodiscard]] std::unique_ptr<Agent> make_agent(const Graph& g) const override;

  private:
    SbaConfig config_;
};

}  // namespace adhoc
