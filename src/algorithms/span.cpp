#include "algorithms/span.hpp"

#include <sstream>

#include "core/coverage.hpp"
#include "core/view.hpp"

namespace adhoc {

std::vector<char> span_forward_set(const Graph& g, const SpanConfig& config) {
    const PriorityKeys keys(g, config.priority);
    const CoverageOptions opts{.strong = false, .max_path_hops = 3};

    std::vector<char> forward(g.node_count(), 0);
    for (NodeId v = 0; v < g.node_count(); ++v) {
        const View view = make_static_view(g, v, config.hops, keys);
        forward[v] = coverage_condition_holds(view, v, opts) ? 0 : 1;
    }
    return forward;
}

std::string SpanAlgorithm::name() const {
    std::ostringstream out;
    out << "Span (k=" << config_.hops << ", " << to_string(config_.priority) << ")";
    return out.str();
}

}  // namespace adhoc
