/// \file span.hpp
/// \brief Enhanced Span coordinator election (Section 6.1).
///
/// Span (Chen et al.): a node becomes a coordinator if it has two neighbors
/// that are not connected directly or via one or two intermediate
/// coordinators.  The paper evaluates an *enhanced* Span where intermediates
/// must have higher priority values (which restores the coverage guarantee
/// the original backoff-based rule loses), i.e. the coverage condition with
/// two restrictions: no visited-node information and replacement paths of
/// at most three hops.  3-hop information is required.

#pragma once

#include "algorithms/algorithm.hpp"
#include "core/priority.hpp"

namespace adhoc {

struct SpanConfig {
    std::size_t hops = 3;  ///< information radius (the rule needs 3)
    PriorityScheme priority = PriorityScheme::kNcr;  ///< Span's backoff ordering
};

/// Coordinator (forward) set of enhanced Span.
[[nodiscard]] std::vector<char> span_forward_set(const Graph& g, const SpanConfig& config);

class SpanAlgorithm final : public StaticCdsAlgorithm {
  public:
    explicit SpanAlgorithm(SpanConfig config = {}) : config_(config) {}

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::vector<char> forward_set(const Graph& g) const override {
        return span_forward_set(g, config_);
    }

  private:
    SpanConfig config_;
};

}  // namespace adhoc
