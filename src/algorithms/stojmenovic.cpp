#include "algorithms/stojmenovic.hpp"

#include "algorithms/wu_li.hpp"
#include "sim/node_agent.hpp"

namespace adhoc {

namespace {

class StojmenovicAgent final : public Agent {
  public:
    StojmenovicAgent(const Graph& g, StojmenovicConfig config)
        : graph_(&g),
          config_(config),
          in_cds_(wu_li_forward_set(
              g, WuLiConfig{.hops = config.hops, .priority = PriorityScheme::kDegree})),
          knowledge_(g, config.hops) {}

    void start(Simulator& sim, NodeId source, Rng& /*rng*/) override {
        sim.transmit(source, chain_state({}, source, {}, /*h=*/1));
    }

    void on_receive(Simulator& sim, NodeId node, const Transmission& tx, Rng& rng) override {
        const bool first = knowledge_.observe(node, tx);
        if (!first || sim.has_transmitted(node)) return;
        if (!in_cds_[node]) {
            sim.note_prune(node);  // not a gateway: never forwards
            return;
        }
        sim.schedule_timer(node, rng.uniform(0.0, config_.backoff_window));
    }

    void on_timer(Simulator& sim, NodeId node, std::size_t /*timer_kind*/,
                  Rng& /*rng*/) override {
        if (sim.has_transmitted(node)) return;
        // Neighbor elimination: forward only if some neighbor is still
        // uncovered by overheard (visited) neighbors.
        const ConstKnowledgeRef kn = knowledge_.at(node);
        std::vector<char> covered(graph_->node_count(), 0);
        for (NodeId x : graph_->neighbors(node)) {
            if (!kn.visited(x)) continue;
            covered[x] = 1;
            for (NodeId y : graph_->neighbors(x)) covered[y] = 1;
        }
        bool all_covered = true;
        for (NodeId y : graph_->neighbors(node)) {
            if (!covered[y]) {
                all_covered = false;
                break;
            }
        }
        if (all_covered) {
            sim.note_prune(node);
        } else {
            sim.transmit(node, chain_state(kn.first_state(), node, {}, /*h=*/1));
        }
    }

  private:
    const Graph* graph_;
    StojmenovicConfig config_;
    std::vector<char> in_cds_;
    KnowledgeBase knowledge_;
};

}  // namespace

std::unique_ptr<Agent> StojmenovicAlgorithm::make_agent(const Graph& g) const {
    return std::make_unique<StojmenovicAgent>(g, config_);
}

}  // namespace adhoc
