/// \file stojmenovic.hpp
/// \brief Stojmenovic, Seddigh & Zunic's broadcast scheme (Section 6.2).
///
/// Wu–Li's marking process and Rules 1/2 with node degree as the priority,
/// combined with SBA-style neighbor elimination at broadcast time: a node
/// in the static CDS still withholds its transmission if, after a backoff,
/// all of its neighbors have been covered by overheard transmissions.
/// (The original also exploits geographic positions to cut the hello
/// overhead to 1-hop — an information-cost optimization that does not
/// change the forward set and is out of scope per paper assumption (2).)

#pragma once

#include "algorithms/algorithm.hpp"

namespace adhoc {

struct StojmenovicConfig {
    std::size_t hops = 2;
    double backoff_window = 8.0;
};

class StojmenovicAlgorithm final : public BroadcastAlgorithm {
  public:
    explicit StojmenovicAlgorithm(StojmenovicConfig config = {}) : config_(config) {}

    [[nodiscard]] std::string name() const override { return "Stojmenovic"; }

  protected:
    [[nodiscard]] std::unique_ptr<Agent> make_agent(const Graph& g) const override;

  private:
    StojmenovicConfig config_;
};

}  // namespace adhoc
