#include "algorithms/wu_li.hpp"

#include <sstream>

#include "graph/khop.hpp"

namespace adhoc {

namespace {

/// True iff every neighbor of v is in N[u] (u itself or adjacent to u).
bool neighbors_covered_by(const Graph& g, NodeId v, NodeId u) {
    for (NodeId x : g.neighbors(v)) {
        if (x != u && !g.has_edge(x, u)) return false;
    }
    return true;
}

/// True iff every neighbor of v is in N[u] ∪ N[w].
bool neighbors_covered_by_pair(const Graph& g, NodeId v, NodeId u, NodeId w) {
    for (NodeId x : g.neighbors(v)) {
        const bool by_u = (x == u) || g.has_edge(x, u);
        const bool by_w = (x == w) || g.has_edge(x, w);
        if (!by_u && !by_w) return false;
    }
    return true;
}

}  // namespace

std::vector<char> wu_li_forward_set(const Graph& g, const WuLiConfig& config) {
    const PriorityKeys keys(g, config.priority);
    auto pr = [&](NodeId v) { return keys.evaluate(v, NodeStatus::kUnvisited); };

    std::vector<char> forward(g.node_count(), 0);
    for (NodeId v = 0; v < g.node_count(); ++v) {
        // Marking process: gateway iff two neighbors are unconnected.
        if (g.degree(v) < 2 || g.neighbors_pairwise_connected(v)) continue;

        // Candidate coverage nodes within the information radius.
        std::vector<NodeId> candidates;
        for (NodeId c : k_hop_nodes(g, v, config.hops - 1)) {
            if (c != v && pr(c) > pr(v)) candidates.push_back(c);
        }

        bool pruned = false;
        // Rule 1: one higher-priority coverage node dominates N(v).
        for (NodeId u : candidates) {
            if (neighbors_covered_by(g, v, u)) {
                pruned = true;
                break;
            }
        }
        // Rule 2: two connected higher-priority coverage nodes dominate N(v).
        for (std::size_t i = 0; i < candidates.size() && !pruned; ++i) {
            for (std::size_t j = i + 1; j < candidates.size() && !pruned; ++j) {
                const NodeId u = candidates[i];
                const NodeId w = candidates[j];
                if (!g.has_edge(u, w)) continue;
                if (neighbors_covered_by_pair(g, v, u, w)) pruned = true;
            }
        }
        forward[v] = pruned ? 0 : 1;
    }
    return forward;
}

std::string WuLiAlgorithm::name() const {
    std::ostringstream out;
    out << "Wu-Li (k=" << config_.hops << ", " << to_string(config_.priority) << ")";
    return out.str();
}

}  // namespace adhoc
