/// \file wu_li.hpp
/// \brief Wu and Li's marking process with pruning Rules 1 and 2
/// (Section 6.1).
///
/// Marking: v is a gateway iff it has two neighbors that are not directly
/// connected.  Rule 1: a gateway v becomes a non-gateway if all of its
/// neighbors are also neighbors of a single coverage node with higher
/// priority.  Rule 2: same with two directly connected coverage nodes, each
/// of higher priority.  With 2-hop information every coverage node must be
/// a neighbor of v; with 3-hop information a coverage node may also be a
/// neighbor's neighbor.

#pragma once

#include "algorithms/algorithm.hpp"
#include "core/priority.hpp"

namespace adhoc {

struct WuLiConfig {
    std::size_t hops = 2;  ///< 2 or 3 (coverage-node search radius)
    PriorityScheme priority = PriorityScheme::kId;
};

/// Forward (gateway) set of the marking process + Rules 1 and 2.
[[nodiscard]] std::vector<char> wu_li_forward_set(const Graph& g, const WuLiConfig& config);

class WuLiAlgorithm final : public StaticCdsAlgorithm {
  public:
    explicit WuLiAlgorithm(WuLiConfig config = {}) : config_(config) {}

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::vector<char> forward_set(const Graph& g) const override {
        return wu_li_forward_set(g, config_);
    }

  private:
    WuLiConfig config_;
};

}  // namespace adhoc
