#include "analysis/exact_cds.hpp"

#include <cassert>

namespace adhoc {

namespace {

using Mask = std::uint32_t;

/// N[v] as a bitmask.
std::vector<Mask> closed_neighborhoods(const Graph& g) {
    std::vector<Mask> nb(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) {
        Mask m = Mask{1} << v;
        for (NodeId u : g.neighbors(v)) m |= Mask{1} << u;
        nb[v] = m;
    }
    return nb;
}

bool dominates(Mask set, const std::vector<Mask>& nb, Mask all) {
    Mask covered = 0;
    for (std::size_t v = 0; set >> v; ++v) {
        if (set & (Mask{1} << v)) covered |= nb[v];
    }
    return covered == all;
}

bool connected_in(Mask set, const std::vector<Mask>& nb) {
    if (set == 0) return true;
    const Mask start = set & (~set + 1);  // lowest set bit
    Mask reached = start;
    Mask frontier = start;
    while (frontier != 0) {
        Mask next = 0;
        for (std::size_t v = 0; frontier >> v; ++v) {
            if (frontier & (Mask{1} << v)) next |= nb[v];
        }
        next &= set;
        frontier = next & ~reached;
        reached |= frontier;
    }
    return reached == set;
}

/// Gosper's hack: next integer with the same popcount.
Mask next_same_popcount(Mask x) {
    const Mask c = x & (~x + 1);
    const Mask r = x + c;
    return (((r ^ x) >> 2) / c) | r;
}

}  // namespace

std::optional<std::vector<char>> minimum_cds(const Graph& g) {
    const std::size_t n = g.node_count();
    if (n > kExactCdsMaxNodes) return std::nullopt;
    std::vector<char> result(n, 0);
    if (n <= 1) return result;

    const auto nb = closed_neighborhoods(g);
    const Mask all = (n == 32) ? ~Mask{0} : ((Mask{1} << n) - 1);

    for (std::size_t size = 1; size <= n; ++size) {
        Mask set = (Mask{1} << size) - 1;  // smallest mask with `size` bits
        while (set < (Mask{1} << n)) {
            if (dominates(set, nb, all) && connected_in(set, nb)) {
                for (NodeId v = 0; v < n; ++v) result[v] = (set >> v) & 1;
                return result;
            }
            const Mask next = next_same_popcount(set);
            if (next <= set) break;  // overflow guard
            set = next;
        }
    }
    // Connected non-empty graphs always admit a CDS (V itself).
    assert(false && "no CDS found: disconnected input?");
    return std::nullopt;
}

std::optional<std::size_t> minimum_cds_size(const Graph& g) {
    const auto cds = minimum_cds(g);
    if (!cds) return std::nullopt;
    std::size_t size = 0;
    for (char c : *cds) size += (c != 0);
    return size;
}

}  // namespace adhoc
