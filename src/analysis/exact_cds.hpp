/// \file exact_cds.hpp
/// \brief Exact minimum connected dominating set (exponential, small n).
///
/// Finding the minimum CDS is NP-complete (paper Section 1); for networks
/// of up to ~24 nodes exhaustive bitmask search is feasible and gives the
/// ground truth the heuristics are measured against.  Used by the
/// optimality-gap ablation and the approximation-quality tests.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace adhoc {

/// Maximum node count the exact solver accepts.
inline constexpr std::size_t kExactCdsMaxNodes = 24;

/// Smallest CDS of `g`, or nullopt when `g` has more than
/// kExactCdsMaxNodes nodes.  Conventions for degenerate inputs (aligned
/// with the broadcast metric): a single-node or single-edge graph has an
/// empty-CDS answer of size 0/1 respectively — concretely, the empty set
/// is returned for n <= 1, and {lowest id} when one node dominates
/// everything.  Precondition: `g` connected.
[[nodiscard]] std::optional<std::vector<char>> minimum_cds(const Graph& g);

/// Size of the minimum CDS (same preconditions).
[[nodiscard]] std::optional<std::size_t> minimum_cds_size(const Graph& g);

}  // namespace adhoc
