#include "core/backbone.hpp"

#include <cassert>

#include "core/view.hpp"
#include "graph/traversal.hpp"

namespace adhoc {

Backbone::Backbone(Graph g, std::size_t hops, PriorityScheme priority,
                   CoverageOptions coverage)
    : graph_(std::move(g)),
      hops_(hops),
      priority_(priority),
      coverage_(coverage),
      keys_(graph_, priority) {
    forward_.assign(graph_.node_count(), 0);
    for (NodeId v = 0; v < graph_.node_count(); ++v) forward_[v] = evaluate(v);
}

char Backbone::evaluate(NodeId v) const {
    const View view = make_static_view(graph_, v, hops_, keys_);
    return coverage_condition_holds(view, v, coverage_) ? 0 : 1;
}

void Backbone::rebuild_priorities() { keys_ = PriorityKeys(graph_, priority_); }

void Backbone::reevaluate_around(const std::vector<std::size_t>& old_dist_u,
                                 const std::vector<std::size_t>& old_dist_v, NodeId u,
                                 NodeId v) {
    rebuild_priorities();
    last_reevaluated_ = 0;

    if (hops_ == 0) {  // global views: everything is affected
        for (NodeId x = 0; x < graph_.node_count(); ++x) forward_[x] = evaluate(x);
        last_reevaluated_ = graph_.node_count();
        total_reevaluated_ += last_reevaluated_;
        return;
    }

    // A node's k-hop view can change only if it lies within `radius` hops
    // of an endpoint on the old OR the new topology.  ID/Degree keys change
    // only at the endpoints themselves; NCR also changes at their common
    // neighbors (1 hop out), widening the radius by one.
    const std::size_t radius = hops_ + (priority_ == PriorityScheme::kNcr ? 1 : 0);
    const auto new_dist_u = bfs_distances(graph_, u);
    const auto new_dist_v = bfs_distances(graph_, v);
    auto within = [radius](const std::vector<std::size_t>& dist, NodeId x) {
        return dist[x] != kUnreachable && dist[x] <= radius;
    };
    for (NodeId x = 0; x < graph_.node_count(); ++x) {
        if (within(old_dist_u, x) || within(old_dist_v, x) || within(new_dist_u, x) ||
            within(new_dist_v, x)) {
            forward_[x] = evaluate(x);
            ++last_reevaluated_;
        }
    }
    total_reevaluated_ += last_reevaluated_;
}

bool Backbone::add_edge(NodeId u, NodeId v) {
    assert(graph_.contains(u) && graph_.contains(v));
    const auto old_dist_u = bfs_distances(graph_, u);
    const auto old_dist_v = bfs_distances(graph_, v);
    if (!graph_.add_edge(u, v)) return false;
    reevaluate_around(old_dist_u, old_dist_v, u, v);
    return true;
}

bool Backbone::remove_edge(NodeId u, NodeId v) {
    assert(graph_.contains(u) && graph_.contains(v));
    const auto old_dist_u = bfs_distances(graph_, u);
    const auto old_dist_v = bfs_distances(graph_, v);
    if (!graph_.remove_edge(u, v)) return false;
    reevaluate_around(old_dist_u, old_dist_v, u, v);
    return true;
}

}  // namespace adhoc
