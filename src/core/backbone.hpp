/// \file backbone.hpp
/// \brief Incrementally maintained static CDS ("virtual backbone").
///
/// The paper's static approach "produces a relatively stable CDS that
/// forms a virtual backbone, which facilitates both broadcasting and
/// unicasting", recomputed "periodically as the network topology changes"
/// (Section 2).  This class keeps the generic static forward set current
/// under single-link changes without re-evaluating every node: an edge
/// flip at (u, v) can only change the k-hop view — and hence the status —
/// of nodes within k hops of u or v (on the old or new topology), so only
/// those are re-evaluated.  Tests verify the incremental result is
/// bit-identical to a full recompute.

#pragma once

#include <cstddef>
#include <vector>

#include "core/coverage.hpp"
#include "core/priority.hpp"
#include "graph/graph.hpp"

namespace adhoc {

class Backbone {
  public:
    /// Builds the initial backbone for `g`.
    Backbone(Graph g, std::size_t hops, PriorityScheme priority = PriorityScheme::kId,
             CoverageOptions coverage = {});

    /// Current topology (the maintained copy).
    [[nodiscard]] const Graph& graph() const noexcept { return graph_; }

    /// Current forward set; a CDS whenever the topology is connected
    /// (Theorem 2).
    [[nodiscard]] const std::vector<char>& forward_set() const noexcept { return forward_; }

    /// Applies a link-up event; returns false (no-op) if already present.
    bool add_edge(NodeId u, NodeId v);

    /// Applies a link-down event; returns false if absent.
    bool remove_edge(NodeId u, NodeId v);

    /// Nodes re-evaluated by the most recent update (instrumentation: the
    /// savings over full recomputation).
    [[nodiscard]] std::size_t last_reevaluated() const noexcept { return last_reevaluated_; }

    /// Total status evaluations since construction (excluding the initial
    /// build).
    [[nodiscard]] std::size_t total_reevaluated() const noexcept { return total_reevaluated_; }

  private:
    void rebuild_priorities();
    void reevaluate_around(const std::vector<std::size_t>& old_dist_u,
                           const std::vector<std::size_t>& old_dist_v, NodeId u, NodeId v);
    [[nodiscard]] char evaluate(NodeId v) const;

    Graph graph_;
    std::size_t hops_;
    PriorityScheme priority_;
    CoverageOptions coverage_;
    PriorityKeys keys_;
    std::vector<char> forward_;
    std::size_t last_reevaluated_ = 0;
    std::size_t total_reevaluated_ = 0;
};

}  // namespace adhoc
