#include "core/cds_reduce.hpp"

#include <algorithm>
#include <cassert>

#include "core/view.hpp"
#include "graph/khop.hpp"
#include "graph/traversal.hpp"

namespace adhoc {

namespace {

/// Sorted component labels `u` belongs to or borders.
std::vector<std::size_t> comps_of(const Graph& topo, NodeId u,
                                  const std::vector<std::size_t>& labels) {
    std::vector<std::size_t> out;
    if (labels[u] != kUnreachable) out.push_back(labels[u]);
    for (NodeId y : topo.neighbors(u)) {
        if (labels[y] != kUnreachable) out.push_back(labels[y]);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

bool intersects(const std::vector<std::size_t>& a, const std::vector<std::size_t>& b) {
    auto ia = a.begin();
    auto ib = b.begin();
    while (ia != a.end() && ib != b.end()) {
        if (*ia == *ib) return true;
        (*ia < *ib) ? ++ia : ++ib;
    }
    return false;
}

}  // namespace

std::vector<char> reduce_cds(const Graph& g, const std::vector<char>& cds, std::size_t hops,
                             PriorityScheme priority) {
    assert(cds.size() == g.node_count());
    const PriorityKeys keys(g, priority);
    std::vector<char> reduced = cds;

    // All decisions are simultaneous against the ORIGINAL set (Theorem-2
    // style): each member evaluates under its own local view of `cds`.
    for (NodeId v = 0; v < g.node_count(); ++v) {
        if (!cds[v]) continue;
        const LocalTopology local = local_topology(g, v, hops);
        const Graph& topo = local.graph;
        const Priority pv = keys.evaluate(v, NodeStatus::kDesignated);

        // H: visible higher-priority members (all members share the
        // committed-relay status S = 1.5, so keys decide).
        std::vector<char> in_h(g.node_count(), 0);
        for (NodeId x = 0; x < g.node_count(); ++x) {
            if (x == v || !local.visible[x] || !cds[x]) continue;
            if (keys.evaluate(x, NodeStatus::kDesignated) > pv) in_h[x] = 1;
        }
        const auto labels = connected_components_filtered(topo, in_h);

        const auto nv = topo.neighbors(v);
        bool droppable = true;

        // Condition 3: v itself must keep a (higher-priority) dominator.
        bool self_dominated = false;
        for (NodeId x : nv) self_dominated = self_dominated || in_h[x];
        droppable = droppable && (self_dominated || nv.empty());

        std::vector<std::vector<std::size_t>> comps(nv.size());
        for (std::size_t i = 0; i < nv.size() && droppable; ++i) {
            comps[i] = comps_of(topo, nv[i], labels);
            // Condition 2: every neighbor stays dominated by some
            // higher-priority member.
            if (!in_h[nv[i]] && comps[i].empty()) droppable = false;
        }
        // Condition 1: the original coverage condition over v's neighbor
        // pairs, intermediates restricted to higher-priority members.
        for (std::size_t i = 0; i < nv.size() && droppable; ++i) {
            for (std::size_t j = i + 1; j < nv.size() && droppable; ++j) {
                if (topo.has_edge(nv[i], nv[j])) continue;
                if (!intersects(comps[i], comps[j])) droppable = false;
            }
        }
        if (droppable) reduced[v] = 0;
    }
    return reduced;
}

}  // namespace adhoc
