#include "core/compact_view.hpp"

#include <algorithm>

namespace adhoc {

LocalViewScratch& LocalViewScratch::tls() {
    thread_local LocalViewScratch arena;
    return arena;
}

void LocalViewScratch::compile(const View& view) {
    if (const CompactTopology* cached = view.compact_topology(); cached != nullptr) {
        // Fast path: a long-lived LocalTopology already carries its CSR.
        // Alias it — only status/priorities below need per-call work.
        const auto mem = view.members();
        compact.size = static_cast<std::uint32_t>(mem.size());
        compact.members = mem;
        compact.offsets = cached->offsets;
        compact.edges = cached->edges;
    } else {
        const std::size_t n = view.node_count();
        if (g2l_.size() < n) {
            g2l_.resize(n, 0);
            g2l_stamp_.resize(n, 0);
        }
        ++epoch_;
        if (epoch_ == 0) {  // epoch wrapped: every stamp is stale, start over
            std::fill(g2l_stamp_.begin(), g2l_stamp_.end(), 0);
            epoch_ = 1;
        }

        // Member list: either carried by the view or recovered by scanning.
        members_store_.clear();
        const auto known = view.members();
        if (!known.empty()) {
            members_store_.assign(known.begin(), known.end());
        } else {
            for (NodeId v = 0; v < n; ++v) {
                if (view.visible(v)) members_store_.push_back(v);
            }
        }
        const std::uint32_t m = static_cast<std::uint32_t>(members_store_.size());
        compact.size = m;
        for (std::uint32_t i = 0; i < m; ++i) {
            const NodeId g = members_store_[i];
            g2l_[g] = i;
            g2l_stamp_[g] = epoch_;
        }

        // CSR adjacency — one pass over the members.  Rows inherit the
        // sorted order of the underlying adjacency lists (ascending global
        // == ascending local by construction).
        offsets_store_.resize(m + 1);
        edges_store_.clear();
        const Graph& g = view.topology();
        for (std::uint32_t i = 0; i < m; ++i) {
            offsets_store_[i] = static_cast<std::uint32_t>(edges_store_.size());
            for (NodeId y : g.neighbors(members_store_[i])) {
                // The View contract isolates invisible nodes, but hand-built
                // views are tolerated: silently drop edges to non-members.
                if (y < g2l_stamp_.size() && g2l_stamp_[y] == epoch_) {
                    edges_store_.push_back(g2l_[y]);
                }
            }
        }
        offsets_store_[m] = static_cast<std::uint32_t>(edges_store_.size());
        compact.members = members_store_;
        compact.offsets = offsets_store_;
        compact.edges = edges_store_;
    }

    // Status and priorities: always per-call (they encode broadcast state).
    const std::uint32_t m = compact.size;
    compact.priority.resize(m);
    compact.status.resize(m);
    for (std::uint32_t i = 0; i < m; ++i) {
        const NodeId v = compact.members[i];
        const NodeStatus st = view.status(v);
        compact.status[i] = st;
        compact.priority[i] = view.keys().evaluate(v, st);
    }
}

}  // namespace adhoc
