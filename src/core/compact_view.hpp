/// \file compact_view.hpp
/// \brief Dense-id compilation of a View plus the per-thread scratch arena.
///
/// The decision kernels (coverage condition, LENWB connectivity, MAX_MIN)
/// are invoked once per node per broadcast, and a naive implementation pays
/// O(n) per call — full-size masks, distance arrays and component labels —
/// even though the information they consume is bounded by the k-hop
/// neighborhood.  `LocalViewScratch::compile` flattens the visible part of
/// a View into contiguous arrays over *local* ids 0..m-1 (m = number of
/// visible nodes):
///
///  - a CSR adjacency (`offsets`/`edges`) over local ids,
///  - the per-node `Priority`, evaluated exactly once per compilation
///    (instead of once per `view.priority(x)` call inside the kernels),
///  - the per-node `NodeStatus`.
///
/// Local ids are assigned in ascending global-id order, so iterating
/// locals 0..m-1 visits the same node sequence the naive kernels produce
/// by scanning globals 0..n-1 and skipping invisible nodes — the property
/// that makes the optimized kernels bit-for-bit equivalent to the
/// `reference::` implementations.
///
/// The arena is thread-local and reused across calls: every buffer only
/// ever grows, so steady-state kernel evaluation performs no heap
/// allocation.  Component-membership sets are word-parallel bitsets
/// (`bits::` helpers) instead of sorted vectors.

#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/priority.hpp"
#include "core/view.hpp"

namespace adhoc {

/// Word-parallel bitset helpers over caller-provided uint64 buffers.
namespace bits {

inline constexpr std::size_t kWordBits = 64;

[[nodiscard]] inline std::size_t word_count(std::size_t nbits) noexcept {
    return (nbits + kWordBits - 1) / kWordBits;
}

/// Ensures `w` holds >= word_count(nbits) words, all zero.
inline void reset(std::vector<std::uint64_t>& w, std::size_t nbits) {
    const std::size_t words = word_count(nbits);
    if (w.size() < words) w.resize(words);
    std::fill(w.begin(), w.begin() + static_cast<std::ptrdiff_t>(words), 0);
}

inline void set(std::uint64_t* w, std::size_t i) noexcept {
    w[i / kWordBits] |= std::uint64_t{1} << (i % kWordBits);
}

[[nodiscard]] inline bool test(const std::uint64_t* w, std::size_t i) noexcept {
    return (w[i / kWordBits] >> (i % kWordBits)) & 1;
}

inline void clear(std::uint64_t* w, std::size_t i) noexcept {
    w[i / kWordBits] &= ~(std::uint64_t{1} << (i % kWordBits));
}

[[nodiscard]] inline bool any(const std::uint64_t* w, std::size_t words) noexcept {
    for (std::size_t i = 0; i < words; ++i) {
        if (w[i] != 0) return true;
    }
    return false;
}

/// True iff a AND b is nonzero — the word-parallel replacement for the
/// sorted-vector intersection test of the naive kernels.
[[nodiscard]] inline bool intersects(const std::uint64_t* a, const std::uint64_t* b,
                                     std::size_t words) noexcept {
    for (std::size_t i = 0; i < words; ++i) {
        if ((a[i] & b[i]) != 0) return true;
    }
    return false;
}

inline void and_inplace(std::uint64_t* a, const std::uint64_t* b, std::size_t words) noexcept {
    for (std::size_t i = 0; i < words; ++i) a[i] &= b[i];
}

}  // namespace bits

/// Sentinel for "no local id" / "unreached" in the compact arrays.
inline constexpr std::uint32_t kNoLocal = 0xffffffffu;

/// A View compiled to dense local ids (see file comment).
///
/// The topology arrays are spans: they alias either the arena's own
/// storage (views compiled from scratch) or a `CompactTopology` cached on
/// a long-lived LocalTopology (the simulation fast path, which skips the
/// per-call CSR build entirely).  Status and priorities are always
/// re-evaluated per compilation — they change between decisions.
struct CompactLocalView {
    std::uint32_t size = 0;                ///< m = number of visible nodes
    std::span<const NodeId> members;       ///< local -> global id, ascending
    std::span<const std::uint32_t> offsets;  ///< CSR row offsets, size m+1
    std::span<const std::uint32_t> edges;  ///< CSR columns (local ids), ascending per row
    std::vector<Priority> priority;        ///< Pr(x) under the view, cached
    std::vector<NodeStatus> status;        ///< view status per local node

    /// Neighbor row of local node `x`.
    [[nodiscard]] std::span<const std::uint32_t> row(std::uint32_t x) const noexcept {
        return {edges.data() + offsets[x], edges.data() + offsets[x + 1]};
    }

    [[nodiscard]] std::size_t degree(std::uint32_t x) const noexcept {
        return offsets[x + 1] - offsets[x];
    }

    /// Adjacency test; binary-searches the smaller of the two rows.
    [[nodiscard]] bool has_edge(std::uint32_t u, std::uint32_t w) const noexcept {
        if (degree(u) > degree(w)) std::swap(u, w);
        const auto r = row(u);
        return std::binary_search(r.begin(), r.end(), w);
    }
};

/// Thread-local reusable workspace for the decision kernels.
class LocalViewScratch {
  public:
    /// The calling thread's arena (one per worker thread, reused forever).
    [[nodiscard]] static LocalViewScratch& tls();

    /// Compiles `view` into `compact`.  O(|members| + local edges) when the
    /// view carries a member list, O(n + local edges) otherwise.
    void compile(const View& view);

    /// Local id of a global node; only valid for members of the most
    /// recently compiled view.  Binary search over the member list — the
    /// kernels only call this for their few entry points, and it works for
    /// both the cached-CSR and the compiled-from-scratch paths.
    [[nodiscard]] std::uint32_t local_of(NodeId global) const noexcept {
        const auto it = std::lower_bound(compact.members.begin(), compact.members.end(), global);
        return static_cast<std::uint32_t>(it - compact.members.begin());
    }

    /// True iff `global` is visible in the most recently compiled view.
    [[nodiscard]] bool is_member(NodeId global) const noexcept {
        return std::binary_search(compact.members.begin(), compact.members.end(), global);
    }

    CompactLocalView compact;

    // Reusable kernel buffers (sized to the compiled view on demand).
    std::vector<std::uint32_t> dist;    ///< BFS depth / bounded-reach depth
    std::vector<std::uint32_t> labels;  ///< component labels
    std::vector<std::uint32_t> queue;   ///< BFS queue (head index, no pops)
    std::vector<std::uint32_t> order;   ///< sorted candidate list (maxmin)
    std::vector<std::uint32_t> parent;  ///< union-find parents (maxmin)
    std::vector<char> active;           ///< activation flags (maxmin)
    std::vector<std::uint64_t> in_h;    ///< higher-priority membership bitset
    std::vector<std::uint64_t> mark;    ///< generic label/visited bitset
    std::vector<std::uint64_t> acc;     ///< running intersection accumulator
    std::vector<std::vector<std::uint64_t>> comp_bits;  ///< per-neighbor label sets

  private:
    // Storage backing `compact`'s spans when the view carries no
    // precompiled CSR.
    std::vector<NodeId> members_store_;
    std::vector<std::uint32_t> offsets_store_;
    std::vector<std::uint32_t> edges_store_;
    // Epoch-stamped global -> local map; only used while building a CSR
    // from scratch (O(1) invalidation between compilations).
    std::vector<std::uint32_t> g2l_;
    std::vector<std::uint32_t> g2l_stamp_;
    std::uint32_t epoch_ = 0;
};

}  // namespace adhoc
