#include "core/coverage.hpp"

#include <algorithm>
#include <cassert>

#include "core/compact_view.hpp"
#include "graph/traversal.hpp"

// Optimized decision kernels.  Every function here follows the same shape:
// compile the view into the thread-local compact arena (dense local ids,
// CSR adjacency, priorities evaluated once), run the whole computation over
// local ids with reused buffers — zero heap allocations per call in steady
// state — and map results back to global ids on the way out.  Iteration
// orders mirror the retained `reference::` kernels exactly (local ids are
// assigned in ascending global order), so verdicts, witnesses and component
// labels are bit-for-bit identical.

namespace adhoc {

namespace {

/// Bitset of local nodes with priority strictly greater than `threshold`
/// (excluding `exclude_local` when != kNoLocal).  Fills `s.in_h`.
void higher_priority_bits(LocalViewScratch& s, const Priority& threshold,
                          std::uint32_t exclude_local) {
    const CompactLocalView& c = s.compact;
    bits::reset(s.in_h, c.size);
    for (std::uint32_t x = 0; x < c.size; ++x) {
        if (x == exclude_local) continue;
        if (c.priority[x] > threshold) bits::set(s.in_h.data(), x);
    }
}

/// Component labels of the subgraph induced on `s.in_h`, into `s.labels`
/// (kNoLocal outside).  Discovery order matches the reference kernel:
/// roots in ascending id order, BFS expanding sorted rows.  Returns the
/// number of labels assigned.
std::uint32_t components_on_bits(LocalViewScratch& s) {
    const CompactLocalView& c = s.compact;
    s.labels.assign(c.size, kNoLocal);
    if (s.queue.size() < c.size) s.queue.resize(c.size);
    std::uint32_t next = 0;
    for (std::uint32_t root = 0; root < c.size; ++root) {
        if (!bits::test(s.in_h.data(), root) || s.labels[root] != kNoLocal) continue;
        std::size_t head = 0;
        std::size_t tail = 0;
        s.labels[root] = next;
        s.queue[tail++] = root;
        while (head < tail) {
            const std::uint32_t x = s.queue[head++];
            for (std::uint32_t y : c.row(x)) {
                if (!bits::test(s.in_h.data(), y) || s.labels[y] != kNoLocal) continue;
                s.labels[y] = next;
                s.queue[tail++] = y;
            }
        }
        ++next;
    }
    return next;
}

/// Remaps component labels so every component containing a visited node
/// shares one label (the merged "visited super-component").  The visited
/// label set and its minimum are collected in one pass.
void merge_visited_labels(LocalViewScratch& s, std::uint32_t label_count) {
    const CompactLocalView& c = s.compact;
    std::uint32_t rep = kNoLocal;
    bits::reset(s.mark, label_count);
    for (std::uint32_t x = 0; x < c.size; ++x) {
        if (s.labels[x] == kNoLocal || c.status[x] != NodeStatus::kVisited) continue;
        rep = std::min(rep, s.labels[x]);
        bits::set(s.mark.data(), s.labels[x]);
    }
    if (rep == kNoLocal) return;
    for (std::uint32_t x = 0; x < c.size; ++x) {
        if (s.labels[x] != kNoLocal && bits::test(s.mark.data(), s.labels[x])) {
            s.labels[x] = rep;
        }
    }
}

/// Label set that local node `u` belongs to or is adjacent to, as a bitset
/// over label ids (the word-parallel replacement for the sorted label
/// vectors the reference kernel intersects pairwise).
void adjacent_component_bits(const LocalViewScratch& s, std::uint32_t u,
                             std::vector<std::uint64_t>& out, std::uint32_t label_count) {
    bits::reset(out, label_count);
    if (s.labels[u] != kNoLocal) bits::set(out.data(), s.labels[u]);
    for (std::uint32_t y : s.compact.row(u)) {
        if (s.labels[y] != kNoLocal) bits::set(out.data(), s.labels[y]);
    }
}

/// Bounded-depth reach of H-nodes from `u` (paper: replacement paths with
/// at most `max_intermediates` intermediate H-nodes, the first adjacent to
/// `u`).  Fills `s.dist` with the number of H-nodes on the walk up to and
/// including each node (kNoLocal = unreached).  When `merge_visited`, the
/// visited H-nodes behave as one hyper-node.
void bounded_reach(LocalViewScratch& s, std::uint32_t u, std::size_t max_intermediates,
                   bool merge_visited) {
    const CompactLocalView& c = s.compact;
    s.dist.assign(c.size, kNoLocal);
    if (s.queue.size() < c.size) s.queue.resize(c.size);
    std::size_t head = 0;
    std::size_t tail = 0;
    bool visited_injected = false;

    auto inject_visited = [&](std::uint32_t d) {
        if (visited_injected) return;
        visited_injected = true;
        for (std::uint32_t x = 0; x < c.size; ++x) {
            if (bits::test(s.in_h.data(), x) && c.status[x] == NodeStatus::kVisited &&
                s.dist[x] == kNoLocal) {
                s.dist[x] = d;
                s.queue[tail++] = x;
            }
        }
    };

    for (std::uint32_t y : c.row(u)) {
        if (!bits::test(s.in_h.data(), y) || s.dist[y] != kNoLocal) continue;
        s.dist[y] = 1;
        s.queue[tail++] = y;
        if (merge_visited && c.status[y] == NodeStatus::kVisited) inject_visited(1);
    }
    while (head < tail) {
        const std::uint32_t x = s.queue[head++];
        if (s.dist[x] >= max_intermediates) continue;
        for (std::uint32_t y : c.row(x)) {
            if (!bits::test(s.in_h.data(), y) || s.dist[y] != kNoLocal) continue;
            s.dist[y] = s.dist[x] + 1;
            s.queue[tail++] = y;
            if (merge_visited && c.status[y] == NodeStatus::kVisited) inject_visited(s.dist[y]);
        }
    }
}

/// Plain BFS hop distances from `source` over the compact topology, into
/// `s.dist` (kNoLocal = unreachable).  Used by the coverage-radius clamp.
void compact_bfs(LocalViewScratch& s, std::uint32_t source) {
    const CompactLocalView& c = s.compact;
    s.dist.assign(c.size, kNoLocal);
    if (s.queue.size() < c.size) s.queue.resize(c.size);
    std::size_t head = 0;
    std::size_t tail = 0;
    s.dist[source] = 0;
    s.queue[tail++] = source;
    while (head < tail) {
        const std::uint32_t x = s.queue[head++];
        for (std::uint32_t y : c.row(x)) {
            if (s.dist[y] != kNoLocal) continue;
            s.dist[y] = s.dist[x] + 1;
            s.queue[tail++] = y;
        }
    }
}

}  // namespace

std::vector<std::size_t> higher_priority_components(const View& view, const Priority& threshold,
                                                    bool merge_visited) {
    LocalViewScratch& s = LocalViewScratch::tls();
    s.compile(view);
    // The threshold owner is excluded by the strict comparison itself.
    higher_priority_bits(s, threshold, kNoLocal);
    const std::uint32_t label_count = components_on_bits(s);
    if (merge_visited) merge_visited_labels(s, label_count);

    std::vector<std::size_t> out(view.node_count(), kUnreachable);
    for (std::uint32_t x = 0; x < s.compact.size; ++x) {
        if (s.labels[x] != kNoLocal) out[s.compact.members[x]] = s.labels[x];
    }
    return out;
}

std::vector<char> connected_via_higher_priority(const View& view, NodeId u,
                                                const Priority& threshold, bool merge_visited) {
    std::vector<char> out(view.node_count(), 0);
    if (!view.visible(u)) return out;

    LocalViewScratch& s = LocalViewScratch::tls();
    s.compile(view);
    const CompactLocalView& c = s.compact;
    const std::uint32_t lu = s.local_of(u);

    bits::reset(s.mark, c.size);  // in-C membership
    if (s.queue.size() < c.size) s.queue.resize(c.size);
    std::size_t head = 0;
    std::size_t tail = 0;
    bool visited_injected = false;

    auto inject_visited = [&]() {
        if (visited_injected) return;
        visited_injected = true;
        for (std::uint32_t x = 0; x < c.size; ++x) {
            if (c.status[x] == NodeStatus::kVisited && !bits::test(s.mark.data(), x)) {
                bits::set(s.mark.data(), x);
                s.queue[tail++] = x;
            }
        }
    };

    bits::set(s.mark.data(), lu);
    s.queue[tail++] = lu;
    if (merge_visited && c.status[lu] == NodeStatus::kVisited) inject_visited();
    while (head < tail) {
        const std::uint32_t x = s.queue[head++];
        // Expansion proceeds only *through* the start node or nodes with
        // higher priority; lower-priority nodes may be reached (endpoints)
        // but not traversed.
        if (x != lu && !(c.priority[x] > threshold)) continue;
        for (std::uint32_t y : c.row(x)) {
            if (bits::test(s.mark.data(), y)) continue;
            bits::set(s.mark.data(), y);
            s.queue[tail++] = y;
            if (merge_visited && c.status[y] == NodeStatus::kVisited) inject_visited();
        }
    }

    for (std::uint32_t x = 0; x < c.size; ++x) {
        if (bits::test(s.mark.data(), x)) out[c.members[x]] = 1;
    }
    return out;
}

CoverageOutcome evaluate_coverage_compiled(LocalViewScratch& s, std::uint32_t lv,
                                           const Priority& pv, const CoverageOptions& opts) {
    const CompactLocalView& c = s.compact;
    const auto nv = c.row(lv);
    if (nv.size() <= 1) return {.covered = true};  // no neighbor pair to connect

    higher_priority_bits(s, pv, lv);
    if (opts.coverage_radius > 0) {
        // Restricted implementations: only nodes within the radius may act
        // as coverage/replacement nodes.
        compact_bfs(s, lv);
        for (std::uint32_t x = 0; x < c.size; ++x) {
            if (s.dist[x] == kNoLocal || s.dist[x] > opts.coverage_radius) {
                bits::clear(s.in_h.data(), x);
            }
        }
    }

    if (opts.max_path_hops > 0 && !opts.strong) {
        // Bounded replacement paths (Span): pairwise BFS with a depth cap
        // of max_path_hops - 1 intermediates.
        const std::size_t cap = opts.max_path_hops - 1;
        for (std::size_t i = 0; i < nv.size(); ++i) {
            const std::uint32_t u = nv[i];
            bounded_reach(s, u, cap, opts.merge_visited);
            for (std::size_t j = i + 1; j < nv.size(); ++j) {
                const std::uint32_t w = nv[j];
                if (c.has_edge(u, w)) continue;
                bool ok = false;
                for (std::uint32_t x : c.row(w)) {
                    if (s.dist[x] != kNoLocal && s.dist[x] <= cap) {
                        ok = true;
                        break;
                    }
                }
                if (!ok) {
                    return {.covered = false,
                            .uncovered_u = c.members[u],
                            .uncovered_w = c.members[w]};
                }
            }
        }
        return {.covered = true};
    }

    // Component machinery shared by the full and strong conditions.
    const std::uint32_t label_count = components_on_bits(s);
    if (opts.merge_visited) merge_visited_labels(s, label_count);

    if (s.comp_bits.size() < nv.size()) s.comp_bits.resize(nv.size());
    for (std::size_t i = 0; i < nv.size(); ++i) {
        adjacent_component_bits(s, nv[i], s.comp_bits[i], label_count);
    }
    const std::size_t words = bits::word_count(label_count);

    if (opts.strong) {
        // Strong condition: one component must dominate every neighbor.
        if (!bits::any(s.comp_bits[0].data(), words)) {
            return {.covered = false, .uncovered_u = c.members[nv[0]]};
        }
        bits::reset(s.acc, label_count);
        std::copy_n(s.comp_bits[0].begin(), words, s.acc.begin());
        for (std::size_t i = 1; i < nv.size(); ++i) {
            bits::and_inplace(s.acc.data(), s.comp_bits[i].data(), words);
            if (!bits::any(s.acc.data(), words)) {
                return {.covered = false, .uncovered_u = c.members[nv[i]]};
            }
        }
        return {.covered = true};
    }

    // Full pairwise condition.  Note this relation is not transitive, so
    // all O(deg^2) pairs are checked.
    for (std::size_t i = 0; i < nv.size(); ++i) {
        for (std::size_t j = i + 1; j < nv.size(); ++j) {
            const std::uint32_t u = nv[i];
            const std::uint32_t w = nv[j];
            if (c.has_edge(u, w)) continue;
            if (!bits::intersects(s.comp_bits[i].data(), s.comp_bits[j].data(), words)) {
                return {.covered = false,
                        .uncovered_u = c.members[u],
                        .uncovered_w = c.members[w]};
            }
        }
    }
    return {.covered = true};
}

CoverageOutcome evaluate_coverage(const View& view, NodeId v, const CoverageOptions& opts,
                                  NodeStatus self_status) {
    assert(view.visible(v));
    LocalViewScratch& s = LocalViewScratch::tls();
    s.compile(view);
    const std::uint32_t lv = s.local_of(v);
    const Priority pv = view.keys().evaluate(v, self_status);
    return evaluate_coverage_compiled(s, lv, pv, opts);
}

bool coverage_condition_holds(const View& view, NodeId v, const CoverageOptions& opts,
                              NodeStatus self_status) {
    return evaluate_coverage(view, v, opts, self_status).covered;
}

}  // namespace adhoc
