/// \file coverage.hpp
/// \brief The coverage condition (paper Section 3) and its special cases.
///
/// **Coverage condition.**  Node v may take non-forward status if for *any
/// two* neighbors u, w of v there is a *replacement path* from u to w whose
/// intermediate nodes (possibly none) all have priority higher than Pr(v).
///
/// **Strong coverage condition** (Section 6).  v may take non-forward
/// status if it has a *coverage set*: a set of higher-priority nodes,
/// contained in one connected component of the higher-priority induced
/// subgraph, that dominates N(v).  Strong implies the original, and is an
/// O(D^2) check versus O(D^3) for the original (D = network density).
///
/// Per Section 2, all visited nodes are assumed connected under any local
/// view (they are all connected to the source through visited paths), so
/// the component computation merges every visited node into one component.
/// Figure 6(b) of the paper depends on this merge.

#pragma once

#include <cstddef>
#include <vector>

#include "core/compact_view.hpp"
#include "core/view.hpp"
#include "graph/graph.hpp"

namespace adhoc {

/// Tuning knobs that turn the one generic condition into the special cases
/// of Section 6.
struct CoverageOptions {
    /// Use the strong coverage condition (connected dominating coverage
    /// set) instead of the full pairwise condition.
    bool strong = false;

    /// Maximum replacement-path length in hops (0 = unbounded).  Span uses
    /// 3 (at most two intermediate coordinators).  Only meaningful for the
    /// full condition.
    std::size_t max_path_hops = 0;

    /// Treat all visited nodes as one connected component (paper Section
    /// 2).  Disabled only by tests that demonstrate why the rule matters.
    bool merge_visited = true;

    /// Restrict coverage/replacement nodes to within this many hops of the
    /// evaluated node (0 = unlimited).  The *restricted* Rule-k
    /// implementations (Section 6.1) use 1 (coverage nodes must be
    /// neighbors, 2-hop info) or 2 (neighbors' neighbors, 3-hop info).
    std::size_t coverage_radius = 0;
};

/// Result of a coverage evaluation, with enough detail for tracing/tests.
struct CoverageOutcome {
    bool covered = false;  ///< true => v may take non-forward status
    /// For the full condition: a witness pair of neighbors with no
    /// replacement path (valid only when !covered and v has >= 2 visible
    /// neighbors).
    NodeId uncovered_u = kInvalidNode;
    NodeId uncovered_w = kInvalidNode;
};

/// Evaluates the (strong) coverage condition for `v` under `view`.
///
/// `self_status` is v's own status used on the left-hand side of the
/// priority comparisons — normally kUnvisited; pass kDesignated to model
/// the relaxed designated-node rule of Section 4.2 (a designated node may
/// still prune if covered by *visited or higher-priority designated*
/// nodes).
[[nodiscard]] CoverageOutcome evaluate_coverage(const View& view, NodeId v,
                                                const CoverageOptions& opts = {},
                                                NodeStatus self_status = NodeStatus::kUnvisited);

/// Convenience wrapper returning just the boolean.
[[nodiscard]] bool coverage_condition_holds(const View& view, NodeId v,
                                            const CoverageOptions& opts = {},
                                            NodeStatus self_status = NodeStatus::kUnvisited);

/// Kernel entry point over an already-compiled scratch: `s.compact` must
/// hold the evaluated node's local view (members/offsets/edges spans plus
/// per-member priority and status), `local_v` its local id, and `pv` its
/// own fully-evaluated priority.  `evaluate_coverage` is exactly
/// `compile` + this call; callers that assemble the compact view
/// themselves — the ScaleEngine compiles truncated-BFS views straight into
/// per-wheel storage and aliases the spans — skip the `View` object
/// entirely and still run the identical decision kernel.
[[nodiscard]] CoverageOutcome evaluate_coverage_compiled(LocalViewScratch& s,
                                                         std::uint32_t local_v,
                                                         const Priority& pv,
                                                         const CoverageOptions& opts);

/// Connected components of the subgraph induced on nodes with priority
/// strictly greater than `threshold`, with all visited nodes merged into a
/// single component (when `merge_visited`).  Exposed for reuse by LENWB and
/// by tests.  Returns per-node labels (kUnreachable for nodes outside the
/// induced subgraph).
[[nodiscard]] std::vector<std::size_t> higher_priority_components(const View& view,
                                                                  const Priority& threshold,
                                                                  bool merge_visited);

/// LENWB's check (Section 6.2): the set C of nodes connected to `u` via
/// intermediates of priority greater than Pr(v).  Endpoints of the
/// expansion need not themselves have higher priority; expansion only
/// proceeds *through* higher-priority nodes (and through the merged visited
/// component).  Returns a membership mask over the original id space.
[[nodiscard]] std::vector<char> connected_via_higher_priority(const View& view, NodeId u,
                                                              const Priority& threshold,
                                                              bool merge_visited = true);

/// Naive O(n)-per-call implementations retained for cross-validation.
///
/// The production kernels above run on a compact dense-id compilation of
/// the view with per-thread scratch (see compact_view.hpp); these are the
/// straightforward global-id implementations they replaced.  The
/// equivalence property test (`coverage_equivalence_test`) asserts both
/// families agree bit-for-bit on every input.
namespace reference {

[[nodiscard]] CoverageOutcome evaluate_coverage(const View& view, NodeId v,
                                                const CoverageOptions& opts = {},
                                                NodeStatus self_status = NodeStatus::kUnvisited);

[[nodiscard]] bool coverage_condition_holds(const View& view, NodeId v,
                                            const CoverageOptions& opts = {},
                                            NodeStatus self_status = NodeStatus::kUnvisited);

[[nodiscard]] std::vector<std::size_t> higher_priority_components(const View& view,
                                                                  const Priority& threshold,
                                                                  bool merge_visited);

[[nodiscard]] std::vector<char> connected_via_higher_priority(const View& view, NodeId u,
                                                              const Priority& threshold,
                                                              bool merge_visited = true);

}  // namespace reference

}  // namespace adhoc
