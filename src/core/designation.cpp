#include "core/designation.hpp"

#include <algorithm>
#include <cassert>

namespace adhoc {

std::size_t effective_degree(const Graph& g, NodeId w, const std::vector<char>& uncovered) {
    assert(uncovered.size() == g.node_count());
    std::size_t count = 0;
    for (NodeId y : g.neighbors(w)) {
        if (uncovered[y]) ++count;
    }
    return count;
}

std::vector<NodeId> greedy_cover(const Graph& g, std::span<const NodeId> candidates,
                                 std::span<const NodeId> targets) {
    std::vector<char> uncovered(g.node_count(), 0);
    std::size_t remaining = 0;
    for (NodeId t : targets) {
        if (!uncovered[t]) {
            uncovered[t] = 1;
            ++remaining;
        }
    }

    std::vector<char> used(g.node_count(), 0);
    std::vector<NodeId> selected;
    while (remaining > 0) {
        NodeId best = kInvalidNode;
        std::size_t best_gain = 0;
        for (NodeId w : candidates) {
            if (used[w]) continue;
            const std::size_t gain = effective_degree(g, w, uncovered);
            if (gain > best_gain || (gain == best_gain && gain > 0 && w < best)) {
                best = w;
                best_gain = gain;
            }
        }
        if (best == kInvalidNode || best_gain == 0) break;  // nothing more coverable
        used[best] = 1;
        selected.push_back(best);
        for (NodeId y : g.neighbors(best)) {
            if (uncovered[y]) {
                uncovered[y] = 0;
                --remaining;
            }
        }
    }
    return selected;
}

NodeId designate_single(const Graph& g, std::span<const NodeId> candidates,
                        const std::vector<char>& uncovered, HybridPolicy policy) {
    NodeId best = kInvalidNode;
    std::size_t best_gain = 0;
    for (NodeId w : candidates) {
        const std::size_t gain = effective_degree(g, w, uncovered);
        if (gain == 0) continue;  // must cover at least one 2-hop neighbor
        switch (policy) {
            case HybridPolicy::kMaxDegree:
                if (gain > best_gain || (gain == best_gain && w < best)) {
                    best = w;
                    best_gain = gain;
                }
                break;
            case HybridPolicy::kMinId:
                if (best == kInvalidNode || w < best) {
                    best = w;
                    best_gain = gain;
                }
                break;
        }
    }
    return best;
}

}  // namespace adhoc
