/// \file designation.hpp
/// \brief Greedy forward-neighbor designation (Sections 4.2, 6.3, 6.4).
///
/// Neighbor-designating algorithms (DP, PDP, TDP, MPR, the generic ND
/// option) all reduce to the same greedy set-cover step: from candidate
/// 1-hop neighbors X, repeatedly pick the one covering the most uncovered
/// 2-hop targets Y, until Y is exhausted.  The hybrid schemes of Section
/// 6.4 instead designate a *single* neighbor by maximum effective degree or
/// minimum id.

#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace adhoc {

/// Greedy set cover: selects nodes from `candidates` until every node of
/// `targets` is adjacent to (covered by) a selected node, or no candidate
/// covers anything further.  Coverage is adjacency in `g` (a candidate does
/// not cover itself unless adjacent to itself, which simple graphs forbid —
/// callers remove candidate ids from `targets` beforehand when the
/// semantics require it).
///
/// Tie-break: larger effective degree first, then smaller node id — the
/// paper's convention ("node id is used to break a tie in node degree").
[[nodiscard]] std::vector<NodeId> greedy_cover(const Graph& g,
                                               std::span<const NodeId> candidates,
                                               std::span<const NodeId> targets);

/// Effective node degree of `w` with respect to `uncovered`:
/// |N(w) ∩ uncovered| (Section 6.3, dominant pruning).
[[nodiscard]] std::size_t effective_degree(const Graph& g, NodeId w,
                                           const std::vector<char>& uncovered);

/// Hybrid single designation policy (Section 6.4).
enum class HybridPolicy {
    kMaxDegree,  ///< designate the neighbor with maximum effective degree
    kMinId,      ///< designate the eligible neighbor with the lowest id
};

/// Picks at most one designated forward neighbor for `v`: a candidate that
/// covers at least one node of `uncovered` (mask over g's id space),
/// selected by `policy`.  Returns kInvalidNode when no candidate covers
/// anything.
[[nodiscard]] NodeId designate_single(const Graph& g, std::span<const NodeId> candidates,
                                      const std::vector<char>& uncovered, HybridPolicy policy);

}  // namespace adhoc
