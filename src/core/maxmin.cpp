#include "core/maxmin.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace adhoc {

namespace {

/// Tiny union-find over node ids.
class Dsu {
  public:
    explicit Dsu(std::size_t n) : parent_(n) {
        std::iota(parent_.begin(), parent_.end(), NodeId{0});
    }
    NodeId find(NodeId x) {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }
    void unite(NodeId a, NodeId b) { parent_[find(a)] = find(b); }

  private:
    std::vector<NodeId> parent_;
};

}  // namespace

NodeId max_min_node(const View& view, NodeId u, NodeId w, const Priority& self_priority) {
    assert(view.visible(u) && view.visible(w));
    if (view.topology().has_edge(u, w)) return kInvalidNode;  // no intermediate needed

    // Candidate intermediates, highest priority first.
    std::vector<NodeId> candidates;
    for (NodeId x = 0; x < view.node_count(); ++x) {
        if (x == u || x == w || !view.visible(x)) continue;
        if (view.priority(x) > self_priority) candidates.push_back(x);
    }
    std::sort(candidates.begin(), candidates.end(), [&](NodeId a, NodeId b) {
        return view.priority(a) > view.priority(b);
    });

    // Activate intermediates in descending priority order; the node whose
    // activation first connects u and w is the max-min (bottleneck) node of
    // the widest replacement path.
    Dsu dsu(view.node_count());
    std::vector<char> active(view.node_count(), 0);
    active[u] = active[w] = 1;
    for (NodeId x : candidates) {
        active[x] = 1;
        for (NodeId y : view.topology().neighbors(x)) {
            if (active[y]) dsu.unite(x, y);
        }
        if (dsu.find(u) == dsu.find(w)) return x;
    }
    return kInvalidNode;
}

std::optional<std::vector<NodeId>> max_min_path(const View& view, NodeId u, NodeId w,
                                                const Priority& self_priority) {
    if (view.topology().has_edge(u, w)) return std::vector<NodeId>{};  // step 1: return empty
    const NodeId x = max_min_node(view, u, w, self_priority);
    if (x == kInvalidNode) return std::nullopt;  // no replacement path exists
    auto left = max_min_path(view, u, x, self_priority);
    auto right = max_min_path(view, x, w, self_priority);
    // Lemma 1: both sub-calls succeed whenever the top-level max-min node
    // exists; the recursion always selects distinct nodes and terminates.
    assert(left.has_value() && right.has_value());
    if (!left || !right) return std::nullopt;
    std::vector<NodeId> path = std::move(*left);
    path.push_back(x);
    path.insert(path.end(), right->begin(), right->end());
    return path;
}

bool is_replacement_path(const View& view, NodeId u, NodeId w,
                         const std::vector<NodeId>& intermediates, const Priority& threshold) {
    NodeId prev = u;
    for (NodeId x : intermediates) {
        if (!view.visible(x) || !(view.priority(x) > threshold)) return false;
        if (!view.topology().has_edge(prev, x)) return false;
        prev = x;
    }
    return view.topology().has_edge(prev, w);
}

}  // namespace adhoc
