#include "core/maxmin.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "core/compact_view.hpp"

namespace adhoc {

namespace {

/// Sorts into `s.order` every local node with priority above `threshold`,
/// highest priority first.  Computed once per top-level call and threaded
/// through the whole MAX_MIN recursion: sub-calls share the same threshold,
/// so re-deriving and re-sorting the candidates at every level (as the
/// reference implementation does) repeats identical work.  Priorities form
/// a total order (id tiebreak), so the sorted sequence is unique and
/// level-local skipping of the current endpoints reproduces the reference
/// candidate sequence exactly.
void build_candidate_order(LocalViewScratch& s, const Priority& threshold) {
    const CompactLocalView& c = s.compact;
    s.order.clear();
    for (std::uint32_t x = 0; x < c.size; ++x) {
        if (c.priority[x] > threshold) s.order.push_back(x);
    }
    std::sort(s.order.begin(), s.order.end(), [&c](std::uint32_t a, std::uint32_t b) {
        return c.priority[a] > c.priority[b];
    });
}

std::uint32_t uf_find(LocalViewScratch& s, std::uint32_t x) {
    while (s.parent[x] != x) {
        s.parent[x] = s.parent[s.parent[x]];
        x = s.parent[x];
    }
    return x;
}

/// Max-min node over the compiled view; `s.order` must be built for the
/// call's threshold.  Activates candidates in descending priority order
/// (skipping the two endpoints); the node whose activation first connects
/// u and w is the bottleneck of the widest replacement path.
std::uint32_t max_min_node_local(LocalViewScratch& s, std::uint32_t u, std::uint32_t w) {
    const CompactLocalView& c = s.compact;
    if (c.has_edge(u, w)) return kNoLocal;  // no intermediate needed

    s.parent.resize(c.size);
    std::iota(s.parent.begin(), s.parent.end(), std::uint32_t{0});
    s.active.assign(c.size, 0);
    s.active[u] = s.active[w] = 1;
    for (std::uint32_t x : s.order) {
        if (x == u || x == w) continue;
        s.active[x] = 1;
        for (std::uint32_t y : c.row(x)) {
            if (s.active[y]) s.parent[uf_find(s, x)] = uf_find(s, y);
        }
        if (uf_find(s, u) == uf_find(s, w)) return x;
    }
    return kNoLocal;
}

std::optional<std::vector<NodeId>> max_min_path_local(LocalViewScratch& s, std::uint32_t u,
                                                      std::uint32_t w) {
    if (s.compact.has_edge(u, w)) return std::vector<NodeId>{};  // step 1: return empty
    const std::uint32_t x = max_min_node_local(s, u, w);
    if (x == kNoLocal) return std::nullopt;  // no replacement path exists
    auto left = max_min_path_local(s, u, x);
    auto right = max_min_path_local(s, x, w);
    // Lemma 1: both sub-calls succeed whenever the top-level max-min node
    // exists; the recursion always selects distinct nodes and terminates.
    assert(left.has_value() && right.has_value());
    if (!left || !right) return std::nullopt;
    std::vector<NodeId> path = std::move(*left);
    path.push_back(s.compact.members[x]);
    path.insert(path.end(), right->begin(), right->end());
    return path;
}

}  // namespace

NodeId max_min_node(const View& view, NodeId u, NodeId w, const Priority& self_priority) {
    assert(view.visible(u) && view.visible(w));
    LocalViewScratch& s = LocalViewScratch::tls();
    s.compile(view);
    build_candidate_order(s, self_priority);
    const std::uint32_t r = max_min_node_local(s, s.local_of(u), s.local_of(w));
    return r == kNoLocal ? kInvalidNode : s.compact.members[r];
}

std::optional<std::vector<NodeId>> max_min_path(const View& view, NodeId u, NodeId w,
                                                const Priority& self_priority) {
    if (view.topology().has_edge(u, w)) return std::vector<NodeId>{};
    assert(view.visible(u) && view.visible(w));
    LocalViewScratch& s = LocalViewScratch::tls();
    s.compile(view);
    build_candidate_order(s, self_priority);
    return max_min_path_local(s, s.local_of(u), s.local_of(w));
}

bool is_replacement_path(const View& view, NodeId u, NodeId w,
                         const std::vector<NodeId>& intermediates, const Priority& threshold) {
    NodeId prev = u;
    for (NodeId x : intermediates) {
        if (!view.visible(x) || !(view.priority(x) > threshold)) return false;
        if (!view.topology().has_edge(prev, x)) return false;
        prev = x;
    }
    return view.topology().has_edge(prev, w);
}

}  // namespace adhoc
