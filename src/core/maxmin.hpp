/// \file maxmin.hpp
/// \brief The MAX_MIN procedure of Lemma 1: maximal replacement paths.
///
/// Given neighbors u, w of a non-forward node v, MAX_MIN(u, w, v)
/// constructs a *maximal* replacement path — one whose intermediate nodes
/// cannot themselves be replaced under the current view (they are forward
/// or visited nodes).  It recursively splits on the *max-min node*: among
/// all replacement paths for v connecting u and w, the node of highest
/// priority that appears as the minimum-priority node of some path
/// (Definition 1).  The machinery exists to validate the paper's
/// correctness argument; the protocol itself only needs the boolean
/// coverage condition.

#pragma once

#include <optional>
#include <vector>

#include "core/view.hpp"
#include "graph/graph.hpp"

namespace adhoc {

/// Finds the max-min node for (u, w, v) under `view`: the bottleneck node
/// of the widest (priority-wise) replacement path for v from u to w.
/// Returns kInvalidNode when u, w are directly connected or no replacement
/// path exists.  `self_priority` is Pr(v), the threshold intermediates must
/// exceed.
[[nodiscard]] NodeId max_min_node(const View& view, NodeId u, NodeId w,
                                  const Priority& self_priority);

/// Runs MAX_MIN(u, w, v) and returns the intermediate nodes of the maximal
/// replacement path (empty when u, w are adjacent), or nullopt when no
/// replacement path exists at all.
[[nodiscard]] std::optional<std::vector<NodeId>> max_min_path(const View& view, NodeId u,
                                                              NodeId w,
                                                              const Priority& self_priority);

/// True iff `path` (intermediates only) is a replacement path for the
/// threshold priority connecting u to w under `view`: consecutive hops are
/// edges and every intermediate has priority > threshold.
[[nodiscard]] bool is_replacement_path(const View& view, NodeId u, NodeId w,
                                       const std::vector<NodeId>& intermediates,
                                       const Priority& threshold);

/// Naive implementations retained for cross-validation (see coverage.hpp).
/// The production `max_min_path` sorts the descending-priority candidate
/// set once and threads it through the recursion; these re-derive it at
/// every level, as the original code did.
namespace reference {

[[nodiscard]] NodeId max_min_node(const View& view, NodeId u, NodeId w,
                                  const Priority& self_priority);

[[nodiscard]] std::optional<std::vector<NodeId>> max_min_path(const View& view, NodeId u,
                                                              NodeId w,
                                                              const Priority& self_priority);

}  // namespace reference

}  // namespace adhoc
