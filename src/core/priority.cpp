#include "core/priority.hpp"

#include "graph/metrics.hpp"

namespace adhoc {

std::string to_string(PriorityScheme scheme) {
    switch (scheme) {
        case PriorityScheme::kId: return "ID";
        case PriorityScheme::kDegree: return "Degree";
        case PriorityScheme::kNcr: return "NCR";
    }
    return "?";
}

std::string to_string(NodeStatus status) {
    switch (status) {
        case NodeStatus::kInvisible: return "invisible";
        case NodeStatus::kUnvisited: return "unvisited";
        case NodeStatus::kDesignated: return "designated";
        case NodeStatus::kVisited: return "visited";
    }
    return "?";
}

PriorityKeys::PriorityKeys(const Graph& g, PriorityScheme scheme) : scheme_(scheme) {
    const std::size_t n = g.node_count();
    key1_.assign(n, 0.0);
    key2_.assign(n, 0.0);
    switch (scheme) {
        case PriorityScheme::kId:
            break;  // id tiebreak inside Priority is enough
        case PriorityScheme::kDegree:
            for (NodeId v = 0; v < n; ++v) key1_[v] = static_cast<double>(g.degree(v));
            break;
        case PriorityScheme::kNcr:
            for (NodeId v = 0; v < n; ++v) {
                key1_[v] = neighborhood_connectivity_ratio(g, v);
                key2_[v] = static_cast<double>(g.degree(v));
            }
            break;
    }
}

std::size_t PriorityKeys::extra_rounds() const noexcept {
    switch (scheme_) {
        case PriorityScheme::kId: return 0;
        case PriorityScheme::kDegree: return 1;
        case PriorityScheme::kNcr: return 2;
    }
    return 0;
}

}  // namespace adhoc
