/// \file priority.hpp
/// \brief Node status and the priority total order of the generic framework.
///
/// The paper (Section 2) assigns each node a priority tuple
/// Pr(v) = (S(v), key(v)) compared lexicographically:
///  - S(v) = 0   invisible under the local view (lowest),
///  - S(v) = 1   un-visited and un-designated,
///  - S(v) = 1.5 un-visited but designated by some neighbor (Section 4.2),
///  - S(v) = 2   visited (has forwarded, or is committed to forward).
/// The key is one of the schemes of Section 4.4 (node id / node degree /
/// neighborhood connectivity ratio), each ultimately tie-broken by the
/// globally unique node id, which makes the order total.

#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace adhoc {

/// Visited/designated status as it appears in a view.  Enumerators are
/// ordered exactly like the paper's S values 0 < 1 < 1.5 < 2.
enum class NodeStatus : std::uint8_t {
    kInvisible = 0,   ///< not captured by the local view
    kUnvisited = 1,   ///< ordinary node
    kDesignated = 2,  ///< designated forward node, not yet forwarded (S=1.5)
    kVisited = 3,     ///< has forwarded the packet (S=2)
};

/// Which static key the priority uses (Section 4.4).
enum class PriorityScheme : std::uint8_t {
    kId,      ///< 0-hop: node id only
    kDegree,  ///< 1-hop: (degree, id)
    kNcr,     ///< 2-hop: (ncr, degree, id)
};

[[nodiscard]] std::string to_string(PriorityScheme scheme);
[[nodiscard]] std::string to_string(NodeStatus status);

/// A fully-evaluated priority value.  Compared lexicographically as
/// (status, key1, key2, id); unused keys are 0 so they do not perturb the
/// order.  Distinct nodes always compare unequal (id tiebreak).
struct Priority {
    NodeStatus status = NodeStatus::kInvisible;
    double key1 = 0.0;
    double key2 = 0.0;
    NodeId id = kInvalidNode;

    // Keys are never NaN, so the double comparisons below are total.
    friend constexpr std::strong_ordering operator<=>(const Priority& a,
                                                      const Priority& b) noexcept {
        if (a.status != b.status) return a.status <=> b.status;
        if (a.key1 != b.key1) {
            return a.key1 < b.key1 ? std::strong_ordering::less : std::strong_ordering::greater;
        }
        if (a.key2 != b.key2) {
            return a.key2 < b.key2 ? std::strong_ordering::less : std::strong_ordering::greater;
        }
        return a.id <=> b.id;
    }
    friend constexpr bool operator==(const Priority& a, const Priority& b) noexcept {
        return a.status == b.status && a.key1 == b.key1 && a.key2 == b.key2 && a.id == b.id;
    }
};

/// Per-node static priority keys, computed once per topology.
///
/// The paper notes the collection cost: id costs nothing extra, degree
/// costs one extra round of "hello" exchanges, ncr two extra rounds
/// (Section 4.4).  `extra_rounds()` exposes that cost model for the
/// overhead accounting in benches.
class PriorityKeys {
  public:
    PriorityKeys() = default;

    /// Computes keys for every node of `g` under `scheme`.
    PriorityKeys(const Graph& g, PriorityScheme scheme);

    [[nodiscard]] PriorityScheme scheme() const noexcept { return scheme_; }

    /// Evaluates the full priority of node `v` given its view status.
    [[nodiscard]] Priority evaluate(NodeId v, NodeStatus status) const {
        return Priority{status, key1_[v], key2_[v], v};
    }

    /// Extra "hello" rounds needed beyond plain k-hop id collection.
    [[nodiscard]] std::size_t extra_rounds() const noexcept;

    [[nodiscard]] std::size_t node_count() const noexcept { return key1_.size(); }

  private:
    PriorityScheme scheme_ = PriorityScheme::kId;
    std::vector<double> key1_;
    std::vector<double> key2_;
};

}  // namespace adhoc
