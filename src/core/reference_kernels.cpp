/// \file reference_kernels.cpp
/// \brief Naive global-id decision kernels, retained for cross-validation.
///
/// These are the pre-optimization implementations of the coverage condition
/// and MAX_MIN, kept verbatim (modulo namespace) as the semantic ground
/// truth.  They allocate O(n) per call and are deliberately straightforward;
/// `coverage_equivalence_test` asserts the compact-view kernels in
/// coverage.cpp / maxmin.cpp agree with them bit-for-bit, and bench_micro
/// measures the gap.

#include <algorithm>
#include <cassert>
#include <deque>
#include <numeric>

#include "core/coverage.hpp"
#include "core/maxmin.hpp"
#include "graph/traversal.hpp"

namespace adhoc::reference {

namespace {

/// Mask of nodes with priority strictly greater than `threshold`
/// (excluding `exclude`, the node under evaluation).
std::vector<char> higher_priority_mask(const View& view, const Priority& threshold,
                                       NodeId exclude) {
    std::vector<char> mask(view.node_count(), 0);
    for (NodeId x = 0; x < view.node_count(); ++x) {
        if (x == exclude || !view.visible(x)) continue;
        if (view.priority(x) > threshold) mask[x] = 1;
    }
    return mask;
}

/// Remaps component labels so that every component containing a visited
/// node shares one label (the merged "visited super-component").
void merge_visited_labels(const View& view, std::vector<std::size_t>& labels) {
    std::size_t rep = kUnreachable;
    std::vector<std::size_t> visited_labels;
    for (NodeId x = 0; x < view.node_count(); ++x) {
        if (labels[x] == kUnreachable) continue;
        if (view.status(x) == NodeStatus::kVisited) {
            rep = std::min(rep, labels[x]);
            visited_labels.push_back(labels[x]);
        }
    }
    if (rep == kUnreachable) return;
    std::sort(visited_labels.begin(), visited_labels.end());
    visited_labels.erase(std::unique(visited_labels.begin(), visited_labels.end()),
                         visited_labels.end());
    for (std::size_t& l : labels) {
        if (l != kUnreachable &&
            std::binary_search(visited_labels.begin(), visited_labels.end(), l)) {
            l = rep;
        }
    }
}

/// Sorted set of (merged) component labels that `u` belongs to or is
/// adjacent to.
std::vector<std::size_t> adjacent_components(const View& view, NodeId u,
                                             const std::vector<std::size_t>& labels) {
    std::vector<std::size_t> comps;
    if (labels[u] != kUnreachable) comps.push_back(labels[u]);
    for (NodeId y : view.topology().neighbors(u)) {
        if (labels[y] != kUnreachable) comps.push_back(labels[y]);
    }
    std::sort(comps.begin(), comps.end());
    comps.erase(std::unique(comps.begin(), comps.end()), comps.end());
    return comps;
}

bool intersects(const std::vector<std::size_t>& a, const std::vector<std::size_t>& b) {
    auto ia = a.begin();
    auto ib = b.begin();
    while (ia != a.end() && ib != b.end()) {
        if (*ia == *ib) return true;
        if (*ia < *ib) {
            ++ia;
        } else {
            ++ib;
        }
    }
    return false;
}

/// Nodes of H reachable from `u` using at most `max_intermediates` H-nodes,
/// where the first H-node must be adjacent to `u`.  dist[x] = number of
/// H-nodes on the walk up to and including x.  When `merge_visited`, the
/// visited nodes behave as one hyper-node.
std::vector<std::size_t> bounded_reach(const View& view, NodeId u, const std::vector<char>& in_h,
                                       std::size_t max_intermediates, bool merge_visited) {
    std::vector<std::size_t> dist(view.node_count(), kUnreachable);
    std::deque<NodeId> queue;
    bool visited_injected = false;

    auto inject_visited = [&](std::size_t d) {
        if (visited_injected) return;
        visited_injected = true;
        for (NodeId x = 0; x < view.node_count(); ++x) {
            if (in_h[x] && view.status(x) == NodeStatus::kVisited && dist[x] == kUnreachable) {
                dist[x] = d;
                queue.push_back(x);
            }
        }
    };

    for (NodeId y : view.topology().neighbors(u)) {
        if (!in_h[y] || dist[y] != kUnreachable) continue;
        dist[y] = 1;
        queue.push_back(y);
        if (merge_visited && view.status(y) == NodeStatus::kVisited) inject_visited(1);
    }
    while (!queue.empty()) {
        const NodeId x = queue.front();
        queue.pop_front();
        if (dist[x] >= max_intermediates) continue;
        for (NodeId y : view.topology().neighbors(x)) {
            if (!in_h[y] || dist[y] != kUnreachable) continue;
            dist[y] = dist[x] + 1;
            queue.push_back(y);
            if (merge_visited && view.status(y) == NodeStatus::kVisited) inject_visited(dist[y]);
        }
    }
    return dist;
}

/// Tiny union-find over node ids.
class Dsu {
  public:
    explicit Dsu(std::size_t n) : parent_(n) {
        std::iota(parent_.begin(), parent_.end(), NodeId{0});
    }
    NodeId find(NodeId x) {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }
    void unite(NodeId a, NodeId b) { parent_[find(a)] = find(b); }

  private:
    std::vector<NodeId> parent_;
};

}  // namespace

std::vector<std::size_t> higher_priority_components(const View& view, const Priority& threshold,
                                                    bool merge_visited) {
    // The threshold owner is excluded by the strict comparison itself.
    const auto mask = higher_priority_mask(view, threshold, kInvalidNode);
    auto labels = connected_components_filtered(view.topology(), mask);
    if (merge_visited) merge_visited_labels(view, labels);
    return labels;
}

std::vector<char> connected_via_higher_priority(const View& view, NodeId u,
                                                const Priority& threshold, bool merge_visited) {
    std::vector<char> in_c(view.node_count(), 0);
    if (!view.visible(u)) return in_c;
    std::deque<NodeId> queue;
    bool visited_injected = false;

    auto inject_visited = [&]() {
        if (visited_injected) return;
        visited_injected = true;
        for (NodeId x = 0; x < view.node_count(); ++x) {
            if (view.visible(x) && view.status(x) == NodeStatus::kVisited && !in_c[x]) {
                in_c[x] = 1;
                queue.push_back(x);
            }
        }
    };

    in_c[u] = 1;
    queue.push_back(u);
    if (merge_visited && view.status(u) == NodeStatus::kVisited) inject_visited();
    while (!queue.empty()) {
        const NodeId x = queue.front();
        queue.pop_front();
        // Expansion proceeds only *through* the start node or nodes with
        // higher priority; lower-priority nodes may be reached (endpoints)
        // but not traversed.
        if (x != u && !(view.priority(x) > threshold)) continue;
        for (NodeId y : view.topology().neighbors(x)) {
            if (in_c[y]) continue;
            in_c[y] = 1;
            queue.push_back(y);
            if (merge_visited && view.status(y) == NodeStatus::kVisited) inject_visited();
        }
    }
    return in_c;
}

CoverageOutcome evaluate_coverage(const View& view, NodeId v, const CoverageOptions& opts,
                                  NodeStatus self_status) {
    assert(view.visible(v));
    const Priority pv = view.keys().evaluate(v, self_status);
    const auto nv = view.topology().neighbors(v);
    if (nv.size() <= 1) return {.covered = true};  // no neighbor pair to connect

    auto in_h = higher_priority_mask(view, pv, v);
    if (opts.coverage_radius > 0) {
        // Restricted implementations: only nodes within the radius may act
        // as coverage/replacement nodes.
        const auto dist = bfs_distances(view.topology(), v);
        for (NodeId x = 0; x < view.node_count(); ++x) {
            if (dist[x] == kUnreachable || dist[x] > opts.coverage_radius) in_h[x] = 0;
        }
    }

    if (opts.max_path_hops > 0 && !opts.strong) {
        // Bounded replacement paths (Span): pairwise BFS with a depth cap
        // of max_path_hops - 1 intermediates.
        const std::size_t cap = opts.max_path_hops - 1;
        for (std::size_t i = 0; i < nv.size(); ++i) {
            const NodeId u = nv[i];
            const auto dist = bounded_reach(view, u, in_h, cap, opts.merge_visited);
            for (std::size_t j = i + 1; j < nv.size(); ++j) {
                const NodeId w = nv[j];
                if (view.topology().has_edge(u, w)) continue;
                bool ok = false;
                for (NodeId x : view.topology().neighbors(w)) {
                    if (dist[x] != kUnreachable && dist[x] <= cap) {
                        ok = true;
                        break;
                    }
                }
                if (!ok) return {.covered = false, .uncovered_u = u, .uncovered_w = w};
            }
        }
        return {.covered = true};
    }

    // Component machinery shared by the full and strong conditions.
    auto labels = connected_components_filtered(view.topology(), in_h);
    if (opts.merge_visited) merge_visited_labels(view, labels);

    std::vector<std::vector<std::size_t>> comps(nv.size());
    for (std::size_t i = 0; i < nv.size(); ++i) {
        comps[i] = adjacent_components(view, nv[i], labels);
    }

    if (opts.strong) {
        // Strong condition: one component must dominate every neighbor.
        if (comps[0].empty()) return {.covered = false, .uncovered_u = nv[0]};
        std::vector<std::size_t> common = comps[0];
        for (std::size_t i = 1; i < nv.size() && !common.empty(); ++i) {
            std::vector<std::size_t> next;
            std::set_intersection(common.begin(), common.end(), comps[i].begin(), comps[i].end(),
                                  std::back_inserter(next));
            common = std::move(next);
            if (common.empty()) return {.covered = false, .uncovered_u = nv[i]};
        }
        return {.covered = !common.empty()};
    }

    // Full pairwise condition.  Note this relation is not transitive, so
    // all O(deg^2) pairs are checked.
    for (std::size_t i = 0; i < nv.size(); ++i) {
        for (std::size_t j = i + 1; j < nv.size(); ++j) {
            const NodeId u = nv[i];
            const NodeId w = nv[j];
            if (view.topology().has_edge(u, w)) continue;
            if (!intersects(comps[i], comps[j])) {
                return {.covered = false, .uncovered_u = u, .uncovered_w = w};
            }
        }
    }
    return {.covered = true};
}

bool coverage_condition_holds(const View& view, NodeId v, const CoverageOptions& opts,
                              NodeStatus self_status) {
    return reference::evaluate_coverage(view, v, opts, self_status).covered;
}

NodeId max_min_node(const View& view, NodeId u, NodeId w, const Priority& self_priority) {
    assert(view.visible(u) && view.visible(w));
    if (view.topology().has_edge(u, w)) return kInvalidNode;  // no intermediate needed

    // Candidate intermediates, highest priority first — recomputed on every
    // call (the production kernel sorts once per top-level invocation).
    std::vector<NodeId> candidates;
    for (NodeId x = 0; x < view.node_count(); ++x) {
        if (x == u || x == w || !view.visible(x)) continue;
        if (view.priority(x) > self_priority) candidates.push_back(x);
    }
    std::sort(candidates.begin(), candidates.end(), [&](NodeId a, NodeId b) {
        return view.priority(a) > view.priority(b);
    });

    // Activate intermediates in descending priority order; the node whose
    // activation first connects u and w is the max-min (bottleneck) node of
    // the widest replacement path.
    Dsu dsu(view.node_count());
    std::vector<char> active(view.node_count(), 0);
    active[u] = active[w] = 1;
    for (NodeId x : candidates) {
        active[x] = 1;
        for (NodeId y : view.topology().neighbors(x)) {
            if (active[y]) dsu.unite(x, y);
        }
        if (dsu.find(u) == dsu.find(w)) return x;
    }
    return kInvalidNode;
}

std::optional<std::vector<NodeId>> max_min_path(const View& view, NodeId u, NodeId w,
                                                const Priority& self_priority) {
    if (view.topology().has_edge(u, w)) return std::vector<NodeId>{};  // step 1: return empty
    const NodeId x = reference::max_min_node(view, u, w, self_priority);
    if (x == kInvalidNode) return std::nullopt;  // no replacement path exists
    auto left = reference::max_min_path(view, u, x, self_priority);
    auto right = reference::max_min_path(view, x, w, self_priority);
    // Lemma 1: both sub-calls succeed whenever the top-level max-min node
    // exists; the recursion always selects distinct nodes and terminates.
    assert(left.has_value() && right.has_value());
    if (!left || !right) return std::nullopt;
    std::vector<NodeId> path = std::move(*left);
    path.push_back(x);
    path.insert(path.end(), right->begin(), right->end());
    return path;
}

}  // namespace adhoc::reference
