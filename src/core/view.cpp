#include "core/view.hpp"

namespace adhoc {

namespace {

std::vector<NodeStatus> status_from_masks(const std::vector<char>& visible,
                                          const std::vector<char>* visited,
                                          const std::vector<char>* designated) {
    std::vector<NodeStatus> status(visible.size(), NodeStatus::kInvisible);
    for (NodeId v = 0; v < visible.size(); ++v) {
        if (!visible[v]) continue;
        if (visited != nullptr && (*visited)[v]) {
            status[v] = NodeStatus::kVisited;
        } else if (designated != nullptr && (*designated)[v]) {
            status[v] = NodeStatus::kDesignated;
        } else {
            status[v] = NodeStatus::kUnvisited;
        }
    }
    return status;
}

}  // namespace

View make_static_view(const Graph& g, NodeId center, std::size_t k, const PriorityKeys& keys) {
    LocalTopology topo = local_topology(g, center, k);
    auto status = status_from_masks(topo.visible, nullptr, nullptr);
    return View(std::move(topo.graph), std::move(topo.visible), std::move(status), &keys,
                std::move(topo.members));
}

View make_dynamic_view(const Graph& g, NodeId center, std::size_t k, const PriorityKeys& keys,
                       const std::vector<char>& visited, const std::vector<char>& designated) {
    // The LocalTopology is a temporary here, so the view must own it.
    LocalTopology topo = local_topology(g, center, k);
    auto status = status_from_masks(topo.visible, &visited, &designated);
    return View(std::move(topo.graph), std::move(topo.visible), std::move(status), &keys,
                std::move(topo.members));
}

View make_dynamic_view(const LocalTopology& topo, const PriorityKeys& keys,
                       const std::vector<char>& visited, const std::vector<char>& designated) {
    assert(visited.size() == topo.visible.size());
    assert(designated.size() == topo.visible.size());
    auto status = status_from_masks(topo.visible, &visited, &designated);
    return View(&topo, std::move(status), &keys);
}

}  // namespace adhoc
