/// \file view.hpp
/// \brief Views: snapshots of topology + broadcast state (paper Section 2).
///
/// A view is the information a status decision is made against:
/// View(t) = (G(t), Pr(V, t)).  A *local* view at node v restricts the
/// topology to G_k(v) (Definition 2) and clamps priorities of invisible
/// nodes to the bottom of the order, so local views are always <= the
/// global view — the property Theorem 2's correctness argument rests on.

#pragma once

#include <cassert>
#include <vector>

#include "core/priority.hpp"
#include "graph/graph.hpp"
#include "graph/khop.hpp"

namespace adhoc {

/// An immutable snapshot a coverage decision is evaluated against.
///
/// The topology is carried in the original id space (invisible nodes are
/// isolated in it), which keeps cross-view comparisons (Theorem 2 tests)
/// trivial.
class View {
  public:
    /// Builds a view.
    /// \param topology   visible subgraph in the original id space
    /// \param visible    visibility mask (size == node_count of original)
    /// \param status     per-node status; ignored for invisible nodes
    /// \param keys       static priority keys (shared, must outlive view)
    View(Graph topology, std::vector<char> visible, std::vector<NodeStatus> status,
         const PriorityKeys* keys)
        : topology_(std::move(topology)),
          visible_(std::move(visible)),
          status_(std::move(status)),
          keys_(keys) {
        assert(keys_ != nullptr);
        assert(visible_.size() == topology_.node_count());
        assert(status_.size() == topology_.node_count());
    }

    [[nodiscard]] const Graph& topology() const noexcept { return topology_; }
    [[nodiscard]] std::size_t node_count() const noexcept { return topology_.node_count(); }
    [[nodiscard]] bool visible(NodeId v) const noexcept { return visible_[v] != 0; }

    /// Status as captured by this view (kInvisible for invisible nodes).
    [[nodiscard]] NodeStatus status(NodeId v) const noexcept {
        return visible(v) ? status_[v] : NodeStatus::kInvisible;
    }

    /// Full priority Pr(v) under this view; invisible nodes get the bottom
    /// status so they never appear on replacement paths.
    [[nodiscard]] Priority priority(NodeId v) const {
        return keys_->evaluate(v, status(v));
    }

    [[nodiscard]] const PriorityKeys& keys() const noexcept { return *keys_; }

  private:
    Graph topology_;
    std::vector<char> visible_;
    std::vector<NodeStatus> status_;
    const PriorityKeys* keys_;
};

/// Builds the *static* local view at `center` with k-hop information
/// (k == 0 means global): no broadcast state, everything visible is
/// kUnvisited.  This is the view static algorithms (Section 6.1) decide on.
[[nodiscard]] View make_static_view(const Graph& g, NodeId center, std::size_t k,
                                    const PriorityKeys& keys);

/// Builds a *dynamic* local view at `center`: k-hop topology plus the
/// caller's knowledge of visited/designated nodes (global id space; entries
/// for invisible nodes are ignored per the local-view clamping rule).
[[nodiscard]] View make_dynamic_view(const Graph& g, NodeId center, std::size_t k,
                                     const PriorityKeys& keys, const std::vector<char>& visited,
                                     const std::vector<char>& designated);

/// Builds a dynamic view from a precomputed LocalTopology (avoids the BFS
/// when the topology is cached, as simulation agents do).
[[nodiscard]] View make_dynamic_view(const LocalTopology& topo, const PriorityKeys& keys,
                                     const std::vector<char>& visited,
                                     const std::vector<char>& designated);

}  // namespace adhoc
