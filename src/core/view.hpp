/// \file view.hpp
/// \brief Views: snapshots of topology + broadcast state (paper Section 2).
///
/// A view is the information a status decision is made against:
/// View(t) = (G(t), Pr(V, t)).  A *local* view at node v restricts the
/// topology to G_k(v) (Definition 2) and clamps priorities of invisible
/// nodes to the bottom of the order, so local views are always <= the
/// global view — the property Theorem 2's correctness argument rests on.
///
/// Views come in two flavors with identical semantics:
///  - *owning*: the view carries its own copy of topology/visibility
///    (views built from scratch, e.g. `make_static_view`);
///  - *borrowing*: the view references a long-lived `LocalTopology` (and
///    possibly a status buffer) owned by the caller — the hot path for
///    simulation agents, which would otherwise copy the whole adjacency
///    structure on every decision.  The referenced objects must outlive
///    the view.

#pragma once

#include <cassert>
#include <span>
#include <vector>

#include "core/priority.hpp"
#include "graph/graph.hpp"
#include "graph/khop.hpp"

namespace adhoc {

/// An immutable snapshot a coverage decision is evaluated against.
///
/// The topology is carried in the original id space (invisible nodes are
/// isolated in it), which keeps cross-view comparisons (Theorem 2 tests)
/// trivial.
class View {
  public:
    /// Builds an owning view.
    /// \param topology   visible subgraph in the original id space
    /// \param visible    visibility mask (size == node_count of original)
    /// \param status     per-node status; ignored for invisible nodes
    /// \param keys       static priority keys (shared, must outlive view)
    /// \param members    optional sorted list of visible ids (may be empty)
    View(Graph topology, std::vector<char> visible, std::vector<NodeStatus> status,
         const PriorityKeys* keys, std::vector<NodeId> members = {})
        : topology_storage_(std::move(topology)),
          visible_storage_(std::move(visible)),
          members_storage_(std::move(members)),
          status_storage_(std::move(status)),
          keys_(keys) {
        assert(keys_ != nullptr);
        assert(visible_storage_.size() == topology_storage_.node_count());
        assert(status_storage_.size() == topology_storage_.node_count());
    }

    /// Borrows topology/visibility/members from `topo`; owns the status.
    /// `topo` must outlive the view.
    View(const LocalTopology* topo, std::vector<NodeStatus> status, const PriorityKeys* keys)
        : topo_(topo), status_storage_(std::move(status)), keys_(keys) {
        assert(topo_ != nullptr && keys_ != nullptr);
        assert(status_storage_.size() == topo_->graph.node_count());
    }

    /// Fully borrowing view: topology and status both live outside (the
    /// KnowledgeBase fast path — zero copies per decision).  Both must
    /// outlive the view.
    View(const LocalTopology* topo, const std::vector<NodeStatus>* status,
         const PriorityKeys* keys)
        : topo_(topo), status_ptr_(status), keys_(keys) {
        assert(topo_ != nullptr && status != nullptr && keys_ != nullptr);
        assert(status->size() == topo_->graph.node_count());
    }

    [[nodiscard]] const Graph& topology() const noexcept {
        return topo_ != nullptr ? topo_->graph : topology_storage_;
    }
    [[nodiscard]] std::size_t node_count() const noexcept { return topology().node_count(); }
    [[nodiscard]] bool visible(NodeId v) const noexcept {
        return (topo_ != nullptr ? topo_->visible[v] : visible_storage_[v]) != 0;
    }

    /// Sorted visible node ids, or an empty span when the view was built
    /// without a member list (consumers then fall back to scanning 0..n-1).
    [[nodiscard]] std::span<const NodeId> members() const noexcept {
        return topo_ != nullptr ? std::span<const NodeId>(topo_->members)
                                : std::span<const NodeId>(members_storage_);
    }

    /// The borrowed topology's precompiled CSR, or nullptr when the view
    /// owns its topology / the cache was never built (the kernels then
    /// compile the adjacency themselves).
    [[nodiscard]] const CompactTopology* compact_topology() const noexcept {
        return topo_ != nullptr && !topo_->compact.offsets.empty() ? &topo_->compact : nullptr;
    }

    /// Status as captured by this view (kInvisible for invisible nodes).
    [[nodiscard]] NodeStatus status(NodeId v) const noexcept {
        if (!visible(v)) return NodeStatus::kInvisible;
        return status_ptr_ != nullptr ? (*status_ptr_)[v] : status_storage_[v];
    }

    /// Full priority Pr(v) under this view; invisible nodes get the bottom
    /// status so they never appear on replacement paths.
    [[nodiscard]] Priority priority(NodeId v) const {
        return keys_->evaluate(v, status(v));
    }

    [[nodiscard]] const PriorityKeys& keys() const noexcept { return *keys_; }

  private:
    const LocalTopology* topo_ = nullptr;               ///< borrowed topology
    const std::vector<NodeStatus>* status_ptr_ = nullptr;  ///< borrowed status
    Graph topology_storage_;
    std::vector<char> visible_storage_;
    std::vector<NodeId> members_storage_;
    std::vector<NodeStatus> status_storage_;
    const PriorityKeys* keys_;
};

/// Builds the *static* local view at `center` with k-hop information
/// (k == 0 means global): no broadcast state, everything visible is
/// kUnvisited.  This is the view static algorithms (Section 6.1) decide on.
[[nodiscard]] View make_static_view(const Graph& g, NodeId center, std::size_t k,
                                    const PriorityKeys& keys);

/// Builds a *dynamic* local view at `center`: k-hop topology plus the
/// caller's knowledge of visited/designated nodes (global id space; entries
/// for invisible nodes are ignored per the local-view clamping rule).
[[nodiscard]] View make_dynamic_view(const Graph& g, NodeId center, std::size_t k,
                                     const PriorityKeys& keys, const std::vector<char>& visited,
                                     const std::vector<char>& designated);

/// Builds a dynamic view from a precomputed LocalTopology (avoids the BFS
/// when the topology is cached, as simulation agents do).  The returned
/// view *borrows* `topo`, which must outlive it.
[[nodiscard]] View make_dynamic_view(const LocalTopology& topo, const PriorityKeys& keys,
                                     const std::vector<char>& visited,
                                     const std::vector<char>& designated);

}  // namespace adhoc
