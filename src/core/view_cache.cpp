#include "core/view_cache.hpp"

#include <cassert>

namespace adhoc {

namespace reference {

std::vector<LocalTopology> recompile_all_views(const Graph& g, std::size_t k) {
    std::vector<LocalTopology> views(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) {
        views[v] = local_topology(g, v, k);
        compile_topology(views[v]);
    }
    return views;
}

}  // namespace reference

ViewCache::ViewCache(Graph g, std::size_t k)
    : graph_(std::move(g)), k_(k), grid_({}, 0.0) {
    views_ = reference::recompile_all_views(graph_, k_);
    dirty_.assign(graph_.node_count(), 0);
    bfs_depth_.assign(graph_.node_count(), 0);
    bfs_seen_.assign(graph_.node_count(), 0);
}

ViewCache::ViewCache(Graph g, std::size_t k, const std::vector<Point2D>* positions,
                     double range)
    : graph_(std::move(g)),
      k_(k),
      positions_(positions),
      range_(range),
      grid_(*positions, range) {
    assert(positions_ != nullptr && positions_->size() == graph_.node_count());
    views_ = reference::recompile_all_views(graph_, k_);
    dirty_.assign(graph_.node_count(), 0);
}

void ViewCache::prepare_all() {
    for (NodeId v = 0; v < graph_.node_count(); ++v) {
        if (dirty_[v]) (void)view(v);
    }
}

const LocalTopology& ViewCache::view(NodeId v) {
    if (dirty_[v]) {
        views_[v] = local_topology(graph_, v, k_);
        compile_topology(views_[v]);
        dirty_[v] = 0;
        ++recompiles_;
    }
    return views_[v];
}

void ViewCache::add_edge(NodeId u, NodeId v) {
    if (graph_.has_edge(u, v)) return;
    graph_.add_edge(u, v);
    // Post-add graph contains the link: its k-hop ball covers every view
    // the new paths can reach.
    mark_ball_dirty(u, v);
}

void ViewCache::remove_edge(NodeId u, NodeId v) {
    if (!graph_.has_edge(u, v)) return;
    // Pre-remove graph contains the link: any shortest path it carried
    // reaches an endpoint within the ball.
    mark_ball_dirty(u, v);
    graph_.remove_edge(u, v);
}

void ViewCache::mark_ball_dirty(NodeId u, NodeId v) {
    const std::size_t n = graph_.node_count();
    if (k_ == 0) {  // global views see every link
        for (NodeId c = 0; c < n; ++c) {
            if (!dirty_[c]) ++dirty_total_;
            dirty_[c] = 1;
        }
        return;
    }

    if (positions_ != nullptr) {
        // Geometric superset: hop length <= range, so dist_G(c, {u,v}) <= k
        // implies Euclidean distance <= k * range from one endpoint.
        const double radius = static_cast<double>(k_) * range_;
        const auto mark = [&](NodeId c) {
            if (!dirty_[c]) ++dirty_total_;
            dirty_[c] = 1;
        };
        grid_.for_each_in_ball((*positions_)[u], radius, mark);
        grid_.for_each_in_ball((*positions_)[v], radius, mark);
        return;
    }

    // Exact: truncated multi-source BFS from {u, v} to depth k in the
    // graph containing the flapped link.
    bfs_queue_.clear();
    const auto push = [&](NodeId c, std::uint16_t depth) {
        if (bfs_seen_[c]) return;
        bfs_seen_[c] = 1;
        bfs_depth_[c] = depth;
        bfs_queue_.push_back(c);
        if (!dirty_[c]) ++dirty_total_;
        dirty_[c] = 1;
    };
    push(u, 0);
    push(v, 0);
    for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
        const NodeId c = bfs_queue_[head];
        const std::uint16_t depth = bfs_depth_[c];
        if (depth == k_) continue;
        for (NodeId w : graph_.neighbors(c)) push(w, static_cast<std::uint16_t>(depth + 1));
    }
    for (NodeId c : bfs_queue_) bfs_seen_[c] = 0;  // O(ball) reset
}

}  // namespace adhoc
