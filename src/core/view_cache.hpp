/// \file view_cache.hpp
/// \brief Incrementally maintained k-hop local views under link churn.
///
/// The PR-2 design compiles every node's Definition-2 local topology
/// G_k(v) once per run; under churn (PR 5's link up/down fault events,
/// mobility) that meant recompiling *every* view on *every* flap — O(n)
/// work for a change only a handful of views can even see.
///
/// `ViewCache` keeps the views live over a mutable graph with *scoped*
/// invalidation: flapping link (u, v) can only alter G_k(c) when c lies
/// within k hops of u or v **in the graph where the link exists** (any
/// path the link creates or destroys reaches an endpoint first).  So a
/// single truncated multi-source BFS from {u, v} — run post-add or
/// pre-remove — yields the exact dirty set, and only those views are
/// recompiled (lazily, on next access).
///
/// When node positions are available, the BFS can be replaced by a
/// spatial-grid ball query of Euclidean radius k x range around the two
/// endpoints: each hop spans at most `range`, so the geometric ball is a
/// sound (slightly larger) superset of the k-hop ball, found in O(ball)
/// instead of O(ball edges) time.
///
/// `reference::recompile_all_views` is the naive twin; the property test
/// (tests/view_cache_test.cpp) proves bit-identical view contents against
/// it under randomized churn plans.

#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "core/compact_view.hpp"
#include "graph/khop.hpp"
#include "graph/spatial_grid.hpp"

namespace adhoc {

namespace reference {

/// Full recompilation of all views — the pre-incremental behavior.
[[nodiscard]] std::vector<LocalTopology> recompile_all_views(const Graph& g,
                                                             std::size_t k);

}  // namespace reference

class ViewCache {
  public:
    /// Exact mode: dirty balls via truncated BFS on the graph itself.
    ViewCache(Graph g, std::size_t k);

    /// Geometry mode: dirty balls via a spatial-grid query of radius
    /// k x `range` around the flapped endpoints.  `positions` must match
    /// the graph's id space and outlive the cache.
    ViewCache(Graph g, std::size_t k, const std::vector<Point2D>* positions, double range);

    [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
    [[nodiscard]] std::size_t hops() const noexcept { return k_; }

    /// The current G_k(v), recompiling first iff a flap dirtied it.
    [[nodiscard]] const LocalTopology& view(NodeId v);

    /// Recompiles every dirty view now (instead of lazily on access).
    /// After this call `compiled_view` is valid for every node, and the
    /// cache can be read concurrently from many threads — the pattern the
    /// ScaleEngine uses: one serial prepare per run/flap batch, then
    /// lock-free reads from the parallel window phases.
    void prepare_all();

    /// Read-only access to an already-clean view.  Precondition: the view
    /// is not dirty (call `prepare_all` or `view(v)` first); asserted.
    [[nodiscard]] const LocalTopology& compiled_view(NodeId v) const noexcept {
        assert(!dirty_[v]);
        return views_[v];
    }

    /// True iff a flap dirtied G_k(v) and it has not been recompiled yet.
    [[nodiscard]] bool is_dirty(NodeId v) const noexcept { return dirty_[v] != 0; }

    /// Applies a link flap and marks the affected views dirty.  Adding an
    /// existing edge / removing an absent one is a no-op.
    void add_edge(NodeId u, NodeId v);
    void remove_edge(NodeId u, NodeId v);

    // ---- instrumentation (exercised by tests and bench_scale) --------
    [[nodiscard]] std::size_t dirty_count() const noexcept { return dirty_total_; }
    [[nodiscard]] std::size_t recompile_count() const noexcept { return recompiles_; }

  private:
    /// Marks every view whose k-hop ball (in the *current* graph, which
    /// must be the side of the flap containing edge (u, v)) touches u or
    /// v.  k == 0 means global views: everything is dirty.
    void mark_ball_dirty(NodeId u, NodeId v);

    Graph graph_;
    std::size_t k_;
    std::vector<LocalTopology> views_;
    std::vector<char> dirty_;

    // Geometry mode (null/empty when exact).
    const std::vector<Point2D>* positions_ = nullptr;
    double range_ = 0.0;
    SpatialGrid grid_;  ///< built over positions_ when geometric, else empty

    // Scratch for the truncated BFS (exact mode), reused across flaps.
    std::vector<NodeId> bfs_queue_;
    std::vector<std::uint16_t> bfs_depth_;
    std::vector<char> bfs_seen_;

    std::size_t dirty_total_ = 0;
    std::size_t recompiles_ = 0;
};

}  // namespace adhoc
