#include "faults/fault_plan.hpp"

#include <algorithm>
#include <cmath>

#include "runner/seed.hpp"
#include "stats/rng.hpp"

namespace adhoc::faults {

namespace {

// Stream tags keep the fault substreams disjoint from every other consumer
// of derive_run_seed (campaign runs, fuzz scenarios, mobility traces).
constexpr std::uint64_t kFaultStreamTag = 0xfa017c0000000001ULL;
constexpr std::uint64_t kLossStreamTag = 0x10550000000000a5ULL;

}  // namespace

FaultPlan make_fault_plan(const FaultSpec& spec, const Graph& g, NodeId source,
                          std::uint64_t base_seed, std::uint64_t run_index) {
    const std::size_t n = g.node_count();
    // Satellite-6 contract: the generator RNG is seeded through a
    // derive_run_seed substream of (base seed, n, crash rate, run index) —
    // never through shared state — so fault timing is invariant under
    // --jobs, telemetry, and any other run-local instrumentation.
    const std::uint64_t seed = runner::derive_run_seed(base_seed ^ kFaultStreamTag, n,
                                                       spec.crash_rate, run_index);
    Rng rng(seed);

    FaultPlan plan;
    plan.loss_stream_seed = runner::splitmix64(seed ^ kLossStreamTag);

    const auto clamp01 = [](double p) { return std::min(std::max(p, 0.0), 1.0); };

    if (spec.crash_rate > 0.0 && n > 0) {
        const double p = clamp01(spec.crash_rate);
        for (NodeId v = 0; v < n; ++v) {
            if (spec.protect_source && v == source) continue;
            if (!rng.chance(p)) continue;
            const double at = rng.uniform(0.0, spec.crash_window);
            plan.events.push_back(FaultEvent{at, FaultKind::kNodeCrash, v, Edge{}});
            if (rng.chance(clamp01(spec.recover_probability))) {
                const double back =
                    at + rng.uniform(spec.recover_delay_min, spec.recover_delay_max);
                plan.events.push_back(FaultEvent{back, FaultKind::kNodeRecover, v, Edge{}});
            }
        }
    }

    if (spec.link_churn_rate > 0.0 || spec.asymmetry_rate > 0.0) {
        const double churn_p = clamp01(spec.link_churn_rate);
        const double asym_p = clamp01(spec.asymmetry_rate);
        for (const Edge& e : g.edges()) {  // canonical sorted order: deterministic
            if (churn_p > 0.0 && rng.chance(churn_p)) {
                const double down_at = rng.uniform(0.0, spec.churn_window);
                const double up_at =
                    down_at + rng.uniform(spec.churn_down_min, spec.churn_down_max);
                plan.events.push_back(
                    FaultEvent{down_at, FaultKind::kLinkDown, kInvalidNode, e});
                plan.events.push_back(FaultEvent{up_at, FaultKind::kLinkUp, kInvalidNode, e});
            }
            if (asym_p > 0.0 && rng.chance(asym_p)) {
                // One direction is always degraded; the reverse only half
                // the time — genuinely asymmetric links dominate.
                LinkAsymmetry asym;
                asym.link = e;
                asym.loss_ab = rng.uniform(0.0, spec.asymmetry_loss_max);
                asym.loss_ba = rng.chance(0.5) ? rng.uniform(0.0, spec.asymmetry_loss_max) : 0.0;
                if (rng.chance(0.5)) std::swap(asym.loss_ab, asym.loss_ba);
                plan.asymmetry.push_back(asym);
            }
        }
    }

    if (spec.hello_burst_rate > 0.0 && spec.hello_rounds > 0) {
        const double p = clamp01(spec.hello_burst_rate);
        for (NodeId v = 0; v < n; ++v) {
            if (!rng.chance(p)) continue;
            HelloBurst burst;
            burst.node = v;
            burst.first_round = rng.index(spec.hello_rounds);
            burst.rounds = 1 + rng.index(spec.hello_rounds);
            plan.hello_bursts.push_back(burst);
        }
    }

    // The simulator injects events through its deterministic queue, which
    // breaks time ties by insertion order — a sorted schedule makes the
    // plan itself canonical (stable: preserves generation order at ties).
    std::stable_sort(plan.events.begin(), plan.events.end(),
                     [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });
    return plan;
}

}  // namespace adhoc::faults
