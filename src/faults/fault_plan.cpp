#include "faults/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/seed.hpp"
#include "stats/rng.hpp"

namespace adhoc::faults {

namespace {

// Stream tags keep the fault substreams disjoint from every other consumer
// of derive_run_seed (campaign runs, fuzz scenarios, mobility traces).
constexpr std::uint64_t kFaultStreamTag = 0xfa017c0000000001ULL;
constexpr std::uint64_t kLossStreamTag = 0x10550000000000a5ULL;

}  // namespace

FaultPlan make_fault_plan(const FaultSpec& spec, const Graph& g, NodeId source,
                          std::uint64_t base_seed, std::uint64_t run_index) {
    const std::size_t n = g.node_count();
    // Satellite-6 contract: the generator RNG is seeded through a
    // derive_run_seed substream of (base seed, n, crash rate, run index) —
    // never through shared state — so fault timing is invariant under
    // --jobs, telemetry, and any other run-local instrumentation.
    const std::uint64_t seed = runner::derive_run_seed(base_seed ^ kFaultStreamTag, n,
                                                       spec.crash_rate, run_index);
    Rng rng(seed);

    FaultPlan plan;
    plan.loss_stream_seed = runner::splitmix64(seed ^ kLossStreamTag);

    const auto clamp01 = [](double p) { return std::min(std::max(p, 0.0), 1.0); };

    if (spec.crash_rate > 0.0 && n > 0) {
        const double p = clamp01(spec.crash_rate);
        for (NodeId v = 0; v < n; ++v) {
            if (spec.protect_source && v == source) continue;
            if (!rng.chance(p)) continue;
            const double at = rng.uniform(0.0, spec.crash_window);
            plan.events.push_back(FaultEvent{at, FaultKind::kNodeCrash, v, Edge{}});
            if (rng.chance(clamp01(spec.recover_probability))) {
                const double back =
                    at + rng.uniform(spec.recover_delay_min, spec.recover_delay_max);
                plan.events.push_back(FaultEvent{back, FaultKind::kNodeRecover, v, Edge{}});
            }
        }
    }

    if (spec.link_churn_rate > 0.0 || spec.asymmetry_rate > 0.0) {
        const double churn_p = clamp01(spec.link_churn_rate);
        const double asym_p = clamp01(spec.asymmetry_rate);
        for (const Edge& e : g.edges()) {  // canonical sorted order: deterministic
            if (churn_p > 0.0 && rng.chance(churn_p)) {
                const double down_at = rng.uniform(0.0, spec.churn_window);
                const double up_at =
                    down_at + rng.uniform(spec.churn_down_min, spec.churn_down_max);
                plan.events.push_back(
                    FaultEvent{down_at, FaultKind::kLinkDown, kInvalidNode, e});
                plan.events.push_back(FaultEvent{up_at, FaultKind::kLinkUp, kInvalidNode, e});
            }
            if (asym_p > 0.0 && rng.chance(asym_p)) {
                // One direction is always degraded; the reverse only half
                // the time — genuinely asymmetric links dominate.
                LinkAsymmetry asym;
                asym.link = e;
                asym.loss_ab = rng.uniform(0.0, spec.asymmetry_loss_max);
                asym.loss_ba = rng.chance(0.5) ? rng.uniform(0.0, spec.asymmetry_loss_max) : 0.0;
                if (rng.chance(0.5)) std::swap(asym.loss_ab, asym.loss_ba);
                plan.asymmetry.push_back(asym);
            }
        }
    }

    if (spec.hello_burst_rate > 0.0 && spec.hello_rounds > 0) {
        const double p = clamp01(spec.hello_burst_rate);
        for (NodeId v = 0; v < n; ++v) {
            if (!rng.chance(p)) continue;
            HelloBurst burst;
            burst.node = v;
            burst.first_round = rng.index(spec.hello_rounds);
            burst.rounds = 1 + rng.index(spec.hello_rounds);
            plan.hello_bursts.push_back(burst);
        }
    }

    // The simulator injects events through its deterministic queue, which
    // breaks time ties by insertion order — a sorted schedule makes the
    // plan itself canonical (stable: preserves generation order at ties).
    std::stable_sort(plan.events.begin(), plan.events.end(),
                     [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });
    return plan;
}

void validate_plan(const FaultPlan& plan, std::size_t n) {
    const auto fail = [](const std::string& what) { throw std::invalid_argument(what); };
    const auto check_node = [&](NodeId v, std::size_t i, const char* ctx) {
        if (v >= n) {
            fail("FaultPlan: " + std::string(ctx) + " entry " + std::to_string(i) +
                 " names node " + std::to_string(v) + " outside [0, " + std::to_string(n) + ")");
        }
    };
    const auto check_link = [&](const Edge& e, std::size_t i, const char* ctx) {
        if (e.a >= n || e.b >= n) {
            fail("FaultPlan: " + std::string(ctx) + " entry " + std::to_string(i) + " names link (" +
                 std::to_string(e.a) + ", " + std::to_string(e.b) + ") outside an " +
                 std::to_string(n) + "-node topology");
        }
        if (e.a >= e.b) {
            fail("FaultPlan: " + std::string(ctx) + " entry " + std::to_string(i) + " link (" +
                 std::to_string(e.a) + ", " + std::to_string(e.b) +
                 ") is not a canonical pair (a < b)");
        }
    };

    std::vector<char> down(n, 0);
    double prev_time = 0.0;
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
        const FaultEvent& e = plan.events[i];
        if (!std::isfinite(e.time) || e.time < 0.0) {
            fail("FaultPlan: event " + std::to_string(i) + " has invalid time " +
                 std::to_string(e.time) + " (must be finite and >= 0)");
        }
        if (e.time < prev_time) {
            fail("FaultPlan: event " + std::to_string(i) + " at time " + std::to_string(e.time) +
                 " breaks the sorted-schedule invariant (previous event at " +
                 std::to_string(prev_time) + ")");
        }
        prev_time = e.time;
        switch (e.kind) {
            case FaultKind::kNodeCrash:
                check_node(e.node, i, "crash");
                if (down[e.node]) {
                    fail("FaultPlan: event " + std::to_string(i) + " crashes node " +
                         std::to_string(e.node) + " at time " + std::to_string(e.time) +
                         " while it is already down (duplicate crash)");
                }
                down[e.node] = 1;
                break;
            case FaultKind::kNodeRecover:
                check_node(e.node, i, "recover");
                if (!down[e.node]) {
                    fail("FaultPlan: event " + std::to_string(i) + " recovers node " +
                         std::to_string(e.node) + " at time " + std::to_string(e.time) +
                         " without a preceding crash");
                }
                down[e.node] = 0;
                break;
            case FaultKind::kLinkDown:
                check_link(e.link, i, "link-down");
                break;
            case FaultKind::kLinkUp:
                check_link(e.link, i, "link-up");
                break;
        }
    }

    std::vector<std::pair<NodeId, NodeId>> seen_links;
    for (std::size_t i = 0; i < plan.asymmetry.size(); ++i) {
        const LinkAsymmetry& a = plan.asymmetry[i];
        check_link(a.link, i, "asymmetry");
        const auto check_loss = [&](double loss, const char* dir) {
            if (!std::isfinite(loss) || loss < 0.0 || loss > 1.0) {
                fail("FaultPlan: asymmetry entry " + std::to_string(i) + " " + dir + " loss " +
                     std::to_string(loss) + " outside [0, 1]");
            }
        };
        check_loss(a.loss_ab, "a->b");
        check_loss(a.loss_ba, "b->a");
        const auto key = std::make_pair(a.link.a, a.link.b);
        if (std::find(seen_links.begin(), seen_links.end(), key) != seen_links.end()) {
            fail("FaultPlan: asymmetry entry " + std::to_string(i) + " duplicates link (" +
                 std::to_string(a.link.a) + ", " + std::to_string(a.link.b) + ")");
        }
        seen_links.push_back(key);
    }

    for (std::size_t i = 0; i < plan.hello_bursts.size(); ++i) {
        const HelloBurst& b = plan.hello_bursts[i];
        check_node(b.node, i, "hello-burst");
        if (b.rounds == 0) {
            fail("FaultPlan: hello-burst entry " + std::to_string(i) + " on node " +
                 std::to_string(b.node) + " spans zero rounds");
        }
    }
}

FaultPlan bucket_plan(const FaultPlan& plan, double window) {
    if (!std::isfinite(window) || window <= 0.0) {
        throw std::invalid_argument("bucket_plan: window " + std::to_string(window) +
                                    " must be finite and > 0");
    }
    FaultPlan out = plan;
    for (FaultEvent& e : out.events) {
        e.time = std::ceil(e.time / window) * window;
    }
    std::stable_sort(out.events.begin(), out.events.end(),
                     [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });
    return out;
}

}  // namespace adhoc::faults
