/// \file fault_plan.hpp
/// \brief Deterministic, seed-derived fault schedules for robustness runs.
///
/// The paper assumes error-free transmission over a collision-free MAC
/// (Section 7, assumption 1); its correctness claim (Theorem 2) is about
/// surviving *inconsistent local views*.  A `FaultPlan` makes that claim
/// testable at system level: node crash/recover schedules, link up/down
/// churn, per-link *asymmetric* loss and HELLO drop bursts, all fixed
/// before the run starts.
///
/// Determinism contract (the same one the campaign runner keeps): a plan is
/// a pure function of (base seed, topology shape, run index) — generation
/// seeds flow through `runner::derive_run_seed` substreams and never
/// through shared RNG state, so enabling telemetry, changing `--jobs` or
/// reordering workers can never perturb fault timing.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace adhoc::faults {

/// What a scheduled fault event does when its time arrives.
enum class FaultKind : std::uint8_t {
    kNodeCrash,    ///< node goes down: no tx/rx/timers until recovery
    kNodeRecover,  ///< node comes back up (with empty short-lived state)
    kLinkDown,     ///< link stops carrying packets in both directions
    kLinkUp,       ///< link carries packets again
};

/// One timed fault.  `node` is used by node events, `link` by link events.
struct FaultEvent {
    double time = 0.0;
    FaultKind kind = FaultKind::kNodeCrash;
    NodeId node = kInvalidNode;
    Edge link;

    friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Static per-link asymmetric loss: packets a->b drop with `loss_ab`,
/// b->a with `loss_ba` (independent of the medium's symmetric loss).
struct LinkAsymmetry {
    Edge link;  ///< canonical (a <= b)
    double loss_ab = 0.0;
    double loss_ba = 0.0;

    friend bool operator==(const LinkAsymmetry&, const LinkAsymmetry&) = default;
};

/// A burst of dropped HELLOs: every HELLO `node` sends during rounds
/// [first_round, first_round + rounds) is lost at all receivers.  Feeds the
/// hello layer's neighbor-liveness aging (see sim/hello.hpp).
struct HelloBurst {
    NodeId node = kInvalidNode;
    std::size_t first_round = 0;
    std::size_t rounds = 1;

    friend bool operator==(const HelloBurst&, const HelloBurst&) = default;
};

/// A complete fault schedule for one run.
struct FaultPlan {
    /// Timed events, sorted by (time, generation order).
    std::vector<FaultEvent> events;
    /// Static asymmetric loss assignments (at most one entry per link).
    std::vector<LinkAsymmetry> asymmetry;
    /// HELLO drop bursts (hello-phase only; no effect on the broadcast).
    std::vector<HelloBurst> hello_bursts;
    /// Seeds the counter-based per-delivery loss stream (fault_session.hpp).
    /// Zero is valid: the stream is still deterministic.
    std::uint64_t loss_stream_seed = 0;

    [[nodiscard]] bool empty() const noexcept {
        return events.empty() && asymmetry.empty() && hello_bursts.empty();
    }

    friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Fault intensity knobs.  All rates are expected *fractions* of the node
/// or link population; windows are simulated-time spans.
struct FaultSpec {
    double crash_rate = 0.0;          ///< fraction of nodes that crash
    double crash_window = 10.0;       ///< crash times uniform in [0, window)
    double recover_probability = 0.5; ///< chance a crashed node recovers
    double recover_delay_min = 2.0;   ///< recovery at crash + U[min, max)
    double recover_delay_max = 8.0;
    bool protect_source = true;       ///< never crash the broadcast source

    double link_churn_rate = 0.0;     ///< fraction of links that flap once
    double churn_window = 10.0;       ///< down time uniform in [0, window)
    double churn_down_min = 1.0;      ///< outage duration U[min, max)
    double churn_down_max = 5.0;

    double asymmetry_rate = 0.0;      ///< fraction of links with asym loss
    double asymmetry_loss_max = 0.8;  ///< directed loss uniform in (0, max]

    double hello_burst_rate = 0.0;    ///< fraction of nodes with a burst
    std::size_t hello_rounds = 2;     ///< hello-phase length being targeted
};

/// Generates the plan for one run.  Pure function of its arguments: the
/// RNG is seeded by `runner::derive_run_seed(base_seed, |V|, crash_rate,
/// run_index)` xor a fixed fault-stream tag, a substream disjoint from the
/// run's simulation RNG.
[[nodiscard]] FaultPlan make_fault_plan(const FaultSpec& spec, const Graph& g, NodeId source,
                                        std::uint64_t base_seed, std::uint64_t run_index);

/// Structural validation against an `n`-node topology.  Throws
/// `std::invalid_argument` (naming the offending entry and value) on:
/// negative or non-finite event times, out-of-range node/link ids,
/// a recover without a preceding crash, a duplicate crash while the node
/// is already down, link events whose endpoints are not a canonical pair
/// (a < b), asymmetry entries with loss outside [0, 1] or duplicated
/// links, and hello bursts with out-of-range nodes or zero rounds.
/// Plans built by `make_fault_plan` always pass.
void validate_plan(const FaultPlan& plan, std::size_t n);

/// Copy of `plan` with every event time rounded *up* to the next multiple
/// of `window` (the scale engine's delivery delay), re-sorted stably.
/// This is the window-bucketing contract documented in docs/SCALING.md:
/// a bucketed plan fires identically in the serial simulator and in
/// `ScaleEngine`, because every event lands exactly on a window boundary.
/// Throws `std::invalid_argument` when `window` is not positive/finite.
[[nodiscard]] FaultPlan bucket_plan(const FaultPlan& plan, double window);

}  // namespace adhoc::faults
