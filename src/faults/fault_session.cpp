#include "faults/fault_session.hpp"

#include <algorithm>
#include <cassert>

namespace adhoc::faults {

void FaultSession::reset(const FaultPlan& plan, std::size_t n) {
    plan_ = &plan;
    node_up_.assign(n, 1);
    down_links_.clear();
    draw_counter_ = 0;
}

void FaultSession::apply(const FaultEvent& event) {
    assert(plan_ != nullptr);
    switch (event.kind) {
        case FaultKind::kNodeCrash:
            if (event.node < node_up_.size()) node_up_[event.node] = 0;
            break;
        case FaultKind::kNodeRecover:
            if (event.node < node_up_.size()) node_up_[event.node] = 1;
            break;
        case FaultKind::kLinkDown: {
            const Edge c = canonical(event.link);
            const auto it = std::find_if(down_links_.begin(), down_links_.end(),
                                         [&](const Edge& e) { return e.a == c.a && e.b == c.b; });
            if (it == down_links_.end()) down_links_.push_back(c);
            break;
        }
        case FaultKind::kLinkUp: {
            const Edge c = canonical(event.link);
            const auto it = std::find_if(down_links_.begin(), down_links_.end(),
                                         [&](const Edge& e) { return e.a == c.a && e.b == c.b; });
            if (it != down_links_.end()) down_links_.erase(it);
            break;
        }
    }
}

bool FaultSession::drop_directed(NodeId from, NodeId to) {
    assert(plan_ != nullptr);
    double loss = 0.0;
    const Edge c = canonical(Edge{from, to});
    for (const LinkAsymmetry& asym : plan_->asymmetry) {
        if (asym.link.a != c.a || asym.link.b != c.b) continue;
        loss = (from <= to) ? asym.loss_ab : asym.loss_ba;
        break;
    }
    // Advance the counter even for loss-free links: the stream position
    // depends only on the *order* of delivery attempts, which the
    // deterministic event loop fixes, not on which links carry loss.
    const std::uint64_t i = draw_counter_++;
    if (loss <= 0.0) return false;
    const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) |
                              static_cast<std::uint64_t>(to);
    const std::uint64_t h = runner::splitmix64(plan_->loss_stream_seed ^
                                               runner::splitmix64(key ^ (i * 0x9e3779b97f4a7c15ULL)));
    // Top 53 bits -> uniform double in [0, 1), the standard conversion.
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return u < loss;
}

std::vector<char> FaultSession::down_mask() const {
    std::vector<char> mask(node_up_.size(), 0);
    for (std::size_t v = 0; v < node_up_.size(); ++v) mask[v] = node_up_[v] ? 0 : 1;
    return mask;
}

FinalFaultState final_fault_state(const FaultPlan& plan, std::size_t n) {
    FaultSession session;
    session.reset(plan, n);
    for (const FaultEvent& e : plan.events) session.apply(e);
    FinalFaultState state;
    state.node_down = session.down_mask();
    state.links_down = session.down_links();
    return state;
}

}  // namespace adhoc::faults
