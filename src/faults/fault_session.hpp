/// \file fault_session.hpp
/// \brief Runtime fault state for one simulated broadcast.
///
/// A `FaultSession` is the mutable counterpart of a `FaultPlan`: the
/// simulator applies the plan's timed events to it as they pop out of the
/// event queue, and consults it on every delivery.  Per-delivery asymmetric
/// loss draws come from a *counter-based* splitmix64 stream seeded by the
/// plan (never from the run's shared mt19937), so fault outcomes cannot
/// perturb — or be perturbed by — the medium's jitter/loss draws.

#pragma once

#include <cstdint>
#include <vector>

#include "faults/fault_plan.hpp"
#include "graph/graph.hpp"
#include "runner/seed.hpp"

namespace adhoc::faults {

/// Mutable up/down state plus the deterministic directed-loss stream.
class FaultSession {
  public:
    FaultSession() = default;

    /// Arms the session for a run over an n-node topology.  Everything is
    /// up initially; `plan` must outlive the session.
    void reset(const FaultPlan& plan, std::size_t n);

    /// True once reset() has been called with a non-empty plan.
    [[nodiscard]] bool active() const noexcept { return plan_ != nullptr; }

    /// Applies one timed event (the simulator pops it from the queue).
    void apply(const FaultEvent& event);

    [[nodiscard]] bool node_up(NodeId v) const noexcept { return node_up_[v] != 0; }

    /// True iff the undirected link currently carries packets (both
    /// endpoints up and the link itself not churned down).
    [[nodiscard]] bool link_up(NodeId a, NodeId b) const noexcept {
        if (!node_up_[a] || !node_up_[b]) return false;
        for (const Edge& e : down_links_) {
            const Edge c = canonical(Edge{a, b});
            if (e.a == c.a && e.b == c.b) return false;
        }
        return true;
    }

    /// Deterministic Bernoulli draw for one directed delivery attempt
    /// `from -> to`.  Counter-based: the i-th query of a session always
    /// sees the same stream position, independent of any other RNG.
    [[nodiscard]] bool drop_directed(NodeId from, NodeId to);

    /// Nodes currently down, as a 0/1 mask (empty when inactive).
    [[nodiscard]] std::vector<char> down_mask() const;

    /// Undirected links currently churned down (canonical form).
    [[nodiscard]] const std::vector<Edge>& down_links() const noexcept { return down_links_; }

  private:
    const FaultPlan* plan_ = nullptr;
    std::vector<char> node_up_;
    std::vector<Edge> down_links_;  ///< small: linear scan beats a set here
    std::uint64_t draw_counter_ = 0;
};

/// The down mask / down links a plan leaves behind once every event has
/// fired — what the topology looks like "at the end of time".  Used by
/// outcome classification without needing the live session.
struct FinalFaultState {
    std::vector<char> node_down;  ///< 1 = down at end of run
    std::vector<Edge> links_down;
};

[[nodiscard]] FinalFaultState final_fault_state(const FaultPlan& plan, std::size_t n);

}  // namespace adhoc::faults
