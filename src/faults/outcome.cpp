#include "faults/outcome.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace adhoc::faults {

const char* to_string(DeliveryOutcome outcome) noexcept {
    switch (outcome) {
        case DeliveryOutcome::kDelivered: return "delivered";
        case DeliveryOutcome::kDegraded: return "degraded";
        case DeliveryOutcome::kPartitioned: return "partitioned";
    }
    return "?";
}

ResilienceSummary classify_outcome(const Graph& g, NodeId source,
                                   const BroadcastResult& result, const FaultPlan& plan) {
    return classify_outcome(g, source, result.received, plan);
}

ResilienceSummary classify_outcome(const Graph& g, NodeId source,
                                   const std::vector<char>& received, const FaultPlan& plan) {
    const std::size_t n = g.node_count();
    assert(received.size() == n);
    const FinalFaultState final_state = final_fault_state(plan, n);

    const auto link_severed = [&](NodeId a, NodeId b) {
        const Edge c = canonical(Edge{a, b});
        return std::any_of(final_state.links_down.begin(), final_state.links_down.end(),
                           [&](const Edge& e) { return e.a == c.a && e.b == c.b; });
    };

    // BFS from the source over the final faulted topology.
    std::vector<char> reachable(n, 0);
    if (!final_state.node_down[source]) {
        std::vector<NodeId> frontier{source};
        reachable[source] = 1;
        while (!frontier.empty()) {
            const NodeId v = frontier.back();
            frontier.pop_back();
            for (NodeId u : g.neighbors(v)) {
                if (reachable[u] || final_state.node_down[u] || link_severed(v, u)) continue;
                reachable[u] = 1;
                frontier.push_back(u);
            }
        }
    }

    ResilienceSummary summary;
    for (NodeId v = 0; v < n; ++v) {
        if (final_state.node_down[v]) continue;
        ++summary.up_count;
        if (received[v]) ++summary.delivered_up;
        if (reachable[v]) {
            ++summary.reachable_count;
            if (!received[v]) ++summary.missed_reachable;
        }
    }
    summary.delivery_ratio =
        summary.reachable_count == 0
            ? 1.0
            : static_cast<double>(summary.reachable_count - summary.missed_reachable) /
                  static_cast<double>(summary.reachable_count);

    if (summary.missed_reachable > 0) {
        summary.outcome = DeliveryOutcome::kDegraded;
    } else if (summary.delivered_up < summary.up_count) {
        summary.outcome = DeliveryOutcome::kPartitioned;
    } else {
        summary.outcome = DeliveryOutcome::kDelivered;
    }
    return summary;
}

}  // namespace adhoc::faults
