/// \file outcome.hpp
/// \brief Graceful-degradation accounting for faulted broadcast runs.
///
/// Under faults "did everyone receive?" is the wrong question: a crash
/// that partitions the network makes full delivery *impossible*, which is
/// a property of the topology, not a protocol failure.  Runs therefore
/// classify into three outcomes:
///
///   - `kDelivered`:   every node that is up at the end of the run holds
///                     the packet — the strongest claim faults permit.
///   - `kPartitioned`: every up node *reachable from the source* in the
///                     final faulted topology holds the packet, but some
///                     up node is unreachable.  Not a protocol failure.
///   - `kDegraded`:    some reachable up node missed the packet — loss or
///                     churn beat the recovery budget.
///
/// Benches and the fuzzer treat only unexpected `kDegraded` as failure;
/// partitioned runs exit 0 (ISSUE 5 acceptance criterion).

#pragma once

#include <string>

#include "faults/fault_plan.hpp"
#include "faults/fault_session.hpp"
#include "graph/graph.hpp"
#include "sim/simulator.hpp"

namespace adhoc::faults {

enum class DeliveryOutcome : std::uint8_t {
    kDelivered,
    kDegraded,
    kPartitioned,
};

[[nodiscard]] const char* to_string(DeliveryOutcome outcome) noexcept;

/// The classification plus the counts it was derived from.
struct ResilienceSummary {
    DeliveryOutcome outcome = DeliveryOutcome::kDelivered;
    std::size_t up_count = 0;          ///< nodes up at end of run
    std::size_t reachable_count = 0;   ///< up nodes reachable from source (final topology)
    std::size_t delivered_up = 0;      ///< up nodes holding the packet
    std::size_t missed_reachable = 0;  ///< reachable up nodes without it
    /// delivered reachable / reachable — 1.0 for partitioned-but-clean runs.
    double delivery_ratio = 1.0;
};

/// Classifies one faulted run.  Reachability is computed on `g` minus the
/// plan's final down nodes/links; a down source makes every other node
/// unreachable.  With an empty plan this degenerates to full_delivery ?
/// delivered : degraded.
[[nodiscard]] ResilienceSummary classify_outcome(const Graph& g, NodeId source,
                                                 const BroadcastResult& result,
                                                 const FaultPlan& plan);

/// Mask-based overload for engines that never materialize a
/// `BroadcastResult` (the scale plane): `received[v] != 0` means node v
/// holds the packet.  Same classification, same reachability BFS.
[[nodiscard]] ResilienceSummary classify_outcome(const Graph& g, NodeId source,
                                                 const std::vector<char>& received,
                                                 const FaultPlan& plan);

}  // namespace adhoc::faults
