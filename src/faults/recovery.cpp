#include "faults/recovery.hpp"

#include <cassert>
#include <cmath>

#include "sim/packet.hpp"
#include "telemetry/telemetry.hpp"

namespace adhoc::faults {

namespace {

namespace tel = telemetry;

const tel::MetricId kBeacons = tel::counter("recovery.beacons", "packets");
const tel::MetricId kNacks = tel::counter("recovery.nacks", "packets");
const tel::MetricId kRepairs = tel::counter("recovery.repairs", "packets");
const tel::MetricId kGapsHealed = tel::counter("recovery.gaps_healed", "nodes");

}  // namespace

RecoveryAgent::RecoveryAgent(Agent& inner, RecoveryConfig config)
    : inner_(&inner), config_(config) {}

void RecoveryAgent::start(Simulator& sim, NodeId source, Rng& rng) {
    const std::size_t n = sim.graph().node_count();
    holder_.assign(n, 0);
    state_.assign(n, BroadcastState{});
    beacons_.assign(n, 0);
    nacks_.assign(n, 0);
    nack_armed_.assign(n, 0);
    gap_source_.assign(n, kInvalidNode);
    repairs_.assign(n, 0);
    nacks_sent_ = 0;

    inner_->start(sim, source, rng);
    // The source holds the packet by construction, whether or not its
    // initial transmission survived (it beacons so stranded neighbors can
    // pull the packet back out of it).
    note_holder(sim, source, BroadcastState{});
}

void RecoveryAgent::note_holder(Simulator& sim, NodeId v, const BroadcastState& state) {
    if (holder_[v]) return;
    holder_[v] = 1;
    state_[v] = state;
    if (nacks_[v] > 0) tel::count(kGapsHealed);
    if (config_.enabled && config_.max_beacons > 0) {
        sim.schedule_timer(v, config_.beacon_interval, kBeaconTimer);
    }
}

void RecoveryAgent::on_receive(Simulator& sim, NodeId node, const Transmission& tx, Rng& rng) {
    note_holder(sim, node, tx.state);
    inner_->on_receive(sim, node, tx, rng);
}

void RecoveryAgent::on_timer(Simulator& sim, NodeId node, std::size_t timer_kind, Rng& rng) {
    if (timer_kind < kTimerBase) {
        inner_->on_timer(sim, node, timer_kind, rng);
        return;
    }
    if (!config_.enabled) return;
    switch (timer_kind) {
        case kBeaconTimer: {
            if (!holder_[node]) return;
            tel::count(kBeacons);
            sim.send_control(node, kBeaconMsg);
            if (++beacons_[node] < config_.max_beacons) {
                sim.schedule_timer(node, config_.beacon_interval, kBeaconTimer);
            }
            break;
        }
        case kNackTimer: {
            nack_armed_[node] = 0;
            if (holder_[node]) return;  // healed while waiting
            if (gap_source_[node] == kInvalidNode) return;
            tel::count(kNacks);
            ++nacks_sent_;
            sim.send_control(node, kNackMsg, gap_source_[node]);
            if (++nacks_[node] < config_.max_nacks) {
                // Re-arm under exponential backoff: the repair (or the next
                // beacon) may be lost too.
                nack_armed_[node] = 1;
                const double delay =
                    config_.nack_delay *
                    std::pow(config_.backoff_factor, static_cast<double>(nacks_[node]));
                sim.schedule_timer(node, delay, kNackTimer);
            }
            break;
        }
        default: break;
    }
}

void RecoveryAgent::on_control(Simulator& sim, NodeId node, const ControlMessage& msg,
                               Rng& /*rng*/) {
    if (!config_.enabled) return;
    switch (msg.kind) {
        case kBeaconMsg: {
            if (holder_[node]) return;  // nothing missing here
            // Sequence gap detected: a neighbor advertises a packet this
            // node never received.
            gap_source_[node] = msg.sender;
            if (!nack_armed_[node] && nacks_[node] < config_.max_nacks) {
                nack_armed_[node] = 1;
                const double delay =
                    config_.nack_delay *
                    std::pow(config_.backoff_factor, static_cast<double>(nacks_[node]));
                sim.schedule_timer(node, delay, kNackTimer);
            }
            break;
        }
        case kNackMsg: {
            if (!holder_[node]) return;  // stale NACK; nothing to repair with
            if (repairs_[node] >= config_.retransmit_budget) return;
            ++repairs_[node];
            tel::count(kRepairs);
            sim.resend(node, chain_state(state_[node], node, {}, config_.history));
            break;
        }
        default: break;
    }
}

}  // namespace adhoc::faults
