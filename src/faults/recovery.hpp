/// \file recovery.hpp
/// \brief NACK-driven retransmission layer: a decorator over any Agent.
///
/// The paper's scheme (like all CDS broadcasts) is fire-and-forget: one
/// lost forward can strand a whole subtree.  `RecoveryAgent` wraps any
/// inner agent with a small repair plane, without touching its decision
/// logic:
///
///   holder   -- a node that has the packet.  Emits up to `max_beacons`
///               periodic beacons (control messages) advertising the
///               packet.
///   gap      -- a node that hears a beacon for a packet it never received
///               has detected a sequence gap.  It schedules a NACK to the
///               beaconing holder under bounded exponential backoff
///               (`nack_delay * backoff_factor^i`, at most `max_nacks`).
///   repair   -- a holder answering a NACK re-sends the data packet via
///               `Simulator::resend`, at most `retransmit_budget` times.
///
/// Every budget is finite, every timer is scheduled at most a bounded
/// number of times per node, so the event queue always drains: runs
/// terminate cleanly even under 100% loss or a partitioning crash, and
/// the caller classifies what remains (see outcome.hpp).

#pragma once

#include <cstddef>
#include <vector>

#include "sim/simulator.hpp"

namespace adhoc::faults {

struct RecoveryConfig {
    bool enabled = true;
    double beacon_interval = 4.0;     ///< holder beacon period
    std::size_t max_beacons = 3;      ///< beacons per holder
    double nack_delay = 0.5;          ///< first NACK backoff
    double backoff_factor = 2.0;      ///< exponential NACK backoff base
    std::size_t max_nacks = 3;        ///< NACKs per gap node
    std::size_t retransmit_budget = 2;///< repairs per holder
    std::size_t history = 2;          ///< piggybacked history depth of repairs
};

/// Wraps `inner` with the beacon/NACK/repair state machine.  The inner
/// agent keeps full ownership of the data plane (its timers and receives
/// are forwarded untouched); recovery claims the control plane and the
/// timer kinds at/above `kTimerBase`.
class RecoveryAgent : public Agent {
  public:
    /// Timer kinds below this belong to the inner agent.
    static constexpr std::size_t kTimerBase = std::size_t{1} << 16;

    RecoveryAgent(Agent& inner, RecoveryConfig config);

    void start(Simulator& sim, NodeId source, Rng& rng) override;
    void on_receive(Simulator& sim, NodeId node, const Transmission& tx, Rng& rng) override;
    void on_timer(Simulator& sim, NodeId node, std::size_t timer_kind, Rng& rng) override;
    void on_control(Simulator& sim, NodeId node, const ControlMessage& msg, Rng& rng) override;

    /// Gap nodes that ever NACKed (diagnostics for tests).
    [[nodiscard]] std::size_t nacks_sent() const noexcept { return nacks_sent_; }

  private:
    static constexpr std::size_t kBeaconTimer = kTimerBase + 0;
    static constexpr std::size_t kNackTimer = kTimerBase + 1;
    static constexpr std::size_t kBeaconMsg = 0;
    static constexpr std::size_t kNackMsg = 1;

    void note_holder(Simulator& sim, NodeId v, const BroadcastState& state);

    Agent* inner_;
    RecoveryConfig config_;
    std::vector<char> holder_;
    std::vector<BroadcastState> state_;   ///< last held state per holder
    std::vector<std::size_t> beacons_;    ///< beacons emitted per holder
    std::vector<std::size_t> nacks_;      ///< NACKs emitted per gap node
    std::vector<char> nack_armed_;        ///< a NACK timer is pending
    std::vector<NodeId> gap_source_;      ///< holder to NACK at
    std::vector<std::size_t> repairs_;    ///< resends per holder
    std::size_t nacks_sent_ = 0;
};

}  // namespace adhoc::faults
