#include "fuzz/fuzzer.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "fuzz/mutants.hpp"
#include "fuzz/oracles.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/telemetry.hpp"

namespace adhoc::fuzz {
namespace {

namespace tel = telemetry;

const tel::MetricId kCheckTimer = tel::timer("fuzz.check");
const tel::MetricId kScenarios = tel::counter("fuzz.scenarios", "scenarios");
const tel::MetricId kFailures = tel::counter("fuzz.failures", "scenarios");
const tel::MetricId kShrinkEvals = tel::counter("fuzz.shrink_evals", "evals");
const tel::MetricId kFindings = tel::counter("fuzz.findings", "findings");
const tel::MetricId kScenarioNodes =
    tel::histogram("fuzz.scenario_nodes", {4, 8, 12, 16, 24, 32, 48, 64}, "nodes");

/// FNV-1a over a string; decorrelates per-mutant seed streams.
std::uint64_t name_hash(const std::string& text) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/// Applies the campaign-wide algorithm override, if any.
Scenario with_override(Scenario s, const std::string& algorithm) {
    if (!algorithm.empty()) s.config.algorithm = algorithm;
    return s;
}

}  // namespace

FuzzReport run_fuzz(const FuzzOptions& options) {
    const std::size_t jobs = std::max<std::size_t>(1, options.jobs);
    const AlgorithmPool pool(/*with_mutants=*/true);

    // Per-iteration result slots: findings land at their own index, so the
    // report order is independent of worker interleaving.
    struct Slot {
        bool checked = false;
        bool failed = false;
        CheckReport report;
        Scenario scenario;
        tel::Snapshot telemetry;  ///< metrics recorded while checking this scenario
    };
    std::vector<Slot> slots(options.iterations);

    const auto start = std::chrono::steady_clock::now();
    std::atomic<bool> out_of_time{false};
    const auto expired = [&] {
        if (options.seconds <= 0.0) return false;
        if (out_of_time.load(std::memory_order_relaxed)) return true;
        const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
        if (elapsed.count() >= options.seconds) {
            out_of_time.store(true, std::memory_order_relaxed);
            return true;
        }
        return false;
    };

    const auto worker = [&](std::size_t shard) {
        for (std::uint64_t i = shard; i < options.iterations; i += jobs) {
            if (expired()) return;
            Slot& slot = slots[i];
            slot.scenario = with_override(
                generate_scenario(options.base_seed, i, options.limits),
                options.algorithm_override);
            {
                tel::RunScope scope;  // one snapshot per scenario
                {
                    tel::ScopedTimer span(kCheckTimer);  // must end before harvest()
                    tel::count(kScenarios);
                    tel::observe(kScenarioNodes, slot.scenario.node_count);
                    slot.report = check_scenario(slot.scenario, pool);
                }
                slot.failed = !slot.report.ok;
                if (slot.failed) tel::count(kFailures);
                slot.telemetry = scope.harvest();
            }
            if (tel::jsonl_enabled()) {
                tel::jsonl_write_run(
                    "fuzz.scenario",
                    {{"iteration", i},
                     {"nodes", static_cast<std::uint64_t>(slot.scenario.node_count)},
                     {"failed", slot.failed ? 1u : 0u}},
                    slot.telemetry);
            }
            slot.checked = true;
        }
    };

    if (jobs == 1) {
        worker(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(jobs);
        for (std::size_t w = 0; w < jobs; ++w) threads.emplace_back(worker, w);
        for (std::thread& t : threads) t.join();
    }

    // A time-limited multi-worker run may leave holes in the checked
    // prefix; keep only the contiguous prefix so the report stays a pure
    // function of (base_seed, iterations_run).
    FuzzReport report;
    for (const Slot& slot : slots) {
        if (!slot.checked) break;
        ++report.iterations_run;
        if (!slot.failed) ++report.checks_passed;
        report.metrics.merge(slot.telemetry);  // iteration order: jobs-invariant
    }

    // Shrinking is serial: it dominates cost only when something is wrong,
    // and serializing keeps the shrink budget deterministic.
    tel::RunScope shrink_scope;  // shrink-phase metrics, harvested below
    for (std::uint64_t i = 0; i < report.iterations_run; ++i) {
        const Slot& slot = slots[i];
        if (!slot.failed) continue;
        Finding finding;
        finding.iteration = i;
        finding.oracle = slot.report.oracle;
        finding.detail = slot.report.detail;
        finding.original = slot.scenario;
        tel::count(kFindings);
        if (report.findings.size() < options.max_findings) {
            const auto still_fails = [&](const Scenario& candidate) {
                tel::count(kShrinkEvals);
                const CheckReport r = check_scenario(candidate, pool);
                return !r.ok && r.oracle == finding.oracle;
            };
            finding.shrunk = shrink_scenario(slot.scenario, still_fails,
                                             ShrinkOptions{options.shrink_evals},
                                             &finding.shrink);
        } else {
            finding.shrunk = normalized(slot.scenario);  // budget spent; keep as-is
        }
        report.findings.push_back(std::move(finding));
    }
    report.metrics.merge(shrink_scope.harvest());
    return report;
}

std::vector<MutantKill> run_mutation_gate(std::uint64_t base_seed,
                                          std::uint64_t iterations_per_mutant) {
    std::vector<MutantKill> kills;
    for (const MutantSpec& spec : mutant_specs()) {
        FuzzOptions options;
        options.base_seed = base_seed ^ name_hash(spec.name);  // per-mutant stream
        options.iterations = iterations_per_mutant;
        options.limits.max_nodes = 12;   // small graphs kill pruning bugs fastest
        options.limits.faults = false;   // keep delivery/cds oracles armed
        options.limits.medium_intensity = 0.0;  // likewise: no SINR exemptions
        options.limits.registry_algorithms = false;
        options.algorithm_override = "mutant:" + spec.name;
        options.max_findings = 1;

        FuzzReport report = run_fuzz(options);
        MutantKill kill;
        kill.name = spec.name;
        kill.killed = !report.findings.empty();
        kill.iterations =
            kill.killed ? report.findings.front().iteration + 1 : report.iterations_run;
        if (kill.killed) {
            kill.oracle = report.findings.front().oracle;
            kill.shrunk_nodes = report.findings.front().shrunk.node_count;
            kill.finding = std::move(report.findings.front());
        }
        kills.push_back(std::move(kill));
    }
    return kills;
}

}  // namespace adhoc::fuzz
