/// \file fuzzer.hpp
/// \brief The differential fuzz loop and the oracle mutation-kill gate.
///
/// `run_fuzz` generates counter-indexed scenarios, checks each against the
/// oracle suite (oracles.hpp) and shrinks failures to minimal repros
/// (shrink.hpp).  Scenario i is a pure function of (base_seed, i), and the
/// report is assembled in iteration order, so a campaign's findings are
/// bit-identical at any jobs value — the same contract the campaign runner
/// keeps for benchmark sweeps.
///
/// `run_mutation_gate` validates the oracles themselves: for each entry of
/// the mutant catalog (mutants.hpp) it fuzzes with the algorithm pinned to
/// the mutant and asserts a failure is found and shrinks small.  A suite
/// that cannot kill known bugs guards nothing.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fuzz/scenario.hpp"
#include "fuzz/shrink.hpp"
#include "telemetry/telemetry.hpp"

namespace adhoc::fuzz {

struct FuzzOptions {
    std::uint64_t base_seed = 1;
    std::uint64_t iterations = 200;   ///< scenario budget
    double seconds = 0.0;             ///< wall-clock cap (0 = none), checked between iterations
    std::size_t jobs = 1;             ///< worker threads
    GenerationLimits limits;          ///< topology/fault bounds
    std::size_t shrink_evals = 2000;  ///< per-finding shrink budget
    /// When set, every scenario runs this algorithm instead of the sampled
    /// one (the mutation gate pins "mutant:<name>" here).
    std::string algorithm_override;
    std::uint64_t max_findings = 8;  ///< stop shrinking after this many
};

/// One confirmed oracle failure.
struct Finding {
    std::uint64_t iteration = 0;  ///< generator index that produced it
    std::string oracle;
    std::string detail;           ///< diagnostic from the original failure
    Scenario original;            ///< as generated
    Scenario shrunk;              ///< after delta debugging
    ShrinkStats shrink;
};

struct FuzzReport {
    std::uint64_t iterations_run = 0;
    std::uint64_t checks_passed = 0;
    std::vector<Finding> findings;  ///< iteration order, deterministic

    /// Campaign aggregate of per-iteration telemetry snapshots, merged in
    /// iteration order (empty while telemetry is disabled).  Like the rest
    /// of the report, the integer metrics are jobs-invariant.
    telemetry::Snapshot metrics;

    [[nodiscard]] bool clean() const { return findings.empty(); }
};

/// Runs the campaign.  Deterministic for fixed (options.base_seed,
/// iterations actually run); when `seconds` cuts the run short the already
/// completed prefix is still iteration-ordered.
[[nodiscard]] FuzzReport run_fuzz(const FuzzOptions& options);

/// Gate result for one mutant.
struct MutantKill {
    std::string name;
    bool killed = false;
    std::uint64_t iterations = 0;    ///< iterations until first kill (or budget)
    std::size_t shrunk_nodes = 0;    ///< node count of the minimized repro
    std::string oracle;              ///< oracle that fired
    std::optional<Finding> finding;  ///< present when killed
};

/// Fuzzes every catalog mutant with a small fault-free budget.  All
/// mutants must report killed=true for the oracle suite to be trusted.
[[nodiscard]] std::vector<MutantKill> run_mutation_gate(std::uint64_t base_seed,
                                                        std::uint64_t iterations_per_mutant = 64);

}  // namespace adhoc::fuzz
