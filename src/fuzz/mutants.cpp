#include "fuzz/mutants.hpp"

#include <algorithm>

#include "core/coverage.hpp"
#include "core/priority.hpp"
#include "core/view.hpp"
#include "sim/generic_protocol.hpp"

namespace adhoc::fuzz {
namespace {

enum class Knob {
    kSkipPriority,
    kStatusInflation,
    kDisconnectedCover,
    kNeighborOffByOne,
};

/// A broken rendition of the pairwise coverage condition, faithful to the
/// correct structure (so kills come from the injected bug, not from an
/// unrelated rewrite).
bool broken_covered(const View& view, NodeId v, Knob knob) {
    const Graph& topo = view.topology();
    std::vector<NodeId> neighbors(topo.neighbors(v).begin(), topo.neighbors(v).end());
    if (knob == Knob::kNeighborOffByOne && !neighbors.empty()) {
        neighbors.pop_back();  // the injected loop-bound bug
    }
    if (neighbors.size() < 2) return true;  // vacuously covered

    const Priority self = view.priority(v);

    if (knob == Knob::kDisconnectedCover) {
        // Strong condition minus the single-component requirement: N(v)
        // dominated by higher-priority nodes, connectivity never checked.
        for (NodeId u : neighbors) {
            bool dominated = view.priority(u) > self;
            if (!dominated) {
                for (NodeId w : topo.neighbors(u)) {
                    if (w != v && view.priority(w) > self) {
                        dominated = true;
                        break;
                    }
                }
            }
            if (!dominated) return false;
        }
        return true;
    }

    // Pairwise replacement paths with a broken intermediate filter.
    std::vector<char> allowed(topo.node_count(), 0);
    for (NodeId w = 0; w < topo.node_count(); ++w) {
        if (w == v || !view.visible(w)) continue;
        switch (knob) {
            case Knob::kSkipPriority:
                allowed[w] = 1;  // any intermediate will do
                break;
            case Knob::kStatusInflation:
                // Compare intermediates as if they had already forwarded
                // (S treated as 2): status dominates the lexicographic
                // order, so this admits nearly everything.
                allowed[w] = view.keys().evaluate(w, NodeStatus::kVisited) > self ? 1 : 0;
                break;
            default:
                allowed[w] = view.priority(w) > self ? 1 : 0;
                break;
        }
    }

    for (std::size_t i = 0; i < neighbors.size(); ++i) {
        for (std::size_t j = i + 1; j < neighbors.size(); ++j) {
            const NodeId u = neighbors[i];
            const NodeId w = neighbors[j];
            if (topo.has_edge(u, w)) continue;
            // BFS u -> w through allowed intermediates, avoiding v.
            std::vector<char> seen(topo.node_count(), 0);
            std::vector<NodeId> queue{u};
            seen[u] = 1;
            bool reached = false;
            while (!queue.empty() && !reached) {
                const NodeId x = queue.back();
                queue.pop_back();
                for (NodeId y : topo.neighbors(x)) {
                    if (y == w) {
                        reached = true;
                        break;
                    }
                    if (y == v || seen[y] || !allowed[y]) continue;
                    seen[y] = 1;
                    queue.push_back(y);
                }
            }
            if (!reached) return false;
        }
    }
    return true;
}

/// Static self-pruning with a broken coverage rule.  The relay schedule
/// (StaticSetAgent) is correct — only the status decision is mutated.
class BrokenCoverageAlgorithm final : public StaticCdsAlgorithm {
  public:
    BrokenCoverageAlgorithm(std::string name, Knob knob)
        : name_(std::move(name)), knob_(knob) {}

    [[nodiscard]] std::string name() const override { return "Mutant " + name_; }

    [[nodiscard]] std::vector<char> forward_set(const Graph& g) const override {
        const PriorityKeys keys(g, PriorityScheme::kId);
        std::vector<char> forward(g.node_count(), 0);
        for (NodeId v = 0; v < g.node_count(); ++v) {
            const View view = make_static_view(g, v, 2, keys);
            forward[v] = broken_covered(view, v, knob_) ? 0 : 1;
        }
        return forward;
    }

  private:
    std::string name_;
    Knob knob_;
};

/// Relays exactly like StaticSetAgent but the source is subject to the
/// pruning decision too — the "source always forwards" rule of Section 5
/// is skipped.
class SourceExemptAgent final : public StaticSetAgent {
  public:
    SourceExemptAgent(const Graph& g, std::vector<char> forward_set)
        : StaticSetAgent(g, forward_set), forward_(std::move(forward_set)) {}

    void start(Simulator& sim, NodeId source, Rng& rng) override {
        if (forward_[source]) StaticSetAgent::start(sim, source, rng);
    }

  private:
    std::vector<char> forward_;
};

class SourceExemptAlgorithm final : public BroadcastAlgorithm {
  public:
    [[nodiscard]] std::string name() const override { return "Mutant source-exempt"; }

  protected:
    [[nodiscard]] std::unique_ptr<Agent> make_agent(const Graph& g) const override {
        const PriorityKeys keys(g, PriorityScheme::kId);
        return std::make_unique<SourceExemptAgent>(
            g, generic_static_forward_set(g, 2, keys, CoverageOptions{}));
    }
};

}  // namespace

const std::vector<MutantSpec>& mutant_specs() {
    static const std::vector<MutantSpec> specs = [] {
        std::vector<MutantSpec> out;
        out.push_back({"skip-priority",
                       "replacement paths accept any intermediate (no higher-priority check)",
                       [] {
                           return std::make_unique<BrokenCoverageAlgorithm>(
                               "skip-priority", Knob::kSkipPriority);
                       }});
        out.push_back({"status-inflation",
                       "intermediates compared as if visited (S=1/1.5 treated as S=2)", [] {
                           return std::make_unique<BrokenCoverageAlgorithm>(
                               "status-inflation", Knob::kStatusInflation);
                       }});
        out.push_back({"disconnected-cover",
                       "strong condition without the connected-component requirement", [] {
                           return std::make_unique<BrokenCoverageAlgorithm>(
                               "disconnected-cover", Knob::kDisconnectedCover);
                       }});
        out.push_back({"neighbor-off-by-one",
                       "pairwise scan skips the last neighbor (loop-bound bug)", [] {
                           return std::make_unique<BrokenCoverageAlgorithm>(
                               "neighbor-off-by-one", Knob::kNeighborOffByOne);
                       }});
        out.push_back({"source-exempt",
                       "the source applies the pruning rule instead of always forwarding",
                       [] { return std::make_unique<SourceExemptAlgorithm>(); }});
        return out;
    }();
    return specs;
}

}  // namespace adhoc::fuzz
