/// \file mutants.hpp
/// \brief Deliberately broken broadcast variants for the mutation-kill gate.
///
/// An oracle suite is only trustworthy if it demonstrably *fails* on known
/// bugs.  Each mutant here injects one classic pruning mistake into an
/// otherwise correct static self-pruning scheme; the gate
/// (`run_mutation_gate` in fuzzer.hpp) asserts the fuzzer detects every
/// mutant within a bounded budget and shrinks the finding to a tiny repro.
///
/// The catalog (all unsound — each prunes nodes the theorems require):
///  - `skip-priority`       — replacement paths may pass through *any*
///                            intermediate, not just higher-priority ones
///                            (drops the Pr(u) > Pr(v) check; both ends of
///                            a dependency cycle prune).
///  - `status-inflation`    — intermediates are compared as if already
///                            visited (S treated as 2 instead of 1/1.5),
///                            so every path looks like a replacement path.
///  - `disconnected-cover`  — strong condition minus connectivity: prunes
///                            when N(v) is dominated by higher-priority
///                            nodes even if those dominators are in
///                            different components.
///  - `neighbor-off-by-one` — the pairwise scan skips the last neighbor
///                            (a loop-bound bug), so uncovered pairs
///                            involving it are never examined.
///  - `source-exempt`       — the source applies the pruning rule instead
///                            of always forwarding (violates Section 5).

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/algorithm.hpp"

namespace adhoc::fuzz {

struct MutantSpec {
    std::string name;
    std::string description;
    std::function<std::unique_ptr<BroadcastAlgorithm>()> make;
};

/// The full mutant catalog, stable order and names.
[[nodiscard]] const std::vector<MutantSpec>& mutant_specs();

}  // namespace adhoc::fuzz
