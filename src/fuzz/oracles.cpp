#include "fuzz/oracles.hpp"

#include <bit>
#include <sstream>

#include "algorithms/generic.hpp"
#include "core/coverage.hpp"
#include "core/view.hpp"
#include "fuzz/mutants.hpp"
#include "graph/traversal.hpp"
#include "runner/seed.hpp"
#include "stats/rng.hpp"
#include "traffic/engine.hpp"
#include "traffic/policy.hpp"
#include "traffic/workload.hpp"
#include "verify/cds_check.hpp"
#include "verify/invariants.hpp"

namespace adhoc::fuzz {
namespace {

GenericConfig to_generic_config(const AlgorithmConfig& c) {
    GenericConfig cfg;
    cfg.timing = c.timing;
    cfg.selection = c.selection;
    cfg.hops = c.hops;
    cfg.priority = c.priority;
    cfg.history = c.history;
    cfg.coverage.strong = c.strong;
    cfg.strict_designation = c.strict_designation;
    return cfg;
}

CheckReport fail(std::string oracle, std::string detail, std::uint64_t digest = 0) {
    CheckReport r;
    r.ok = false;
    r.oracle = std::move(oracle);
    r.detail = std::move(detail);
    r.digest = digest;
    return r;
}

BroadcastResult run_once(const Scenario& s, const BroadcastAlgorithm& algo, const Graph& knowledge,
                         const Graph& actual) {
    Rng rng(s.run_seed);
    if (!s.lost_edges.empty()) {
        return algo.broadcast_with_stale_knowledge(knowledge, actual, s.source, rng);
    }
    const MediumConfig medium = s.medium_config();
    if (s.has_faults() || s.recovery) {
        const faults::FaultPlan plan = s.fault_plan();
        faults::RecoveryConfig recovery;
        recovery.enabled = s.recovery;
        return algo.broadcast_resilient(knowledge, s.source, rng, medium, plan, recovery,
                                        /*trace=*/true)
            .result;
    }
    return algo.broadcast_traced(knowledge, s.source, rng, medium);
}

/// The recovery oracle: no trace event may touch a node inside its crash
/// interval, and the outcome classification must be self-consistent.
/// Returns an empty string when clean.
std::string recovery_violation(const Scenario& s, const Graph& knowledge,
                               const BroadcastResult& result) {
    // Crash events at time t are queued before any same-time delivery, so
    // an event *at* the crash instant is already a violation; recovery at
    // time t is applied first too, so events at the recovery instant are
    // legal: the forbidden interval is [at, recover_at).
    for (const TraceEvent& e : result.trace.events()) {
        if (e.kind == TraceKind::kPrune || e.kind == TraceKind::kDesignate) continue;
        for (const CrashFault& c : s.crashes) {
            if (e.node != c.node) continue;
            const bool down = e.time >= c.at && (c.recover_at < 0.0 || e.time < c.recover_at);
            if (down) {
                std::ostringstream out;
                out << "event at t=" << e.time << " touched node " << e.node
                    << " inside its crash interval [" << c.at << ", "
                    << (c.recover_at < 0.0 ? std::string("inf")
                                           : std::to_string(c.recover_at))
                    << ")";
                return out.str();
            }
        }
    }

    const faults::ResilienceSummary summary =
        faults::classify_outcome(knowledge, s.source, result, s.fault_plan());
    switch (summary.outcome) {
        case faults::DeliveryOutcome::kDelivered:
            if (summary.delivered_up != summary.up_count) {
                return "classified delivered but an up node missed the packet";
            }
            break;
        case faults::DeliveryOutcome::kPartitioned:
            if (summary.missed_reachable != 0) {
                return "classified partitioned but a reachable up node missed the packet";
            }
            if (summary.delivered_up == summary.up_count) {
                return "classified partitioned but every up node holds the packet";
            }
            break;
        case faults::DeliveryOutcome::kDegraded:
            if (summary.missed_reachable == 0) {
                return "classified degraded but no reachable up node missed the packet";
            }
            break;
    }
    return {};
}

std::uint64_t traffic_digest(const traffic::TrafficResult& r) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t x) {
        h ^= x;
        h *= 0x100000001b3ULL;
    };
    mix(r.delivered);
    mix(r.degraded);
    mix(r.partitioned);
    mix(r.data_transmissions);
    mix(r.data_bytes);
    mix(r.fresh_deliveries);
    mix(r.duplicates_suppressed);
    mix(r.sv_beacons);
    mix(r.control_bytes);
    mix(r.pulls_sent);
    mix(r.repairs_served);
    mix(std::bit_cast<std::uint64_t>(r.completion_time));
    for (const traffic::SessionOutcome& s : r.sessions) {
        mix((std::uint64_t{s.source} << 32) | s.seq);
        mix((static_cast<std::uint64_t>(s.outcome) << 32) | s.delivered_up);
        mix(std::bit_cast<std::uint64_t>(s.last_delivery));
        mix(s.forwards);
    }
    return h;
}

/// The continuous-traffic oracle: the scenario's multi-session workload
/// runs to completion with every session in exactly one outcome class,
/// the classification is self-consistent, no per-node duplicate cache
/// exceeds its ceiling, the run reproduces bit-identically, and a
/// fault-free lossless run delivers every session.  Returns an empty
/// string when clean.
std::string traffic_violation(const Scenario& s, const Graph& knowledge) {
    traffic::TrafficConfig tc;
    tc.sessions = s.traffic_sessions;
    tc.rate = s.traffic_rate;
    if (s.traffic_bursty) tc.process = traffic::ArrivalProcess::kBursty;
    const traffic::Workload wl =
        traffic::make_workload(tc, knowledge.node_count(), s.run_seed, 0);

    // Flooding keeps full delivery under any arrival order, so the
    // fault-free delivery check below is jitter-robust.
    const auto policy = traffic::make_policy(knowledge, "flooding");
    traffic::EngineConfig config;
    config.medium.loss_probability = s.loss;
    config.medium.jitter = s.jitter;
    const faults::FaultPlan plan = s.fault_plan();

    const auto once = [&] {
        traffic::TrafficEngine engine(knowledge, *policy, config);
        if (s.has_faults()) engine.attach_faults(&plan);
        Rng rng(runner::splitmix64(s.run_seed ^ 0x7aff1cULL));
        return engine.run(wl, rng);
    };
    const traffic::TrafficResult r = once();

    if (r.sessions.size() != s.traffic_sessions) {
        return "engine reported " + std::to_string(r.sessions.size()) + " sessions, expected " +
               std::to_string(s.traffic_sessions);
    }
    if (r.delivered + r.degraded + r.partitioned != r.sessions.size()) {
        return "outcome classes do not partition the session set";
    }
    for (const traffic::SessionOutcome& outcome : r.sessions) {
        switch (outcome.outcome) {
            case faults::DeliveryOutcome::kDelivered:
                if (outcome.delivered_up != outcome.up_count) {
                    return "session classified delivered but an up node missed it";
                }
                break;
            case faults::DeliveryOutcome::kPartitioned:
                if (outcome.missed_reachable != 0) {
                    return "session classified partitioned but a reachable up node missed it";
                }
                if (outcome.delivered_up == outcome.up_count) {
                    return "session classified partitioned but every up node holds it";
                }
                break;
            case faults::DeliveryOutcome::kDegraded:
                if (outcome.missed_reachable == 0) {
                    return "session classified degraded but no reachable up node missed it";
                }
                break;
        }
    }
    if (r.cache_ceiling_bytes > 0 && r.cache_peak_bytes > r.cache_ceiling_bytes) {
        return "duplicate cache grew past its ceiling (" + std::to_string(r.cache_peak_bytes) +
               " > " + std::to_string(r.cache_ceiling_bytes) + " bytes)";
    }
    if (traffic_digest(once()) != traffic_digest(r)) {
        return "two traffic runs of the same seed diverged";
    }
    if (!s.has_faults() && s.loss == 0.0 && r.delivered != r.sessions.size()) {
        return std::to_string(r.sessions.size() - r.delivered) +
               " sessions undelivered on a fault-free lossless medium";
    }
    return {};
}

/// The scale-differential oracle: replay the broadcast through the
/// windowed ScaleEngine and require byte-identical results against the
/// Simulator's.  Self-skips (empty string) when the scenario lies outside
/// the engine's honorable subset; `result` must come from the fault-free
/// lossless jitter-free path (the caller checks), so it IS the reference.
std::string scale_divergence(const Scenario& s, const Graph& knowledge,
                             const BroadcastResult& result) {
    std::optional<ScaleConfig> cfg;
    if (s.config.algorithm == "generic") {
        const GenericConfig gc = to_generic_config(s.config);
        const bool honorable =
            (gc.timing == Timing::kStatic || gc.timing == Timing::kFirstReceipt) &&
            gc.selection == Selection::kSelfPruning && gc.hops >= 1;
        if (!honorable) return {};
        cfg.emplace();
        cfg->policy = ScalePolicy::kGenericCoverage;
        cfg->generic = gc;
    } else if (s.config.algorithm.starts_with("mutant:")) {
        return {};  // mutants diverge on purpose; the kill gate owns them
    } else {
        cfg = scale_config_for(s.config.algorithm);
        if (!cfg) return {};
    }

    // Wheel/job choice is seed-derived: over a campaign the sharding space
    // gets swept, while any single scenario stays reproducible.
    cfg->wheels = 1 + s.run_seed % 7;
    cfg->jobs = 1 + (s.run_seed >> 8) % 3;

    ScaleEngine engine(knowledge, *cfg);
    const ScaleResult got = engine.run(s.source);

    if (engine.forwarded_mask() != result.transmitted) {
        return "scale forward set diverged from the Simulator's";
    }
    if (engine.received_mask() != result.received) {
        return "scale received set diverged from the Simulator's";
    }
    if (got.forward_count != result.forward_count ||
        got.received_count != result.received_count) {
        return "scale counts diverged (forwards " + std::to_string(got.forward_count) + " vs " +
               std::to_string(result.forward_count) + ")";
    }
    if (got.completion_time != result.completion_time) {
        return "scale completion time diverged";
    }
    if (cfg->policy == ScalePolicy::kGenericCoverage &&
        got.order_digest != reference_transmission_digest(result.trace)) {
        return "scale transmission-order digest diverged from the trace fold";
    }
    return {};
}

/// The faulted scale-differential oracle (`scale_resilient`): replay a
/// churn/asymmetry (and optionally recovery) scenario through
/// ScaleEngine's faulted plane and require byte-identical results — masks,
/// counts, completion time, fault/recovery counters, final down mask and
/// the global transmission-order digest — against a dedicated resilient
/// Simulator reference.  The reference is rerun here (not reused from
/// run_once) because the engine's window-synchronous recovery demands an
/// aligned config (`nack_delay` a multiple of the delay), while run_once
/// keeps the historical `RecoveryConfig{}` default of 0.5: both machines
/// get the same aligned config, so the comparison stays exact and every
/// pinned corpus digest — computed from run_once's result — is untouched.
/// Self-skips (empty string) outside the engine's honorable subset.
std::string scale_resilient_divergence(const Scenario& s, const BroadcastAlgorithm& algo,
                                       const Graph& knowledge) {
    std::optional<ScaleConfig> cfg;
    if (s.config.algorithm == "generic") {
        const GenericConfig gc = to_generic_config(s.config);
        const bool honorable =
            (gc.timing == Timing::kStatic || gc.timing == Timing::kFirstReceipt) &&
            gc.selection == Selection::kSelfPruning && gc.hops >= 1;
        if (!honorable) return {};
        cfg.emplace();
        cfg->policy = ScalePolicy::kGenericCoverage;
        cfg->generic = gc;
    } else if (s.config.algorithm.starts_with("mutant:")) {
        return {};  // mutants diverge on purpose; the kill gate owns them
    } else {
        cfg = scale_config_for(s.config.algorithm);
        if (!cfg) return {};
    }
    cfg->wheels = 1 + s.run_seed % 7;
    cfg->jobs = 1 + (s.run_seed >> 8) % 3;

    const faults::FaultPlan plan = s.fault_plan();
    faults::RecoveryConfig recovery;
    recovery.enabled = s.recovery;
    recovery.nack_delay = 1.0;  // window-aligned (set_recovery's contract)

    Rng rng(s.run_seed);
    const ResilientResult ref = algo.broadcast_resilient(knowledge, s.source, rng, MediumConfig{},
                                                         plan, recovery, /*trace=*/true);

    ScaleEngine engine(knowledge, *cfg);
    engine.attach_faults(&plan);
    engine.set_recovery(recovery);
    const ScaleResult got = engine.run(s.source);

    if (engine.forwarded_mask() != ref.result.transmitted) {
        return "faulted scale forward set diverged from the Simulator's";
    }
    if (engine.received_mask() != ref.result.received) {
        return "faulted scale received set diverged from the Simulator's";
    }
    if (got.forward_count != ref.result.forward_count ||
        got.received_count != ref.result.received_count) {
        return "faulted scale counts diverged (forwards " + std::to_string(got.forward_count) +
               " vs " + std::to_string(ref.result.forward_count) + ")";
    }
    if (got.completion_time != ref.result.completion_time) {
        return "faulted scale completion time diverged";
    }
    if (got.retransmit_count != ref.result.retransmit_count ||
        got.control_count != ref.result.control_count ||
        got.fault_suppressed != ref.result.fault_suppressed) {
        return "faulted scale recovery counters diverged (retransmits " +
               std::to_string(got.retransmit_count) + " vs " +
               std::to_string(ref.result.retransmit_count) + ", controls " +
               std::to_string(got.control_count) + " vs " +
               std::to_string(ref.result.control_count) + ", suppressed " +
               std::to_string(got.fault_suppressed) + " vs " +
               std::to_string(ref.result.fault_suppressed) + ")";
    }
    if (got.down != ref.result.down) {
        return "faulted scale final down mask diverged";
    }
    // Faulted runs fold the global transmission digest under every policy.
    if (got.order_digest != reference_transmission_digest(ref.result.trace)) {
        return "faulted scale transmission-order digest diverged from the trace fold";
    }
    return {};
}

/// The medium-degeneracy oracle: a kSinr medium with beta = 0 and zero
/// noise accepts every arrival, so it must replay the ideal backend's
/// run byte for byte (the backends' determinism contract: the reception
/// decision consumes no randomness and never perturbs scheduling).  Only
/// meaningful for kSinr — the uniform-power backend rejects on any
/// interference even with beta = 0.  Returns an empty string when clean.
std::string medium_degeneracy(const Scenario& s, const BroadcastAlgorithm& algo,
                              const Graph& knowledge, const Graph& actual) {
    Scenario degenerate = s;
    degenerate.sinr_beta = 0.0;
    degenerate.sinr_noise = 0.0;
    Scenario ideal = s;
    ideal.medium_backend = MediumBackend::kIdeal;
    ideal.positions.clear();
    const std::uint64_t d = result_digest(run_once(degenerate, algo, knowledge, actual));
    const std::uint64_t i = result_digest(run_once(ideal, algo, knowledge, actual));
    if (d != i) return "beta=0 zero-noise sinr run diverged from the ideal backend";
    return {};
}

/// Compact-vs-reference coverage kernel agreement on views sampled from
/// the scenario topology.  Returns an empty string on agreement.
std::string kernel_disagreement(const Scenario& s, const Graph& g) {
    PriorityKeys keys(g, s.config.priority);
    Rng rng(runner::splitmix64(s.run_seed ^ 0x6b9e11ULL));
    const std::size_t k = s.config.hops;
    const std::size_t samples = std::min<std::size_t>(g.node_count(), 6);

    std::vector<char> visited(g.node_count(), 0);
    std::vector<char> designated(g.node_count(), 0);
    for (NodeId v = 0; v < g.node_count(); ++v) {
        if (rng.chance(0.25)) {
            visited[v] = 1;
        } else if (rng.chance(0.15)) {
            designated[v] = 1;
        }
    }

    CoverageOptions combos[3];
    combos[0].strong = s.config.strong;
    combos[1].strong = !s.config.strong;
    combos[2].max_path_hops = 3;

    for (std::size_t i = 0; i < samples; ++i) {
        const NodeId v = static_cast<NodeId>(rng.index(g.node_count()));
        const View stat = make_static_view(g, v, k, keys);
        const View dyn = make_dynamic_view(g, v, k, keys, visited, designated);
        for (const View* view : {&stat, &dyn}) {
            for (const CoverageOptions& opts : combos) {
                const CoverageOutcome got = evaluate_coverage(*view, v, opts);
                const CoverageOutcome want = reference::evaluate_coverage(*view, v, opts);
                if (got.covered != want.covered || got.uncovered_u != want.uncovered_u ||
                    got.uncovered_w != want.uncovered_w) {
                    std::ostringstream out;
                    out << "node " << v << " strong=" << opts.strong
                        << " hops=" << opts.max_path_hops << ": compact covered=" << got.covered
                        << " reference covered=" << want.covered;
                    return out.str();
                }
            }
        }
    }
    return {};
}

}  // namespace

AlgorithmPool::AlgorithmPool(bool with_mutants) : registry_(make_registry()) {
    if (with_mutants) {
        for (const MutantSpec& spec : mutant_specs()) {
            mutants_.emplace_back(spec.name, spec.make());
        }
    }
}

AlgorithmPool::~AlgorithmPool() = default;

AlgorithmPool::Resolved AlgorithmPool::resolve(const AlgorithmConfig& config) const {
    Resolved r;
    if (config.algorithm == "generic") {
        r.owned = std::make_unique<GenericBroadcast>(to_generic_config(config));
        r.algorithm = r.owned.get();
        return r;
    }
    if (config.algorithm.starts_with("mutant:")) {
        const std::string name = config.algorithm.substr(7);
        for (const auto& [key, algo] : mutants_) {
            if (key == name) {
                r.algorithm = algo.get();
                return r;
            }
        }
        return r;
    }
    r.algorithm = find_algorithm(registry_, config.algorithm);
    return r;
}

bool AlgorithmPool::has_cds_guarantee(const std::string& algorithm) {
    // Gossip is explicitly probabilistic (paper Section 1).  Mutants claim
    // the guarantee — exposing the lie is the mutation-kill gate's job.
    return !algorithm.starts_with("gossip");
}

bool AlgorithmPool::delivery_robust_under_jitter(const AlgorithmConfig& config) const {
    // Neighbor-designating / hybrid schemes forward only when the sender
    // they first heard designated them; jitter can reorder arrivals so the
    // designating sender is no longer first, legitimately silencing a
    // needed relay (the paper models an error-free, uniform-delay medium).
    // Self-pruning and static-set schemes decide from their own view and
    // keep the delivery guarantee under any arrival order.
    if (config.algorithm == "generic") {
        return config.selection == Selection::kSelfPruning;
    }
    for (const RegistryEntry& entry : registry_) {
        if (entry.key == config.algorithm) {
            return entry.style != SelectionStyle::kNeighborDesignating &&
                   entry.style != SelectionStyle::kHybrid;
        }
    }
    return true;  // mutants: static self-pruning variants, timing-robust
}

std::uint64_t result_digest(const BroadcastResult& result) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t x) {
        h ^= x;
        h *= 0x100000001b3ULL;
    };
    for (const char c : result.transmitted) mix(static_cast<unsigned char>(c));
    for (const char c : result.received) mix(static_cast<unsigned char>(c) ^ 0x80u);
    mix(result.forward_count);
    mix(result.received_count);
    mix(std::bit_cast<std::uint64_t>(result.completion_time));
    mix(result.full_delivery ? 1 : 0);
    for (const TraceEvent& e : result.trace.events()) {
        mix(std::bit_cast<std::uint64_t>(e.time));
        mix((static_cast<std::uint64_t>(e.kind) << 48) | ((std::uint64_t{e.node} << 16) ^
                                                          e.other));
    }
    return h;
}

bool replay_digest(const Scenario& s, const AlgorithmPool& pool, std::uint64_t* digest) {
    const auto resolved = pool.resolve(s.config);
    if (resolved.algorithm == nullptr) return false;
    const Graph knowledge = s.knowledge_graph();
    const Graph actual = s.actual_graph();
    *digest = result_digest(run_once(s, *resolved.algorithm, knowledge, actual));
    return true;
}

CheckReport check_scenario(const Scenario& s, const AlgorithmPool& pool) {
    if (s.node_count == 0 || s.source >= s.node_count) {
        return fail("malformed", "source out of range or empty topology");
    }
    const Graph knowledge = s.knowledge_graph();
    if (!is_connected(knowledge)) {
        return fail("malformed", "knowledge graph is not connected (scenario not normalized)");
    }
    const auto resolved = pool.resolve(s.config);
    if (resolved.algorithm == nullptr) {
        return fail("resolve", "unknown algorithm '" + s.config.algorithm + "'");
    }
    const Graph actual = s.actual_graph();
    const BroadcastAlgorithm& algo = *resolved.algorithm;

    const BroadcastResult result = run_once(s, algo, knowledge, actual);
    const std::uint64_t digest = result_digest(result);

    // Determinism: the same scenario must reproduce bit-identically.
    {
        const BroadcastResult again = run_once(s, algo, knowledge, actual);
        if (result_digest(again) != digest) {
            return fail("determinism", "two runs of the same seed diverged", digest);
        }
    }

    // Mask-level sanity holds under every fault model.
    for (NodeId v = 0; v < knowledge.node_count(); ++v) {
        if (result.transmitted[v] && !result.received[v]) {
            return fail("sanity", "node " + std::to_string(v) + " transmitted but not received",
                        digest);
        }
        if (result.received[v] && v != s.source && !result.transmitted[v]) {
            bool has_sender = false;
            for (NodeId u : actual.neighbors(v)) {
                // Recovery repairs (resend) put real packets on the air
                // without marking the sender as a forward node.
                if (result.transmitted[u] ||
                    (!result.retransmitted.empty() && result.retransmitted[u])) {
                    has_sender = true;
                    break;
                }
            }
            if (!has_sender) {
                return fail("sanity",
                            "node " + std::to_string(v) + " received without a transmitting "
                            "neighbor in the actual topology",
                            digest);
            }
        }
    }

    // Trace invariants (stale-view runs produce no trace; crash
    // suppression makes I-level accounting inapplicable under churn).
    if (s.lost_edges.empty() && !s.has_faults()) {
        const InvariantReport report = check_invariants(knowledge, s.source, result);
        if (!report.ok) return fail("invariants", report.describe(), digest);
    }

    // Faulted / recovery runs: crash isolation + outcome classification.
    if (s.has_faults() || s.recovery) {
        const std::string violation = recovery_violation(s, knowledge, result);
        if (!violation.empty()) return fail("recovery", violation, digest);
    }

    // Continuous traffic: every session of the multi-session workload is
    // eventually delivered-or-classified under the same fault plan.
    if (s.has_traffic()) {
        const std::string violation = traffic_violation(s, knowledge);
        if (!violation.empty()) return fail("traffic", violation, digest);
    }

    // Theorems 1 & 2: delivery and CDS under the fault-free preconditions.
    const bool expect_delivery =
        AlgorithmPool::has_cds_guarantee(s.config.algorithm) && s.loss == 0.0 &&
        s.lost_edges.empty() && !s.has_faults() &&
        (s.jitter == 0.0 || pool.delivery_robust_under_jitter(s.config)) &&
        // A non-degenerate physical layer legitimately silences links: a
        // uniform-power medium statically prunes them, and a kSinr medium
        // with beta > 0 rejects interfered/noisy arrivals.  Degenerate
        // kSinr (beta = 0) accepts everything and keeps the guarantee.
        (!s.has_medium() ||
         (s.medium_backend == MediumBackend::kSinr && s.sinr_beta == 0.0));
    if (expect_delivery) {
        if (!result.full_delivery) {
            std::size_t missing = 0;
            NodeId witness = kInvalidNode;
            for (NodeId v = 0; v < knowledge.node_count(); ++v) {
                if (!result.received[v]) {
                    ++missing;
                    if (witness == kInvalidNode) witness = v;
                }
            }
            return fail("delivery",
                        std::to_string(missing) + " nodes unreached (first: node " +
                            std::to_string(witness) + ")",
                        digest);
        }
        if (s.jitter == 0.0) {
            const BroadcastVerdict verdict = check_broadcast(knowledge, s.source, result);
            if (!verdict.ok()) {
                return fail("cds", verdict.cds.describe() +
                                       (verdict.source_transmitted ? "" : " (source silent)"),
                            digest);
            }
        }
    }

    // Scale differential: the windowed engine must reproduce the serial
    // result byte-for-byte.  Only meaningful on the engine's honorable
    // medium (no loss/jitter, no stale views, ideal backend).  Fault-free
    // scenarios reuse `result` (it came from plain broadcast_traced with a
    // default medium); churn/recovery scenarios go through the faulted
    // plane against a dedicated resilient reference.
    if (s.scale_check && s.loss == 0.0 && s.jitter == 0.0 && s.lost_edges.empty() &&
        !s.has_medium()) {
        if (s.has_faults() || s.recovery) {
            const std::string violation = scale_resilient_divergence(s, algo, knowledge);
            if (!violation.empty()) return fail("scale_resilient", violation, digest);
        } else {
            const std::string violation = scale_divergence(s, knowledge, result);
            if (!violation.empty()) return fail("scale", violation, digest);
        }
    }

    // Physical-layer degeneracy: a beta = 0 zero-noise kSinr run must
    // replay the ideal backend byte for byte.
    if (s.medium_backend == MediumBackend::kSinr) {
        const std::string violation = medium_degeneracy(s, algo, knowledge, actual);
        if (!violation.empty()) return fail("medium", violation, digest);
    }

    // Compact-vs-reference kernel agreement on sampled views.
    if (knowledge.node_count() <= 40) {
        const std::string mismatch = kernel_disagreement(s, knowledge);
        if (!mismatch.empty()) return fail("kernels", mismatch, digest);
    }

    CheckReport ok;
    ok.digest = digest;
    return ok;
}

}  // namespace adhoc::fuzz
