/// \file oracles.hpp
/// \brief The fuzzer's correctness oracles and the algorithm pool that
/// resolves a scenario's algorithm-under-test.
///
/// One scenario check runs the configured algorithm on the scenario
/// topology and cross-examines the outcome against every oracle whose
/// preconditions the scenario meets:
///
///  - `delivery`     — full delivery on the (connected) knowledge graph;
///                     requires a deterministic-guarantee algorithm, no
///                     loss and no mobility burst (Theorem 1).
///  - `cds`          — transmitted set is a connected dominating set;
///                     requires the delivery preconditions and no jitter
///                     (Theorem 2).
///  - `invariants`   — trace invariants I1-I5 (always, except stale-view
///                     runs, which produce no trace).
///  - `sanity`       — mask-level wellformedness that holds under every
///                     fault model: transmitters received (or are the
///                     source), receivers have a transmitting neighbor in
///                     the actual topology.
///  - `determinism`  — running the scenario twice produces bit-identical
///                     results (the jobs-invariance contract in the small).
///  - `kernels`      — compact-view coverage kernels agree with the
///                     reference:: implementations on views sampled from
///                     the scenario topology.
///  - `recovery`     — faulted runs (churn/asymmetry and/or the NACK
///                     layer): the run terminated (implicit), no event
///                     ever touched a node inside its crash interval, and
///                     the delivered/degraded/partitioned classification
///                     is self-consistent.
///  - `traffic`      — scenarios with a continuous-traffic workload
///                     (`traffic_sessions > 0`): every session of the
///                     multi-session run is eventually classified into
///                     exactly one outcome class, the classification is
///                     self-consistent, duplicate caches stay under their
///                     ceiling, the run reproduces bit-identically, and
///                     fault-free lossless runs deliver every session.
///  - `scale`        — scenarios with `scale_check`: the windowed
///                     ScaleEngine replays the broadcast byte-identically
///                     to the Simulator (forward/received sets, counts,
///                     completion time, transmission-order digest) at a
///                     seed-derived (wheels, jobs) point.  Self-skips
///                     outside the engine's honorable subset.
///  - `scale_resilient` — `scale_check` composed with churn/asymmetry
///                     and/or the NACK layer: the engine's faulted plane
///                     (calendar fault buckets, counter-based loss draws,
///                     window-synchronous recovery) must match a dedicated
///                     resilient Simulator reference byte for byte,
///                     including retransmit/control/suppression counters
///                     and the final down mask.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/registry.hpp"
#include "fuzz/scenario.hpp"

namespace adhoc::fuzz {

/// Resolves scenario algorithm names to BroadcastAlgorithm instances.
/// Owns the registry and (when enabled) the mutant catalog, so resolved
/// pointers stay valid for the pool's lifetime; "generic" configurations
/// are materialized per call.
class AlgorithmPool {
  public:
    /// \param with_mutants  also resolve "mutant:<name>" (mutation gate).
    explicit AlgorithmPool(bool with_mutants = false);
    ~AlgorithmPool();
    AlgorithmPool(const AlgorithmPool&) = delete;
    AlgorithmPool& operator=(const AlgorithmPool&) = delete;

    /// A resolved algorithm; `owned` keeps per-call instances alive.
    struct Resolved {
        const BroadcastAlgorithm* algorithm = nullptr;
        std::unique_ptr<BroadcastAlgorithm> owned;
    };

    /// Returns nullptr in `.algorithm` for unknown names.
    [[nodiscard]] Resolved resolve(const AlgorithmConfig& config) const;

    /// True when the algorithm claims full delivery + CDS on connected
    /// graphs under a fault-free medium (every algorithm but gossip).
    /// Mutants claim it too — the mutation gate exists to catch the lie.
    [[nodiscard]] static bool has_cds_guarantee(const std::string& algorithm);

    /// True when the delivery guarantee survives arrival reordering.
    /// Neighbor-designating / hybrid schemes relay only when the *first*
    /// heard sender designated them, so jitter can legitimately silence a
    /// needed relay; their delivery oracle applies on jitter-free media only.
    [[nodiscard]] bool delivery_robust_under_jitter(const AlgorithmConfig& config) const;

  private:
    std::vector<RegistryEntry> registry_;
    std::vector<std::pair<std::string, std::unique_ptr<BroadcastAlgorithm>>> mutants_;
};

/// Verdict of one scenario check.
struct CheckReport {
    bool ok = true;
    std::string oracle;  ///< first failing oracle id ("" when ok)
    std::string detail;  ///< human-readable diagnostic
    std::uint64_t digest = 0;  ///< run digest (valid also when ok)
};

/// Digest of one broadcast outcome: FNV-1a over the transmitted/received
/// masks, counters, completion time bits and the full trace.  Two runs are
/// "bit-identical" iff their digests match.
[[nodiscard]] std::uint64_t result_digest(const BroadcastResult& result);

/// Runs the scenario once (no oracles) and returns the digest — the
/// replay primitive.  Returns false when the algorithm is unknown.
[[nodiscard]] bool replay_digest(const Scenario& s, const AlgorithmPool& pool,
                                 std::uint64_t* digest);

/// Runs every applicable oracle; stops at the first failure.
[[nodiscard]] CheckReport check_scenario(const Scenario& s, const AlgorithmPool& pool);

}  // namespace adhoc::fuzz
