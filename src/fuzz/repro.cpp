#include "fuzz/repro.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <map>
#include <memory>
#include <sstream>
#include <variant>
#include <vector>

#include "runner/json_sink.hpp"  // json_escape

namespace adhoc::fuzz {
namespace {

// ---- Minimal JSON reader ---------------------------------------------
//
// Restricted to what the repro schema needs (objects, arrays, strings,
// finite numbers, booleans); kept private to this translation unit.  The
// repo deliberately has no third-party JSON dependency.

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
    std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> v;
};

class JsonParser {
  public:
    JsonParser(const std::string& text, std::string* error) : text_(text), error_(error) {}

    std::optional<JsonValue> parse() {
        auto value = parse_value();
        if (!value) return std::nullopt;
        skip_ws();
        if (pos_ != text_.size()) {
            set_error("trailing characters after document");
            return std::nullopt;
        }
        return value;
    }

  private:
    void set_error(const std::string& what) {
        if (error_ != nullptr && error_->empty()) {
            *error_ = what + " (offset " + std::to_string(pos_) + ")";
        }
    }

    void skip_ws() {
        while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool consume(char c) {
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::optional<JsonValue> parse_value() {
        skip_ws();
        if (pos_ >= text_.size()) {
            set_error("unexpected end of input");
            return std::nullopt;
        }
        const char c = text_[pos_];
        if (c == '{') return parse_object();
        if (c == '[') return parse_array();
        if (c == '"') {
            auto s = parse_string();
            if (!s) return std::nullopt;
            return JsonValue{std::move(*s)};
        }
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            return JsonValue{true};
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            return JsonValue{false};
        }
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            return JsonValue{nullptr};
        }
        return parse_number();
    }

    std::optional<std::string> parse_string() {
        if (!consume('"')) {
            set_error("expected string");
            return std::nullopt;
        }
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c == '\\') {
                if (pos_ >= text_.size()) break;
                const char esc = text_[pos_++];
                switch (esc) {
                    case '"': out.push_back('"'); break;
                    case '\\': out.push_back('\\'); break;
                    case '/': out.push_back('/'); break;
                    case 'n': out.push_back('\n'); break;
                    case 't': out.push_back('\t'); break;
                    case 'r': out.push_back('\r'); break;
                    case 'b': out.push_back('\b'); break;
                    case 'f': out.push_back('\f'); break;
                    default:
                        set_error("unsupported escape");
                        return std::nullopt;
                }
            } else {
                out.push_back(c);
            }
        }
        set_error("unterminated string");
        return std::nullopt;
    }

    std::optional<JsonValue> parse_number() {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
                text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E')) {
            ++pos_;
        }
        double value = 0.0;
        const auto [end, ec] = std::from_chars(text_.data() + start, text_.data() + pos_, value);
        if (ec != std::errc{} || end != text_.data() + pos_ || start == pos_) {
            set_error("malformed number");
            return std::nullopt;
        }
        return JsonValue{value};
    }

    std::optional<JsonValue> parse_array() {
        consume('[');
        JsonArray out;
        skip_ws();
        if (consume(']')) return JsonValue{std::move(out)};
        while (true) {
            auto value = parse_value();
            if (!value) return std::nullopt;
            out.push_back(std::move(*value));
            if (consume(',')) continue;
            if (consume(']')) return JsonValue{std::move(out)};
            set_error("expected ',' or ']'");
            return std::nullopt;
        }
    }

    std::optional<JsonValue> parse_object() {
        consume('{');
        JsonObject out;
        skip_ws();
        if (consume('}')) return JsonValue{std::move(out)};
        while (true) {
            skip_ws();
            auto key = parse_string();
            if (!key) return std::nullopt;
            if (!consume(':')) {
                set_error("expected ':'");
                return std::nullopt;
            }
            auto value = parse_value();
            if (!value) return std::nullopt;
            out.emplace(std::move(*key), std::move(*value));
            if (consume(',')) continue;
            if (consume('}')) return JsonValue{std::move(out)};
            set_error("expected ',' or '}'");
            return std::nullopt;
        }
    }

    const std::string& text_;
    std::string* error_;
    std::size_t pos_ = 0;
};

// ---- Field accessors --------------------------------------------------

const JsonValue* find(const JsonObject& obj, const std::string& key) {
    const auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
}

bool get_string(const JsonObject& obj, const std::string& key, std::string* out,
                std::string* error) {
    const JsonValue* v = find(obj, key);
    if (v == nullptr || !std::holds_alternative<std::string>(v->v)) {
        if (error != nullptr && error->empty()) *error = "missing string field '" + key + "'";
        return false;
    }
    *out = std::get<std::string>(v->v);
    return true;
}

bool get_number(const JsonObject& obj, const std::string& key, double* out, std::string* error) {
    const JsonValue* v = find(obj, key);
    if (v == nullptr || !std::holds_alternative<double>(v->v)) {
        if (error != nullptr && error->empty()) *error = "missing numeric field '" + key + "'";
        return false;
    }
    *out = std::get<double>(v->v);
    return true;
}

bool get_bool(const JsonObject& obj, const std::string& key, bool* out, std::string* error) {
    const JsonValue* v = find(obj, key);
    if (v == nullptr || !std::holds_alternative<bool>(v->v)) {
        if (error != nullptr && error->empty()) *error = "missing boolean field '" + key + "'";
        return false;
    }
    *out = std::get<bool>(v->v);
    return true;
}

bool get_u64_string(const JsonObject& obj, const std::string& key, int base, std::uint64_t* out,
                    std::string* error) {
    std::string s;
    if (!get_string(obj, key, &s, error)) return false;
    std::string_view digits = s;
    if (base == 16 && digits.starts_with("0x")) digits.remove_prefix(2);
    const auto [end, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), *out, base);
    if (ec != std::errc{} || end != digits.data() + digits.size() || digits.empty()) {
        if (error != nullptr && error->empty()) *error = "malformed integer in '" + key + "'";
        return false;
    }
    return true;
}

bool get_edges(const JsonObject& obj, const std::string& key, std::vector<Edge>* out,
               std::string* error) {
    const JsonValue* v = find(obj, key);
    if (v == nullptr || !std::holds_alternative<JsonArray>(v->v)) {
        if (error != nullptr && error->empty()) *error = "missing edge array '" + key + "'";
        return false;
    }
    out->clear();
    for (const JsonValue& item : std::get<JsonArray>(v->v)) {
        if (!std::holds_alternative<JsonArray>(item.v)) return false;
        const JsonArray& pair = std::get<JsonArray>(item.v);
        if (pair.size() != 2 || !std::holds_alternative<double>(pair[0].v) ||
            !std::holds_alternative<double>(pair[1].v)) {
            if (error != nullptr && error->empty()) *error = "malformed edge in '" + key + "'";
            return false;
        }
        out->push_back(Edge{static_cast<NodeId>(std::get<double>(pair[0].v)),
                            static_cast<NodeId>(std::get<double>(pair[1].v))});
    }
    return true;
}

// ---- Enum spellings (reusing the library's to_string forms) -----------

template <typename Enum, std::size_t N>
bool parse_enum(const std::string& text, const Enum (&values)[N], Enum* out) {
    for (const Enum value : values) {
        if (to_string(value) == text) {
            *out = value;
            return true;
        }
    }
    return false;
}

constexpr Timing kTimings[] = {Timing::kStatic, Timing::kFirstReceipt, Timing::kRandomBackoff,
                               Timing::kDegreeBackoff};
constexpr Selection kSelections[] = {Selection::kSelfPruning, Selection::kNeighborDesignating,
                                     Selection::kHybridMaxDegree, Selection::kHybridMinId};
constexpr PriorityScheme kPriorities[] = {PriorityScheme::kId, PriorityScheme::kDegree,
                                          PriorityScheme::kNcr};

void write_edges(std::ostream& out, const std::vector<Edge>& edges) {
    out << '[';
    for (std::size_t i = 0; i < edges.size(); ++i) {
        if (i != 0) out << ',';
        out << '[' << edges[i].a << ',' << edges[i].b << ']';
    }
    out << ']';
}

}  // namespace

std::string to_repro_json(const Repro& repro) {
    const Scenario& s = repro.scenario;
    std::ostringstream out;
    out << std::setprecision(17);  // doubles must round-trip exactly
    out << "{\n";
    out << "  \"schema\": \"adhoc-repro-v1\",\n";
    out << "  \"family\": \"" << runner::json_escape(s.family) << "\",\n";
    out << "  \"run_seed\": \"" << s.run_seed << "\",\n";
    out << "  \"node_count\": " << s.node_count << ",\n";
    out << "  \"edges\": ";
    write_edges(out, s.edges);
    out << ",\n";
    out << "  \"source\": " << s.source << ",\n";
    out << "  \"algorithm\": \"" << runner::json_escape(s.config.algorithm) << "\",\n";
    out << "  \"timing\": \"" << to_string(s.config.timing) << "\",\n";
    out << "  \"selection\": \"" << to_string(s.config.selection) << "\",\n";
    out << "  \"hops\": " << s.config.hops << ",\n";
    out << "  \"priority\": \"" << to_string(s.config.priority) << "\",\n";
    out << "  \"strong\": " << (s.config.strong ? "true" : "false") << ",\n";
    out << "  \"strict_designation\": " << (s.config.strict_designation ? "true" : "false")
        << ",\n";
    out << "  \"history\": " << s.config.history << ",\n";
    out << "  \"loss\": " << s.loss << ",\n";
    out << "  \"jitter\": " << s.jitter << ",\n";
    out << "  \"lost_edges\": ";
    write_edges(out, s.lost_edges);
    out << ",\n";
    // Fault fields are optional so pre-fault corpus files stay byte-stable.
    if (!s.crashes.empty()) {
        out << "  \"crashes\": [";
        for (std::size_t i = 0; i < s.crashes.size(); ++i) {
            if (i != 0) out << ',';
            out << '[' << s.crashes[i].node << ',' << s.crashes[i].at << ','
                << s.crashes[i].recover_at << ']';
        }
        out << "],\n";
    }
    if (!s.asym.empty()) {
        out << "  \"asym\": [";
        for (std::size_t i = 0; i < s.asym.size(); ++i) {
            if (i != 0) out << ',';
            out << '[' << s.asym[i].link.a << ',' << s.asym[i].link.b << ','
                << s.asym[i].loss_ab << ',' << s.asym[i].loss_ba << ']';
        }
        out << "],\n";
    }
    if (s.recovery) {
        out << "  \"recovery\": true,\n";
    }
    if (s.traffic_sessions > 0) {
        out << "  \"traffic\": [" << s.traffic_sessions << ',' << s.traffic_rate << ','
            << (s.traffic_bursty ? "true" : "false") << "],\n";
    }
    if (s.scale_check) {
        out << "  \"scale_check\": true,\n";
    }
    if (s.medium_backend != MediumBackend::kIdeal) {
        out << "  \"medium\": [\"" << to_string(s.medium_backend) << "\"," << s.sinr_alpha << ','
            << s.sinr_beta << ',' << s.sinr_noise << ',' << s.interference_range << ','
            << s.vulnerability_window << "],\n";
        out << "  \"positions\": [";
        for (std::size_t i = 0; i < s.positions.size(); ++i) {
            if (i != 0) out << ',';
            out << '[' << s.positions[i].x << ',' << s.positions[i].y << ']';
        }
        out << "],\n";
    }
    out << "  \"oracle\": \"" << runner::json_escape(repro.oracle) << "\",\n";
    if (repro.digest.has_value()) {
        std::ostringstream hex;
        hex << std::hex << *repro.digest;
        out << "  \"digest\": \"0x" << hex.str() << "\",\n";
    }
    out << "  \"note\": \"" << runner::json_escape(repro.note) << "\"\n";
    out << "}\n";
    return out.str();
}

std::optional<Repro> parse_repro(const std::string& text, std::string* error) {
    JsonParser parser(text, error);
    auto doc = parser.parse();
    if (!doc) return std::nullopt;
    if (!std::holds_alternative<JsonObject>(doc->v)) {
        if (error != nullptr && error->empty()) *error = "top-level value is not an object";
        return std::nullopt;
    }
    const JsonObject& obj = std::get<JsonObject>(doc->v);

    std::string schema;
    if (!get_string(obj, "schema", &schema, error)) return std::nullopt;
    if (schema != "adhoc-repro-v1") {
        if (error != nullptr && error->empty()) *error = "unknown schema '" + schema + "'";
        return std::nullopt;
    }

    Repro repro;
    Scenario& s = repro.scenario;
    double number = 0.0;
    std::string text_field;

    if (!get_string(obj, "family", &s.family, error)) return std::nullopt;
    if (!get_u64_string(obj, "run_seed", 10, &s.run_seed, error)) return std::nullopt;
    if (!get_number(obj, "node_count", &number, error)) return std::nullopt;
    s.node_count = static_cast<std::size_t>(number);
    if (!get_edges(obj, "edges", &s.edges, error)) return std::nullopt;
    if (!get_number(obj, "source", &number, error)) return std::nullopt;
    s.source = static_cast<NodeId>(number);
    if (!get_string(obj, "algorithm", &s.config.algorithm, error)) return std::nullopt;

    if (!get_string(obj, "timing", &text_field, error)) return std::nullopt;
    if (!parse_enum(text_field, kTimings, &s.config.timing)) {
        if (error != nullptr && error->empty()) *error = "unknown timing '" + text_field + "'";
        return std::nullopt;
    }
    if (!get_string(obj, "selection", &text_field, error)) return std::nullopt;
    if (!parse_enum(text_field, kSelections, &s.config.selection)) {
        if (error != nullptr && error->empty()) *error = "unknown selection '" + text_field + "'";
        return std::nullopt;
    }
    if (!get_number(obj, "hops", &number, error)) return std::nullopt;
    s.config.hops = static_cast<std::size_t>(number);
    if (!get_string(obj, "priority", &text_field, error)) return std::nullopt;
    if (!parse_enum(text_field, kPriorities, &s.config.priority)) {
        if (error != nullptr && error->empty()) *error = "unknown priority '" + text_field + "'";
        return std::nullopt;
    }
    if (!get_bool(obj, "strong", &s.config.strong, error)) return std::nullopt;
    if (!get_bool(obj, "strict_designation", &s.config.strict_designation, error)) {
        return std::nullopt;
    }
    if (!get_number(obj, "history", &number, error)) return std::nullopt;
    s.config.history = static_cast<std::size_t>(number);
    if (!get_number(obj, "loss", &s.loss, error)) return std::nullopt;
    if (!get_number(obj, "jitter", &s.jitter, error)) return std::nullopt;
    if (!get_edges(obj, "lost_edges", &s.lost_edges, error)) return std::nullopt;
    if (const JsonValue* v = find(obj, "crashes"); v != nullptr) {
        if (!std::holds_alternative<JsonArray>(v->v)) {
            if (error != nullptr && error->empty()) *error = "malformed 'crashes'";
            return std::nullopt;
        }
        for (const JsonValue& item : std::get<JsonArray>(v->v)) {
            const JsonArray* triple =
                std::holds_alternative<JsonArray>(item.v) ? &std::get<JsonArray>(item.v) : nullptr;
            if (triple == nullptr || triple->size() != 3 ||
                !std::holds_alternative<double>((*triple)[0].v) ||
                !std::holds_alternative<double>((*triple)[1].v) ||
                !std::holds_alternative<double>((*triple)[2].v)) {
                if (error != nullptr && error->empty()) *error = "malformed entry in 'crashes'";
                return std::nullopt;
            }
            s.crashes.push_back(CrashFault{static_cast<NodeId>(std::get<double>((*triple)[0].v)),
                                           std::get<double>((*triple)[1].v),
                                           std::get<double>((*triple)[2].v)});
        }
    }
    if (const JsonValue* v = find(obj, "asym"); v != nullptr) {
        if (!std::holds_alternative<JsonArray>(v->v)) {
            if (error != nullptr && error->empty()) *error = "malformed 'asym'";
            return std::nullopt;
        }
        for (const JsonValue& item : std::get<JsonArray>(v->v)) {
            const JsonArray* quad =
                std::holds_alternative<JsonArray>(item.v) ? &std::get<JsonArray>(item.v) : nullptr;
            if (quad == nullptr || quad->size() != 4 ||
                !std::holds_alternative<double>((*quad)[0].v) ||
                !std::holds_alternative<double>((*quad)[1].v) ||
                !std::holds_alternative<double>((*quad)[2].v) ||
                !std::holds_alternative<double>((*quad)[3].v)) {
                if (error != nullptr && error->empty()) *error = "malformed entry in 'asym'";
                return std::nullopt;
            }
            s.asym.push_back(AsymLoss{Edge{static_cast<NodeId>(std::get<double>((*quad)[0].v)),
                                           static_cast<NodeId>(std::get<double>((*quad)[1].v))},
                                      std::get<double>((*quad)[2].v),
                                      std::get<double>((*quad)[3].v)});
        }
    }
    if (find(obj, "recovery") != nullptr) {
        if (!get_bool(obj, "recovery", &s.recovery, error)) return std::nullopt;
    }
    if (const JsonValue* v = find(obj, "traffic"); v != nullptr) {
        const JsonArray* triple =
            std::holds_alternative<JsonArray>(v->v) ? &std::get<JsonArray>(v->v) : nullptr;
        if (triple == nullptr || triple->size() != 3 ||
            !std::holds_alternative<double>((*triple)[0].v) ||
            !std::holds_alternative<double>((*triple)[1].v) ||
            !std::holds_alternative<bool>((*triple)[2].v)) {
            if (error != nullptr && error->empty()) *error = "malformed 'traffic'";
            return std::nullopt;
        }
        s.traffic_sessions = static_cast<std::size_t>(std::get<double>((*triple)[0].v));
        s.traffic_rate = std::get<double>((*triple)[1].v);
        s.traffic_bursty = std::get<bool>((*triple)[2].v);
    }
    if (find(obj, "scale_check") != nullptr) {
        if (!get_bool(obj, "scale_check", &s.scale_check, error)) return std::nullopt;
    }
    if (const JsonValue* v = find(obj, "medium"); v != nullptr) {
        const JsonArray* arr =
            std::holds_alternative<JsonArray>(v->v) ? &std::get<JsonArray>(v->v) : nullptr;
        bool shaped = arr != nullptr && arr->size() == 6 &&
                      std::holds_alternative<std::string>((*arr)[0].v);
        for (std::size_t i = 1; shaped && i < 6; ++i) {
            shaped = std::holds_alternative<double>((*arr)[i].v);
        }
        if (!shaped) {
            if (error != nullptr && error->empty()) *error = "malformed 'medium'";
            return std::nullopt;
        }
        const auto backend = medium_backend_from_string(std::get<std::string>((*arr)[0].v));
        if (!backend || *backend == MediumBackend::kIdeal) {
            // "ideal" is canonical absence: the writer never emits it.
            if (error != nullptr && error->empty()) {
                *error = "unknown medium backend '" + std::get<std::string>((*arr)[0].v) + "'";
            }
            return std::nullopt;
        }
        s.medium_backend = *backend;
        s.sinr_alpha = std::get<double>((*arr)[1].v);
        s.sinr_beta = std::get<double>((*arr)[2].v);
        s.sinr_noise = std::get<double>((*arr)[3].v);
        s.interference_range = std::get<double>((*arr)[4].v);
        s.vulnerability_window = std::get<double>((*arr)[5].v);
        const JsonValue* pv = find(obj, "positions");
        if (pv == nullptr || !std::holds_alternative<JsonArray>(pv->v)) {
            if (error != nullptr && error->empty()) *error = "'medium' requires 'positions'";
            return std::nullopt;
        }
        for (const JsonValue& item : std::get<JsonArray>(pv->v)) {
            const JsonArray* pair =
                std::holds_alternative<JsonArray>(item.v) ? &std::get<JsonArray>(item.v) : nullptr;
            if (pair == nullptr || pair->size() != 2 ||
                !std::holds_alternative<double>((*pair)[0].v) ||
                !std::holds_alternative<double>((*pair)[1].v)) {
                if (error != nullptr && error->empty()) *error = "malformed entry in 'positions'";
                return std::nullopt;
            }
            s.positions.push_back(
                Point2D{std::get<double>((*pair)[0].v), std::get<double>((*pair)[1].v)});
        }
    } else if (find(obj, "positions") != nullptr) {
        if (error != nullptr && error->empty()) *error = "'positions' requires a 'medium' entry";
        return std::nullopt;
    }
    if (!get_string(obj, "oracle", &repro.oracle, error)) return std::nullopt;
    if (find(obj, "digest") != nullptr) {
        std::uint64_t digest = 0;
        if (!get_u64_string(obj, "digest", 16, &digest, error)) return std::nullopt;
        repro.digest = digest;
    }
    if (find(obj, "note") != nullptr) {
        if (!get_string(obj, "note", &repro.note, error)) return std::nullopt;
    }

    // Structural validation: ids in range, no self loops.
    if (s.node_count == 0 || s.source >= s.node_count) {
        if (error != nullptr && error->empty()) *error = "source out of range";
        return std::nullopt;
    }
    for (const std::vector<Edge>* edges : {&s.edges, &s.lost_edges}) {
        for (const Edge& e : *edges) {
            if (e.a >= s.node_count || e.b >= s.node_count || e.a == e.b) {
                if (error != nullptr && error->empty()) *error = "edge endpoint out of range";
                return std::nullopt;
            }
        }
    }
    for (const CrashFault& c : s.crashes) {
        if (c.node >= s.node_count) {
            if (error != nullptr && error->empty()) *error = "crash node out of range";
            return std::nullopt;
        }
    }
    for (const AsymLoss& a : s.asym) {
        if (a.link.a >= s.node_count || a.link.b >= s.node_count || a.link.a == a.link.b) {
            if (error != nullptr && error->empty()) *error = "asym link out of range";
            return std::nullopt;
        }
    }
    if (s.traffic_sessions > 0 && !(s.traffic_rate > 0.0)) {
        if (error != nullptr && error->empty()) *error = "traffic rate must be positive";
        return std::nullopt;
    }
    if (s.has_medium()) {
        // Reject anything Medium's own validation (under run_once's
        // propagation_delay of 1.0) would throw on — replay must never
        // die on an exception from a crafted corpus file.
        const auto bad = [](double x) { return !std::isfinite(x); };
        if (s.positions.size() != s.node_count) {
            if (error != nullptr && error->empty()) {
                *error = "'positions' must hold one point per node";
            }
            return std::nullopt;
        }
        if (bad(s.sinr_alpha) || s.sinr_alpha < 1.0 || bad(s.sinr_beta) || s.sinr_beta < 0.0 ||
            bad(s.sinr_noise) || s.sinr_noise < 0.0 || bad(s.interference_range) ||
            s.interference_range <= 0.0 || bad(s.vulnerability_window) ||
            s.vulnerability_window < 0.0 || s.vulnerability_window >= 1.0) {
            if (error != nullptr && error->empty()) *error = "medium parameters out of range";
            return std::nullopt;
        }
        for (const Point2D& p : s.positions) {
            if (bad(p.x) || bad(p.y)) {
                if (error != nullptr && error->empty()) *error = "non-finite position";
                return std::nullopt;
            }
        }
        if (!s.lost_edges.empty()) {
            if (error != nullptr && error->empty()) {
                *error = "'medium' is exclusive with 'lost_edges'";
            }
            return std::nullopt;
        }
    }
    return repro;
}

std::optional<Repro> load_repro(const std::string& path, std::string* error) {
    std::ifstream in(path);
    if (!in) {
        if (error != nullptr) *error = "cannot open " + path;
        return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse_repro(buffer.str(), error);
}

bool save_repro(const std::string& path, const Repro& repro) {
    std::ofstream out(path);
    if (!out) return false;
    out << to_repro_json(repro);
    return static_cast<bool>(out);
}

}  // namespace adhoc::fuzz
