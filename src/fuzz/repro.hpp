/// \file repro.hpp
/// \brief Self-contained `.repro` files: JSON serialization of a Scenario
/// plus the expected outcome, replayable bit-identically by
/// `fuzz_broadcast --replay` and the corpus regression test.
///
/// Schema `adhoc-repro-v1` (all fields explicit — no generator parameters,
/// so a repro is immune to generator changes):
///
/// {
///   "schema": "adhoc-repro-v1",
///   "family": "structured",
///   "run_seed": "12345",              // decimal string (exact uint64)
///   "node_count": 5,
///   "edges": [[0,1],[1,2]],
///   "source": 0,
///   "algorithm": "generic",           // registry key | generic | mutant:<name>
///   "timing": "FR", "selection": "SP", "hops": 2, "priority": "ID",
///   "strong": false, "strict_designation": true, "history": 2,
///   "loss": 0.0, "jitter": 0.0,
///   "lost_edges": [],
///   "oracle": "pass",                 // or the failing oracle of a finding
///   "digest": "0x1a2b3c...",          // expected run digest (hex; optional)
///   "note": "free-form provenance"
/// }

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "fuzz/scenario.hpp"

namespace adhoc::fuzz {

/// A scenario plus its expected behavior, as stored in a `.repro` file.
struct Repro {
    Scenario scenario;
    std::string oracle = "pass";  ///< "pass", or the oracle a finding trips
    std::optional<std::uint64_t> digest;  ///< expected run digest
    std::string note;
};

/// Serializes to the adhoc-repro-v1 JSON document (trailing newline).
[[nodiscard]] std::string to_repro_json(const Repro& repro);

/// Parses a repro document; returns nullopt (with a message in `error`
/// when non-null) on malformed input, unknown schema or unknown enum
/// spellings.
[[nodiscard]] std::optional<Repro> parse_repro(const std::string& text,
                                               std::string* error = nullptr);

/// File helpers.  `load_repro` reads and parses; `save_repro` writes the
/// serialized document, returning false on I/O failure.
[[nodiscard]] std::optional<Repro> load_repro(const std::string& path,
                                              std::string* error = nullptr);
[[nodiscard]] bool save_repro(const std::string& path, const Repro& repro);

}  // namespace adhoc::fuzz
