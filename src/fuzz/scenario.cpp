#include "fuzz/scenario.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <iterator>

#include "graph/traversal.hpp"
#include "graph/unit_disk.hpp"
#include "runner/seed.hpp"
#include "stats/rng.hpp"

namespace adhoc::fuzz {
namespace {

std::vector<Edge> sorted_unique(std::vector<Edge> edges) {
    for (Edge& e : edges) e = canonical(e);
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    return edges;
}

/// Structured adversarial families keyed by a small selector.  These are
/// the shapes where broadcast bugs historically hide: long dependency
/// chains (path/cycle), single dominators (star), articulation bridges
/// (barbell) and sparse meshes (grid).
std::vector<Edge> structured_edges(std::size_t selector, std::size_t n, Graph* out_graph) {
    Graph g;
    switch (selector % 5) {
        case 0: g = path_graph(n); break;
        case 1: g = cycle_graph(std::max<std::size_t>(n, 3)); break;
        case 2: g = star_graph(n); break;
        case 3: {
            const std::size_t rows = 2 + selector % 3;
            g = grid_graph(rows, std::max<std::size_t>(n / rows, 2));
            break;
        }
        default: {
            // Barbell: two cliques of size n/2 joined by a single bridge.
            const std::size_t half = std::max<std::size_t>(n / 2, 2);
            g = Graph(2 * half);
            for (NodeId a = 0; a < half; ++a) {
                for (NodeId b = a + 1; b < half; ++b) {
                    g.add_edge(a, b);
                    g.add_edge(half + a, half + b);
                }
            }
            g.add_edge(static_cast<NodeId>(half - 1), static_cast<NodeId>(half));
            break;
        }
    }
    *out_graph = g;
    return g.edges();
}

AlgorithmConfig sample_config(Rng& rng, const GenerationLimits& limits) {
    AlgorithmConfig cfg;
    // Registry keys carry their own fixed configuration; the generic
    // framework samples the full four-axis matrix.
    static const char* kRegistryKeys[] = {
        "flooding",    "gossip-0.7",  "wu-li",         "rule-k",        "span",
        "mpr",         "generic-static", "guha-khuller", "cluster-cds",  "dp",
        "tdp",         "pdp",         "ahbp",          "lenwb",         "generic-fr",
        "hybrid-maxdeg", "hybrid-minpri", "sba",        "stojmenovic",  "generic-frb",
        "generic-frbd"};
    if (limits.registry_algorithms && rng.chance(0.45)) {
        cfg.algorithm = kRegistryKeys[rng.index(std::size(kRegistryKeys))];
        return cfg;
    }
    cfg.algorithm = "generic";
    static constexpr Timing kTimings[] = {Timing::kStatic, Timing::kFirstReceipt,
                                          Timing::kRandomBackoff, Timing::kDegreeBackoff};
    static constexpr Selection kSelections[] = {
        Selection::kSelfPruning, Selection::kNeighborDesignating, Selection::kHybridMaxDegree,
        Selection::kHybridMinId};
    static constexpr PriorityScheme kPriorities[] = {PriorityScheme::kId, PriorityScheme::kDegree,
                                                     PriorityScheme::kNcr};
    static constexpr std::size_t kHops[] = {2, 3, 0};  // 0 = global information
    cfg.timing = kTimings[rng.index(std::size(kTimings))];
    cfg.selection = kSelections[rng.index(std::size(kSelections))];
    if (cfg.timing == Timing::kStatic) cfg.selection = Selection::kSelfPruning;
    cfg.hops = kHops[rng.index(std::size(kHops))];
    cfg.priority = kPriorities[rng.index(std::size(kPriorities))];
    cfg.strong = rng.chance(0.3);
    cfg.strict_designation = !rng.chance(0.3);
    cfg.history = 1 + rng.index(3);
    return cfg;
}

/// Clears the physical-layer axis back to its canonical ideal form
/// (scenario equality and fingerprints must not see stale geometry).
void drop_medium(Scenario& s) {
    s.medium_backend = MediumBackend::kIdeal;
    s.sinr_alpha = 3.0;
    s.sinr_beta = 0.0;
    s.sinr_noise = 0.0;
    s.interference_range = 0.0;
    s.vulnerability_window = 0.0;
    s.positions.clear();
}

/// True iff the medium parameters would pass Medium's validation under
/// run_once's propagation_delay of 1.0.  normalized() drops the axis on
/// failure instead of letting the Simulator throw mid-oracle.
bool medium_params_ok(const Scenario& s) {
    const auto ok = [](double x) { return std::isfinite(x); };
    return ok(s.sinr_alpha) && s.sinr_alpha >= 1.0 && ok(s.sinr_beta) && s.sinr_beta >= 0.0 &&
           ok(s.sinr_noise) && s.sinr_noise >= 0.0 && ok(s.interference_range) &&
           s.interference_range > 0.0 && ok(s.vulnerability_window) &&
           s.vulnerability_window >= 0.0 && s.vulnerability_window < 1.0;
}

}  // namespace

Graph Scenario::knowledge_graph() const { return Graph(node_count, edges); }

MediumConfig Scenario::medium_config() const {
    MediumConfig medium;
    medium.loss_probability = loss;
    medium.jitter = jitter;
    if (has_medium()) {
        medium.backend = medium_backend;
        medium.sinr.alpha = sinr_alpha;
        medium.sinr.beta = sinr_beta;
        medium.sinr.noise = sinr_noise;
        medium.sinr.vulnerability_window = vulnerability_window;
        medium.sinr.interference_range = interference_range;
        medium.positions = positions;
    }
    return medium;
}

Graph Scenario::actual_graph() const {
    Graph g = knowledge_graph();
    for (const Edge& e : lost_edges) g.remove_edge(e.a, e.b);
    return g;
}

faults::FaultPlan Scenario::fault_plan() const {
    faults::FaultPlan plan;
    for (const CrashFault& c : crashes) {
        plan.events.push_back(
            faults::FaultEvent{c.at, faults::FaultKind::kNodeCrash, c.node, Edge{}});
        if (c.recover_at >= 0.0) {
            plan.events.push_back(
                faults::FaultEvent{c.recover_at, faults::FaultKind::kNodeRecover, c.node, Edge{}});
        }
    }
    std::stable_sort(
        plan.events.begin(), plan.events.end(),
        [](const faults::FaultEvent& a, const faults::FaultEvent& b) { return a.time < b.time; });
    for (const AsymLoss& a : asym) {
        plan.asymmetry.push_back(faults::LinkAsymmetry{a.link, a.loss_ab, a.loss_ba});
    }
    plan.loss_stream_seed = runner::splitmix64(run_seed ^ 0x4e4cc0deULL);
    return plan;
}

Scenario normalized(const Scenario& s) {
    Scenario out = s;
    out.edges = sorted_unique(out.edges);
    out.lost_edges = sorted_unique(out.lost_edges);

    // Restrict to the source's component of the knowledge graph, keeping
    // relative id order (so priorities shift predictably under shrinking).
    const Graph g(out.node_count, out.edges);
    assert(out.source < g.node_count());
    const auto dist = bfs_distances(g, out.source);
    std::vector<NodeId> remap(out.node_count, kInvalidNode);
    NodeId next = 0;
    for (NodeId v = 0; v < out.node_count; ++v) {
        if (dist[v] != kUnreachable) remap[v] = next++;
    }
    auto remap_edges = [&remap](const std::vector<Edge>& edges) {
        std::vector<Edge> kept;
        for (const Edge& e : edges) {
            if (remap[e.a] != kInvalidNode && remap[e.b] != kInvalidNode) {
                kept.push_back(canonical(Edge{remap[e.a], remap[e.b]}));
            }
        }
        return kept;
    };
    out.edges = remap_edges(out.edges);
    out.lost_edges = remap_edges(out.lost_edges);
    out.source = remap[out.source];
    out.node_count = next;

    // lost_edges must refer to knowledge edges that actually exist.
    std::vector<Edge> pruned;
    for (const Edge& e : out.lost_edges) {
        if (std::binary_search(out.edges.begin(), out.edges.end(), e)) pruned.push_back(e);
    }
    out.lost_edges = std::move(pruned);

    // The stale-knowledge path and the churn path are mutually exclusive
    // (broadcast_with_stale_knowledge has no fault support); lost_edges
    // wins, matching generation which never samples both.
    if (!out.lost_edges.empty()) {
        out.crashes.clear();
        out.asym.clear();
        out.recovery = false;
        out.traffic_sessions = 0;
        out.traffic_rate = 0.0;
        out.traffic_bursty = false;
        // The stale-knowledge execution path ignores the medium backend.
        drop_medium(out);
        return out;
    }

    // Traffic canonicalization: a bounded session count and a positive
    // rate, or no traffic at all (rate/burstiness are meaningless then).
    out.traffic_sessions = std::min<std::size_t>(out.traffic_sessions, 2048);
    if (out.traffic_sessions == 0) {
        out.traffic_rate = 0.0;
        out.traffic_bursty = false;
    } else if (out.traffic_rate <= 0.0) {
        out.traffic_rate = 1.0;
    }

    // Churn canonicalization: remap to the surviving id space, one crash
    // per node (first by time wins), one asymmetry entry per link, sorted.
    std::vector<CrashFault> crashes;
    for (CrashFault c : out.crashes) {
        if (c.node >= remap.size() || remap[c.node] == kInvalidNode) continue;
        c.node = remap[c.node];
        if (c.recover_at >= 0.0 && c.recover_at < c.at) c.recover_at = c.at;
        crashes.push_back(c);
    }
    std::stable_sort(crashes.begin(), crashes.end(), [](const CrashFault& a, const CrashFault& b) {
        if (a.node != b.node) return a.node < b.node;
        return a.at < b.at;
    });
    crashes.erase(std::unique(crashes.begin(), crashes.end(),
                              [](const CrashFault& a, const CrashFault& b) {
                                  return a.node == b.node;
                              }),
                  crashes.end());
    out.crashes = std::move(crashes);

    std::vector<AsymLoss> asym;
    for (AsymLoss a : out.asym) {
        if (a.link.a >= remap.size() || a.link.b >= remap.size()) continue;
        if (remap[a.link.a] == kInvalidNode || remap[a.link.b] == kInvalidNode) continue;
        // The remap preserves relative id order, so canonical orientation
        // (and with it the meaning of loss_ab) is unchanged.
        a.link = canonical(Edge{remap[a.link.a], remap[a.link.b]});
        if (!std::binary_search(out.edges.begin(), out.edges.end(), a.link)) continue;
        asym.push_back(a);
    }
    std::stable_sort(asym.begin(), asym.end(), [](const AsymLoss& x, const AsymLoss& y) {
        if (x.link.a != y.link.a) return x.link.a < y.link.a;
        return x.link.b < y.link.b;
    });
    asym.erase(std::unique(asym.begin(), asym.end(),
                           [](const AsymLoss& x, const AsymLoss& y) {
                               return x.link.a == y.link.a && x.link.b == y.link.b;
                           }),
               asym.end());
    out.asym = std::move(asym);

    // Medium-axis canonicalization: geometry follows the surviving ids.
    // An axis whose parameters would fail Medium's validation or whose
    // point count does not match the pre-remap topology drops back to the
    // ideal backend instead of poisoning oracles with throws.
    if (out.medium_backend != MediumBackend::kIdeal) {
        if (!medium_params_ok(out) || s.positions.size() != remap.size()) {
            drop_medium(out);
        } else {
            std::vector<Point2D> kept;
            kept.reserve(out.node_count);
            for (NodeId v = 0; v < remap.size(); ++v) {
                if (remap[v] != kInvalidNode) kept.push_back(s.positions[v]);
            }
            out.positions = std::move(kept);
        }
    } else {
        drop_medium(out);  // ideal scenarios carry no stray geometry
    }
    return out;
}

Scenario generate_scenario(std::uint64_t base_seed, std::uint64_t index,
                           const GenerationLimits& limits) {
    // Counter-based: scenario i is a pure function of (base_seed, i).
    const std::uint64_t master =
        runner::derive_run_seed(base_seed ^ 0xf022aaf522ULL, limits.max_nodes, 0.0, index);
    Rng rng(master);

    Scenario s;
    s.run_seed = runner::splitmix64(master ^ 0x5ce4a7f1ULL);
    const std::size_t max_n = std::max<std::size_t>(limits.max_nodes, 4);
    const std::size_t n = 3 + rng.index(max_n - 2);

    Graph g;
    const std::size_t family = rng.index(4);
    if (family == 0) {
        // Paper workload: random connected unit disk graph.
        s.family = "unit-disk";
        UnitDiskParams params;
        params.node_count = std::max<std::size_t>(n, 8);
        params.average_degree = 3.5 + rng.uniform() * 4.5;
        params.max_attempts = 200;
        if (auto net = generate_network(params, rng)) {
            g = std::move(net->graph);
        } else {
            g = path_graph(params.node_count);  // infeasible regime fallback
            s.family = "unit-disk-fallback";
        }
    } else if (family == 1) {
        // G(n,p) noise around the connectivity threshold.
        s.family = "gnp";
        const double p = std::min(1.0, (1.0 + 2.0 * rng.uniform()) * 1.2 /
                                           static_cast<double>(std::max<std::size_t>(n - 1, 1)));
        g = Graph(n);
        for (NodeId a = 0; a < n; ++a) {
            for (NodeId b = a + 1; b < n; ++b) {
                if (rng.chance(p)) g.add_edge(a, b);
            }
        }
    } else if (family == 2) {
        s.family = "structured";
        structured_edges(rng.index(64), n, &g);
    } else {
        // Structured skeleton + random chords: keeps articulation points
        // while breaking symmetry.
        s.family = "structured-chords";
        structured_edges(rng.index(64), n, &g);
        const std::size_t chords = 1 + rng.index(std::max<std::size_t>(g.node_count() / 4, 1));
        for (std::size_t i = 0; i < chords; ++i) {
            const NodeId a = static_cast<NodeId>(rng.index(g.node_count()));
            const NodeId b = static_cast<NodeId>(rng.index(g.node_count()));
            if (a != b) g.add_edge(a, b);
        }
    }

    s.node_count = g.node_count();
    s.edges = g.edges();
    s.source = static_cast<NodeId>(rng.index(g.node_count()));
    s.config = sample_config(rng, limits);

    if (limits.faults) {
        if (rng.chance(0.2)) s.loss = 0.05 + 0.45 * rng.uniform();
        if (rng.chance(0.2)) s.jitter = 0.5 + 2.5 * rng.uniform();
        if (rng.chance(0.15) && !s.edges.empty()) {
            // Mobility burst: up to 20% of links vanish between the hello
            // exchange and the broadcast.
            const std::size_t burst =
                1 + rng.index(std::max<std::size_t>(s.edges.size() / 5, 1));
            for (std::size_t i = 0; i < burst; ++i) {
                s.lost_edges.push_back(s.edges[rng.index(s.edges.size())]);
            }
        }

        // Churn/asymmetry draws come strictly *after* every historical
        // draw so pre-existing scenario streams (and the pinned corpus)
        // are untouched.  Mutually exclusive with mobility bursts.
        const double ci = limits.churn_intensity;
        if (ci > 0.0 && s.lost_edges.empty()) {
            const double churn_p = std::min(0.2 * ci, 0.6);
            if (rng.chance(churn_p)) {
                const std::size_t count =
                    1 + rng.index(std::max<std::size_t>(s.node_count / 8, 1));
                for (std::size_t i = 0; i < count; ++i) {
                    CrashFault crash;
                    crash.node = static_cast<NodeId>(rng.index(s.node_count));
                    crash.at = rng.uniform(0.0, 8.0);
                    if (rng.chance(0.4)) {
                        crash.recover_at = crash.at + 1.0 + rng.uniform(0.0, 5.0);
                    }
                    s.crashes.push_back(crash);
                }
            }
            if (!s.edges.empty() && rng.chance(churn_p)) {
                const std::size_t count =
                    1 + rng.index(std::max<std::size_t>(s.edges.size() / 5, 1));
                for (std::size_t i = 0; i < count; ++i) {
                    AsymLoss a;
                    a.link = s.edges[rng.index(s.edges.size())];
                    a.loss_ab = rng.uniform(0.0, 1.0);
                    a.loss_ba = rng.chance(0.5) ? rng.uniform(0.0, 1.0) : 0.0;
                    s.asym.push_back(a);
                }
            }
            if (!s.crashes.empty() || !s.asym.empty() || s.loss > 0.0) {
                s.recovery = rng.chance(0.7);
            }
        }

        // Traffic draws come last of all, after the churn block, for the
        // same reason: enabling (or re-weighting) the traffic axis can
        // never perturb the topology/churn part of a scenario.
        const double ti = limits.traffic_intensity;
        if (ti > 0.0 && s.lost_edges.empty() && rng.chance(std::min(0.15 * ti, 0.5))) {
            s.traffic_sessions = 8 + rng.index(56);
            s.traffic_rate = 0.5 + 3.5 * rng.uniform();
            s.traffic_bursty = rng.chance(0.3);
        }
    }

    // The scale-differential draw uses its own stream derived from the
    // master seed, not the shared one: it can never perturb any other
    // axis, and (unlike a draw appended to the shared stream) no other
    // axis's intensity knob can perturb *it* either.  The oracle
    // self-skips on scenarios the engine cannot honor, so the flag is set
    // independently of the other axes.
    const double si = limits.scale_intensity;
    if (si > 0.0) {
        Rng scale_rng(runner::splitmix64(master ^ 0x5ca1e0ffULL));
        if (scale_rng.chance(std::min(0.3 * si, 0.8))) s.scale_check = true;
    }

    // The physical-layer draw mirrors the scale draw's isolation: its own
    // seed stream, drawn last, gated off the stale-knowledge path (the
    // only execution path that ignores the medium).  Noise is sized
    // against P*d^-alpha at the [0,100]^2 field's typical distances, so
    // long links genuinely fail the static SINR check sometimes.
    const double mi = limits.medium_intensity;
    if (mi > 0.0 && s.lost_edges.empty()) {
        Rng medium_rng(runner::splitmix64(master ^ 0x51e2f00dULL));
        if (medium_rng.chance(std::min(0.25 * mi, 0.8))) {
            s.medium_backend = medium_rng.chance(0.3) ? MediumBackend::kUniformPowerGraph
                                                      : MediumBackend::kSinr;
            s.sinr_alpha = 2.0 + 2.0 * medium_rng.uniform();
            s.sinr_beta = medium_rng.chance(0.25) ? 0.0 : 0.1 + 1.4 * medium_rng.uniform();
            s.sinr_noise = medium_rng.chance(0.5) ? 0.0 : 1e-7 + 1e-6 * medium_rng.uniform();
            s.vulnerability_window =
                medium_rng.chance(0.5) ? 0.0 : 0.5 * medium_rng.uniform();
            s.positions.reserve(s.node_count);
            for (std::size_t v = 0; v < s.node_count; ++v) {
                const double x = medium_rng.uniform(0.0, 100.0);
                const double y = medium_rng.uniform(0.0, 100.0);
                s.positions.push_back(Point2D{x, y});
            }
            s.interference_range = 30.0 + 70.0 * medium_rng.uniform();
        }
    }
    return normalized(s);
}

std::uint64_t scenario_fingerprint(const Scenario& s) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t x) {
        h ^= x;
        h *= 0x100000001b3ULL;
    };
    mix(s.run_seed);
    mix(s.node_count);
    mix(s.source);
    for (const Edge& e : s.edges) mix((std::uint64_t{e.a} << 32) | e.b);
    for (const Edge& e : s.lost_edges) mix(~((std::uint64_t{e.a} << 32) | e.b));
    for (const char c : s.config.algorithm) mix(static_cast<unsigned char>(c));
    mix(static_cast<std::uint64_t>(s.config.timing));
    mix(static_cast<std::uint64_t>(s.config.selection));
    mix(s.config.hops);
    mix(static_cast<std::uint64_t>(s.config.priority));
    mix(s.config.strong ? 1 : 0);
    mix(s.config.strict_designation ? 1 : 0);
    mix(s.config.history);
    mix(std::bit_cast<std::uint64_t>(s.loss));
    mix(std::bit_cast<std::uint64_t>(s.jitter));
    // Churn fields only feed the hash when present, so fingerprints of
    // historical fault-free scenarios are unchanged.
    for (const CrashFault& c : s.crashes) {
        mix(0x11ULL ^ (std::uint64_t{c.node} << 8));
        mix(std::bit_cast<std::uint64_t>(c.at));
        mix(std::bit_cast<std::uint64_t>(c.recover_at));
    }
    for (const AsymLoss& a : s.asym) {
        mix(0x22ULL ^ ((std::uint64_t{a.link.a} << 32) | a.link.b));
        mix(std::bit_cast<std::uint64_t>(a.loss_ab));
        mix(std::bit_cast<std::uint64_t>(a.loss_ba));
    }
    if (s.recovery) mix(0x9e3779b97f4a7c15ULL);
    if (s.traffic_sessions > 0) {
        mix(0x33ULL ^ (std::uint64_t{s.traffic_sessions} << 8));
        mix(std::bit_cast<std::uint64_t>(s.traffic_rate));
        mix(s.traffic_bursty ? 1 : 0);
    }
    if (s.scale_check) mix(0x44ULL);
    // Like the churn fields, the medium axis only feeds the hash when
    // present, keeping every historical fingerprint stable.
    if (s.medium_backend != MediumBackend::kIdeal) {
        mix(0x55ULL ^ static_cast<std::uint64_t>(s.medium_backend));
        mix(std::bit_cast<std::uint64_t>(s.sinr_alpha));
        mix(std::bit_cast<std::uint64_t>(s.sinr_beta));
        mix(std::bit_cast<std::uint64_t>(s.sinr_noise));
        mix(std::bit_cast<std::uint64_t>(s.interference_range));
        mix(std::bit_cast<std::uint64_t>(s.vulnerability_window));
        for (const Point2D& p : s.positions) {
            mix(std::bit_cast<std::uint64_t>(p.x));
            mix(std::bit_cast<std::uint64_t>(p.y));
        }
    }
    return h;
}

}  // namespace adhoc::fuzz
