/// \file scenario.hpp
/// \brief Randomized fuzz scenarios: one topology + one algorithm
/// configuration + one fault model, generated from a counter-based seed.
///
/// A scenario is the unit of work of the differential fuzzer: everything
/// needed to reproduce one broadcast bit-for-bit is stored explicitly (the
/// edge list, not the generator parameters), so a scenario survives
/// shrinking, serialization and replay unchanged.  Generation follows the
/// campaign runner's determinism contract: scenario i of a campaign with
/// base seed B is a pure function of (B, i) via splitmix64 (seed.hpp), so
/// fuzz campaigns are bit-identical at any --jobs value.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"
#include "graph/geometry.hpp"
#include "graph/graph.hpp"
#include "sim/generic_protocol.hpp"
#include "sim/medium.hpp"

namespace adhoc::fuzz {

/// One node-churn fault: the node crashes at `at` and, if `recover_at` is
/// non-negative, comes back up then.
struct CrashFault {
    NodeId node = kInvalidNode;
    double at = 0.0;
    double recover_at = -1.0;  ///< < 0: never recovers

    friend bool operator==(const CrashFault&, const CrashFault&) = default;
};

/// Directed per-link loss on a knowledge edge (canonical a <= b;
/// `loss_ab` applies to packets a -> b).
struct AsymLoss {
    Edge link;
    double loss_ab = 0.0;
    double loss_ba = 0.0;

    friend bool operator==(const AsymLoss&, const AsymLoss&) = default;
};

/// Algorithm under test: a registry key ("dp", "flooding", ...), the
/// literal "generic" (axes below apply), or "mutant:<name>" (a deliberately
/// broken variant from mutants.hpp, used by the mutation-kill gate).
struct AlgorithmConfig {
    std::string algorithm = "generic";
    Timing timing = Timing::kFirstReceipt;
    Selection selection = Selection::kSelfPruning;
    std::size_t hops = 2;
    PriorityScheme priority = PriorityScheme::kId;
    bool strong = false;
    bool strict_designation = true;
    std::size_t history = 2;

    friend bool operator==(const AlgorithmConfig&, const AlgorithmConfig&) = default;
};

/// One self-contained fuzz case.
struct Scenario {
    std::uint64_t run_seed = 1;     ///< seeds the broadcast Rng
    std::string family = "manual";  ///< provenance label (unit-disk, gnp, ...)
    std::size_t node_count = 0;
    std::vector<Edge> edges;  ///< canonical sorted, duplicate-free
    NodeId source = 0;
    AlgorithmConfig config;
    double loss = 0.0;    ///< medium loss probability
    double jitter = 0.0;  ///< medium jitter window
    /// Mobility burst: edges present in the hello-derived knowledge but
    /// gone from the actual topology at broadcast time (stale views).
    /// Mutually exclusive with the churn fields below — `normalized`
    /// clears churn when lost_edges is non-empty.
    std::vector<Edge> lost_edges;

    /// Node churn: crash (and optional recovery) schedule, sorted by
    /// (node, at), at most one entry per node.
    std::vector<CrashFault> crashes;
    /// Asymmetric per-link loss, sorted by link, at most one per link.
    std::vector<AsymLoss> asym;
    /// Run with the NACK recovery layer wrapped around the agent.
    bool recovery = false;

    /// Continuous-traffic axis: when `traffic_sessions > 0`, the scenario
    /// additionally drives a multi-session workload through the traffic
    /// engine (src/traffic/) under the same churn plan, checked by the
    /// eventually-delivered-or-classified oracle.  Mutually exclusive with
    /// lost_edges (the stale-knowledge path has no session multiplexing).
    std::size_t traffic_sessions = 0;
    double traffic_rate = 0.0;   ///< Poisson/burst arrival rate (> 0 when active)
    bool traffic_bursty = false;  ///< on/off bursty arrivals instead of Poisson

    /// Scale-differential axis: additionally replay the broadcast through
    /// the windowed `ScaleEngine` and require forward set, counts,
    /// completion time and transmission-order digest byte-identical to the
    /// Simulator result.  The oracle self-skips when the scenario lies
    /// outside the engine's honorable subset (faults, loss, jitter, stale
    /// views, backoff timings, neighbor designation, global views).
    bool scale_check = false;

    /// Physical-layer axis: run the broadcast under a non-ideal reception
    /// backend (sim/medium.hpp).  When `medium_backend != kIdeal`,
    /// `positions` holds one point per node and the SINR parameters below
    /// are in their validated ranges (`normalized` drops the axis
    /// otherwise).  Mutually exclusive with lost_edges (the
    /// stale-knowledge path ignores the medium); the traffic axis may
    /// coexist — its oracle drives the session engine under plain
    /// loss/jitter while the medium shapes the main broadcast.
    MediumBackend medium_backend = MediumBackend::kIdeal;
    double sinr_alpha = 3.0;
    double sinr_beta = 0.0;
    double sinr_noise = 0.0;
    double interference_range = 0.0;
    double vulnerability_window = 0.0;
    std::vector<Point2D> positions;

    /// Topology as the protocol believes it to be.
    [[nodiscard]] Graph knowledge_graph() const;

    /// Topology packets actually propagate over (knowledge minus
    /// lost_edges).  Equals knowledge_graph() when lost_edges is empty.
    [[nodiscard]] Graph actual_graph() const;

    /// True iff the scenario carries churn/asymmetry faults (the faulted
    /// execution path in run_once).
    [[nodiscard]] bool has_faults() const noexcept { return !crashes.empty() || !asym.empty(); }

    /// True iff the scenario carries a continuous-traffic workload.
    [[nodiscard]] bool has_traffic() const noexcept { return traffic_sessions > 0; }

    /// True iff the scenario runs under a non-ideal reception backend.
    [[nodiscard]] bool has_medium() const noexcept {
        return medium_backend != MediumBackend::kIdeal;
    }

    /// The medium fields as a simulator-ready config (kIdeal loss/jitter
    /// when `has_medium()` is false).
    [[nodiscard]] MediumConfig medium_config() const;

    /// The churn fields as a simulator-ready fault plan (deterministic:
    /// the loss stream is seeded from run_seed).
    [[nodiscard]] faults::FaultPlan fault_plan() const;

    friend bool operator==(const Scenario&, const Scenario&) = default;
};

/// Bounds on generated scenarios.
struct GenerationLimits {
    std::size_t max_nodes = 48;    ///< topology size ceiling (min is 3)
    bool faults = true;            ///< sample loss/jitter/mobility bursts
    bool registry_algorithms = true;  ///< sample registry keys, not just "generic"
    /// Scales the node-churn / asymmetric-loss sampling odds.  1.0 is the
    /// default matrix; 0 disables churn entirely (the mutation-kill gate
    /// uses faults=false which also disables it); the CI churn profile
    /// runs at ~3.0.  Churn draws happen after all other draws, so
    /// changing this never perturbs the fault-free part of a scenario.
    double churn_intensity = 1.0;
    /// Scales the continuous-traffic sampling odds the same way; 0
    /// disables the traffic axis.  Traffic draws happen after the churn
    /// draws, preserving every historical scenario stream.
    double traffic_intensity = 1.0;
    /// Scales the scale-differential sampling odds (ScaleEngine vs
    /// Simulator); 0 disables the axis.  Drawn after every other axis, so
    /// enabling it never perturbs historical scenario streams.
    double scale_intensity = 1.0;
    /// Scales the physical-layer (SINR backend) sampling odds; 0 disables
    /// the axis.  Like the scale axis it draws from its own seed stream,
    /// so toggling it never perturbs any other axis or historical corpus
    /// fingerprints.  The mutation-kill gate sets this to 0 to keep the
    /// delivery/CDS oracles fully armed.
    double medium_intensity = 1.0;
};

/// Generates scenario `index` of the campaign with base seed `base_seed`.
/// Pure function of its arguments; the result is normalized (see below).
[[nodiscard]] Scenario generate_scenario(std::uint64_t base_seed, std::uint64_t index,
                                         const GenerationLimits& limits = {});

/// Canonicalizes a scenario: sorts and dedups edges, restricts the
/// topology to the source's connected component (remapping ids to a dense
/// 0..m-1 range, order-preserving), and drops lost_edges that no longer
/// exist.  Oracles assume normalized scenarios — delivery over a connected
/// knowledge graph is exactly "every node received".
[[nodiscard]] Scenario normalized(const Scenario& s);

/// FNV-1a over the scenario's defining fields; used to name corpus files
/// and dedup findings.
[[nodiscard]] std::uint64_t scenario_fingerprint(const Scenario& s);

}  // namespace adhoc::fuzz
