#include "fuzz/shrink.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace adhoc::fuzz {
namespace {

/// Evaluation wrapper enforcing the budget.
class Evaluator {
  public:
    Evaluator(const std::function<bool(const Scenario&)>& predicate, std::size_t budget,
              ShrinkStats& stats)
        : predicate_(predicate), budget_(budget), stats_(stats) {}

    [[nodiscard]] bool fails(const Scenario& candidate) {
        if (stats_.evals >= budget_) {
            stats_.budget_exhausted = true;
            return false;
        }
        ++stats_.evals;
        return predicate_(candidate);
    }

    [[nodiscard]] bool exhausted() const { return stats_.budget_exhausted; }

  private:
    const std::function<bool(const Scenario&)>& predicate_;
    std::size_t budget_;
    ShrinkStats& stats_;
};

/// Greedily applies single-field simplifications; returns true if any stuck.
bool simplify_config(Scenario& best, Evaluator& eval) {
    bool progressed = false;
    const auto try_edit = [&](auto&& edit) {
        Scenario candidate = best;
        edit(candidate);
        candidate = normalized(candidate);
        if (candidate == best) return;
        if (eval.fails(candidate)) {
            best = std::move(candidate);
            progressed = true;
        }
    };

    try_edit([](Scenario& s) { s.lost_edges.clear(); });
    try_edit([](Scenario& s) { s.crashes.clear(); });
    try_edit([](Scenario& s) { s.asym.clear(); });
    try_edit([](Scenario& s) { s.recovery = false; });
    try_edit([](Scenario& s) {
        // Drop the traffic axis first; halve the workload when it must stay.
        s.traffic_sessions = 0;
        s.traffic_rate = 0.0;
        s.traffic_bursty = false;
    });
    try_edit([](Scenario& s) { s.traffic_sessions /= 2; });
    try_edit([](Scenario& s) { s.traffic_bursty = false; });
    try_edit([](Scenario& s) {
        // Crashes without recovery schedules are simpler to reason about.
        for (CrashFault& c : s.crashes) c.recover_at = -1.0;
    });
    try_edit([](Scenario& s) { s.loss = 0.0; });
    try_edit([](Scenario& s) { s.jitter = 0.0; });
    try_edit([](Scenario& s) {
        // Drop the physical-layer axis first (normalized clears the
        // geometry); then soften it piecewise when it must stay.
        s.medium_backend = MediumBackend::kIdeal;
    });
    try_edit([](Scenario& s) { s.sinr_beta = 0.0; });
    try_edit([](Scenario& s) { s.sinr_noise = 0.0; });
    try_edit([](Scenario& s) { s.vulnerability_window = 0.0; });
    try_edit([](Scenario& s) { s.run_seed = 1; });
    try_edit([](Scenario& s) { s.config.history = 2; });
    try_edit([](Scenario& s) { s.config.strong = false; });
    try_edit([](Scenario& s) { s.config.strict_designation = true; });
    try_edit([](Scenario& s) { s.config.priority = PriorityScheme::kId; });
    try_edit([](Scenario& s) { s.config.hops = 2; });
    if (best.config.algorithm == "generic") {
        try_edit([](Scenario& s) { s.config.selection = Selection::kSelfPruning; });
        try_edit([](Scenario& s) {
            // kStatic + designating selections is not a sampled combination;
            // keep the pair coherent when retiming.
            s.config.timing = Timing::kFirstReceipt;
        });
    }
    try_edit([](Scenario& s) { s.source = 0; });
    return progressed;
}

/// Removes the nodes flagged in `drop` (source never flagged), remapping
/// ids densely and renormalizing.
Scenario without_nodes(const Scenario& s, const std::vector<char>& drop) {
    std::vector<NodeId> remap(s.node_count, kInvalidNode);
    NodeId next = 0;
    for (NodeId v = 0; v < s.node_count; ++v) {
        if (!drop[v]) remap[v] = next++;
    }
    Scenario out = s;
    out.node_count = next;
    out.source = remap[s.source];
    out.edges.clear();
    for (const Edge& e : s.edges) {
        if (drop[e.a] || drop[e.b]) continue;
        out.edges.push_back({remap[e.a], remap[e.b]});
    }
    out.lost_edges.clear();
    for (const Edge& e : s.lost_edges) {
        if (drop[e.a] || drop[e.b]) continue;
        out.lost_edges.push_back({remap[e.a], remap[e.b]});
    }
    out.crashes.clear();
    for (CrashFault c : s.crashes) {
        if (c.node >= drop.size() || drop[c.node]) continue;
        c.node = remap[c.node];
        out.crashes.push_back(c);
    }
    out.asym.clear();
    for (AsymLoss a : s.asym) {
        if (drop[a.link.a] || drop[a.link.b]) continue;
        a.link = canonical(Edge{remap[a.link.a], remap[a.link.b]});
        out.asym.push_back(a);
    }
    out.positions.clear();
    if (!s.positions.empty()) {
        for (NodeId v = 0; v < s.node_count; ++v) {
            if (!drop[v]) out.positions.push_back(s.positions[v]);
        }
    }
    return normalized(out);
}

/// ddmin over nodes: try dropping chunks of shrinking size.  Returns true
/// if any removal stuck.
bool shrink_nodes(Scenario& best, Evaluator& eval) {
    bool progressed = false;
    std::size_t chunk = best.node_count / 2;
    while (chunk >= 1 && !eval.exhausted()) {
        bool removed_any = false;
        for (std::size_t start = 0; start < best.node_count && !eval.exhausted();) {
            std::vector<char> drop(best.node_count, 0);
            std::size_t flagged = 0;
            for (std::size_t v = start; v < std::min(start + chunk, best.node_count); ++v) {
                if (v == best.source) continue;
                drop[v] = 1;
                ++flagged;
            }
            if (flagged == 0 || flagged + 1 >= best.node_count) {
                start += chunk;
                continue;  // nothing to drop, or would leave < 2 nodes worth trying
            }
            Scenario candidate = without_nodes(best, drop);
            if (candidate.node_count < best.node_count && candidate.node_count >= 1 &&
                eval.fails(candidate)) {
                best = std::move(candidate);
                progressed = true;
                removed_any = true;
                // Stay at the same start: indices shifted under us.
            } else {
                start += chunk;
            }
        }
        if (!removed_any) {
            chunk /= 2;  // refine granularity only once a pass yields nothing
        } else if (chunk >= best.node_count) {
            chunk = best.node_count / 2;
        }
    }
    return progressed;
}

/// One-at-a-time edge removal (normalization then prunes any disconnected
/// remainder, so this often removes nodes too).
bool shrink_edges(Scenario& best, Evaluator& eval) {
    bool progressed = false;
    for (std::size_t i = 0; i < best.edges.size() && !eval.exhausted();) {
        Scenario candidate = best;
        candidate.edges.erase(candidate.edges.begin() + static_cast<std::ptrdiff_t>(i));
        candidate = normalized(candidate);
        if (candidate != best && eval.fails(candidate)) {
            best = std::move(candidate);
            progressed = true;
            // Do not advance: the edge list shifted (and may have shrunk).
            i = std::min(i, best.edges.size());
            if (i == best.edges.size()) break;
        } else {
            ++i;
        }
    }
    // Lost edges are cheaper to drop individually too (restores the edge to
    // the actual topology without touching the knowledge graph).
    for (std::size_t i = 0; i < best.lost_edges.size() && !eval.exhausted();) {
        Scenario candidate = best;
        candidate.lost_edges.erase(candidate.lost_edges.begin() +
                                   static_cast<std::ptrdiff_t>(i));
        if (eval.fails(candidate)) {
            best = std::move(candidate);
            progressed = true;
        } else {
            ++i;
        }
    }
    // Same one-at-a-time treatment for churn entries.
    for (std::size_t i = 0; i < best.crashes.size() && !eval.exhausted();) {
        Scenario candidate = best;
        candidate.crashes.erase(candidate.crashes.begin() + static_cast<std::ptrdiff_t>(i));
        if (eval.fails(candidate)) {
            best = std::move(candidate);
            progressed = true;
        } else {
            ++i;
        }
    }
    for (std::size_t i = 0; i < best.asym.size() && !eval.exhausted();) {
        Scenario candidate = best;
        candidate.asym.erase(candidate.asym.begin() + static_cast<std::ptrdiff_t>(i));
        if (eval.fails(candidate)) {
            best = std::move(candidate);
            progressed = true;
        } else {
            ++i;
        }
    }
    return progressed;
}

}  // namespace

Scenario shrink_scenario(const Scenario& failing,
                         const std::function<bool(const Scenario&)>& still_fails,
                         const ShrinkOptions& options, ShrinkStats* stats) {
    ShrinkStats local;
    ShrinkStats& st = stats ? *stats : local;
    st = ShrinkStats{};
    Evaluator eval(still_fails, options.max_evals, st);

    Scenario best = normalized(failing);
    // The caller asserts `failing` fails; if normalization alone changed the
    // scenario, verify the normal form still does (fall back otherwise).
    if (best != failing && !eval.fails(best)) best = failing;

    bool progressed = true;
    while (progressed && !eval.exhausted()) {
        ++st.rounds;
        progressed = false;
        progressed |= simplify_config(best, eval);
        progressed |= shrink_nodes(best, eval);
        progressed |= shrink_edges(best, eval);
    }
    return best;
}

}  // namespace adhoc::fuzz
