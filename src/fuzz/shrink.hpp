/// \file shrink.hpp
/// \brief Delta-debugging minimizer for failing fuzz scenarios.
///
/// Given a scenario on which `still_fails` returns true, the shrinker
/// greedily searches for a smaller scenario that still fails, iterating
/// four passes to a fixpoint (or an evaluation budget):
///
///  1. configuration simplification — zero out jitter/loss, drop the
///     mobility burst, reset axes to their defaults;
///  2. node removal — ddmin-style chunks (half, quarter, ... single
///     nodes), re-normalizing to the source component after each cut;
///  3. edge removal — one edge at a time;
///  4. source simplification — move the source to node 0.
///
/// Every candidate is normalized before evaluation, so the final repro is
/// a connected, densely-numbered scenario — typically a handful of nodes.
/// The predicate must be pure (check_scenario is).

#pragma once

#include <cstddef>
#include <functional>

#include "fuzz/scenario.hpp"

namespace adhoc::fuzz {

struct ShrinkOptions {
    std::size_t max_evals = 4000;  ///< predicate-call budget
};

struct ShrinkStats {
    std::size_t evals = 0;       ///< predicate calls spent
    std::size_t rounds = 0;      ///< full pass iterations
    bool budget_exhausted = false;
};

/// Returns the smallest still-failing scenario found.  `failing` itself is
/// returned (normalized) when no smaller candidate fails.
[[nodiscard]] Scenario shrink_scenario(const Scenario& failing,
                                       const std::function<bool(const Scenario&)>& still_fails,
                                       const ShrinkOptions& options = {},
                                       ShrinkStats* stats = nullptr);

}  // namespace adhoc::fuzz
