#include "graph/digraph.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

#include "graph/traversal.hpp"

namespace adhoc {

bool Digraph::add_arc(NodeId u, NodeId v) {
    assert(contains(u) && contains(v));
    if (u == v) return false;
    auto& out = out_[u];
    const auto it = std::lower_bound(out.begin(), out.end(), v);
    if (it != out.end() && *it == v) return false;
    out.insert(it, v);
    auto& in = in_[v];
    in.insert(std::lower_bound(in.begin(), in.end(), u), u);
    ++arc_count_;
    return true;
}

bool Digraph::has_arc(NodeId u, NodeId v) const noexcept {
    if (!contains(u) || !contains(v)) return false;
    const auto& out = out_[u];
    return std::binary_search(out.begin(), out.end(), v);
}

Graph symmetric_core(const Digraph& dg) {
    Graph core(dg.node_count());
    for (NodeId u = 0; u < dg.node_count(); ++u) {
        for (NodeId v : dg.out_neighbors(u)) {
            if (u < v && dg.has_arc(v, u)) core.add_edge(u, v);
        }
    }
    return core;
}

std::size_t unidirectional_arc_count(const Digraph& dg) {
    std::size_t count = 0;
    for (NodeId u = 0; u < dg.node_count(); ++u) {
        for (NodeId v : dg.out_neighbors(u)) {
            if (!dg.has_arc(v, u)) ++count;
        }
    }
    return count;
}

std::vector<char> directed_reach(const Digraph& dg, NodeId source) {
    std::vector<char> reached(dg.node_count(), 0);
    if (!dg.contains(source)) return reached;
    std::deque<NodeId> queue{source};
    reached[source] = 1;
    while (!queue.empty()) {
        const NodeId u = queue.front();
        queue.pop_front();
        for (NodeId v : dg.out_neighbors(u)) {
            if (!reached[v]) {
                reached[v] = 1;
                queue.push_back(v);
            }
        }
    }
    return reached;
}

std::optional<HeterogeneousNetwork> generate_heterogeneous_network(
    const HeterogeneousParams& params, Rng& rng) {
    assert(params.node_count >= 2);
    assert(params.range_spread >= 0.0 && params.range_spread < 1.0);

    for (std::size_t attempt = 0; attempt < params.max_attempts; ++attempt) {
        HeterogeneousNetwork net;
        net.positions.resize(params.node_count);
        net.ranges.resize(params.node_count);
        for (std::size_t i = 0; i < params.node_count; ++i) {
            net.positions[i] = {rng.uniform(0.0, params.area_side),
                                rng.uniform(0.0, params.area_side)};
            net.ranges[i] = params.base_range *
                            rng.uniform(1.0 - params.range_spread, 1.0 + params.range_spread);
        }
        net.digraph = Digraph(params.node_count);
        for (NodeId u = 0; u < params.node_count; ++u) {
            const double r2 = net.ranges[u] * net.ranges[u];
            for (NodeId v = 0; v < params.node_count; ++v) {
                if (u == v) continue;
                if (squared_distance(net.positions[u], net.positions[v]) <= r2) {
                    net.digraph.add_arc(u, v);
                }
            }
        }
        net.core = symmetric_core(net.digraph);
        if (!is_connected(net.core)) continue;
        return net;
    }
    return std::nullopt;
}

}  // namespace adhoc
