/// \file digraph.hpp
/// \brief Directed graphs for heterogeneous-power ad hoc networks, and the
/// bidirectional abstraction of paper assumption (3).
///
/// The paper assumes "network topology is a connected graph without
/// unidirectional links.  A sublayer can be added [20, 27] to provide a
/// bidirectional abstraction for unidirectional ad hoc networks."  This
/// module builds that substrate: nodes with per-node transmission ranges
/// induce a *directed* reachability graph (u→v iff dist(u,v) <= range(u));
/// the sublayer extracts the symmetric core (links usable in both
/// directions), over which every algorithm in the library runs unchanged.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/geometry.hpp"
#include "graph/graph.hpp"
#include "stats/rng.hpp"

namespace adhoc {

/// Directed simple graph over nodes 0..n-1 (sorted adjacency, in + out).
class Digraph {
  public:
    Digraph() = default;
    explicit Digraph(std::size_t n) : out_(n), in_(n) {}

    [[nodiscard]] std::size_t node_count() const noexcept { return out_.size(); }
    [[nodiscard]] std::size_t arc_count() const noexcept { return arc_count_; }
    [[nodiscard]] bool contains(NodeId v) const noexcept { return v < out_.size(); }

    /// Adds arc u -> v; false if present or a self loop.
    bool add_arc(NodeId u, NodeId v);

    [[nodiscard]] bool has_arc(NodeId u, NodeId v) const noexcept;

    [[nodiscard]] std::span<const NodeId> out_neighbors(NodeId v) const noexcept {
        return out_[v];
    }
    [[nodiscard]] std::span<const NodeId> in_neighbors(NodeId v) const noexcept {
        return in_[v];
    }

    friend bool operator==(const Digraph&, const Digraph&) = default;

  private:
    std::vector<std::vector<NodeId>> out_;
    std::vector<std::vector<NodeId>> in_;
    std::size_t arc_count_ = 0;
};

/// The bidirectional abstraction: the undirected graph of links present in
/// both directions.
[[nodiscard]] Graph symmetric_core(const Digraph& dg);

/// Number of unidirectional arcs (arcs whose reverse is absent).
[[nodiscard]] std::size_t unidirectional_arc_count(const Digraph& dg);

/// Nodes reachable from `source` following arcs (what raw physical
/// flooding could touch — an upper bound no symmetric protocol can use
/// without the sublayer, since acknowledgements cannot return).
[[nodiscard]] std::vector<char> directed_reach(const Digraph& dg, NodeId source);

/// A heterogeneous-power ad hoc network.
struct HeterogeneousNetwork {
    Digraph digraph;
    Graph core;  ///< symmetric core (the abstraction the protocols run on)
    std::vector<Point2D> positions;
    std::vector<double> ranges;
};

struct HeterogeneousParams {
    std::size_t node_count = 60;
    double area_side = 100.0;
    double base_range = 25.0;
    /// Per-node range is uniform in [base*(1-spread), base*(1+spread)];
    /// spread = 0 degenerates to a unit disk graph (no unidirectional
    /// links).
    double range_spread = 0.3;
    std::size_t max_attempts = 10'000;  ///< core-connectivity rejection
};

/// Generates a network whose symmetric core is connected (rejection
/// sampling, like the paper's generator); nullopt when the budget runs
/// out.
[[nodiscard]] std::optional<HeterogeneousNetwork> generate_heterogeneous_network(
    const HeterogeneousParams& params, Rng& rng);

}  // namespace adhoc
