#include "graph/generators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "graph/traversal.hpp"

namespace adhoc {

bool segment_intersects_disk(const Point2D& a, const Point2D& b, const Point2D& center,
                             double radius) {
    // Distance from `center` to segment ab.
    const double abx = b.x - a.x;
    const double aby = b.y - a.y;
    const double len2 = abx * abx + aby * aby;
    double t = 0.0;
    if (len2 > 0.0) {
        t = ((center.x - a.x) * abx + (center.y - a.y) * aby) / len2;
        t = std::clamp(t, 0.0, 1.0);
    }
    const Point2D closest{a.x + t * abx, a.y + t * aby};
    return squared_distance(closest, center) <= radius * radius;
}

std::optional<UnitDiskNetwork> generate_obstacle_network(const ObstacleParams& params,
                                                         Rng& rng) {
    assert(params.node_count >= 2);
    for (std::size_t attempt = 0; attempt < params.max_attempts; ++attempt) {
        std::vector<Point2D> pts;
        pts.reserve(params.node_count);
        while (pts.size() < params.node_count) {
            const Point2D p{rng.uniform(0.0, params.area_side),
                            rng.uniform(0.0, params.area_side)};
            if (distance(p, params.obstacle_center) <= params.obstacle_radius) continue;
            pts.push_back(p);
        }
        Graph g(params.node_count);
        const double r2 = params.range * params.range;
        for (NodeId u = 0; u < params.node_count; ++u) {
            for (NodeId v = u + 1; v < params.node_count; ++v) {
                if (squared_distance(pts[u], pts[v]) > r2) continue;
                if (segment_intersects_disk(pts[u], pts[v], params.obstacle_center,
                                            params.obstacle_radius)) {
                    continue;  // radio shadow
                }
                g.add_edge(u, v);
            }
        }
        if (!is_connected(g)) continue;
        return UnitDiskNetwork{std::move(g), std::move(pts), params.range};
    }
    return std::nullopt;
}

std::optional<UnitDiskNetwork> generate_hotspot_network(const HotspotParams& params, Rng& rng) {
    assert(params.node_count >= 2);
    assert(params.hotspot_count >= 1);
    for (std::size_t attempt = 0; attempt < params.max_attempts; ++attempt) {
        std::vector<Point2D> attractors(params.hotspot_count);
        for (Point2D& a : attractors) {
            a = {rng.uniform(0.0, params.area_side), rng.uniform(0.0, params.area_side)};
        }
        std::vector<Point2D> pts(params.node_count);
        const std::size_t clustered =
            static_cast<std::size_t>(params.hotspot_fraction *
                                     static_cast<double>(params.node_count));
        for (std::size_t i = 0; i < params.node_count; ++i) {
            if (i < clustered) {
                const Point2D& a = attractors[i % params.hotspot_count];
                // Box-Muller-free approximate normal: mean of uniforms.
                auto jitter = [&] {
                    return (rng.uniform() + rng.uniform() + rng.uniform() - 1.5) * 2.0 *
                           params.hotspot_sigma;
                };
                pts[i] = {std::clamp(a.x + jitter(), 0.0, params.area_side),
                          std::clamp(a.y + jitter(), 0.0, params.area_side)};
            } else {
                pts[i] = {rng.uniform(0.0, params.area_side),
                          rng.uniform(0.0, params.area_side)};
            }
        }
        Graph g = unit_disk_graph(pts, params.range);
        if (!is_connected(g)) continue;
        return UnitDiskNetwork{std::move(g), std::move(pts), params.range};
    }
    return std::nullopt;
}

}  // namespace adhoc
