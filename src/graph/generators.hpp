/// \file generators.hpp
/// \brief Non-uniform deployment generators for robustness studies.
///
/// The paper's evaluation uses uniform random placement (Section 7).
/// Real deployments are rarely uniform; these generators stress the
/// algorithms on spatially heterogeneous unit disk graphs while keeping
/// the same contract as `generate_network`: connected graphs only,
/// deterministic under seed.
///
///  - **obstacle**: uniform placement with a circular exclusion zone
///    (e.g. a building) that also blocks links crossing it — creates long
///    detour paths and articulation points.
///  - **hotspot**: a fraction of nodes clusters tightly around a few
///    attractor points (e.g. gateways), the rest uniform — creates the
///    dense-core/sparse-fringe mix where priority schemes diverge.

#pragma once

#include <optional>

#include "graph/unit_disk.hpp"

namespace adhoc {

struct ObstacleParams {
    std::size_t node_count = 80;
    double area_side = 100.0;
    double range = 25.0;
    Point2D obstacle_center{50.0, 50.0};
    double obstacle_radius = 20.0;
    std::size_t max_attempts = 10'000;
};

/// True iff the segment a-b passes within `radius` of `center` (the
/// obstacle blocks the radio path).
[[nodiscard]] bool segment_intersects_disk(const Point2D& a, const Point2D& b,
                                           const Point2D& center, double radius);

/// Uniform placement outside the obstacle; links exist when within range
/// AND not blocked by the obstacle.  Connected graphs only.
[[nodiscard]] std::optional<UnitDiskNetwork> generate_obstacle_network(
    const ObstacleParams& params, Rng& rng);

struct HotspotParams {
    std::size_t node_count = 80;
    double area_side = 100.0;
    double range = 25.0;
    std::size_t hotspot_count = 3;
    double hotspot_fraction = 0.6;  ///< nodes assigned to hotspots
    double hotspot_sigma = 6.0;     ///< spread around each attractor
    std::size_t max_attempts = 10'000;
};

/// Clustered placement: `hotspot_fraction` of the nodes scatter normally
/// around random attractor points, the rest uniformly.  Connected only.
[[nodiscard]] std::optional<UnitDiskNetwork> generate_hotspot_network(
    const HotspotParams& params, Rng& rng);

}  // namespace adhoc
