/// \file geometry.hpp
/// \brief Minimal 2-D geometry used by the unit-disk-graph generator.
///
/// The paper's simulation (Section 7) places nodes uniformly at random in a
/// 100x100 area and connects two nodes when their Euclidean distance is
/// within the transmission range.  This header provides the point type and
/// the few geometric helpers that workflow needs.

#pragma once

#include <cmath>
#include <vector>

namespace adhoc {

/// A point in the 2-D deployment area.
struct Point2D {
    double x = 0.0;
    double y = 0.0;

    friend bool operator==(const Point2D&, const Point2D&) = default;
};

/// Squared Euclidean distance.  Preferred for comparisons: avoids the sqrt
/// and is exact for the "exactly nd/2 links" range selection.
[[nodiscard]] inline double squared_distance(const Point2D& a, const Point2D& b) noexcept {
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    return dx * dx + dy * dy;
}

/// Euclidean distance.
[[nodiscard]] inline double distance(const Point2D& a, const Point2D& b) noexcept {
    return std::sqrt(squared_distance(a, b));
}

/// Axis-aligned bounding box of a point set; returns {0,0},{0,0} for empty
/// input.  Used by the SVG renderer to frame plots.
struct BoundingBox {
    Point2D min;
    Point2D max;
};

[[nodiscard]] BoundingBox bounding_box(const std::vector<Point2D>& points) noexcept;

}  // namespace adhoc
