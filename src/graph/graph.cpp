#include "graph/graph.hpp"
#include "graph/geometry.hpp"

#include <algorithm>
#include <cassert>

namespace adhoc {

BoundingBox bounding_box(const std::vector<Point2D>& points) noexcept {
    if (points.empty()) return {};
    BoundingBox box{points.front(), points.front()};
    for (const Point2D& p : points) {
        box.min.x = std::min(box.min.x, p.x);
        box.min.y = std::min(box.min.y, p.y);
        box.max.x = std::max(box.max.x, p.x);
        box.max.y = std::max(box.max.y, p.y);
    }
    return box;
}

Graph::Graph(std::size_t n, const std::vector<Edge>& edges) : adjacency_(n) {
    for (const Edge& e : edges) {
        assert(contains(e.a) && contains(e.b));
        add_edge(e.a, e.b);
    }
}

Graph Graph::from_sorted_edges(std::size_t n, const std::vector<Edge>& edges) {
    Graph g(n);
    std::vector<std::uint32_t> deg(n, 0);
    for (const Edge& e : edges) {
        assert(e.a < e.b && g.contains(e.b));
        ++deg[e.a];
        ++deg[e.b];
    }
    for (NodeId v = 0; v < n; ++v) g.adjacency_[v].reserve(deg[v]);
    // Scanning the sorted list appends each row's smaller partners (from
    // edges where the row node is `b`, ordered by ascending `a`) before its
    // larger partners (ordered by ascending `b`) — rows come out sorted.
    for (const Edge& e : edges) {
        assert(g.adjacency_[e.a].empty() || g.adjacency_[e.a].back() < e.b);
        g.adjacency_[e.a].push_back(e.b);
        g.adjacency_[e.b].push_back(e.a);
    }
    g.edge_count_ = edges.size();
    return g;
}

bool Graph::add_edge(NodeId u, NodeId v) {
    assert(contains(u) && contains(v));
    if (u == v) return false;
    auto& nu = adjacency_[u];
    const auto it = std::lower_bound(nu.begin(), nu.end(), v);
    if (it != nu.end() && *it == v) return false;
    nu.insert(it, v);
    auto& nv = adjacency_[v];
    nv.insert(std::lower_bound(nv.begin(), nv.end(), u), u);
    ++edge_count_;
    return true;
}

bool Graph::remove_edge(NodeId u, NodeId v) {
    assert(contains(u) && contains(v));
    auto& nu = adjacency_[u];
    const auto it = std::lower_bound(nu.begin(), nu.end(), v);
    if (it == nu.end() || *it != v) return false;
    nu.erase(it);
    auto& nv = adjacency_[v];
    nv.erase(std::lower_bound(nv.begin(), nv.end(), u));
    --edge_count_;
    return true;
}

bool Graph::has_edge(NodeId u, NodeId v) const noexcept {
    if (!contains(u) || !contains(v)) return false;
    const auto& nu = adjacency_[u];
    // Search the shorter list: keeps dense-graph queries cheap.
    const auto& nv = adjacency_[v];
    const auto& shorter = (nu.size() <= nv.size()) ? nu : nv;
    const NodeId target = (nu.size() <= nv.size()) ? v : u;
    return std::binary_search(shorter.begin(), shorter.end(), target);
}

std::vector<Edge> Graph::edges() const {
    std::vector<Edge> result;
    result.reserve(edge_count_);
    for (NodeId u = 0; u < adjacency_.size(); ++u) {
        for (NodeId v : adjacency_[u]) {
            if (u < v) result.push_back(Edge{u, v});
        }
    }
    return result;
}

std::size_t Graph::connected_neighbor_pairs(NodeId v) const noexcept {
    assert(contains(v));
    const auto& nv = adjacency_[v];
    std::size_t connected = 0;
    for (std::size_t i = 0; i < nv.size(); ++i) {
        for (std::size_t j = i + 1; j < nv.size(); ++j) {
            if (has_edge(nv[i], nv[j])) ++connected;
        }
    }
    return connected;
}

bool Graph::neighbors_pairwise_connected(NodeId v) const noexcept {
    assert(contains(v));
    const auto& nv = adjacency_[v];
    for (std::size_t i = 0; i < nv.size(); ++i) {
        for (std::size_t j = i + 1; j < nv.size(); ++j) {
            if (!has_edge(nv[i], nv[j])) return false;
        }
    }
    return true;
}

Graph complete_graph(std::size_t n) {
    Graph g(n);
    for (NodeId u = 0; u < n; ++u) {
        for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
    }
    return g;
}

Graph path_graph(std::size_t n) {
    Graph g(n);
    for (NodeId u = 0; u + 1 < n; ++u) g.add_edge(u, u + 1);
    return g;
}

Graph cycle_graph(std::size_t n) {
    Graph g = path_graph(n);
    if (n >= 3) g.add_edge(0, static_cast<NodeId>(n - 1));
    return g;
}

Graph star_graph(std::size_t n) {
    Graph g(n);
    for (NodeId v = 1; v < n; ++v) g.add_edge(0, v);
    return g;
}

Graph grid_graph(std::size_t rows, std::size_t cols) {
    Graph g(rows * cols);
    for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < cols; ++j) {
            const NodeId id = static_cast<NodeId>(i * cols + j);
            if (j + 1 < cols) g.add_edge(id, id + 1);
            if (i + 1 < rows) g.add_edge(id, static_cast<NodeId>(id + cols));
        }
    }
    return g;
}

}  // namespace adhoc
