/// \file graph.hpp
/// \brief Undirected simple graph used to model ad hoc network topologies.
///
/// The paper models an ad hoc network as a unit disk graph G = (V, E)
/// (Section 2).  This class is the shared substrate for every algorithm in
/// the repository: adjacency queries, neighbor iteration and edge counting.
/// Neighbor lists are kept sorted so that `has_edge` is O(log deg) and set
/// operations over neighborhoods (common in the pruning rules) are linear
/// merges.

#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace adhoc {

/// Node identifier.  Node ids double as the lowest-level priority tiebreak
/// in the paper, so they are plain integers ordered in the obvious way.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// An undirected edge; canonical form has a <= b.
struct Edge {
    NodeId a = kInvalidNode;
    NodeId b = kInvalidNode;

    friend bool operator==(const Edge&, const Edge&) = default;
    friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Returns the canonical (a <= b) form of an edge.
[[nodiscard]] constexpr Edge canonical(Edge e) noexcept {
    return (e.a <= e.b) ? e : Edge{e.b, e.a};
}

/// Undirected simple graph over nodes 0..n-1.
///
/// Invariants:
///  - no self loops, no parallel edges;
///  - every adjacency list is sorted ascending;
///  - edge (u,v) present iff (v,u) present.
class Graph {
  public:
    Graph() = default;

    /// Creates a graph with `n` isolated nodes.
    explicit Graph(std::size_t n) : adjacency_(n) {}

    /// Creates a graph from an explicit edge list (duplicates and reversed
    /// duplicates are tolerated and collapsed).
    Graph(std::size_t n, const std::vector<Edge>& edges);

    /// Bulk construction from a canonical (a < b), lexicographically
    /// sorted, duplicate-free edge list.  Sizes every adjacency row
    /// exactly once and fills it already sorted — no per-insert search or
    /// reallocation, which dominates `add_edge`-based construction for
    /// generated graphs.
    [[nodiscard]] static Graph from_sorted_edges(std::size_t n, const std::vector<Edge>& edges);

    /// Number of nodes.
    [[nodiscard]] std::size_t node_count() const noexcept { return adjacency_.size(); }

    /// Number of undirected edges.
    [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

    /// True iff `v` is a valid node of this graph.
    [[nodiscard]] bool contains(NodeId v) const noexcept { return v < adjacency_.size(); }

    /// Adds an undirected edge; returns false (no-op) if the edge already
    /// exists or is a self loop.  Precondition: both endpoints valid.
    bool add_edge(NodeId u, NodeId v);

    /// Removes an undirected edge; returns false if it was absent.
    bool remove_edge(NodeId u, NodeId v);

    /// True iff the undirected edge (u,v) exists.
    [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

    /// Sorted open neighbor set N(v).
    [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const noexcept {
        return adjacency_[v];
    }

    /// Degree |N(v)|.
    [[nodiscard]] std::size_t degree(NodeId v) const noexcept { return adjacency_[v].size(); }

    /// All edges in canonical, lexicographically sorted order.
    [[nodiscard]] std::vector<Edge> edges() const;

    /// Number of pairs of neighbors of `v` that are directly connected.
    /// Used by the neighborhood-connectivity-ratio priority (Section 4.4).
    [[nodiscard]] std::size_t connected_neighbor_pairs(NodeId v) const noexcept;

    /// True iff every pair of neighbors of `v` is directly connected (the
    /// marking-process negation: unmarked nodes in Wu-Li).
    [[nodiscard]] bool neighbors_pairwise_connected(NodeId v) const noexcept;

    /// Structural equality (same node count and edge set).
    friend bool operator==(const Graph&, const Graph&) = default;

  private:
    std::vector<std::vector<NodeId>> adjacency_;
    std::size_t edge_count_ = 0;
};

/// Builds the complete graph K_n.
[[nodiscard]] Graph complete_graph(std::size_t n);

/// Builds the path graph P_n (0-1-2-...-n-1).
[[nodiscard]] Graph path_graph(std::size_t n);

/// Builds the cycle graph C_n.
[[nodiscard]] Graph cycle_graph(std::size_t n);

/// Builds the star graph with center 0 and n-1 leaves.
[[nodiscard]] Graph star_graph(std::size_t n);

/// Builds an r-by-c grid graph (4-neighborhood); node (i,j) has id i*c+j.
[[nodiscard]] Graph grid_graph(std::size_t rows, std::size_t cols);

}  // namespace adhoc
