#include "graph/khop.hpp"

#include <algorithm>
#include <cassert>

#include "graph/traversal.hpp"

namespace adhoc {

std::vector<NodeId> k_hop_nodes(const Graph& g, NodeId v, std::size_t k) {
    assert(g.contains(v));
    const auto dist = bfs_distances(g, v);
    std::vector<NodeId> nodes;
    for (NodeId u = 0; u < g.node_count(); ++u) {
        if (dist[u] != kUnreachable && dist[u] <= k) nodes.push_back(u);
    }
    return nodes;
}

std::vector<NodeId> two_hop_cover_set(const Graph& g, NodeId v) {
    const auto dist = bfs_distances(g, v);
    std::vector<NodeId> nodes;
    for (NodeId u = 0; u < g.node_count(); ++u) {
        if (u != v && dist[u] != kUnreachable && dist[u] <= 2) nodes.push_back(u);
    }
    return nodes;
}

LocalTopology local_topology(const Graph& g, NodeId v, std::size_t k) {
    assert(g.contains(v));
    LocalTopology local;
    local.center = v;
    local.hops = k;

    if (k == 0) {  // global information
        local.graph = g;
        local.visible.assign(g.node_count(), 1);
        return local;
    }

    const auto dist = bfs_distances(g, v);
    local.visible.assign(g.node_count(), 0);
    for (NodeId u = 0; u < g.node_count(); ++u) {
        if (dist[u] != kUnreachable && dist[u] <= k) local.visible[u] = 1;
    }

    // Edge (a,b) is visible iff min(dist) <= k-1 and max(dist) <= k:
    // exactly E ∩ (N_{k-1}(v) × N_k(v)).
    Graph sub(g.node_count());
    for (const Edge& e : g.edges()) {
        const std::size_t da = dist[e.a];
        const std::size_t db = dist[e.b];
        if (da == kUnreachable || db == kUnreachable) continue;
        if (std::min(da, db) <= k - 1 && std::max(da, db) <= k) sub.add_edge(e.a, e.b);
    }
    local.graph = std::move(sub);
    return local;
}

}  // namespace adhoc
