#include "graph/khop.hpp"

#include <algorithm>
#include <cassert>

#include "graph/traversal.hpp"

namespace adhoc {

std::vector<NodeId> k_hop_nodes(const Graph& g, NodeId v, std::size_t k) {
    assert(g.contains(v));
    const auto dist = bfs_distances(g, v);
    std::vector<NodeId> nodes;
    for (NodeId u = 0; u < g.node_count(); ++u) {
        if (dist[u] != kUnreachable && dist[u] <= k) nodes.push_back(u);
    }
    return nodes;
}

std::vector<NodeId> two_hop_cover_set(const Graph& g, NodeId v) {
    const auto dist = bfs_distances(g, v);
    std::vector<NodeId> nodes;
    for (NodeId u = 0; u < g.node_count(); ++u) {
        if (u != v && dist[u] != kUnreachable && dist[u] <= 2) nodes.push_back(u);
    }
    return nodes;
}

void populate_members(LocalTopology& topo) {
    if (!topo.members.empty()) return;
    topo.members.reserve(topo.visible.size());
    for (NodeId u = 0; u < topo.visible.size(); ++u) {
        if (topo.visible[u]) topo.members.push_back(u);
    }
}

void compile_topology(LocalTopology& topo) {
    if (!topo.compact.offsets.empty()) return;
    populate_members(topo);
    const std::vector<NodeId>& mem = topo.members;
    CompactTopology& ct = topo.compact;
    ct.offsets.reserve(mem.size() + 1);
    ct.offsets.push_back(0);
    for (const NodeId v : mem) {
        for (const NodeId y : topo.graph.neighbors(v)) {
            // Members are sorted, so local ids come from a binary search;
            // edges to non-members (hand-built topologies) are dropped.
            const auto it = std::lower_bound(mem.begin(), mem.end(), y);
            if (it != mem.end() && *it == y) {
                ct.edges.push_back(static_cast<std::uint32_t>(it - mem.begin()));
            }
        }
        ct.offsets.push_back(static_cast<std::uint32_t>(ct.edges.size()));
    }
}

LocalTopology local_topology(const Graph& g, NodeId v, std::size_t k) {
    assert(g.contains(v));
    LocalTopology local;
    local.center = v;
    local.hops = k;

    if (k == 0) {  // global information
        local.graph = g;
        local.visible.assign(g.node_count(), 1);
        populate_members(local);
        return local;
    }

    const auto dist = bfs_distances(g, v);
    local.visible.assign(g.node_count(), 0);
    for (NodeId u = 0; u < g.node_count(); ++u) {
        if (dist[u] != kUnreachable && dist[u] <= k) {
            local.visible[u] = 1;
            local.members.push_back(u);
        }
    }

    // Edge (a,b) is visible iff min(dist) <= k-1 and max(dist) <= k:
    // exactly E ∩ (N_{k-1}(v) × N_k(v)).
    Graph sub(g.node_count());
    for (const Edge& e : g.edges()) {
        const std::size_t da = dist[e.a];
        const std::size_t db = dist[e.b];
        if (da == kUnreachable || db == kUnreachable) continue;
        if (std::min(da, db) <= k - 1 && std::max(da, db) <= k) sub.add_edge(e.a, e.b);
    }
    local.graph = std::move(sub);
    return local;
}

}  // namespace adhoc
