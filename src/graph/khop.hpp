/// \file khop.hpp
/// \brief k-hop neighborhood sets and the Definition-2 local topology.
///
/// The paper is precise about what "k-hop information" means (Definition 2):
/// a node's local topology G_k(v) takes k rounds of "hello" exchanges to
/// build, so its node set is N_k(v) (all nodes within k hops) and its edge
/// set is E ∩ (N_{k-1}(v) × N_k(v)) — links between two nodes that are both
/// exactly k hops away from v are *invisible*.  Getting this boundary right
/// matters: Figure 6(a) in the paper hinges on link (7,8) being invisible
/// under 2-hop information.

#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace adhoc {

/// Nodes within `k` hops of `v` (including `v` itself), sorted ascending.
/// N_0(v) = {v}.
[[nodiscard]] std::vector<NodeId> k_hop_nodes(const Graph& g, NodeId v, std::size_t k);

/// The 2-hop neighbor set N_2(v) *excluding* v itself — the set that
/// neighbor-designating algorithms (DP/PDP/TDP/MPR) must cover.
[[nodiscard]] std::vector<NodeId> two_hop_cover_set(const Graph& g, NodeId v);

/// Flat CSR adjacency of a LocalTopology's visible subgraph over dense
/// local ids (position in `members`).  Edges between two exactly-k-hop
/// nodes are absent by construction of the topology itself.  Built once
/// per topology by `compile_topology`; the decision kernels borrow these
/// contiguous arrays instead of pointer-chasing the Graph's per-node heap
/// rows on every call.  Empty `offsets` means "not built".
struct CompactTopology {
    std::vector<std::uint32_t> offsets;  ///< size members+1 when built
    std::vector<std::uint32_t> edges;    ///< local ids, ascending per row
};

/// Local topology per Definition 2.
///
/// The returned graph has the same node-id space as `g`; nodes outside
/// N_k(v) are isolated, and only edges in E ∩ (N_{k-1}(v) × N_k(v)) are
/// present.  `visible[u]` marks membership in N_k(v).
struct LocalTopology {
    Graph graph;                ///< subgraph on the original id space
    std::vector<char> visible;  ///< visible[u] == 1 iff u ∈ N_k(v)
    NodeId center = kInvalidNode;
    std::size_t hops = 0;       ///< the k it was built with (0 == global)
    /// Visible node ids in ascending order — the dense-id compilation of
    /// the view iterates this instead of scanning all n nodes.  Empty means
    /// "not computed" (hand-built topologies); consumers fall back to
    /// scanning `visible`.
    std::vector<NodeId> members;
    /// One-time dense-id CSR (see CompactTopology).  Only long-lived
    /// topologies (KnowledgeBase entries) bother building it; the topology
    /// must not be mutated afterwards.
    CompactTopology compact;
    /// Set by the hello layer when neighbor-liveness aging removed entries
    /// from this view: decisions taken against it are "stale-view
    /// decisions" (metered by the protocol's telemetry).  Analytic
    /// Definition-2 views are never stale.
    bool stale = false;
};

/// Fills `topo.members` from `topo.visible` (ascending).  No-op when the
/// member list is already populated.
void populate_members(LocalTopology& topo);

/// Builds `topo.compact` (populating `members` first if needed).  No-op
/// when already built.
void compile_topology(LocalTopology& topo);

/// Extracts G_k(v).  `k == 0` is interpreted as *global* information (the
/// whole graph is visible); the paper's sweeps use k ∈ {2,3,4,5, global}.
[[nodiscard]] LocalTopology local_topology(const Graph& g, NodeId v, std::size_t k);

}  // namespace adhoc
