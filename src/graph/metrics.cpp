#include "graph/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <functional>

namespace adhoc {

double neighborhood_connectivity_ratio(const Graph& g, NodeId v) {
    assert(g.contains(v));
    const std::size_t deg = g.degree(v);
    if (deg <= 1) return 0.0;
    const std::size_t connected = g.connected_neighbor_pairs(v);
    const double total_pairs = static_cast<double>(deg) * static_cast<double>(deg - 1) / 2.0;
    return 1.0 - static_cast<double>(connected) / total_pairs;
}

std::vector<double> all_ncr(const Graph& g) {
    std::vector<double> ncr(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) ncr[v] = neighborhood_connectivity_ratio(g, v);
    return ncr;
}

double average_degree(const Graph& g) {
    if (g.node_count() == 0) return 0.0;
    return 2.0 * static_cast<double>(g.edge_count()) / static_cast<double>(g.node_count());
}

std::size_t max_degree(const Graph& g) {
    std::size_t best = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) best = std::max(best, g.degree(v));
    return best;
}

std::size_t min_degree(const Graph& g) {
    if (g.node_count() == 0) return 0;
    std::size_t best = g.degree(0);
    for (NodeId v = 1; v < g.node_count(); ++v) best = std::min(best, g.degree(v));
    return best;
}

std::vector<char> articulation_points(const Graph& g) {
    const std::size_t n = g.node_count();
    std::vector<char> is_cut(n, 0);
    std::vector<std::size_t> disc(n, 0), low(n, 0);
    std::vector<char> visited(n, 0);
    std::size_t timer = 1;

    // Iterative Tarjan (explicit stack) to stay safe on large graphs.
    struct Frame {
        NodeId v;
        NodeId parent;
        std::size_t next_idx;
        std::size_t children;
    };
    for (NodeId root = 0; root < n; ++root) {
        if (visited[root]) continue;
        std::vector<Frame> stack;
        stack.push_back({root, kInvalidNode, 0, 0});
        visited[root] = 1;
        disc[root] = low[root] = timer++;
        while (!stack.empty()) {
            Frame& f = stack.back();
            const auto nbrs = g.neighbors(f.v);
            if (f.next_idx < nbrs.size()) {
                const NodeId to = nbrs[f.next_idx++];
                if (to == f.parent) continue;
                if (visited[to]) {
                    low[f.v] = std::min(low[f.v], disc[to]);
                } else {
                    visited[to] = 1;
                    disc[to] = low[to] = timer++;
                    ++f.children;
                    stack.push_back({to, f.v, 0, 0});
                }
            } else {
                const Frame done = f;
                stack.pop_back();
                if (!stack.empty()) {
                    Frame& up = stack.back();
                    low[up.v] = std::min(low[up.v], low[done.v]);
                    if (up.parent != kInvalidNode && low[done.v] >= disc[up.v]) is_cut[up.v] = 1;
                }
                if (done.parent == kInvalidNode && done.children >= 2) is_cut[done.v] = 1;
            }
        }
    }
    return is_cut;
}

double clustering_coefficient(const Graph& g) {
    std::size_t closed = 0;  // 2x (ordered) closed triplets counted via connected pairs
    std::size_t triplets = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) {
        const std::size_t deg = g.degree(v);
        if (deg < 2) continue;
        triplets += deg * (deg - 1) / 2;
        closed += g.connected_neighbor_pairs(v);
    }
    if (triplets == 0) return 0.0;
    return static_cast<double>(closed) / static_cast<double>(triplets);
}

}  // namespace adhoc
