/// \file metrics.hpp
/// \brief Topology metrics used as priority keys and in analysis.

#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace adhoc {

/// Neighborhood connectivity ratio (paper Section 4.4):
///
///   ncr(v) = 1 - sum_{u in N(v)} |N(u) ∩ N(v)| / (deg(v)·(deg(v)-1))
///
/// i.e. the fraction of neighbor pairs that are *not* directly connected.
/// Nodes with deg(v) <= 1 have no neighbor pair; their ncr is defined as 0
/// (nothing to connect, lowest priority need).
[[nodiscard]] double neighborhood_connectivity_ratio(const Graph& g, NodeId v);

/// ncr for every node.
[[nodiscard]] std::vector<double> all_ncr(const Graph& g);

/// Average node degree 2|E|/|V| (0 for empty graph).
[[nodiscard]] double average_degree(const Graph& g);

/// Maximum degree.
[[nodiscard]] std::size_t max_degree(const Graph& g);

/// Minimum degree.
[[nodiscard]] std::size_t min_degree(const Graph& g);

/// Articulation points (cut vertices).  Any correct broadcast scheme must
/// keep every articulation point as a forward node when it lies between
/// unvisited regions; tests use this as a structural cross-check.
[[nodiscard]] std::vector<char> articulation_points(const Graph& g);

/// Global clustering coefficient: 3·triangles / open-and-closed triplets.
[[nodiscard]] double clustering_coefficient(const Graph& g);

}  // namespace adhoc
