#include "graph/spatial_grid.hpp"

#include <algorithm>
#include <cmath>

namespace adhoc {

SpatialGrid::SpatialGrid(const std::vector<Point2D>& positions, double min_cell) {
    const std::size_t n = positions.size();
    box_ = bounding_box(positions);
    if (n == 0 || !(min_cell > 0.0) || !std::isfinite(min_cell)) {
        // Degenerate: a single cell holding everything (possibly nothing).
        cell_ = 1.0;
        start_.assign(2, 0);
        pos_ = positions;
        id_.resize(n);
        for (std::size_t i = 0; i < n; ++i) id_[i] = static_cast<NodeId>(i);
        start_[1] = static_cast<std::uint32_t>(n);
        return;
    }
    const double width = box_.max.x - box_.min.x;
    const double height = box_.max.y - box_.min.y;
    // Identical sizing to the original generator: cell >= min_cell so a
    // 3x3 neighborhood covers a min_cell ball, cell count capped at O(n).
    const double limit = std::ceil(std::sqrt(static_cast<double>(4 * n)));
    cell_ = std::max({min_cell, width / limit, height / limit});
    nx_ = static_cast<std::size_t>(width / cell_) + 1;
    ny_ = static_cast<std::size_t>(height / cell_) + 1;

    // Counting-sort nodes into cells, copying positions into bucket order
    // so scans read contiguous memory.
    std::vector<std::uint32_t> cell_of(n);
    start_.assign(nx_ * ny_ + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const auto cx = static_cast<std::size_t>((positions[i].x - box_.min.x) / cell_);
        const auto cy = static_cast<std::size_t>((positions[i].y - box_.min.y) / cell_);
        cell_of[i] =
            static_cast<std::uint32_t>(std::min(cy, ny_ - 1) * nx_ + std::min(cx, nx_ - 1));
        ++start_[cell_of[i] + 1];
    }
    for (std::size_t c = 0; c < nx_ * ny_; ++c) start_[c + 1] += start_[c];
    pos_.resize(n);
    id_.resize(n);
    std::vector<std::uint32_t> cursor(start_.begin(), start_.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t slot = cursor[cell_of[i]]++;
        pos_[slot] = positions[i];
        id_[slot] = static_cast<NodeId>(i);
    }
}

}  // namespace adhoc
