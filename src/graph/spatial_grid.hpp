/// \file spatial_grid.hpp
/// \brief Uniform bucket grid over 2-D node positions.
///
/// Extracted from the PR-2 unit-disk generator so other subsystems — the
/// incremental view cache's dirty-ball query, bench_scale's churn plans —
/// can reuse the same structure.  The construction math (cell sizing,
/// counting-sort bucket order) is kept exactly as the generator had it, so
/// `unit_disk_graph` built on top of this class produces bit-identical
/// graphs to the pre-extraction code.
///
/// The grid buckets node indices by cell and stores positions copied into
/// bucket order, so scans over a cell read contiguous memory.  Cell size
/// is at least `min_cell` (callers pass the radius they will query with,
/// making a 3x3 cell neighborhood a superset of any `min_cell` ball) and
/// the cell count is capped at O(n) so sparse point sets with a tiny
/// radius cannot blow up the bucket table.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/geometry.hpp"
#include "graph/graph.hpp"

namespace adhoc {

class SpatialGrid {
  public:
    SpatialGrid(const std::vector<Point2D>& positions, double min_cell);

    [[nodiscard]] std::size_t nx() const noexcept { return nx_; }
    [[nodiscard]] std::size_t ny() const noexcept { return ny_; }
    [[nodiscard]] double cell_size() const noexcept { return cell_; }
    [[nodiscard]] const BoundingBox& box() const noexcept { return box_; }

    /// Bucket-ordered node positions / original ids; cell c owns slots
    /// [cell_starts()[c], cell_starts()[c+1]).
    [[nodiscard]] const std::vector<Point2D>& bucket_positions() const noexcept {
        return pos_;
    }
    [[nodiscard]] const std::vector<NodeId>& bucket_ids() const noexcept { return id_; }
    [[nodiscard]] const std::vector<std::uint32_t>& cell_starts() const noexcept {
        return start_;
    }

    /// Calls `fn(NodeId)` for every node within Euclidean `radius` of
    /// `center`, in deterministic (cell row-major, bucket slot) order.
    template <typename F>
    void for_each_in_ball(Point2D center, double radius, F&& fn) const {
        const double r2 = radius * radius;
        const std::size_t cx0 = clamp_cell((center.x - radius - box_.min.x) / cell_, nx_);
        const std::size_t cx1 = clamp_cell((center.x + radius - box_.min.x) / cell_, nx_);
        const std::size_t cy0 = clamp_cell((center.y - radius - box_.min.y) / cell_, ny_);
        const std::size_t cy1 = clamp_cell((center.y + radius - box_.min.y) / cell_, ny_);
        for (std::size_t cy = cy0; cy <= cy1; ++cy) {
            for (std::size_t cx = cx0; cx <= cx1; ++cx) {
                const std::size_t c = cy * nx_ + cx;
                for (std::uint32_t k = start_[c]; k < start_[c + 1]; ++k) {
                    if (squared_distance(pos_[k], center) <= r2) fn(id_[k]);
                }
            }
        }
    }

  private:
    [[nodiscard]] static std::size_t clamp_cell(double raw, std::size_t count) noexcept {
        if (!(raw > 0.0)) return 0;  // below the box (or NaN) clamps to edge
        const auto c = static_cast<std::size_t>(raw);
        return c >= count ? count - 1 : c;
    }

    BoundingBox box_;
    double cell_ = 1.0;
    std::size_t nx_ = 1;
    std::size_t ny_ = 1;
    std::vector<Point2D> pos_;
    std::vector<NodeId> id_;
    std::vector<std::uint32_t> start_;
};

}  // namespace adhoc
