#include "graph/traversal.hpp"

#include <algorithm>
#include <cassert>
#include <deque>

namespace adhoc {

namespace {

/// Shared BFS core: distances plus parent pointers, optionally filtered.
struct BfsResult {
    std::vector<std::size_t> dist;
    std::vector<NodeId> parent;
};

BfsResult bfs_core(const Graph& g, NodeId source, const std::vector<char>* allowed) {
    assert(g.contains(source));
    assert(allowed == nullptr || allowed->size() == g.node_count());
    BfsResult r;
    r.dist.assign(g.node_count(), kUnreachable);
    r.parent.assign(g.node_count(), kInvalidNode);
    if (allowed != nullptr && !(*allowed)[source]) return r;

    std::deque<NodeId> queue;
    r.dist[source] = 0;
    queue.push_back(source);
    while (!queue.empty()) {
        const NodeId u = queue.front();
        queue.pop_front();
        for (NodeId v : g.neighbors(u)) {
            if (r.dist[v] != kUnreachable) continue;
            if (allowed != nullptr && !(*allowed)[v]) continue;
            r.dist[v] = r.dist[u] + 1;
            r.parent[v] = u;
            queue.push_back(v);
        }
    }
    return r;
}

std::optional<std::vector<NodeId>> extract_path(const BfsResult& r, NodeId from, NodeId to) {
    if (r.dist[to] == kUnreachable) return std::nullopt;
    std::vector<NodeId> path;
    for (NodeId v = to; v != kInvalidNode; v = r.parent[v]) path.push_back(v);
    std::reverse(path.begin(), path.end());
    assert(path.front() == from);
    (void)from;
    return path;
}

}  // namespace

std::vector<std::size_t> bfs_distances(const Graph& g, NodeId source) {
    return bfs_core(g, source, nullptr).dist;
}

std::vector<std::size_t> bfs_distances_filtered(const Graph& g, NodeId source,
                                                const std::vector<char>& allowed) {
    return bfs_core(g, source, &allowed).dist;
}

bool is_connected(const Graph& g) {
    if (g.node_count() <= 1) return true;
    const auto dist = bfs_distances(g, 0);
    return std::none_of(dist.begin(), dist.end(),
                        [](std::size_t d) { return d == kUnreachable; });
}

std::vector<std::size_t> connected_components(const Graph& g) {
    std::vector<char> all(g.node_count(), 1);
    return connected_components_filtered(g, all);
}

std::vector<std::size_t> connected_components_filtered(const Graph& g,
                                                       const std::vector<char>& allowed) {
    assert(allowed.size() == g.node_count());
    std::vector<std::size_t> label(g.node_count(), kUnreachable);
    std::size_t next = 0;
    std::deque<NodeId> queue;
    for (NodeId s = 0; s < g.node_count(); ++s) {
        if (!allowed[s] || label[s] != kUnreachable) continue;
        label[s] = next;
        queue.push_back(s);
        while (!queue.empty()) {
            const NodeId u = queue.front();
            queue.pop_front();
            for (NodeId v : g.neighbors(u)) {
                if (!allowed[v] || label[v] != kUnreachable) continue;
                label[v] = next;
                queue.push_back(v);
            }
        }
        ++next;
    }
    return label;
}

std::size_t component_count(const std::vector<std::size_t>& labels) {
    std::size_t max_label = 0;
    bool any = false;
    for (std::size_t l : labels) {
        if (l == kUnreachable) continue;
        any = true;
        max_label = std::max(max_label, l);
    }
    return any ? max_label + 1 : 0;
}

std::optional<std::vector<NodeId>> shortest_path(const Graph& g, NodeId from, NodeId to) {
    assert(g.contains(from) && g.contains(to));
    return extract_path(bfs_core(g, from, nullptr), from, to);
}

std::optional<std::vector<NodeId>> shortest_path_filtered(const Graph& g, NodeId from, NodeId to,
                                                          const std::vector<char>& allowed) {
    assert(g.contains(from) && g.contains(to));
    if (!allowed[to]) return std::nullopt;
    return extract_path(bfs_core(g, from, &allowed), from, to);
}

std::size_t diameter(const Graph& g) {
    if (g.node_count() <= 1) return 0;
    std::size_t best = 0;
    for (NodeId s = 0; s < g.node_count(); ++s) {
        for (std::size_t d : bfs_distances(g, s)) {
            if (d == kUnreachable) return kUnreachable;
            best = std::max(best, d);
        }
    }
    return best;
}

Graph induced_subgraph(const Graph& g, const std::vector<char>& keep) {
    assert(keep.size() == g.node_count());
    Graph sub(g.node_count());
    for (const Edge& e : g.edges()) {
        if (keep[e.a] && keep[e.b]) sub.add_edge(e.a, e.b);
    }
    return sub;
}

}  // namespace adhoc
