/// \file traversal.hpp
/// \brief Breadth-first traversal utilities: distances, components,
/// connectivity and path reconstruction.
///
/// These are the building blocks for k-hop neighborhood extraction
/// (Definition 2), for the connected-components machinery inside the
/// coverage condition, and for the connectivity rejection test of the
/// unit-disk-graph generator.

#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace adhoc {

/// Hop distance marker for unreachable nodes.
inline constexpr std::size_t kUnreachable = static_cast<std::size_t>(-1);

/// BFS hop distances from `source` to every node (kUnreachable if none).
[[nodiscard]] std::vector<std::size_t> bfs_distances(const Graph& g, NodeId source);

/// BFS hop distances from `source`, traversal restricted to nodes for which
/// `allowed[v]` is true.  `source` must itself be allowed.
[[nodiscard]] std::vector<std::size_t> bfs_distances_filtered(const Graph& g, NodeId source,
                                                              const std::vector<char>& allowed);

/// True iff the graph is connected (vacuously true for n <= 1).
[[nodiscard]] bool is_connected(const Graph& g);

/// Component label (0-based, by discovery order) for every node.
[[nodiscard]] std::vector<std::size_t> connected_components(const Graph& g);

/// Component labels restricted to nodes with `allowed[v]` true; excluded
/// nodes get label kUnreachable.  This is the workhorse of the coverage
/// condition: components of the subgraph induced on higher-priority nodes.
[[nodiscard]] std::vector<std::size_t> connected_components_filtered(
    const Graph& g, const std::vector<char>& allowed);

/// Number of distinct component labels produced by
/// `connected_components_filtered` (i.e. component count of the induced
/// subgraph).
[[nodiscard]] std::size_t component_count(const std::vector<std::size_t>& labels);

/// Shortest path (inclusive of both endpoints) from `from` to `to`, or
/// nullopt if unreachable.
[[nodiscard]] std::optional<std::vector<NodeId>> shortest_path(const Graph& g, NodeId from,
                                                               NodeId to);

/// Shortest path restricted to `allowed` nodes.  Both endpoints must be
/// allowed for a path to exist.
[[nodiscard]] std::optional<std::vector<NodeId>> shortest_path_filtered(
    const Graph& g, NodeId from, NodeId to, const std::vector<char>& allowed);

/// Graph eccentricity-based diameter (max finite hop distance over all
/// pairs); 0 for empty/singleton, kUnreachable if disconnected.
[[nodiscard]] std::size_t diameter(const Graph& g);

/// The subgraph induced on `keep` (nodes keep their original ids; nodes not
/// kept become isolated).  Handy for "subgraph induced from nodes with
/// higher priorities" (Section 6).
[[nodiscard]] Graph induced_subgraph(const Graph& g, const std::vector<char>& keep);

}  // namespace adhoc
