#include "graph/unit_disk.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "graph/traversal.hpp"

namespace adhoc {

Graph unit_disk_graph(const std::vector<Point2D>& positions, double range) {
    Graph g(positions.size());
    const double r2 = range * range;
    for (NodeId u = 0; u < positions.size(); ++u) {
        for (NodeId v = u + 1; v < positions.size(); ++v) {
            if (squared_distance(positions[u], positions[v]) <= r2) g.add_edge(u, v);
        }
    }
    return g;
}

std::optional<double> range_for_link_count(const std::vector<Point2D>& positions,
                                           std::size_t links) {
    const std::size_t n = positions.size();
    const std::size_t pairs = n * (n - 1) / 2;
    if (links == 0 || links > pairs) return std::nullopt;

    std::vector<double> d2;
    d2.reserve(pairs);
    for (std::size_t u = 0; u < n; ++u) {
        for (std::size_t v = u + 1; v < n; ++v) {
            d2.push_back(squared_distance(positions[u], positions[v]));
        }
    }
    // Partition around the links-th smallest squared distance.
    std::nth_element(d2.begin(), d2.begin() + static_cast<std::ptrdiff_t>(links - 1), d2.end());
    const double kth = d2[links - 1];
    if (links == pairs) return std::sqrt(kth) * (1.0 + 1e-12);

    const double next =
        *std::min_element(d2.begin() + static_cast<std::ptrdiff_t>(links), d2.end());
    if (next <= kth) return std::nullopt;  // tie: exact count unattainable
    return (std::sqrt(kth) + std::sqrt(next)) / 2.0;
}

std::optional<UnitDiskNetwork> generate_network(const UnitDiskParams& params, Rng& rng) {
    assert(params.node_count >= 2);
    const std::size_t links =
        static_cast<std::size_t>(params.node_count * params.average_degree / 2.0);

    for (std::size_t attempt = 0; attempt < params.max_attempts; ++attempt) {
        std::vector<Point2D> pts(params.node_count);
        for (Point2D& p : pts) {
            p.x = rng.uniform(0.0, params.area_side);
            p.y = rng.uniform(0.0, params.area_side);
        }
        const auto range = range_for_link_count(pts, links);
        if (!range) continue;
        Graph g = unit_disk_graph(pts, *range);
        if (g.edge_count() != links) continue;  // defensive: tie slipped through
        if (!is_connected(g)) continue;          // paper: discard disconnected
        return UnitDiskNetwork{std::move(g), std::move(pts), *range};
    }
    return std::nullopt;
}

UnitDiskNetwork generate_network_checked(const UnitDiskParams& params, Rng& rng) {
    auto net = generate_network(params, rng);
    if (!net) {
        throw std::runtime_error(
            "unit-disk generation failed: no connected placement within attempt budget");
    }
    return std::move(*net);
}

}  // namespace adhoc
