#include "graph/unit_disk.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "graph/spatial_grid.hpp"
#include "graph/traversal.hpp"

namespace adhoc {

namespace reference {

Graph unit_disk_graph(const std::vector<Point2D>& positions, double range) {
    Graph g(positions.size());
    const double r2 = range * range;
    for (NodeId u = 0; u < positions.size(); ++u) {
        for (NodeId v = u + 1; v < positions.size(); ++v) {
            if (squared_distance(positions[u], positions[v]) <= r2) g.add_edge(u, v);
        }
    }
    return g;
}

}  // namespace reference

Graph unit_disk_graph(const std::vector<Point2D>& positions, double range) {
    const std::size_t n = positions.size();
    // Degenerate ranges (and tiny inputs, where bucketing overhead wins
    // nothing) take the all-pairs path.
    if (n < 64 || !(range > 0.0) || !std::isfinite(range)) {
        return reference::unit_disk_graph(positions, range);
    }

    // The shared bucket grid (cell >= range, so a 3x3 cell neighborhood
    // covers every candidate pair; construction math identical to the
    // pre-extraction inline version — see spatial_grid.hpp).
    const SpatialGrid grid(positions, range);
    const std::size_t nx = grid.nx();
    const std::size_t ny = grid.ny();
    const std::vector<Point2D>& pos = grid.bucket_positions();
    const std::vector<NodeId>& id = grid.bucket_ids();
    const std::vector<std::uint32_t>& start = grid.cell_starts();

    // Sweep each cell against itself and its four *forward* neighbors
    // (E, SW, S, SE), so every unordered cell pair — and hence every
    // candidate node pair — is examined exactly once.
    std::vector<Edge> found;
    const double r2 = range * range;
    auto scan_pair = [&](std::uint32_t k1, std::uint32_t k2) {
        if (squared_distance(pos[k1], pos[k2]) <= r2) {
            found.push_back(canonical(Edge{id[k1], id[k2]}));
        }
    };
    for (std::size_t cy = 0; cy < ny; ++cy) {
        for (std::size_t cx = 0; cx < nx; ++cx) {
            const std::size_t c = cy * nx + cx;
            for (std::uint32_t k1 = start[c]; k1 < start[c + 1]; ++k1) {
                for (std::uint32_t k2 = k1 + 1; k2 < start[c + 1]; ++k2) scan_pair(k1, k2);
            }
            const std::size_t fwd[4][2] = {
                {cx + 1, cy}, {cx - 1, cy + 1}, {cx, cy + 1}, {cx + 1, cy + 1}};
            for (const auto& f : fwd) {
                if (f[0] >= nx || f[1] >= ny) continue;  // wraps below 0 too (unsigned)
                const std::size_t d = f[1] * nx + f[0];
                for (std::uint32_t k1 = start[c]; k1 < start[c + 1]; ++k1) {
                    for (std::uint32_t k2 = start[d]; k2 < start[d + 1]; ++k2) scan_pair(k1, k2);
                }
            }
        }
    }
    // Each pair is discovered exactly once but in cell order; restore the
    // canonical lexicographic order the bulk builder needs with a counting
    // sort on `a` plus tiny per-row sorts on `b`.  A comparison sort over
    // the whole list would spend ~1 branch mispredict per comparison and
    // dominate the entire construction.
    std::vector<std::uint32_t> row(n + 1, 0);
    for (const Edge& e : found) ++row[e.a + 1];
    for (std::size_t a = 0; a < n; ++a) row[a + 1] += row[a];
    std::vector<Edge> sorted(found.size());
    {
        std::vector<std::uint32_t> cursor(row.begin(), row.end() - 1);
        for (const Edge& e : found) sorted[cursor[e.a]++] = e;
    }
    for (std::size_t a = 0; a < n; ++a) {
        std::sort(sorted.begin() + row[a], sorted.begin() + row[a + 1],
                  [](const Edge& x, const Edge& y) { return x.b < y.b; });
    }
    return Graph::from_sorted_edges(n, sorted);
}

std::optional<double> range_for_link_count(const std::vector<Point2D>& positions,
                                           std::size_t links) {
    const std::size_t n = positions.size();
    const std::size_t pairs = n * (n - 1) / 2;
    if (links == 0 || links > pairs) return std::nullopt;

    std::vector<double> d2;
    d2.reserve(pairs);
    for (std::size_t u = 0; u < n; ++u) {
        for (std::size_t v = u + 1; v < n; ++v) {
            d2.push_back(squared_distance(positions[u], positions[v]));
        }
    }
    // Partition around the links-th smallest squared distance.
    std::nth_element(d2.begin(), d2.begin() + static_cast<std::ptrdiff_t>(links - 1), d2.end());
    const double kth = d2[links - 1];
    if (links == pairs) return std::sqrt(kth) * (1.0 + 1e-12);

    const double next =
        *std::min_element(d2.begin() + static_cast<std::ptrdiff_t>(links), d2.end());
    if (next <= kth) return std::nullopt;  // tie: exact count unattainable
    return (std::sqrt(kth) + std::sqrt(next)) / 2.0;
}

std::optional<UnitDiskNetwork> generate_network(const UnitDiskParams& params, Rng& rng) {
    assert(params.node_count >= 2);
    const std::size_t links =
        static_cast<std::size_t>(params.node_count * params.average_degree / 2.0);

    for (std::size_t attempt = 0; attempt < params.max_attempts; ++attempt) {
        std::vector<Point2D> pts(params.node_count);
        for (Point2D& p : pts) {
            p.x = rng.uniform(0.0, params.area_side);
            p.y = rng.uniform(0.0, params.area_side);
        }
        const auto range = range_for_link_count(pts, links);
        if (!range) continue;
        Graph g = unit_disk_graph(pts, *range);
        if (g.edge_count() != links) continue;  // defensive: tie slipped through
        if (!is_connected(g)) continue;          // paper: discard disconnected
        return UnitDiskNetwork{std::move(g), std::move(pts), *range};
    }
    return std::nullopt;
}

UnitDiskNetwork generate_network_checked(const UnitDiskParams& params, Rng& rng) {
    auto net = generate_network(params, rng);
    if (!net) {
        throw std::runtime_error(
            "unit-disk generation failed: no connected placement within attempt budget");
    }
    return std::move(*net);
}

}  // namespace adhoc
