#include "io/cli.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

namespace adhoc::io {

namespace {

/// The strtoX family itself skips leading whitespace and accepts a sign;
/// for CLI flags both are surprises ("--runs ' 5'", "--runs -1" wrapping to
/// a huge unsigned value), so reject them up front.
bool rejected_prefix(std::string_view text) {
    if (text.empty()) return true;
    const unsigned char head = static_cast<unsigned char>(text.front());
    return std::isspace(head) || text.front() == '+' || text.front() == '-';
}

}  // namespace

std::optional<std::uint64_t> parse_u64(std::string_view text) {
    if (rejected_prefix(text)) return std::nullopt;
    const std::string buf(text);  // strtoull needs NUL termination
    errno = 0;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(buf.c_str(), &end, 10);
    if (errno == ERANGE) return std::nullopt;
    if (end != buf.c_str() + buf.size()) return std::nullopt;  // junk or empty parse
    return static_cast<std::uint64_t>(value);
}

std::optional<std::size_t> parse_size(std::string_view text) {
    const std::optional<std::uint64_t> value = parse_u64(text);
    if (!value || *value > std::numeric_limits<std::size_t>::max()) return std::nullopt;
    return static_cast<std::size_t>(*value);
}

std::optional<double> parse_double(std::string_view text) {
    // Signed values are legitimate for doubles; callers range-check.  Only
    // strtod's silent whitespace-skipping stays rejected.
    if (text.empty() || std::isspace(static_cast<unsigned char>(text.front()))) {
        return std::nullopt;
    }
    const std::string buf(text);
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(buf.c_str(), &end);
    if (errno == ERANGE) return std::nullopt;
    if (end != buf.c_str() + buf.size()) return std::nullopt;
    if (!std::isfinite(value)) return std::nullopt;  // "nan", "inf"
    return value;
}

std::optional<double> parse_nonnegative_double(std::string_view text) {
    const std::optional<double> value = parse_double(text);
    if (!value || *value < 0.0) return std::nullopt;
    return value;
}

}  // namespace adhoc::io
