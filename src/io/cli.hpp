/// \file cli.hpp
/// \brief Validated numeric command-line parsing.
///
/// `strtoull`-family calls without endptr/errno checks accept garbage
/// ("12abc" parses as 12, "abc" as 0) and `std::stoull` throws uncaught
/// exceptions straight out of main on the same inputs.  Every tool that
/// takes numeric flags goes through these helpers instead: the full token
/// must parse, overflow is rejected, and failure comes back as an empty
/// optional so the caller can print usage and exit instead of crashing.

#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace adhoc::io {

/// Parses a non-negative decimal integer.  Rejects empty tokens, leading
/// whitespace, signs, trailing junk and out-of-range values.
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view text);

/// `parse_u64` additionally clamped to size_t's range (relevant on 32-bit).
[[nodiscard]] std::optional<std::size_t> parse_size(std::string_view text);

/// Parses a finite floating-point number (decimal or scientific notation,
/// signs allowed — range-check at the call site).  Rejects empty tokens,
/// leading whitespace, trailing junk, NaN and Inf.
[[nodiscard]] std::optional<double> parse_double(std::string_view text);

/// `parse_double` additionally rejecting negative values — the shared
/// validation for intensity/duration knobs ("--churn", "--seconds", ...)
/// where a sign is always a mistake.
[[nodiscard]] std::optional<double> parse_nonnegative_double(std::string_view text);

}  // namespace adhoc::io
