#include "io/dot.hpp"

#include <ostream>
#include <sstream>

namespace adhoc {

void write_dot(std::ostream& out, const Graph& g, const NodeStyling& styling) {
    out << "graph adhoc {\n  node [shape=circle];\n";
    for (NodeId v = 0; v < g.node_count(); ++v) {
        out << "  " << v;
        std::vector<std::string> attrs;
        if (v < styling.forward.size() && styling.forward[v]) {
            attrs.push_back("style=filled, fillcolor=black, fontcolor=white");
        }
        if (v == styling.source) attrs.push_back("shape=doublecircle");
        if (!attrs.empty()) {
            out << " [";
            for (std::size_t i = 0; i < attrs.size(); ++i) {
                if (i > 0) out << ", ";
                out << attrs[i];
            }
            out << ']';
        }
        out << ";\n";
    }
    for (const Edge& e : g.edges()) out << "  " << e.a << " -- " << e.b << ";\n";
    out << "}\n";
}

std::string to_dot_string(const Graph& g, const NodeStyling& styling) {
    std::ostringstream out;
    write_dot(out, g, styling);
    return out.str();
}

}  // namespace adhoc
