/// \file dot.hpp
/// \brief Graphviz DOT export with forward-node highlighting.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace adhoc {

/// Node decoration for DOT/SVG output.
struct NodeStyling {
    std::vector<char> forward;   ///< filled black in the plot
    NodeId source = kInvalidNode;  ///< drawn as a double circle
};

/// Writes an undirected DOT graph; forward nodes are filled.
void write_dot(std::ostream& out, const Graph& g, const NodeStyling& styling = {});

[[nodiscard]] std::string to_dot_string(const Graph& g, const NodeStyling& styling = {});

}  // namespace adhoc
