#include "io/edge_list.hpp"

#include <sstream>

namespace adhoc {

void write_edge_list(std::ostream& out, const Graph& g) {
    out << "n " << g.node_count() << '\n';
    for (const Edge& e : g.edges()) out << e.a << ' ' << e.b << '\n';
}

std::optional<Graph> read_edge_list(std::istream& in, std::string* error) {
    auto fail = [&](const std::string& what) -> std::optional<Graph> {
        if (error != nullptr) *error = what;
        return std::nullopt;
    };

    std::string line;
    std::optional<Graph> graph;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#') continue;
        std::istringstream ls(line);
        if (!graph) {
            std::string tag;
            std::size_t n = 0;
            if (!(ls >> tag >> n) || tag != "n") {
                return fail("line " + std::to_string(lineno) + ": expected 'n <count>'");
            }
            graph.emplace(n);
            continue;
        }
        NodeId a = 0, b = 0;
        if (!(ls >> a >> b)) {
            return fail("line " + std::to_string(lineno) + ": expected 'u v'");
        }
        if (!graph->contains(a) || !graph->contains(b) || a == b) {
            return fail("line " + std::to_string(lineno) + ": invalid edge");
        }
        graph->add_edge(a, b);
    }
    if (!graph) return fail("empty input: missing 'n <count>' header");
    return graph;
}

std::string to_edge_list_string(const Graph& g) {
    std::ostringstream out;
    write_edge_list(out, g);
    return out.str();
}

std::optional<Graph> from_edge_list_string(const std::string& text, std::string* error) {
    std::istringstream in(text);
    return read_edge_list(in, error);
}

}  // namespace adhoc
