/// \file edge_list.hpp
/// \brief Plain-text graph serialization.
///
/// Format: first non-comment line `n <node_count>`, then one `u v` pair per
/// line.  Lines starting with '#' are comments.  Used by examples to load
/// the paper's toy networks and by tests for round-trip checks.

#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/graph.hpp"

namespace adhoc {

/// Writes `g` as an edge list.
void write_edge_list(std::ostream& out, const Graph& g);

/// Parses an edge list; returns nullopt (with a message in `error` when
/// non-null) on malformed input.
[[nodiscard]] std::optional<Graph> read_edge_list(std::istream& in,
                                                  std::string* error = nullptr);

/// Round-trip convenience for strings.
[[nodiscard]] std::string to_edge_list_string(const Graph& g);
[[nodiscard]] std::optional<Graph> from_edge_list_string(const std::string& text,
                                                         std::string* error = nullptr);

}  // namespace adhoc
