#include "io/svg.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>

namespace adhoc {

void write_svg(std::ostream& out, const Graph& g, const std::vector<Point2D>& positions,
               const SvgOptions& options) {
    assert(positions.size() == g.node_count());
    const BoundingBox box = bounding_box(positions);
    const double span_x = std::max(box.max.x - box.min.x, 1e-9);
    const double span_y = std::max(box.max.y - box.min.y, 1e-9);
    const double inner = options.canvas - 2.0 * options.margin;
    const double scale = inner / std::max(span_x, span_y);

    auto px = [&](const Point2D& p) {
        return options.margin + (p.x - box.min.x) * scale;
    };
    auto py = [&](const Point2D& p) {
        // SVG y grows downward; flip so plots match the paper's orientation.
        return options.canvas - options.margin - (p.y - box.min.y) * scale;
    };

    out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.canvas
        << "\" height=\"" << options.canvas << "\" viewBox=\"0 0 " << options.canvas << ' '
        << options.canvas << "\">\n";
    out << "  <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
    if (!options.title.empty()) {
        out << "  <text x=\"" << options.margin << "\" y=\"16\" font-size=\"13\" "
            << "font-family=\"sans-serif\">" << options.title << "</text>\n";
    }

    for (const Edge& e : g.edges()) {
        out << "  <line x1=\"" << px(positions[e.a]) << "\" y1=\"" << py(positions[e.a])
            << "\" x2=\"" << px(positions[e.b]) << "\" y2=\"" << py(positions[e.b])
            << "\" stroke=\"#bbbbbb\" stroke-width=\"0.7\"/>\n";
    }

    for (NodeId v = 0; v < g.node_count(); ++v) {
        const double x = px(positions[v]);
        const double y = py(positions[v]);
        const bool fwd = v < options.forward.size() && options.forward[v];
        if (v == options.source) {
            out << "  <circle cx=\"" << x << "\" cy=\"" << y
                << "\" r=\"6\" fill=\"red\" stroke=\"black\"/>\n";
        } else if (fwd) {
            out << "  <rect x=\"" << x - 3.5 << "\" y=\"" << y - 3.5
                << "\" width=\"7\" height=\"7\" fill=\"black\"/>\n";
        } else {
            out << "  <path d=\"M " << x - 3 << ' ' << y << " H " << x + 3 << " M " << x << ' '
                << y - 3 << " V " << y + 3 << "\" stroke=\"#336699\" stroke-width=\"1.2\"/>\n";
        }
    }
    out << "</svg>\n";
}

std::string to_svg_string(const Graph& g, const std::vector<Point2D>& positions,
                          const SvgOptions& options) {
    std::ostringstream out;
    write_svg(out, g, positions, options);
    return out.str();
}

std::vector<double> receive_times_from_trace(std::size_t node_count, const Trace& trace,
                                             NodeId source) {
    std::vector<double> times(node_count, -1.0);
    if (source < node_count) times[source] = 0.0;
    for (const TraceEvent& e : trace.events()) {
        if (e.kind == TraceKind::kReceive && e.node < node_count && times[e.node] < 0.0) {
            times[e.node] = e.time;
        }
    }
    return times;
}

void write_svg_timeline(std::ostream& out, const Graph& g,
                        const std::vector<Point2D>& positions,
                        const TimelineOptions& options) {
    assert(positions.size() == g.node_count());
    assert(options.receive_time.size() == g.node_count());
    const BoundingBox box = bounding_box(positions);
    const double span_x = std::max(box.max.x - box.min.x, 1e-9);
    const double span_y = std::max(box.max.y - box.min.y, 1e-9);
    const double inner = options.canvas - 2.0 * options.margin;
    const double scale = inner / std::max(span_x, span_y);
    auto px = [&](const Point2D& p) { return options.margin + (p.x - box.min.x) * scale; };
    auto py = [&](const Point2D& p) {
        return options.canvas - options.margin - (p.y - box.min.y) * scale;
    };

    double max_time = 1e-9;
    for (double t : options.receive_time) max_time = std::max(max_time, t);

    out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.canvas
        << "\" height=\"" << options.canvas << "\" viewBox=\"0 0 " << options.canvas << ' '
        << options.canvas << "\">\n";
    out << "  <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
    if (!options.title.empty()) {
        out << "  <text x=\"" << options.margin << "\" y=\"16\" font-size=\"13\" "
            << "font-family=\"sans-serif\">" << options.title << "</text>\n";
    }
    for (const Edge& e : g.edges()) {
        out << "  <line x1=\"" << px(positions[e.a]) << "\" y1=\"" << py(positions[e.a])
            << "\" x2=\"" << px(positions[e.b]) << "\" y2=\"" << py(positions[e.b])
            << "\" stroke=\"#dddddd\" stroke-width=\"0.7\"/>\n";
    }
    for (NodeId v = 0; v < g.node_count(); ++v) {
        const double x = px(positions[v]);
        const double y = py(positions[v]);
        const double t = options.receive_time[v];
        const bool fwd = v < options.forward.size() && options.forward[v];
        if (t < 0.0) {  // never reached: hollow marker
            out << "  <circle cx=\"" << x << "\" cy=\"" << y
                << "\" r=\"4\" fill=\"none\" stroke=\"#999999\"/>\n";
            continue;
        }
        // Early = warm red, late = cool blue (linear hue interpolation).
        const double f = t / max_time;
        const int r = static_cast<int>(220.0 * (1.0 - f) + 40.0 * f);
        const int b = static_cast<int>(40.0 * (1.0 - f) + 220.0 * f);
        out << "  <circle cx=\"" << x << "\" cy=\"" << y << "\" r=\""
            << (v == options.source ? 6 : 4) << "\" fill=\"rgb(" << r << ",60," << b << ")\"";
        if (fwd) out << " stroke=\"black\" stroke-width=\"1.5\"";
        out << "/>\n";
    }
    out << "</svg>\n";
}

}  // namespace adhoc
