/// \file svg.hpp
/// \brief SVG rendering of deployed networks — the Figure 9 reproduction.
///
/// Draws the deployment area, links, and the node classification the
/// paper's Figure 9 uses: plus marks for non-forward nodes, filled squares
/// for forward nodes, a distinguished source marker.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/geometry.hpp"
#include "graph/graph.hpp"
#include "sim/trace.hpp"

namespace adhoc {

struct SvgOptions {
    double canvas = 640.0;        ///< output square size in px
    double margin = 24.0;
    std::vector<char> forward;    ///< forward nodes (filled squares)
    NodeId source = kInvalidNode;
    std::string title;
};

/// Writes an SVG plot of `g` deployed at `positions`.
void write_svg(std::ostream& out, const Graph& g, const std::vector<Point2D>& positions,
               const SvgOptions& options = {});

[[nodiscard]] std::string to_svg_string(const Graph& g, const std::vector<Point2D>& positions,
                                        const SvgOptions& options = {});

/// Time-lapse rendering: nodes colored by first-receive time (early =
/// warm, late = cool, never = hollow), forward nodes outlined.  Pass the
/// per-node receive times (negative = never) and the transmit mask.
struct TimelineOptions {
    double canvas = 640.0;
    double margin = 24.0;
    std::vector<double> receive_time;  ///< first receipt; < 0 = never
    std::vector<char> forward;
    NodeId source = kInvalidNode;
    std::string title;
};

void write_svg_timeline(std::ostream& out, const Graph& g,
                        const std::vector<Point2D>& positions, const TimelineOptions& options);

/// Extracts per-node first-receive times from a traced broadcast result
/// (the source gets time 0; unreached nodes get -1).
[[nodiscard]] std::vector<double> receive_times_from_trace(std::size_t node_count,
                                                           const Trace& trace, NodeId source);

}  // namespace adhoc
