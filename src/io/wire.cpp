#include "io/wire.hpp"

#include <cassert>

namespace adhoc {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t x) {
    out.push_back(static_cast<std::uint8_t>(x));
    out.push_back(static_cast<std::uint8_t>(x >> 8));
    out.push_back(static_cast<std::uint8_t>(x >> 16));
    out.push_back(static_cast<std::uint8_t>(x >> 24));
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t x) {
    out.push_back(static_cast<std::uint8_t>(x));
    out.push_back(static_cast<std::uint8_t>(x >> 8));
}

/// Bounds-checked cursor over the input buffer.
class Reader {
  public:
    explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(&bytes) {}

    [[nodiscard]] std::optional<std::uint8_t> u8() {
        if (pos_ + 1 > bytes_->size()) return std::nullopt;
        return (*bytes_)[pos_++];
    }
    [[nodiscard]] std::optional<std::uint16_t> u16() {
        if (pos_ + 2 > bytes_->size()) return std::nullopt;
        const std::uint16_t x = static_cast<std::uint16_t>(
            (*bytes_)[pos_] | ((*bytes_)[pos_ + 1] << 8));
        pos_ += 2;
        return x;
    }
    [[nodiscard]] std::optional<std::uint32_t> u32() {
        if (pos_ + 4 > bytes_->size()) return std::nullopt;
        const std::uint32_t x = static_cast<std::uint32_t>((*bytes_)[pos_]) |
                                (static_cast<std::uint32_t>((*bytes_)[pos_ + 1]) << 8) |
                                (static_cast<std::uint32_t>((*bytes_)[pos_ + 2]) << 16) |
                                (static_cast<std::uint32_t>((*bytes_)[pos_ + 3]) << 24);
        pos_ += 4;
        return x;
    }
    [[nodiscard]] bool exhausted() const noexcept { return pos_ == bytes_->size(); }

  private:
    const std::vector<std::uint8_t>* bytes_;
    std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> encode_state(const BroadcastState& state) {
    assert(state.history.size() <= 255);
    assert(state.sender_two_hop.size() <= 65535);
    std::vector<std::uint8_t> out;
    out.reserve(encoded_size(state));
    out.push_back(static_cast<std::uint8_t>(state.history.size()));
    for (const VisitedRecord& rec : state.history) {
        assert(rec.designated.size() <= 255);
        put_u32(out, rec.node);
        out.push_back(static_cast<std::uint8_t>(rec.designated.size()));
        for (NodeId d : rec.designated) put_u32(out, d);
    }
    put_u16(out, static_cast<std::uint16_t>(state.sender_two_hop.size()));
    for (NodeId x : state.sender_two_hop) put_u32(out, x);
    return out;
}

std::optional<BroadcastState> decode_state(const std::vector<std::uint8_t>& bytes) {
    Reader reader(bytes);
    BroadcastState state;

    const auto records = reader.u8();
    if (!records) return std::nullopt;
    state.history.reserve(*records);
    for (std::size_t i = 0; i < *records; ++i) {
        VisitedRecord rec;
        const auto node = reader.u32();
        const auto count = reader.u8();
        if (!node || !count) return std::nullopt;
        rec.node = *node;
        rec.designated.reserve(*count);
        for (std::size_t j = 0; j < *count; ++j) {
            const auto d = reader.u32();
            if (!d) return std::nullopt;
            rec.designated.push_back(*d);
        }
        state.history.push_back(std::move(rec));
    }
    const auto two_hop = reader.u16();
    if (!two_hop) return std::nullopt;
    state.sender_two_hop.reserve(*two_hop);
    for (std::size_t i = 0; i < *two_hop; ++i) {
        const auto x = reader.u32();
        if (!x) return std::nullopt;
        state.sender_two_hop.push_back(*x);
    }
    if (!reader.exhausted()) return std::nullopt;  // trailing garbage
    return state;
}

std::size_t encoded_size(const BroadcastState& state) {
    std::size_t bytes = 1 + 2;  // record count + two-hop count
    for (const VisitedRecord& rec : state.history) {
        bytes += 4 + 1 + 4 * rec.designated.size();
    }
    bytes += 4 * state.sender_two_hop.size();
    return bytes;
}

}  // namespace adhoc
