/// \file wire.hpp
/// \brief Wire format for the piggybacked broadcast state.
///
/// Grounds the overhead accounting (Section 4.3: "the broadcast packet
/// needs to be kept relatively small") in an actual byte encoding: node
/// ids are 32-bit little-endian, lists are length-prefixed.  Layout:
///
///   u8  record_count
///   repeated record:
///     u32 node id
///     u8  designated_count,  u32 designated ids...
///   u16 two_hop_count, u32 two-hop ids...            (TDP only; 0 else)
///
/// `encode`/`decode` round-trip exactly, and `encoded_size` agrees with
/// `piggyback_bytes` up to the fixed framing bytes (tested).

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/packet.hpp"

namespace adhoc {

/// Serializes `state` to bytes.  Precondition: at most 255 history
/// records, 255 designated per record, 65535 two-hop entries.
[[nodiscard]] std::vector<std::uint8_t> encode_state(const BroadcastState& state);

/// Parses bytes back into a BroadcastState; nullopt on malformed or
/// truncated input (never reads out of bounds).
[[nodiscard]] std::optional<BroadcastState> decode_state(
    const std::vector<std::uint8_t>& bytes);

/// Exact on-the-wire size of `state` without encoding it.
[[nodiscard]] std::size_t encoded_size(const BroadcastState& state);

}  // namespace adhoc
