#include "runner/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <utility>

#include "graph/unit_disk.hpp"
#include "runner/seed.hpp"
#include "runner/thread_pool.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/telemetry.hpp"

namespace adhoc::runner {

namespace {

namespace tel = telemetry;

const tel::MetricId kRunTimer = tel::timer("campaign.run");
const tel::MetricId kRuns = tel::counter("campaign.runs", "runs");
const tel::MetricId kRounds = tel::counter("campaign.rounds", "rounds");

/// Single-run Welford partials, one slot per algorithm.  Produced on a
/// worker, merged into the cell accumulators in run-index order.
struct RunPartial {
    std::vector<Summary> forward;
    std::vector<Summary> completion;
    std::vector<char> delivered;
    tel::Snapshot telemetry;  ///< everything recorded during this run
};

struct CellState {
    std::size_t node_count = 0;
    std::size_t runs_done = 0;
    std::vector<Summary> forward;
    std::vector<Summary> completion;
    std::vector<std::size_t> failures;
    tel::Snapshot telemetry;                   ///< run snapshots, run-index order
    std::vector<RunPartial> round;             ///< storage for the in-flight round
    std::atomic<std::size_t> round_remaining{0};
    bool done = false;
};

class CampaignExecutor {
  public:
    CampaignExecutor(const std::vector<const BroadcastAlgorithm*>& algorithms,
                     const ExperimentConfig& config, const CampaignOptions& options,
                     ThreadPool& pool)
        : algorithms_(algorithms), config_(config), options_(options), pool_(pool) {
        cells_.reserve(config.node_counts.size());
        for (std::size_t n : config.node_counts) {
            auto cell = std::make_unique<CellState>();
            cell->node_count = n;
            cell->forward.resize(algorithms.size());
            cell->completion.resize(algorithms.size());
            cell->failures.assign(algorithms.size(), 0);
            cells_.push_back(std::move(cell));
        }
    }

    std::vector<AlgorithmSeries> execute() {
        for (auto& cell : cells_) {
            const std::size_t first = round_size(*cell);
            if (first == 0) {  // max_runs == 0: empty cell
                std::lock_guard<std::mutex> lock(mutex_);
                finish_cell_locked(*cell);
            } else {
                launch_round(*cell, first);
            }
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            all_done_.wait(lock, [this] {
                return outstanding_ == 0 && (error_ || cells_done_ == cells_.size());
            });
        }
        if (error_) std::rethrow_exception(error_);

        if (options_.telemetry_out) {
            tel::Snapshot aggregate;
            for (const auto& cell : cells_) aggregate.merge(cell->telemetry);
            aggregate.merge(extra_telemetry_);
            *options_.telemetry_out = std::move(aggregate);
        }

        std::vector<AlgorithmSeries> series(algorithms_.size());
        for (std::size_t a = 0; a < algorithms_.size(); ++a) {
            series[a].name = algorithms_[a]->name();
            series[a].points.reserve(cells_.size());
            for (const auto& cell : cells_) {
                SeriesPoint p;
                p.node_count = cell->node_count;
                p.mean_forward = cell->forward[a].mean();
                p.ci_half_width = cell->forward[a].ci_half_width(config_.ci_z);
                p.mean_completion_time = cell->completion[a].mean();
                p.runs = cell->runs_done;
                p.delivery_failures = cell->failures[a];
                series[a].points.push_back(p);
            }
        }
        return series;
    }

  private:
    /// Runs per round: `min_runs` tasks at a time (jobs-independent),
    /// clamped so the cell never exceeds `max_runs`.
    [[nodiscard]] std::size_t round_size(const CellState& cell) const {
        const std::size_t batch = std::max<std::size_t>(config_.min_runs, 1);
        const std::size_t left = config_.max_runs - std::min(cell.runs_done, config_.max_runs);
        return std::min(batch, left);
    }

    void launch_round(CellState& cell, std::size_t size) {
        cell.round.assign(size, RunPartial{});
        cell.round_remaining.store(size, std::memory_order_release);
        outstanding_.fetch_add(size, std::memory_order_release);
        const std::size_t base = cell.runs_done;
        for (std::size_t slot = 0; slot < size; ++slot) {
            pool_.submit([this, &cell, slot, run_index = base + slot] {
                run_task(cell, slot, run_index);
            });
        }
    }

    void run_task(CellState& cell, std::size_t slot, std::size_t run_index) noexcept {
        try {
            execute_run(cell, slot, run_index);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!error_) error_ = std::current_exception();
        }
        if (cell.round_remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            complete_round(cell);
        }
        if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(mutex_);
            all_done_.notify_all();
        }
    }

    void execute_run(CellState& cell, std::size_t slot, std::size_t run_index) {
        RunPartial partial;
        partial.forward.resize(algorithms_.size());
        partial.completion.resize(algorithms_.size());
        partial.delivered.assign(algorithms_.size(), 1);

        {
            tel::RunScope scope;  // captures this run's metrics on this worker
            {
                tel::ScopedTimer span(kRunTimer);  // must end before harvest()
                tel::count(kRuns);

                Rng run_rng(derive_run_seed(config_.seed, cell.node_count,
                                            config_.average_degree, run_index));
                UnitDiskParams params;
                params.node_count = cell.node_count;
                params.average_degree = config_.average_degree;
                params.area_side = config_.area_side;
                const UnitDiskNetwork net = generate_network_checked(params, run_rng);
                const NodeId source =
                    static_cast<NodeId>(run_rng.index(net.graph.node_count()));

                for (std::size_t a = 0; a < algorithms_.size(); ++a) {
                    Rng algo_rng = run_rng.fork();
                    const BroadcastResult result =
                        algorithms_[a]->broadcast(net.graph, source, algo_rng);
                    partial.forward[a].add(static_cast<double>(result.forward_count));
                    partial.completion[a].add(result.completion_time);
                    partial.delivered[a] = result.full_delivery ? 1 : 0;
                }
            }
            partial.telemetry = scope.harvest();
        }
        if (tel::jsonl_enabled()) {
            tel::jsonl_write_run("campaign.run",
                                 {{"n", static_cast<std::uint64_t>(cell.node_count)},
                                  {"run", static_cast<std::uint64_t>(run_index)}},
                                 partial.telemetry);
        }
        cell.round[slot] = std::move(partial);
    }

    /// Called by the last task of a round; no other thread touches the cell
    /// until the next round is launched, so merging needs no cell lock.
    void complete_round(CellState& cell) {
        for (const RunPartial& partial : cell.round) {  // run-index order
            if (partial.forward.empty()) continue;      // run aborted by exception
            for (std::size_t a = 0; a < algorithms_.size(); ++a) {
                cell.forward[a].merge(partial.forward[a]);
                cell.completion[a].merge(partial.completion[a]);
                if (!partial.delivered[a]) ++cell.failures[a];
            }
            cell.telemetry.merge(partial.telemetry);
        }
        cell.runs_done += cell.round.size();
        cell.round.clear();

        bool stop = cell.runs_done >= config_.max_runs;
        if (!stop && cell.runs_done >= config_.min_runs) {
            stop = std::all_of(cell.forward.begin(), cell.forward.end(), [this](const Summary& s) {
                return s.ci_within(config_.ci_fraction, config_.ci_z, config_.min_runs,
                                   config_.ci_abs_epsilon);
            });
        }

        std::unique_lock<std::mutex> lock(mutex_);
        if (tel::enabled()) extra_telemetry_.add_count(kRounds);
        if (error_) stop = true;  // abort: stop scheduling new work
        if (stop) {
            finish_cell_locked(cell);
            report_progress_locked();
        } else {
            report_progress_locked();
            lock.unlock();
            launch_round(cell, round_size(cell));
        }
    }

    void finish_cell_locked(CellState& cell) {
        assert(!cell.done);
        cell.done = true;
        ++cells_done_;
        if (cells_done_ == cells_.size()) all_done_.notify_all();
    }

    void report_progress_locked() {
        if (!options_.on_progress) return;
        CampaignProgress progress;
        progress.cells_total = cells_.size();
        progress.cells_done = cells_done_;
        for (const auto& cell : cells_) progress.runs_done += cell->runs_done;
        options_.on_progress(progress);
    }

    const std::vector<const BroadcastAlgorithm*>& algorithms_;
    const ExperimentConfig& config_;
    const CampaignOptions& options_;
    ThreadPool& pool_;

    std::vector<std::unique_ptr<CellState>> cells_;
    tel::Snapshot extra_telemetry_;  ///< campaign-level counts, guarded by mutex_
    std::atomic<std::size_t> outstanding_{0};
    std::mutex mutex_;
    std::condition_variable all_done_;
    std::size_t cells_done_ = 0;
    std::exception_ptr error_;
};

}  // namespace

std::vector<AlgorithmSeries> run_campaign(
    const std::vector<const BroadcastAlgorithm*>& algorithms, const ExperimentConfig& config,
    const CampaignOptions& options) {
    assert(!algorithms.empty());
    ThreadPool pool(options.jobs);
    CampaignExecutor executor(algorithms, config, options, pool);
    return executor.execute();
}

}  // namespace adhoc::runner
