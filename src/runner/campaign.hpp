/// \file campaign.hpp
/// \brief Sharded Monte Carlo campaign execution.
///
/// A campaign decomposes a sweep (the cross product of node counts and one
/// density, repeated under the paper's CI stopping rule) into independent
/// (cell, run) tasks and shards them across a work-stealing thread pool.
///
/// Determinism contract: results are bit-for-bit identical at any `jobs`
/// value, including 1.  Three mechanisms guarantee it:
///   1. counter-based seeding — each run's RNG seed is a pure splitmix64
///      hash of (base seed, node count, degree, run index), never a draw
///      from shared RNG state (see seed.hpp);
///   2. jobs-independent scheduling — each cell advances in fixed-size
///      rounds (`min_runs` tasks per round) and the paper's 90%-CI-within-
///      ±1% stopping rule is re-evaluated only at round boundaries, so the
///      set of runs executed does not depend on thread timing;
///   3. ordered aggregation — per-run Welford partials are merged into the
///      cell accumulators in run-index order once a round completes, so
///      floating-point association is fixed.

#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "algorithms/algorithm.hpp"
#include "stats/experiment.hpp"
#include "telemetry/telemetry.hpp"

namespace adhoc::runner {

/// Snapshot passed to the progress callback after every completed round.
struct CampaignProgress {
    std::size_t cells_total = 0;
    std::size_t cells_done = 0;
    std::size_t runs_done = 0;  ///< completed runs across all cells so far
};

struct CampaignOptions {
    /// Worker threads; 0 means ThreadPool::default_jobs().  Any value
    /// yields identical results — it only changes wall-clock time.
    std::size_t jobs = 1;

    /// Invoked under the campaign lock after each round; keep it cheap.
    std::function<void(const CampaignProgress&)> on_progress;

    /// When set (and telemetry is enabled), receives the campaign-level
    /// metric aggregate: per-run snapshots harvested on the workers and
    /// merged in run-index order — the same ordered-merge discipline as
    /// the Welford statistics, so the integer metrics are bit-identical
    /// at any `jobs` value (wall-clock timers excluded, see sinks.hpp).
    telemetry::Snapshot* telemetry_out = nullptr;
};

/// Runs the paired sweep of `config` sharded over a thread pool and returns
/// one series per algorithm, exactly as `run_sweep` does.  Algorithms are
/// shared across workers and must be stateless under `broadcast` (true for
/// every algorithm in the repository: per-topology state lives inside the
/// call).  Exceptions thrown by a run task abort the campaign and are
/// rethrown on the calling thread.
[[nodiscard]] std::vector<AlgorithmSeries> run_campaign(
    const std::vector<const BroadcastAlgorithm*>& algorithms, const ExperimentConfig& config,
    const CampaignOptions& options);

}  // namespace adhoc::runner
