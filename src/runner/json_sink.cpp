#include "runner/json_sink.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace adhoc::runner {

namespace {

/// Shortest round-trippable rendering of a double; JSON has no NaN/Inf, so
/// those (never produced by the stats layer) degrade to null.
void write_number(std::ostream& out, double x) {
    if (!std::isfinite(x)) {
        out << "null";
        return;
    }
    if (x == std::floor(x) && std::fabs(x) < 1e15) {
        char integral[32];
        std::snprintf(integral, sizeof(integral), "%.0f", x);
        out << integral;
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", x);
    // Trim to the shortest representation that still round-trips.
    for (int precision = 1; precision < 17; ++precision) {
        char shorter[32];
        std::snprintf(shorter, sizeof(shorter), "%.*g", precision, x);
        double parsed = 0.0;
        std::sscanf(shorter, "%lf", &parsed);
        if (parsed == x) {
            out << shorter;
            return;
        }
    }
    out << buf;
}

}  // namespace

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

void write_bench_json(std::ostream& out, const BenchRunInfo& info,
                      const std::vector<PanelResult>& panels) {
    out << "{\n";
    out << "  \"schema\": \"adhoc-bench-v1\",\n";
    out << "  \"bench\": \"" << json_escape(info.name) << "\",\n";
    out << "  \"seed\": " << info.seed << ",\n";
    out << "  \"jobs\": " << info.jobs << ",\n";
    out << "  \"min_runs\": " << info.min_runs << ",\n";
    out << "  \"max_runs\": " << info.max_runs << ",\n";
    out << "  \"wall_time_seconds\": ";
    write_number(out, info.wall_seconds);
    out << ",\n";
    out << "  \"delivery_failures\": " << info.delivery_failures << ",\n";
    if (!info.metrics_json.empty()) {
        out << "  \"metrics\": " << info.metrics_json << ",\n";
    }
    out << "  \"panels\": [";
    for (std::size_t p = 0; p < panels.size(); ++p) {
        const PanelResult& panel = panels[p];
        out << (p == 0 ? "\n" : ",\n");
        out << "    {\n";
        out << "      \"title\": \"" << json_escape(panel.title) << "\",\n";
        out << "      \"average_degree\": ";
        write_number(out, panel.average_degree);
        out << ",\n";
        out << "      \"series\": [";
        for (std::size_t s = 0; s < panel.series.size(); ++s) {
            const AlgorithmSeries& series = panel.series[s];
            out << (s == 0 ? "\n" : ",\n");
            out << "        {\n";
            out << "          \"name\": \"" << json_escape(series.name) << "\",\n";
            out << "          \"points\": [";
            for (std::size_t i = 0; i < series.points.size(); ++i) {
                const SeriesPoint& point = series.points[i];
                out << (i == 0 ? "\n" : ",\n");
                out << "            {\"n\": " << point.node_count << ", \"mean_forward\": ";
                write_number(out, point.mean_forward);
                out << ", \"ci_half_width\": ";
                write_number(out, point.ci_half_width);
                out << ", \"mean_completion_time\": ";
                write_number(out, point.mean_completion_time);
                out << ", \"runs\": " << point.runs
                    << ", \"delivery_failures\": " << point.delivery_failures << "}";
            }
            out << "\n          ]\n        }";
        }
        out << "\n      ]\n    }";
    }
    out << "\n  ]\n}\n";
}

void write_micro_json(std::ostream& out, const MicroRunInfo& info,
                      const std::vector<MicroKernelResult>& kernels) {
    out << "{\n";
    out << "  \"schema\": \"adhoc-micro-v1\",\n";
    out << "  \"bench\": \"" << json_escape(info.name) << "\",\n";
    out << "  \"seed\": " << info.seed << ",\n";
    out << "  \"smoke\": " << (info.smoke ? "true" : "false") << ",\n";
    out << "  \"wall_time_seconds\": ";
    write_number(out, info.wall_seconds);
    out << ",\n";
    out << "  \"kernels\": [";
    for (std::size_t i = 0; i < kernels.size(); ++i) {
        const MicroKernelResult& k = kernels[i];
        out << (i == 0 ? "\n" : ",\n");
        out << "    {\"name\": \"" << json_escape(k.name) << "\", \"n\": " << k.n
            << ", \"reps\": " << k.reps << ", \"ref_ns\": ";
        write_number(out, k.ref_ns);
        out << ", \"opt_ns\": ";
        write_number(out, k.opt_ns);
        out << ", \"speedup\": ";
        write_number(out, k.speedup);
        out << ", \"match\": " << (k.match ? "true" : "false") << "}";
    }
    out << "\n  ]\n}\n";
}

}  // namespace adhoc::runner
