/// \file json_sink.hpp
/// \brief Machine-readable bench results: the BENCH_*.json sink.
///
/// Every bench binary can mirror its tables into one JSON document (flag
/// `--json PATH`), so sweeps become diffable artifacts that CI and plotting
/// scripts consume without scraping stdout.  Schema `adhoc-bench-v1`:
///
/// {
///   "schema": "adhoc-bench-v1",
///   "bench": "fig10_timing",            // binary/campaign entry name
///   "seed": 42, "jobs": 8,
///   "min_runs": 30, "max_runs": 200,
///   "wall_time_seconds": 1.234,
///   "delivery_failures": 0,             // total across panels; must be 0
///   "metrics": { ... },                 // optional: campaign telemetry aggregate
///                                       // (telemetry/sinks.hpp, timing excluded)
///   "panels": [
///     { "title": "d=6, 2-hop", "average_degree": 6,
///       "series": [
///         { "name": "Static",
///           "points": [ { "n": 20, "mean_forward": ..., "ci_half_width": ...,
///                         "mean_completion_time": ..., "runs": ...,
///                         "delivery_failures": ... } ] } ] } ]
/// }

#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "stats/experiment.hpp"

namespace adhoc::runner {

/// One printed table panel (a density within a figure).
struct PanelResult {
    std::string title;
    double average_degree = 0.0;
    std::vector<AlgorithmSeries> series;
};

/// Run-level metadata recorded next to the results.
struct BenchRunInfo {
    std::string name;
    std::uint64_t seed = 0;
    std::size_t jobs = 1;
    std::size_t min_runs = 0;
    std::size_t max_runs = 0;
    double wall_seconds = 0.0;
    std::size_t delivery_failures = 0;
    /// Pre-serialized telemetry aggregate (telemetry::metrics_json with
    /// timing excluded, so the object is jobs-invariant).  Emitted verbatim
    /// as the "metrics" member when non-empty; empty = telemetry disabled.
    std::string metrics_json;
};

/// Escapes a string for inclusion inside a JSON string literal.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Writes the full document (pretty-printed, trailing newline).
void write_bench_json(std::ostream& out, const BenchRunInfo& info,
                      const std::vector<PanelResult>& panels);

/// One kernel measurement from bench_micro (schema `adhoc-micro-v1`):
/// reference vs optimized implementation of the same computation, with the
/// equivalence verdict recorded next to the timings.  The regression gate
/// (tools/check_bench.py) compares `speedup` against the committed
/// baseline — ratios transfer across machines where raw ns do not.
struct MicroKernelResult {
    std::string name;      ///< kernel id, e.g. "coverage_full"
    std::size_t n = 0;     ///< problem size (node count)
    std::size_t reps = 0;  ///< timed repetitions per implementation
    double ref_ns = 0.0;   ///< mean ns per op, reference implementation
    double opt_ns = 0.0;   ///< mean ns per op, optimized implementation
    double speedup = 0.0;  ///< ref_ns / opt_ns
    bool match = false;    ///< optimized results identical to reference
};

/// Run-level metadata for the micro document.
struct MicroRunInfo {
    std::string name;
    std::uint64_t seed = 0;
    bool smoke = false;
    double wall_seconds = 0.0;
};

/// Writes the adhoc-micro-v1 document (pretty-printed, trailing newline).
void write_micro_json(std::ostream& out, const MicroRunInfo& info,
                      const std::vector<MicroKernelResult>& kernels);

}  // namespace adhoc::runner
