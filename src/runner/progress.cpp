#include "runner/progress.hpp"

#include <cstdio>
#include <ostream>
#include <utility>

namespace adhoc::runner {

ProgressMeter::ProgressMeter(std::ostream& out, std::string label)
    : out_(out),
      label_(std::move(label)),
      start_(std::chrono::steady_clock::now()),
      last_print_(start_ - std::chrono::hours(1)) {}

void ProgressMeter::update(std::size_t cells_done, std::size_t cells_total,
                           std::size_t runs_done) {
    last_cells_done_ = cells_done;
    last_cells_total_ = cells_total;
    last_runs_done_ = runs_done;
    dirty_ = true;
    const auto now = std::chrono::steady_clock::now();
    if (now - last_print_ < std::chrono::milliseconds(100) && cells_done != cells_total) {
        return;
    }
    last_print_ = now;
    render(cells_done, cells_total, runs_done);
    dirty_ = false;
}

void ProgressMeter::render(std::size_t cells_done, std::size_t cells_total,
                           std::size_t runs_done) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    char line[160];
    if (cells_done > 0 && cells_done < cells_total) {
        const double eta = elapsed * static_cast<double>(cells_total - cells_done) /
                           static_cast<double>(cells_done);
        std::snprintf(line, sizeof(line), "[%s] cell %zu/%zu, %zu runs, %.1fs elapsed, ETA %.0fs",
                      label_.c_str(), cells_done, cells_total, runs_done, elapsed, eta);
    } else {
        std::snprintf(line, sizeof(line), "[%s] cell %zu/%zu, %zu runs, %.1fs elapsed",
                      label_.c_str(), cells_done, cells_total, runs_done, elapsed);
    }
    out_ << '\r' << line << "\x1b[K" << std::flush;
}

void ProgressMeter::finish() {
    if (dirty_) render(last_cells_done_, last_cells_total_, last_runs_done_);
    out_ << '\n' << std::flush;
}

}  // namespace adhoc::runner
