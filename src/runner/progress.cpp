#include "runner/progress.hpp"

#include <cmath>
#include <cstdio>
#include <iostream>
#include <ostream>
#include <utility>

#include <unistd.h>

namespace adhoc::runner {

namespace {

/// kAuto → concrete style.  Streams other than the two standard ones have
/// no portable fd to probe, so they conservatively render plain (redirects
/// and capture buffers are the common case there).
ProgressStyle resolve(ProgressStyle style, const std::ostream& out) {
    if (style != ProgressStyle::kAuto) return style;
    int fd = -1;
    if (&out == &std::cerr || &out == &std::clog) {
        fd = STDERR_FILENO;
    } else if (&out == &std::cout) {
        fd = STDOUT_FILENO;
    }
    return (fd >= 0 && ::isatty(fd) == 1) ? ProgressStyle::kInteractive
                                          : ProgressStyle::kPlain;
}

}  // namespace

ProgressMeter::ProgressMeter(std::ostream& out, std::string label, ProgressStyle style)
    : out_(out),
      label_(std::move(label)),
      style_(resolve(style, out)),
      start_(std::chrono::steady_clock::now()),
      last_print_(start_ - std::chrono::hours(1)) {}

void ProgressMeter::update(std::size_t cells_done, std::size_t cells_total,
                           std::size_t runs_done) {
    last_cells_done_ = cells_done;
    last_cells_total_ = cells_total;
    last_runs_done_ = runs_done;
    dirty_ = true;
    const auto throttle = style_ == ProgressStyle::kInteractive
                              ? std::chrono::milliseconds(100)
                              : std::chrono::milliseconds(2000);
    const auto now = std::chrono::steady_clock::now();
    if (now - last_print_ < throttle && cells_done != cells_total) {
        return;
    }
    last_print_ = now;
    render(cells_done, cells_total, runs_done);
    dirty_ = false;
}

void ProgressMeter::render(std::size_t cells_done, std::size_t cells_total,
                           std::size_t runs_done) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    // ETA by linear extrapolation over completed cells.  Guarded: needs
    // progress to extrapolate from (cells_done > 0, a sane total, and a
    // non-trivial elapsed time so the first instants don't print noise)
    // and clamped to a finite non-negative value.
    double eta = -1.0;
    if (cells_done > 0 && cells_done < cells_total && elapsed > 0.05) {
        eta = elapsed * static_cast<double>(cells_total - cells_done) /
              static_cast<double>(cells_done);
        if (!std::isfinite(eta) || eta < 0.0) eta = -1.0;
    }
    char line[160];
    if (eta >= 0.0) {
        std::snprintf(line, sizeof(line),
                      "[%s] cell %zu/%zu, %zu runs, %.1fs elapsed, ETA %.0fs",
                      label_.c_str(), cells_done, cells_total, runs_done, elapsed, eta);
    } else {
        std::snprintf(line, sizeof(line), "[%s] cell %zu/%zu, %zu runs, %.1fs elapsed",
                      label_.c_str(), cells_done, cells_total, runs_done, elapsed);
    }
    if (style_ == ProgressStyle::kInteractive) {
        out_ << '\r' << line << "\x1b[K" << std::flush;
    } else {
        out_ << line << '\n' << std::flush;
    }
    printed_ = true;
}

void ProgressMeter::finish() {
    if (dirty_) render(last_cells_done_, last_cells_total_, last_runs_done_);
    // Plain lines are already newline-terminated; only the interactive
    // overwrite line needs closing (and only if anything was printed).
    if (style_ == ProgressStyle::kInteractive && printed_) out_ << '\n' << std::flush;
}

}  // namespace adhoc::runner
