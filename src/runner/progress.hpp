/// \file progress.hpp
/// \brief Terminal progress/ETA reporting for long campaigns (stderr).
///
/// On an interactive terminal, prints a single self-overwriting line per
/// update:
///   [fig10_timing d=6] cell 4/9, 1240 runs, 12.3s elapsed, ETA 18s
/// throttled so at most ~10 lines per second reach the terminal.  When the
/// stream is *not* a terminal (CI logs, `2>file` redirects) the `\r`
/// overwrite trick would smear every update into one unreadable line — so
/// the meter emits normal newline-terminated lines instead, throttled much
/// harder (~one line per 2 s) to keep logs small.  The style is detected
/// with isatty(2) by default and can be pinned for tests.  `finish()`
/// prints the final state and terminates the line.  Not thread-safe by
/// itself — the campaign invokes the progress callback under its own lock.

#pragma once

#include <chrono>
#include <cstddef>
#include <iosfwd>
#include <string>

namespace adhoc::runner {

/// How progress lines are rendered.
enum class ProgressStyle {
    kAuto,         ///< kInteractive when the stream is a TTY, else kPlain
    kInteractive,  ///< self-overwriting line (\r + erase), 100 ms throttle
    kPlain,        ///< newline-terminated lines, ~2 s throttle
};

class ProgressMeter {
  public:
    /// \param out    stream to write to (benches pass std::cerr).
    /// \param label  prefix identifying the campaign/panel.
    /// \param style  rendering style; kAuto consults isatty on the fd
    ///               behind `out` (only std::cerr/std::cout are
    ///               recognized; any other stream renders plain).
    ProgressMeter(std::ostream& out, std::string label,
                  ProgressStyle style = ProgressStyle::kAuto);

    /// Reports the current state; rate-limited except for completion.
    void update(std::size_t cells_done, std::size_t cells_total, std::size_t runs_done);

    /// Prints the last reported state and terminates the line.
    void finish();

    /// Style after kAuto resolution (visible for tests).
    [[nodiscard]] ProgressStyle style() const noexcept { return style_; }

  private:
    void render(std::size_t cells_done, std::size_t cells_total, std::size_t runs_done);

    std::ostream& out_;
    std::string label_;
    ProgressStyle style_;
    std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point last_print_;
    std::size_t last_cells_done_ = 0;
    std::size_t last_cells_total_ = 0;
    std::size_t last_runs_done_ = 0;
    bool dirty_ = false;
    bool printed_ = false;
};

}  // namespace adhoc::runner
