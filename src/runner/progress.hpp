/// \file progress.hpp
/// \brief Terminal progress/ETA reporting for long campaigns (stderr).
///
/// Prints a single self-overwriting line per update:
///   [fig10_timing d=6] cell 4/9, 1240 runs, 12.3s elapsed, ETA 18s
/// Throttled so at most ~10 lines per second reach the terminal; `finish()`
/// prints the final state and a newline.  Not thread-safe by itself — the
/// campaign invokes the progress callback under its own lock.

#pragma once

#include <chrono>
#include <cstddef>
#include <iosfwd>
#include <string>

namespace adhoc::runner {

class ProgressMeter {
  public:
    /// \param out    stream to write to (benches pass std::cerr).
    /// \param label  prefix identifying the campaign/panel.
    ProgressMeter(std::ostream& out, std::string label);

    /// Reports the current state; rate-limited except for completion.
    void update(std::size_t cells_done, std::size_t cells_total, std::size_t runs_done);

    /// Prints the last reported state and terminates the line.
    void finish();

  private:
    void render(std::size_t cells_done, std::size_t cells_total, std::size_t runs_done);

    std::ostream& out_;
    std::string label_;
    std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point last_print_;
    std::size_t last_cells_done_ = 0;
    std::size_t last_cells_total_ = 0;
    std::size_t last_runs_done_ = 0;
    bool dirty_ = false;
};

}  // namespace adhoc::runner
