/// \file seed.hpp
/// \brief Counter-based seed derivation for sharded Monte Carlo campaigns.
///
/// Every repetition of an experiment cell is seeded by hashing the
/// coordinates that identify it — (base seed, node count, average degree,
/// run index) — through splitmix64.  Because the seed is a pure function of
/// those coordinates and not of any shared RNG state, run i can execute on
/// any worker thread in any order and still draw exactly the network and
/// source it would have drawn serially: sweep results are bit-for-bit
/// identical at any --jobs value, including 1.

#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace adhoc::runner {

/// The splitmix64 finalizer (Steele, Lea & Flood; the JDK SplittableRandom
/// mixer).  Passes BigCrush as a counter-mode generator, which is exactly
/// how the campaign runner uses it.  Fully defined over uint64 arithmetic,
/// so values are stable across platforms and compilers.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Seed for one (cell, run) task.  The degree participates through its IEEE
/// bit pattern, which is portable for the exact config values used here.
/// Chaining the mixer per coordinate (rather than xoring all coordinates
/// into one word) keeps distinct coordinate tuples from colliding under
/// simple algebraic relations like (n+1, run-1).
[[nodiscard]] constexpr std::uint64_t derive_run_seed(std::uint64_t base_seed,
                                                      std::size_t node_count,
                                                      double average_degree,
                                                      std::uint64_t run_index) noexcept {
    std::uint64_t h = splitmix64(base_seed ^ 0xadc0c5eedULL);
    h = splitmix64(h ^ static_cast<std::uint64_t>(node_count));
    h = splitmix64(h ^ std::bit_cast<std::uint64_t>(average_degree));
    h = splitmix64(h ^ run_index);
    return h;
}

}  // namespace adhoc::runner
