#include "runner/thread_pool.hpp"

#include <cassert>
#include <utility>

namespace adhoc::runner {

namespace {

// Identifies the pool (if any) the current thread works for, so submit()
// can route continuations onto the submitting worker's own deque.
struct WorkerIdentity {
    const ThreadPool* pool = nullptr;
    std::size_t index = 0;
};
thread_local WorkerIdentity tls_worker;

}  // namespace

std::size_t ThreadPool::default_jobs() noexcept {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) threads = default_jobs();
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.push_back(std::make_unique<Worker>());
    }
    threads_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        threads_.emplace_back([this, i] { worker_loop(i); });
    }
}

ThreadPool::~ThreadPool() {
    stop_.store(true, std::memory_order_release);
    sleep_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
    assert(pending_.load() == 0);
}

void ThreadPool::submit(std::function<void()> task) {
    assert(task);
    std::size_t target;
    if (tls_worker.pool == this) {
        target = tls_worker.index;  // continuation: stay on this worker
    } else {
        target = next_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
    }
    {
        std::lock_guard<std::mutex> lock(workers_[target]->mutex);
        workers_[target]->queue.push_back(std::move(task));
    }
    pending_.fetch_add(1, std::memory_order_release);
    sleep_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, std::function<void()>& out) {
    {  // own deque: LIFO
        Worker& w = *workers_[self];
        std::lock_guard<std::mutex> lock(w.mutex);
        if (!w.queue.empty()) {
            out = std::move(w.queue.back());
            w.queue.pop_back();
            return true;
        }
    }
    // steal from victims: FIFO, starting after self to spread contention
    for (std::size_t k = 1; k < workers_.size(); ++k) {
        Worker& victim = *workers_[(self + k) % workers_.size()];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.queue.empty()) {
            out = std::move(victim.queue.front());
            victim.queue.pop_front();
            return true;
        }
    }
    return false;
}

void ThreadPool::worker_loop(std::size_t self) {
    tls_worker = {this, self};
    std::function<void()> task;
    while (true) {
        if (try_pop(self, task)) {
            pending_.fetch_sub(1, std::memory_order_release);
            task();
            task = nullptr;
            continue;
        }
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        sleep_cv_.wait(lock, [this] {
            return stop_.load(std::memory_order_acquire) ||
                   pending_.load(std::memory_order_acquire) > 0;
        });
        if (stop_.load(std::memory_order_acquire) &&
            pending_.load(std::memory_order_acquire) == 0) {
            return;
        }
    }
}

}  // namespace adhoc::runner
