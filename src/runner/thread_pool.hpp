/// \file thread_pool.hpp
/// \brief Work-stealing thread pool for the campaign runner.
///
/// Each worker owns a deque: it pushes and pops its own work LIFO (cache
/// locality for task chains that spawn continuations) and steals FIFO from
/// other workers when its deque runs dry.  Submission from a worker thread
/// lands on that worker's own deque, so round-completion continuations
/// enqueued mid-task never bounce through another thread.  The destructor
/// drains every queued task before joining.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace adhoc::runner {

class ThreadPool {
  public:
    /// Spawns `threads` workers; 0 means `default_jobs()`.
    explicit ThreadPool(std::size_t threads = 0);

    /// Drains all pending tasks, then joins the workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueues a task.  Safe to call from worker threads (tasks may submit
    /// follow-up tasks); external submissions are spread round-robin.
    void submit(std::function<void()> task);

    [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

    /// Hardware concurrency with a floor of 1 (the value `--jobs 0` maps to).
    [[nodiscard]] static std::size_t default_jobs() noexcept;

  private:
    struct Worker {
        std::mutex mutex;
        std::deque<std::function<void()>> queue;
    };

    void worker_loop(std::size_t self);
    [[nodiscard]] bool try_pop(std::size_t self, std::function<void()>& out);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;
    std::atomic<std::size_t> pending_{0};
    std::atomic<std::size_t> next_{0};
    std::atomic<bool> stop_{false};
    std::mutex sleep_mutex_;
    std::condition_variable sleep_cv_;
};

}  // namespace adhoc::runner
