/// \file arena.hpp
/// \brief Slot arena with pending-delivery refcounts for in-flight packets.
///
/// The simulator used to `push_back` every Transmission/ControlMessage into
/// an ever-growing vector for the whole run: memory scaled with *total*
/// packets sent, not packets *in flight*.  At traffic-plane and bench_scale
/// volumes (10^6+ packets per run) that is the difference between bounded
/// and unbounded RSS.
///
/// `SlotArena` hands out reusable slots: a packet's slot is pinned while
/// any scheduled delivery event still references it (one refcount per
/// queued delivery — collision- and fault-suppressed deliveries release
/// too) and is recycled through a free list the moment the last delivery
/// pops.  Live memory is bounded by the in-flight packet count, which the
/// propagation-delay window keeps small.

#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace adhoc {

template <typename T>
class SlotArena {
  public:
    /// Takes a slot (recycled if available) holding `value`.  The slot is
    /// born with a zero refcount — call `set_pending` once the number of
    /// referencing delivery events is known.
    std::size_t acquire(T value) {
        if (!free_.empty()) {
            const std::size_t slot = free_.back();
            free_.pop_back();
            slots_[slot].value = std::move(value);
            slots_[slot].pending = 0;
            ++live_;
            return slot;
        }
        slots_.push_back(Slot{std::move(value), 0});
        ++live_;
        return slots_.size() - 1;
    }

    /// Declares how many queued events reference `slot`.  A fanout of zero
    /// (every neighbor down/lossy) frees the slot immediately.
    void set_pending(std::size_t slot, std::size_t fanout) {
        assert(slot < slots_.size());
        if (fanout == 0) {
            free_slot(slot);
            return;
        }
        slots_[slot].pending = static_cast<std::uint32_t>(fanout);
    }

    /// One referencing event popped (delivered OR suppressed); frees the
    /// slot when the last reference drops.
    void release_one(std::size_t slot) {
        assert(slot < slots_.size() && slots_[slot].pending > 0);
        if (--slots_[slot].pending == 0) free_slot(slot);
    }

    [[nodiscard]] const T& operator[](std::size_t slot) const {
        return slots_[slot].value;
    }

    /// Empties the arena but keeps slot and free-list capacity (and each
    /// slot's T, whose own buffers get reused by assignment on acquire).
    void clear() {
        free_.clear();
        free_.reserve(slots_.size());
        for (std::size_t i = slots_.size(); i > 0; --i) free_.push_back(i - 1);
        live_ = 0;
    }

    void reserve(std::size_t slots) {
        slots_.reserve(slots);
        free_.reserve(slots);
    }

    [[nodiscard]] std::size_t live() const noexcept { return live_; }
    [[nodiscard]] std::size_t slot_count() const noexcept { return slots_.size(); }

  private:
    struct Slot {
        T value;
        std::uint32_t pending = 0;
    };

    void free_slot(std::size_t slot) {
        free_.push_back(slot);
        assert(live_ > 0);
        --live_;
    }

    std::vector<Slot> slots_;
    std::vector<std::size_t> free_;
    std::size_t live_ = 0;
};

}  // namespace adhoc
