#include "sim/event_queue.hpp"

#include <cassert>

namespace adhoc {

void EventQueue::push(double time, EventKind kind, NodeId node, std::size_t payload) {
    heap_.push(Event{time, next_seq_++, kind, node, payload});
}

Event EventQueue::pop() {
    assert(!heap_.empty());
    Event e = heap_.top();
    heap_.pop();
    return e;
}

const Event& EventQueue::peek() const {
    assert(!heap_.empty());
    return heap_.top();
}

void EventQueue::clear() {
    heap_ = {};
    next_seq_ = 0;
}

}  // namespace adhoc
