#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace adhoc {

void EventQueue::push(double time, EventKind kind, NodeId node, std::size_t payload) {
    Event e;
    e.time = time;
    e.seq = next_seq_++;
    e.kind = kind;
    e.node = node;
    e.payload = payload;

    if (!calendar_) {
        heap_.push_back(e);
        std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
        ++size_;
        if (size_ > kCalendarThreshold) migrate_to_calendar();
        return;
    }

    const std::uint64_t vb = vbucket(e.time);
    // An event earlier than the cursor's window would be skipped by the
    // year scan; pulling the cursor back to it is always safe (the cursor
    // may lag the minimum, never lead it).
    if (vb < cur_vb_) cur_vb_ = vb;

    auto& bucket = buckets_[vb & bucket_mask_];
    // Appending a later event — the simulator's FIFO-burst common case —
    // is O(1); only a genuinely out-of-order arrival pays an insertion.
    if (bucket.items.empty() || EventBefore{}(bucket.items.back(), e)) {
        bucket.items.push_back(e);
    } else {
        bucket.items.insert(
            std::lower_bound(bucket.items.begin() +
                                 static_cast<std::ptrdiff_t>(bucket.head),
                             bucket.items.end(), e, EventBefore{}),
            e);
    }
    ++size_;

    if (size_ > 2 * buckets_.size() && buckets_.size() < kMaxBuckets) {
        std::vector<Event> events;
        gather(events);
        std::size_t want = kMinBuckets;
        while (want < size_ && want < kMaxBuckets) want <<= 1;
        rebuild(std::move(events), want);
    }
}

Event EventQueue::pop() {
    assert(size_ > 0);
    if (!calendar_) {
        std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
        Event e = std::move(heap_.back());
        heap_.pop_back();
        --size_;
        return e;
    }

    locate();
    Event e = buckets_[cur_vb_ & bucket_mask_].pop_min();
    --size_;

    if (size_ < kCalendarThreshold / 4) {
        migrate_to_heap();
    } else if (size_ < buckets_.size() / 8 && buckets_.size() > kMinBuckets) {
        std::vector<Event> events;
        gather(events);
        std::size_t want = kMinBuckets;
        while (want < size_ && want < kMaxBuckets) want <<= 1;
        rebuild(std::move(events), want);
    }
    return e;
}

const Event& EventQueue::peek() const {
    assert(size_ > 0);
    if (!calendar_) return heap_.front();
    locate();
    return buckets_[cur_vb_ & bucket_mask_].min();
}

void EventQueue::clear() {
    heap_.clear();
    for (auto& bucket : buckets_) bucket.clear();
    calendar_ = false;
    size_ = 0;
    next_seq_ = 0;
    cur_vb_ = 0;
}

void EventQueue::reserve(std::size_t events) { heap_.reserve(events); }

void EventQueue::locate() const {
    // Year scan: walk virtual buckets from the cursor; the first bucket
    // whose minimum maps to the cursor's virtual index holds the global
    // minimum (windows are disjoint and scanned in increasing time order,
    // and the cursor never leads the minimum).
    const std::size_t buckets = buckets_.size();
    for (std::size_t scanned = 0; scanned < buckets; ++scanned, ++cur_vb_) {
        const auto& bucket = buckets_[cur_vb_ & bucket_mask_];
        if (!bucket.empty() && vbucket(bucket.min().time) == cur_vb_) return;
    }
    // Full year without a hit: every pending event lies beyond the scanned
    // window.  Direct-search the bucket minima and jump the cursor there.
    const Event* best = nullptr;
    for (const auto& bucket : buckets_) {
        if (bucket.empty()) continue;
        const Event& candidate = bucket.min();
        if (best == nullptr || EventAfter{}(*best, candidate)) best = &candidate;
    }
    assert(best != nullptr);
    cur_vb_ = vbucket(best->time);
}

void EventQueue::gather(std::vector<Event>& out) {
    out.reserve(size_);
    if (!calendar_) {
        out = std::move(heap_);
        heap_.clear();
        return;
    }
    for (auto& bucket : buckets_) {
        out.insert(out.end(),
                   bucket.items.begin() + static_cast<std::ptrdiff_t>(bucket.head),
                   bucket.items.end());
        bucket.clear();
    }
}

void EventQueue::migrate_to_calendar() {
    std::vector<Event> events;
    gather(events);
    std::size_t want = kMinBuckets;
    while (want < size_ && want < kMaxBuckets) want <<= 1;
    rebuild(std::move(events), want);
    calendar_ = true;
}

void EventQueue::migrate_to_heap() {
    std::vector<Event> events;
    gather(events);
    heap_ = std::move(events);
    std::make_heap(heap_.begin(), heap_.end(), EventAfter{});
    calendar_ = false;
}

void EventQueue::rebuild(std::vector<Event>&& events, std::size_t bucket_count) {
    assert((bucket_count & (bucket_count - 1)) == 0);
    buckets_.resize(bucket_count);
    bucket_mask_ = bucket_count - 1;

    width_ = estimate_width(events);
    inv_width_ = 1.0 / width_;

    for (const Event& e : events) {
        buckets_[vbucket(e.time) & bucket_mask_].items.push_back(e);
    }
    const Event* min_event = nullptr;
    for (auto& bucket : buckets_) {
        if (bucket.empty()) continue;
        std::sort(bucket.items.begin(), bucket.items.end(), EventBefore{});
        if (min_event == nullptr || EventAfter{}(*min_event, bucket.min())) {
            min_event = &bucket.min();
        }
    }
    cur_vb_ = min_event != nullptr ? vbucket(min_event->time) : 0;
}

double EventQueue::estimate_width(const std::vector<Event>& events) const {
    const std::size_t n = events.size();
    if (n < 2) return 1.0;

    // Sample the k earliest times — the region the cursor drains next —
    // and size buckets to ~3 mean inter-event gaps, the classic calendar
    // queue heuristic.  Depends only on the multiset of pending times, so
    // the estimate (and thus the structure) is deterministic.
    const std::size_t k = std::min<std::size_t>(n, 256);
    std::vector<double> times(n);
    double max_time = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        times[i] = events[i].time;
        max_time = std::max(max_time, events[i].time);
    }
    std::nth_element(times.begin(), times.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     times.end());
    std::sort(times.begin(), times.begin() + static_cast<std::ptrdiff_t>(k));

    double gap_sum = 0.0;
    for (std::size_t i = 1; i < k; ++i) gap_sum += times[i] - times[i - 1];
    double width = 3.0 * gap_sum / static_cast<double>(k - 1);

    // Keep the virtual bucket index (time / width) comfortably inside the
    // exactly-representable integer range of double.
    width = std::max(width, max_time * 1e-9);
    if (!(width > 0.0) || !std::isfinite(width)) width = 1.0;
    return width;
}

}  // namespace adhoc
