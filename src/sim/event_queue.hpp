/// \file event_queue.hpp
/// \brief Deterministic discrete-event queue for the broadcast simulator.
///
/// Events are ordered by (time, insertion sequence); ties in time resolve
/// in FIFO order, which makes every simulation run fully deterministic for
/// a given seed — a property the reproduction harness depends on.
///
/// Implementation: a hybrid binary-heap / calendar queue.  Small queues
/// (the paper-scale regime, a few hundred pending events) use an explicit
/// binary heap with exactly the old `std::priority_queue` semantics; once
/// the pending-event count crosses `kCalendarThreshold` the queue migrates
/// to a calendar structure — a circular array of time buckets of width
/// `width_`, each bucket an ascending (time, seq) vector behind a head
/// cursor: the bucket minimum is `items[head]`, removal advances the
/// cursor, and the overwhelmingly common append of a later event is a plain
/// `push_back` (in particular, a same-time FIFO burst costs O(1) per push
/// instead of a front-insertion memmove).  Pops walk the bucket "year"
/// cursor forward; pushes drop into `floor(time / width) mod buckets`.  With the bucket count resized to
/// track the queue size, both operations are amortized O(1) versus the
/// heap's O(log n) — the difference that makes 10^7-event runs feasible.
///
/// Both modes realize the same total order, so the pop sequence is
/// *bit-identical* to the historical heap (property-tested against a
/// reference heap in tests/scheduler_equivalence_test.cpp).  Capacity is
/// retained across `clear()` so per-run resets stop re-paying allocation.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace adhoc {

/// What an event means to the simulator loop.
enum class EventKind : std::uint8_t {
    kDelivery,  ///< a transmission arrives at `node`; payload = transmission index
    kTimer,     ///< a scheduled decision timer fires; payload = timer kind
    kControl,   ///< a control message arrives at `node`; payload = message index
    kFault,     ///< a scheduled fault fires; payload = fault-plan event index
};

struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;  ///< insertion order, breaks time ties
    EventKind kind = EventKind::kTimer;
    NodeId node = kInvalidNode;
    std::size_t payload = 0;
};

/// Strict-weak order "a fires after b" — the heap comparator.
struct EventAfter {
    bool operator()(const Event& a, const Event& b) const noexcept {
        if (a.time != b.time) return a.time > b.time;
        return a.seq > b.seq;
    }
};

/// Strict-weak order "a fires before b" — ascending calendar-bucket order.
struct EventBefore {
    bool operator()(const Event& a, const Event& b) const noexcept {
        if (a.time != b.time) return a.time < b.time;
        return a.seq < b.seq;
    }
};

/// Min-queue on (time, seq).
class EventQueue {
  public:
    void push(double time, EventKind kind, NodeId node, std::size_t payload);

    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] std::size_t size() const noexcept { return size_; }

    /// Removes and returns (moves out) the earliest event.
    /// Precondition: !empty().
    Event pop();

    /// The earliest event without removing it.  Precondition: !empty().
    [[nodiscard]] const Event& peek() const;

    /// Empties the queue and resets the insertion sequence.  Storage —
    /// heap vector and calendar buckets — keeps its capacity, so a
    /// cleared-and-refilled queue performs no fresh allocation.
    void clear();

    /// Pre-sizes storage for about `events` pending events.
    void reserve(std::size_t events);

  private:
    /// Heap size at which the queue migrates to the calendar structure.
    /// Below it the explicit binary heap is both exact (same order) and
    /// faster — calendar bookkeeping only pays off at scale.
    static constexpr std::size_t kCalendarThreshold = 4096;
    static constexpr std::size_t kMinBuckets = 1024;        // power of two
    static constexpr std::size_t kMaxBuckets = std::size_t{1} << 22;

    void migrate_to_calendar();
    void migrate_to_heap();
    void rebuild(std::vector<Event>&& events, std::size_t bucket_count);
    void gather(std::vector<Event>& out);
    [[nodiscard]] double estimate_width(const std::vector<Event>& events) const;
    /// Positions the cursor on the virtual bucket holding the global
    /// minimum.  Logically const (cursor is mutable); amortized O(1).
    void locate() const;

    /// Virtual (un-wrapped) bucket index of `time`.  Bucket placement and
    /// the cursor's in-window test both use this exact function, so float
    /// rounding at window boundaries can never disagree between them.
    [[nodiscard]] std::uint64_t vbucket(double time) const noexcept {
        double q = time * inv_width_;
        if (!(q < 4.6e18)) q = 4.6e18;  // clamp pathological quotients (and NaN)
        return static_cast<std::uint64_t>(q);
    }

    // ---- shared -----------------------------------------------------
    std::uint64_t next_seq_ = 0;
    std::size_t size_ = 0;
    bool calendar_ = false;

    // ---- heap mode --------------------------------------------------
    std::vector<Event> heap_;

    // ---- calendar mode ----------------------------------------------
    /// One calendar bucket: `items[head..)` are pending, ascending on
    /// (time, seq); the prefix before `head` is already popped and is
    /// reclaimed when the bucket drains empty.
    struct Bucket {
        std::vector<Event> items;
        std::size_t head = 0;

        [[nodiscard]] bool empty() const noexcept { return head >= items.size(); }
        [[nodiscard]] const Event& min() const noexcept { return items[head]; }
        Event pop_min() {
            Event e = std::move(items[head]);
            if (++head == items.size()) {
                items.clear();
                head = 0;
            }
            return e;
        }
        void clear() noexcept {
            items.clear();
            head = 0;
        }
    };

    std::vector<Bucket> buckets_;
    std::uint64_t bucket_mask_ = 0;            ///< buckets_.size() - 1 (power of two)
    double width_ = 1.0;                       ///< bucket time width
    double inv_width_ = 1.0;
    mutable std::uint64_t cur_vb_ = 0;         ///< cursor: virtual bucket being drained
};

}  // namespace adhoc
