/// \file event_queue.hpp
/// \brief Deterministic discrete-event queue for the broadcast simulator.
///
/// Events are ordered by (time, insertion sequence); ties in time resolve
/// in FIFO order, which makes every simulation run fully deterministic for
/// a given seed — a property the reproduction harness depends on.

#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "graph/graph.hpp"

namespace adhoc {

/// What an event means to the simulator loop.
enum class EventKind : std::uint8_t {
    kDelivery,  ///< a transmission arrives at `node`; payload = transmission index
    kTimer,     ///< a scheduled decision timer fires; payload = timer kind
    kControl,   ///< a control message arrives at `node`; payload = message index
    kFault,     ///< a scheduled fault fires; payload = fault-plan event index
};

struct Event {
    double time = 0.0;
    std::uint64_t seq = 0;  ///< insertion order, breaks time ties
    EventKind kind = EventKind::kTimer;
    NodeId node = kInvalidNode;
    std::size_t payload = 0;
};

/// Min-heap on (time, seq).
class EventQueue {
  public:
    void push(double time, EventKind kind, NodeId node, std::size_t payload);

    [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

    /// Removes and returns the earliest event.  Precondition: !empty().
    Event pop();

    /// The earliest event without removing it.  Precondition: !empty().
    [[nodiscard]] const Event& peek() const;

    void clear();

  private:
    struct Later {
        bool operator()(const Event& a, const Event& b) const noexcept {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };
    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::uint64_t next_seq_ = 0;
};

}  // namespace adhoc
