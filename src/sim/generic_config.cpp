#include "sim/generic_config.hpp"

#include <sstream>

namespace adhoc {

std::string to_string(Timing timing) {
    switch (timing) {
        case Timing::kStatic: return "Static";
        case Timing::kFirstReceipt: return "FR";
        case Timing::kRandomBackoff: return "FRB";
        case Timing::kDegreeBackoff: return "FRBD";
    }
    return "?";
}

std::string to_string(Selection selection) {
    switch (selection) {
        case Selection::kSelfPruning: return "SP";
        case Selection::kNeighborDesignating: return "ND";
        case Selection::kHybridMaxDegree: return "MaxDeg";
        case Selection::kHybridMinId: return "MinPri";
    }
    return "?";
}

std::string GenericConfig::summary() const {
    std::ostringstream out;
    out << to_string(timing) << '/' << to_string(selection) << " k=";
    if (hops == 0) {
        out << "global";
    } else {
        out << hops;
    }
    out << ' ' << to_string(priority);
    if (coverage.strong) out << " strong";
    if (coverage.max_path_hops > 0) out << " <=" << coverage.max_path_hops << "hops";
    return out.str();
}

}  // namespace adhoc
