/// \file generic_config.hpp
/// \brief Configuration of the generic broadcast scheme: the four
/// implementation axes of Section 4 (timing, selection, space, priority).
///
/// Split out of generic_protocol.hpp so that consumers that only need the
/// *configuration* — notably the windowed `ScaleEngine`, which implements
/// the honorable subset of the scheme itself — do not pull in the serial
/// simulator, agents and knowledge bases.

#pragma once

#include <cstdint>
#include <string>

#include "core/coverage.hpp"
#include "core/priority.hpp"

namespace adhoc {

/// Timing axis (Section 4.1).
enum class Timing : std::uint8_t {
    kStatic,         ///< proactive: status from static views, no broadcast state
    kFirstReceipt,   ///< decide immediately on first receipt (FR)
    kRandomBackoff,  ///< decide after a uniform random backoff (FRB)
    kDegreeBackoff,  ///< backoff proportional to 1/degree (FRBD)
};

/// Selection axis (Section 4.2).
enum class Selection : std::uint8_t {
    kSelfPruning,          ///< v decides its own status (SP)
    kNeighborDesignating,  ///< only designated nodes forward (ND)
    kHybridMaxDegree,      ///< SP + designate one max-effective-degree neighbor
    kHybridMinId,          ///< SP + designate one min-id neighbor
};

[[nodiscard]] std::string to_string(Timing timing);
[[nodiscard]] std::string to_string(Selection selection);

/// Full configuration of the generic protocol.
struct GenericConfig {
    Timing timing = Timing::kFirstReceipt;
    Selection selection = Selection::kSelfPruning;
    std::size_t hops = 2;  ///< k; 0 = global information
    PriorityScheme priority = PriorityScheme::kId;
    std::size_t history = 2;  ///< h: piggybacked visited records
    CoverageOptions coverage;  ///< strong/bounded variants for special cases
    double backoff_window = 8.0;
    /// Strict rule: a designated node always forwards.  When false, the
    /// relaxed S=1.5 rule applies (designated nodes may still prune).
    bool strict_designation = true;

    /// Short human-readable summary ("FR/SP k=2 ID"), used by benches.
    [[nodiscard]] std::string summary() const;
};

}  // namespace adhoc
