#include "sim/generic_protocol.hpp"

#include <cassert>
#include <sstream>

#include "graph/khop.hpp"
#include "telemetry/telemetry.hpp"

namespace adhoc {

namespace {

namespace tel = telemetry;

const tel::MetricId kDecisions = tel::counter("protocol.decisions", "events");
const tel::MetricId kStaleDecisions = tel::counter("protocol.stale_view_decisions", "events");
const tel::MetricId kPrunes = tel::counter("protocol.prunes", "events");
const tel::MetricId kForwards = tel::counter("protocol.forwards", "events");
const tel::MetricId kDesignations = tel::counter("protocol.designations", "nodes");
const tel::MetricId kPullbacks = tel::counter("protocol.designation_pullbacks", "events");
const tel::MetricId kDesignationsPerForward =
    tel::histogram("protocol.designations_per_forward", {0, 1, 2, 3, 4, 6, 8, 12}, "nodes");

}  // namespace

std::vector<char> generic_static_forward_set(const Graph& g, std::size_t hops,
                                             const PriorityKeys& keys,
                                             const CoverageOptions& opts) {
    std::vector<char> forward(g.node_count(), 0);
    for (NodeId v = 0; v < g.node_count(); ++v) {
        const View view = make_static_view(g, v, hops, keys);
        forward[v] = coverage_condition_holds(view, v, opts) ? 0 : 1;
    }
    return forward;
}

GenericAgent::GenericAgent(const Graph& g, GenericConfig config)
    : graph_(&g),
      config_(config),
      keys_(g, config.priority),
      knowledge_(g, config.hops) {
    if (config_.timing == Timing::kStatic) {
        assert(config_.selection == Selection::kSelfPruning &&
               "static timing implies self-pruning (static ND is MPR)");
        static_forward_ = generic_static_forward_set(g, config_.hops, keys_, config_.coverage);
    }
}

GenericAgent::GenericAgent(const Graph& g, GenericConfig config,
                           std::vector<LocalTopology> views)
    : graph_(&g),
      config_(config),
      keys_(g, config.priority),
      knowledge_(g, std::move(views)) {
    if (config_.timing == Timing::kStatic) {
        assert(config_.selection == Selection::kSelfPruning);
        // Static status from the supplied views.
        static_forward_.assign(g.node_count(), 0);
        const std::vector<char> none(g.node_count(), 0);
        for (NodeId v = 0; v < g.node_count(); ++v) {
            const View view = make_dynamic_view(knowledge_.topology(v), keys_, none, none);
            static_forward_[v] =
                coverage_condition_holds(view, v, config_.coverage) ? 0 : 1;
        }
    }
}

void GenericAgent::start(Simulator& sim, NodeId source, Rng& /*rng*/) {
    // The source always forwards (Section 5).
    forward_now(sim, source);
}

double GenericAgent::backoff_delay(NodeId v, Rng& rng) const {
    switch (config_.timing) {
        case Timing::kStatic:
        case Timing::kFirstReceipt:
            return 0.0;
        case Timing::kRandomBackoff:
            return rng.uniform(0.0, config_.backoff_window);
        case Timing::kDegreeBackoff: {
            // Proportional to the inverse of node degree (high-coverage
            // nodes fire first), normalized by the local maximum degree so
            // the window stays comparable to FRB's, with a small random
            // factor to break ties between equal-degree neighbors.
            const double deg = static_cast<double>(graph_->degree(v));
            std::size_t local_max = graph_->degree(v);
            for (NodeId u : graph_->neighbors(v)) {
                local_max = std::max(local_max, graph_->degree(u));
            }
            const double scale = (1.0 + static_cast<double>(local_max)) / (1.0 + deg);
            return config_.backoff_window * (0.8 + 0.2 * rng.uniform()) * scale / 2.0;
        }
    }
    return 0.0;
}

void GenericAgent::on_receive(Simulator& sim, NodeId node, const Transmission& tx, Rng& rng) {
    const bool first = knowledge_.observe(node, tx);
    const KnowledgeRef kn = knowledge_.at(node);

    if (config_.timing == Timing::kStatic) {
        if (first && static_forward_[node]) forward_now(sim, node);
        return;
    }

    if (first) {
        if (config_.timing == Timing::kFirstReceipt) {
            // "The status is determined right after the first receipt":
            // decide inline, before any other same-time delivery is seen.
            decide(sim, node);
        } else {
            sim.schedule_timer(node, backoff_delay(node, rng), /*timer_kind=*/0);
        }
        return;
    }

    // A node that already decided non-forward can still be pulled back in
    // by a *later* designation — it has not yet announced any status.
    // Under the strict rule it must forward; under the relaxed rule it
    // must *re-evaluate* at the designated priority S=1.5 (its earlier
    // prune used S=1, a weaker requirement than neighbors who see it as
    // designated will assume).
    if (kn.decided() && kn.designated_self() && !sim.has_transmitted(node) &&
        config_.selection != Selection::kSelfPruning) {
        if (config_.strict_designation) {
            tel::count(kPullbacks);
            forward_now(sim, node);
        } else {
            const View view = knowledge_.view_of(node, keys_);
            if (!coverage_condition_holds(view, node, config_.coverage,
                                          NodeStatus::kDesignated)) {
                tel::count(kPullbacks);
                forward_now(sim, node);
            }
        }
    }
}

void GenericAgent::on_timer(Simulator& sim, NodeId node, std::size_t /*timer_kind*/,
                            Rng& /*rng*/) {
    decide(sim, node);
}

void GenericAgent::decide(Simulator& sim, NodeId v) {
    const KnowledgeRef kn = knowledge_.at(v);
    if (kn.decided() || sim.has_transmitted(v)) return;
    kn.mark_decided();
    tel::count(kDecisions);
    // Liveness aging marked this node's hello view stale: the decision
    // below runs on weaker information than Definition 2 promises.
    if (kn.topology().stale) tel::count(kStaleDecisions);

    bool forward = false;
    if (config_.selection == Selection::kNeighborDesignating) {
        // Pure neighbor-designating: only designated nodes forward.
        forward = kn.designated_self();
        if (forward && !config_.strict_designation) {
            const View view = knowledge_.view_of(v, keys_);
            forward = !coverage_condition_holds(view, v, config_.coverage,
                                                NodeStatus::kDesignated);
        }
    } else if (kn.designated_self() && config_.strict_designation) {
        forward = true;
    } else {
        const NodeStatus self =
            kn.designated_self() ? NodeStatus::kDesignated : NodeStatus::kUnvisited;
        const View view = knowledge_.view_of(v, keys_);
        forward = !coverage_condition_holds(view, v, config_.coverage, self);
    }

    if (!forward) {
        tel::count(kPrunes);
        sim.note_prune(v);
        return;
    }
    forward_now(sim, v);
}

void GenericAgent::forward_now(Simulator& sim, NodeId v) {
    if (sim.has_transmitted(v)) return;
    const KnowledgeRef kn = knowledge_.at(v);
    std::vector<NodeId> designated = pick_designations(v);
    tel::count(kForwards);
    if (!designated.empty()) tel::count(kDesignations, designated.size());
    tel::observe(kDesignationsPerForward, designated.size());
    for (NodeId d : designated) sim.note_designation(v, d);
    sim.transmit(v, chain_state(kn.first_state(), v, std::move(designated), config_.history));
}

std::vector<NodeId> GenericAgent::pick_designations(NodeId v) const {
    if (config_.selection == Selection::kSelfPruning || config_.timing == Timing::kStatic) {
        return {};
    }
    const ConstKnowledgeRef kn = knowledge_.at(v);
    const Graph& local = kn.topology().graph;  // k >= 2 sees all N(w), w in N(v)
    const NodeId u = kn.first_sender();        // kInvalidNode at the source

    // Uncovered 2-hop targets Y: nodes at exactly 2 hops in the local view
    // that are not already covered by a known visited/designated node.
    std::vector<char> uncovered(graph_->node_count(), 0);
    std::vector<NodeId> targets;
    for (NodeId y : two_hop_cover_set(local, v)) {
        if (local.has_edge(v, y)) continue;  // 1-hop: covered by v itself
        uncovered[y] = 1;
    }
    // Anything adjacent to (or equal to) a known visited/designated node is
    // already handled by that node's own transmission.
    for (NodeId x = 0; x < graph_->node_count(); ++x) {
        if (!kn.visited(x) && !kn.designated(x)) continue;
        if (!kn.topology().visible[x]) continue;
        uncovered[x] = 0;
        for (NodeId y : local.neighbors(x)) uncovered[y] = 0;
    }
    for (NodeId y = 0; y < graph_->node_count(); ++y) {
        if (uncovered[y]) targets.push_back(y);
    }

    // Candidates X: our neighbors that are not the sender and not already
    // visited/designated.
    std::vector<NodeId> candidates;
    for (NodeId w : local.neighbors(v)) {
        if (w == u || kn.visited(w) || kn.designated(w)) continue;
        candidates.push_back(w);
    }

    switch (config_.selection) {
        case Selection::kNeighborDesignating:
            return greedy_cover(local, candidates, targets);
        case Selection::kHybridMaxDegree:
        case Selection::kHybridMinId: {
            const HybridPolicy policy = (config_.selection == Selection::kHybridMaxDegree)
                                            ? HybridPolicy::kMaxDegree
                                            : HybridPolicy::kMinId;
            const NodeId w = designate_single(local, candidates, uncovered, policy);
            if (w == kInvalidNode) return {};
            return {w};
        }
        case Selection::kSelfPruning:
            break;
    }
    return {};
}

}  // namespace adhoc
