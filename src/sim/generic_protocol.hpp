/// \file generic_protocol.hpp
/// \brief The paper's Algorithm 1: the generic distributed broadcast
/// protocol, parameterized over the four implementation axes of Section 4.
///
///   1. Timing    — static / first-receipt / first-receipt-with-backoff
///                  (random) / backoff proportional to 1/degree.
///   2. Selection — self-pruning / neighbor-designating / hybrid
///                  (designate one neighbor by max effective degree or
///                  min id, Section 6.4).
///   3. Space     — k-hop local views (k = 0 means global information).
///   4. Priority  — ID / Degree / NCR.
///
/// Every node starts with forward status (as in flooding) and may take
/// non-forward status when the coverage condition holds under its current
/// local view.  Designated nodes always forward under the strict rule; the
/// relaxed rule (Section 4.2) lets a designated node prune when it is
/// covered by *strictly higher* priority nodes (S = 1.5 lifts it above
/// plain unvisited nodes).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/coverage.hpp"
#include "core/designation.hpp"
#include "core/priority.hpp"
#include "sim/generic_config.hpp"
#include "sim/node_agent.hpp"
#include "sim/simulator.hpp"

namespace adhoc {

/// Agent implementing Algorithm 1 for every node of one topology.
class GenericAgent : public Agent {
  public:
    GenericAgent(const Graph& g, GenericConfig config);

    /// Uses externally assembled per-node views (e.g. hello-protocol
    /// output) instead of analytically extracted k-hop topologies.
    GenericAgent(const Graph& g, GenericConfig config, std::vector<LocalTopology> views);

    void start(Simulator& sim, NodeId source, Rng& rng) override;
    void on_receive(Simulator& sim, NodeId node, const Transmission& tx, Rng& rng) override;
    void on_timer(Simulator& sim, NodeId node, std::size_t timer_kind, Rng& rng) override;

    /// For Timing::kStatic: the proactively computed forward set (empty
    /// for dynamic timings).  Exposed for tests (it must be a CDS).
    [[nodiscard]] const std::vector<char>& static_forward_set() const noexcept {
        return static_forward_;
    }

    [[nodiscard]] const GenericConfig& config() const noexcept { return config_; }

  private:
    void decide(Simulator& sim, NodeId v);
    [[nodiscard]] double backoff_delay(NodeId v, Rng& rng) const;
    [[nodiscard]] std::vector<NodeId> pick_designations(NodeId v) const;
    void forward_now(Simulator& sim, NodeId v);

    const Graph* graph_;
    GenericConfig config_;
    PriorityKeys keys_;
    KnowledgeBase knowledge_;
    std::vector<char> static_forward_;
};

/// Computes the static forward set of the generic protocol: every node
/// applies the coverage condition under its static k-hop view.  By Theorem
/// 2 the surviving nodes form a CDS.  This is also the building block of
/// the static special cases (Section 6.1).
[[nodiscard]] std::vector<char> generic_static_forward_set(const Graph& g, std::size_t hops,
                                                           const PriorityKeys& keys,
                                                           const CoverageOptions& opts);

}  // namespace adhoc
