#include "sim/hello.hpp"

#include <cassert>
#include <limits>

#include "telemetry/telemetry.hpp"

namespace adhoc {

namespace {

namespace tel = telemetry;

const tel::MetricId kAgedLinks = tel::counter("hello.aged_links", "links");
const tel::MetricId kBurstDrops = tel::counter("hello.burst_drops", "messages");

constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();

}  // namespace

HelloProtocol::HelloProtocol(const Graph& g, HelloConfig config, const faults::FaultPlan* faults)
    : graph_(&g), config_(config), faults_(faults) {
    const std::size_t n = g.node_count();
    known_.assign(n, Graph(n));
    heard_of_.assign(n, std::vector<char>(n, 0));
    last_heard_.assign(n, std::vector<std::size_t>(n, kNever));
    stale_.assign(n, 0);
    for (NodeId v = 0; v < n; ++v) heard_of_[v][v] = 1;
}

bool HelloProtocol::burst_active(NodeId sender, std::size_t round) const {
    if (faults_ == nullptr) return false;
    for (const faults::HelloBurst& burst : faults_->hello_bursts) {
        if (burst.node != sender) continue;
        if (round >= burst.first_round && round < burst.first_round + burst.rounds) return true;
    }
    return false;
}

void HelloProtocol::run(Rng& rng) {
    assert(rounds_run_ == 0 && "run() is one-shot per instance");
    const std::size_t n = graph_->node_count();

    for (std::size_t round = 0; round < config_.rounds; ++round) {
        // Snapshot of everyone's knowledge at the start of the round: a
        // HELLO carries what the sender knew *before* this round.
        const std::vector<Graph> snapshot = known_;
        const std::vector<std::vector<char>> heard_snapshot = heard_of_;

        for (NodeId sender = 0; sender < n; ++sender) {
            // Message payload: sender id + its known adjacency lists.
            std::size_t payload_ids = 1;  // own id
            for (NodeId x = 0; x < n; ++x) {
                if (heard_snapshot[sender][x]) {
                    payload_ids += 1 + snapshot[sender].degree(x);
                }
            }
            bytes_ += payload_ids * 4;
            ++messages_;

            const bool bursting = burst_active(sender, round);
            const bool lossless_round = (round == 0 && config_.reliable_neighbor_discovery);
            for (NodeId receiver : graph_->neighbors(sender)) {
                if (bursting) {
                    ++burst_drops_;
                    tel::count(kBurstDrops);
                    continue;  // the whole burst is lost on the air
                }
                if (!lossless_round && config_.loss_probability > 0.0 &&
                    rng.chance(config_.loss_probability)) {
                    continue;  // this copy is lost
                }
                // Receiving a HELLO reveals the link (receiver, sender)...
                heard_of_[receiver][sender] = 1;
                known_[receiver].add_edge(receiver, sender);
                last_heard_[receiver][sender] = round;
                // ...and everything the sender knew.
                for (NodeId x = 0; x < n; ++x) {
                    if (!heard_snapshot[sender][x]) continue;
                    heard_of_[receiver][x] = 1;
                    for (NodeId y : snapshot[sender].neighbors(x)) {
                        known_[receiver].add_edge(x, y);
                        heard_of_[receiver][y] = 1;
                    }
                }
            }
        }

        // Neighbor liveness: a direct entry a node once learned ages out
        // after `liveness_timeout` consecutive silent rounds.
        if (config_.liveness_timeout > 0) {
            for (NodeId v = 0; v < n; ++v) {
                for (NodeId u : graph_->neighbors(v)) {
                    if (!known_[v].has_edge(v, u)) continue;
                    const std::size_t last = last_heard_[v][u];
                    const std::size_t missed = (last == kNever) ? round + 1 : round - last;
                    if (missed >= config_.liveness_timeout) {
                        known_[v].remove_edge(v, u);
                        stale_[v] = 1;
                        ++aged_out_;
                        tel::count(kAgedLinks);
                    }
                }
            }
        }
        ++rounds_run_;
    }
}

LocalTopology HelloProtocol::view_of(NodeId v) const {
    LocalTopology view;
    view.center = v;
    view.hops = rounds_run_;
    view.graph = known_[v];
    view.visible = heard_of_[v];
    view.stale = (stale_[v] != 0);
    populate_members(view);
    return view;
}

std::vector<LocalTopology> hello_views(const Graph& g, std::size_t k, Rng& rng) {
    HelloProtocol hello(g, HelloConfig{.rounds = k});
    hello.run(rng);
    std::vector<LocalTopology> views;
    views.reserve(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) views.push_back(hello.view_of(v));
    return views;
}

}  // namespace adhoc
