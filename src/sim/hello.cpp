#include "sim/hello.hpp"

#include <cassert>

namespace adhoc {

HelloProtocol::HelloProtocol(const Graph& g, HelloConfig config)
    : graph_(&g), config_(config) {
    const std::size_t n = g.node_count();
    known_.assign(n, Graph(n));
    heard_of_.assign(n, std::vector<char>(n, 0));
    for (NodeId v = 0; v < n; ++v) heard_of_[v][v] = 1;
}

void HelloProtocol::run(Rng& rng) {
    assert(rounds_run_ == 0 && "run() is one-shot per instance");
    const std::size_t n = graph_->node_count();

    for (std::size_t round = 0; round < config_.rounds; ++round) {
        // Snapshot of everyone's knowledge at the start of the round: a
        // HELLO carries what the sender knew *before* this round.
        const std::vector<Graph> snapshot = known_;
        const std::vector<std::vector<char>> heard_snapshot = heard_of_;

        for (NodeId sender = 0; sender < n; ++sender) {
            // Message payload: sender id + its known adjacency lists.
            std::size_t payload_ids = 1;  // own id
            for (NodeId x = 0; x < n; ++x) {
                if (heard_snapshot[sender][x]) {
                    payload_ids += 1 + snapshot[sender].degree(x);
                }
            }
            bytes_ += payload_ids * 4;
            ++messages_;

            const bool lossless_round = (round == 0 && config_.reliable_neighbor_discovery);
            for (NodeId receiver : graph_->neighbors(sender)) {
                if (!lossless_round && config_.loss_probability > 0.0 &&
                    rng.chance(config_.loss_probability)) {
                    continue;  // this copy is lost
                }
                // Receiving a HELLO reveals the link (receiver, sender)...
                heard_of_[receiver][sender] = 1;
                known_[receiver].add_edge(receiver, sender);
                // ...and everything the sender knew.
                for (NodeId x = 0; x < n; ++x) {
                    if (!heard_snapshot[sender][x]) continue;
                    heard_of_[receiver][x] = 1;
                    for (NodeId y : snapshot[sender].neighbors(x)) {
                        known_[receiver].add_edge(x, y);
                        heard_of_[receiver][y] = 1;
                    }
                }
            }
        }
        ++rounds_run_;
    }
}

LocalTopology HelloProtocol::view_of(NodeId v) const {
    LocalTopology view;
    view.center = v;
    view.hops = rounds_run_;
    view.graph = known_[v];
    view.visible = heard_of_[v];
    populate_members(view);
    return view;
}

std::vector<LocalTopology> hello_views(const Graph& g, std::size_t k, Rng& rng) {
    HelloProtocol hello(g, HelloConfig{.rounds = k});
    hello.run(rng);
    std::vector<LocalTopology> views;
    views.reserve(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) views.push_back(hello.view_of(v));
    return views;
}

}  // namespace adhoc
