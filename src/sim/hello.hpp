/// \file hello.hpp
/// \brief The periodic "hello" protocol that builds k-hop local views.
///
/// Everywhere else in the library, G_k(v) is extracted analytically from
/// the global graph (Definition 2).  This module *earns* those views the
/// way a deployment would: k synchronous rounds in which every node
/// broadcasts one HELLO carrying its accumulated adjacency knowledge, and
/// receivers merge.  Inductively, after round r a node knows exactly
/// E ∩ (N_{r-1}(v) × N_r(v)) — the lossless run reproduces Definition 2
/// bit-for-bit (validated by tests), and lossy runs produce strict
/// sub-views, which Theorem 2 tolerates by design.
///
/// The module also meters the control overhead (messages and bytes per
/// round), giving the Section 4.3/4.4 cost discussion measured numbers.

#pragma once

#include <cstdint>
#include <vector>

#include "faults/fault_plan.hpp"
#include "graph/graph.hpp"
#include "graph/khop.hpp"
#include "stats/rng.hpp"

namespace adhoc {

struct HelloConfig {
    std::size_t rounds = 2;          ///< k: rounds to run
    double loss_probability = 0.0;   ///< independent per-link HELLO loss

    /// Exempt round 1 (neighbor discovery) from loss.  Theorem 2 tolerates
    /// arbitrary *edge* under-knowledge but requires every node to know its
    /// complete 1-hop neighbor set — a node unaware of a neighbor may prune
    /// while that neighbor depends on it (tests demonstrate the coverage
    /// hole).  Periodic hellos make neighbor discovery converge in
    /// practice; this flag models that.  Disable only to study the hole.
    bool reliable_neighbor_discovery = true;

    /// Neighbor liveness (Section 6 mobility discussion): a direct-neighbor
    /// entry ages out of a node's view after this many *consecutive* missed
    /// HELLO rounds, marking the view stale.  0 disables aging (the
    /// historical behavior).  Aging only removes links a node had learned —
    /// never knowledge relayed about remote edges.
    std::size_t liveness_timeout = 0;
};

/// Synchronous hello-exchange simulation over one topology.
class HelloProtocol {
  public:
    /// `faults` (optional, must outlive the protocol) contributes HELLO
    /// drop bursts: every HELLO `burst.node` sends during its burst rounds
    /// is lost at all receivers, which is what drives liveness aging.
    explicit HelloProtocol(const Graph& g, HelloConfig config = {},
                           const faults::FaultPlan* faults = nullptr);
    // The graph is held by reference; a temporary would dangle before run().
    explicit HelloProtocol(Graph&&, HelloConfig = {},
                           const faults::FaultPlan* = nullptr) = delete;

    /// Runs the configured number of rounds (idempotent per instance:
    /// call once).
    void run(Rng& rng);

    /// The view node `v` assembled: visible nodes and known edges, in the
    /// original id space (same shape as `local_topology`).
    [[nodiscard]] LocalTopology view_of(NodeId v) const;

    /// Total HELLO messages sent (n per round).
    [[nodiscard]] std::size_t total_messages() const noexcept { return messages_; }

    /// Total payload bytes across all HELLOs (4 bytes per node id: each
    /// message carries the sender id plus its known adjacency lists).
    [[nodiscard]] std::size_t total_bytes() const noexcept { return bytes_; }

    /// Rounds actually executed.
    [[nodiscard]] std::size_t rounds_run() const noexcept { return rounds_run_; }

    /// Direct-neighbor entries removed by liveness aging (across all nodes).
    [[nodiscard]] std::size_t aged_out() const noexcept { return aged_out_; }

    /// HELLO copies destroyed by fault-plan bursts.
    [[nodiscard]] std::size_t burst_drops() const noexcept { return burst_drops_; }

    /// True iff aging removed at least one entry from `v`'s view.
    [[nodiscard]] bool view_stale(NodeId v) const noexcept { return stale_[v] != 0; }

  private:
    [[nodiscard]] bool burst_active(NodeId sender, std::size_t round) const;

    const Graph* graph_;
    HelloConfig config_;
    const faults::FaultPlan* faults_;
    /// known_[v] = adjacency knowledge of node v (graph in original id
    /// space; edge present iff v has learned it).
    std::vector<Graph> known_;
    std::vector<std::vector<char>> heard_of_;  ///< node visibility per node
    /// last_heard_[v][u] = last round v got a HELLO directly from graph
    /// neighbor u (SIZE_MAX = never).  Drives liveness aging.
    std::vector<std::vector<std::size_t>> last_heard_;
    std::vector<char> stale_;  ///< aging removed something from this view
    std::size_t messages_ = 0;
    std::size_t bytes_ = 0;
    std::size_t rounds_run_ = 0;
    std::size_t aged_out_ = 0;
    std::size_t burst_drops_ = 0;
};

/// Convenience: lossless hello-built views for every node (k rounds).
[[nodiscard]] std::vector<LocalTopology> hello_views(const Graph& g, std::size_t k, Rng& rng);

}  // namespace adhoc
