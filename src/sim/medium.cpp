#include "sim/medium.hpp"

#include <cmath>

namespace adhoc {

namespace {

/// Value-bearing rejection, matching the CLI-validation style: the
/// offending number is always in the message.
[[noreturn]] void reject(const std::string& field, double got, const std::string& constraint) {
    throw std::invalid_argument("MediumConfig." + field + " must be " + constraint + ", got " +
                                std::to_string(got));
}

}  // namespace

const char* to_string(MediumBackend backend) noexcept {
    switch (backend) {
        case MediumBackend::kIdeal: return "ideal";
        case MediumBackend::kSinr: return "sinr";
        case MediumBackend::kUniformPowerGraph: return "uniform-power";
    }
    return "?";
}

std::optional<MediumBackend> medium_backend_from_string(std::string_view text) {
    if (text == "ideal") return MediumBackend::kIdeal;
    if (text == "sinr") return MediumBackend::kSinr;
    if (text == "uniform-power") return MediumBackend::kUniformPowerGraph;
    return std::nullopt;
}

Medium::Medium(MediumConfig config) : config_(std::move(config)) {
    // Negated comparisons so NaN fails every check.
    if (!(config_.propagation_delay > 0.0) || !std::isfinite(config_.propagation_delay)) {
        reject("propagation_delay", config_.propagation_delay, "positive and finite");
    }
    if (!(config_.jitter >= 0.0) || !std::isfinite(config_.jitter)) {
        reject("jitter", config_.jitter, ">= 0 and finite");
    }
    if (!(config_.loss_probability >= 0.0 && config_.loss_probability <= 1.0)) {
        reject("loss_probability", config_.loss_probability, "in [0, 1]");
    }
    if (!(config_.collision_window >= 0.0)) {
        throw std::invalid_argument("MediumConfig.collision_window must be >= 0, got " +
                                    std::to_string(config_.collision_window));
    }
    if (!(config_.collision_window < config_.propagation_delay)) {
        throw std::invalid_argument(
            "MediumConfig.collision_window (" + std::to_string(config_.collision_window) +
            ") must be strictly less than propagation_delay (" +
            std::to_string(config_.propagation_delay) + ")");
    }
    if (config_.backend == MediumBackend::kIdeal) return;

    // Non-ideal backends: the collision-window model would double-count
    // concurrency the interference sum already covers.
    if (config_.collisions) {
        throw std::invalid_argument(
            "MediumConfig.collisions is exclusive to the ideal backend; the " +
            std::string(to_string(config_.backend)) +
            " backend models concurrent arrivals through interference");
    }
    if (config_.positions.empty()) {
        throw std::invalid_argument("MediumConfig.positions must be non-empty for the " +
                                    std::string(to_string(config_.backend)) + " backend");
    }
    const SinrParams& p = config_.sinr;
    if (!(p.alpha >= 1.0) || !std::isfinite(p.alpha)) {
        reject("sinr.alpha", p.alpha, ">= 1 and finite");
    }
    if (!(p.beta >= 0.0) || !std::isfinite(p.beta)) {
        reject("sinr.beta", p.beta, ">= 0 and finite");
    }
    if (!(p.noise >= 0.0) || !std::isfinite(p.noise)) {
        reject("sinr.noise", p.noise, ">= 0 and finite");
    }
    if (!(p.tx_power > 0.0) || !std::isfinite(p.tx_power)) {
        reject("sinr.tx_power", p.tx_power, "positive and finite");
    }
    if (!(p.margin >= 0.0) || !std::isfinite(p.margin)) {
        reject("sinr.margin", p.margin, ">= 0 and finite");
    }
    if (!(p.vulnerability_window >= 0.0) ||
        !(p.vulnerability_window < config_.propagation_delay)) {
        throw std::invalid_argument(
            "MediumConfig.sinr.vulnerability_window (" + std::to_string(p.vulnerability_window) +
            ") must be in [0, propagation_delay = " +
            std::to_string(config_.propagation_delay) +
            "): every interfering transmission must already be recorded when "
            "an arrival is processed");
    }
    if (!(p.interference_range > 0.0) || !std::isfinite(p.interference_range)) {
        reject("sinr.interference_range", p.interference_range, "positive and finite");
    }
    grid_.emplace(config_.positions, p.interference_range);
}

double Medium::signal(NodeId tx, NodeId rx) const {
    const double d = distance(config_.positions[tx], config_.positions[rx]);
    return config_.sinr.tx_power / std::pow(std::max(d, 1e-9), config_.sinr.alpha);
}

}  // namespace adhoc
