/// \file medium.hpp
/// \brief Wireless medium models: per-link delivery timing, loss, and
/// physical-layer reception backends.
///
/// The paper's evaluation uses a collision-free MAC (Section 7): every
/// transmission reaches every neighbor after a fixed propagation delay.
/// That is the `kIdeal` backend and the default here.  Jitter and loss
/// injection exist for the failure-injection test suite — the paper's own
/// assumption (1) is error-free transmission, and its cited follow-up work
/// relieves collisions with small forwarding jitter; the hooks let tests
/// explore exactly that degradation.
///
/// Two physical-layer backends go beyond the paper's idealization (see
/// docs/MEDIUM.md for the math and the determinism contract):
///
///  - `kSinr` — cumulative-interference reception per *Distributed
///    Broadcasting in Wireless Networks under the SINR Model*: an arrival
///    is accepted iff P*d^-alpha / (N + sum of interferer powers) meets
///    the capture threshold beta, where the interference sum runs over
///    concurrent transmitters inside the arrival's vulnerability interval.
///  - `kUniformPowerGraph` — the weak-device variant from *Distributed
///    Deterministic Broadcasting in Uniform-Power Ad Hoc Wireless
///    Networks*: reception happens only on links whose zero-interference
///    SINR clears beta with a margin, and any concurrent interference
///    kills reception outright (no capture).
///
/// Both backends are pure functions of already-scheduled state: they
/// consume no randomness and never change event scheduling, so a `kSinr`
/// medium with beta = 0 and zero noise replays the `kIdeal` event stream
/// byte for byte.

#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "graph/geometry.hpp"
#include "graph/graph.hpp"
#include "graph/spatial_grid.hpp"
#include "stats/rng.hpp"

namespace adhoc {

/// Reception model selector.
enum class MediumBackend {
    kIdeal,             ///< collision-free / collision-window model (paper)
    kSinr,              ///< cumulative interference with capture threshold
    kUniformPowerGraph  ///< static link margin, interference kills captures
};

[[nodiscard]] const char* to_string(MediumBackend backend) noexcept;

/// Parses the `to_string` spellings ("ideal", "sinr", "uniform-power").
[[nodiscard]] std::optional<MediumBackend> medium_backend_from_string(std::string_view text);

/// Physical-layer parameters shared by the non-ideal backends.  Ignored
/// (and unvalidated) while `backend == kIdeal`.
struct SinrParams {
    double alpha = 3.0;     ///< path-loss exponent (signal = P * d^-alpha)
    double beta = 0.0;      ///< capture threshold; 0 accepts everything
    double noise = 0.0;     ///< ambient noise floor N
    double tx_power = 1.0;  ///< uniform transmit power P
    /// kUniformPowerGraph only: required zero-interference SINR headroom —
    /// a link carries traffic iff signal >= beta * (1 + margin) * noise.
    double margin = 0.0;
    /// Half-width of the interference vulnerability interval: a
    /// transmission at t interferes with an arrival at T iff
    /// |t + propagation_delay - T| <= vulnerability_window.  Must stay
    /// strictly below propagation_delay so every interfering transmission
    /// is already recorded when the arrival is processed (the same
    /// completeness argument as collision_window).
    double vulnerability_window = 0.0;
    /// Spatial cutoff for the interference sum: transmitters farther than
    /// this from the receiver are ignored (a documented truncation of the
    /// theoretically unbounded sum).  Must be > 0 for non-ideal backends.
    double interference_range = 0.0;

    friend bool operator==(const SinrParams&, const SinrParams&) = default;
};

struct MediumConfig {
    double propagation_delay = 1.0;  ///< fixed per-hop latency
    double jitter = 0.0;             ///< extra uniform delay in [0, jitter]
    double loss_probability = 0.0;   ///< independent per-link loss

    /// Collision model: two or more copies arriving at the same node at
    /// exactly the same instant destroy each other (the broadcast-storm
    /// failure mode of Section 1).  The paper's evaluation is
    /// collision-free; its cited follow-up relieves collisions with small
    /// forwarding jitter — `bench/ablation_collisions` reproduces that.
    /// Exclusive to the kIdeal backend: the SINR-family backends model
    /// concurrent arrivals through the interference sum instead.
    bool collisions = false;

    /// Half-width of the collision vulnerability interval: with collisions
    /// on, two arrivals at the same node within `collision_window` of each
    /// other destroy both.  The default 0 keeps the historical
    /// exact-same-instant semantics (which jitter almost always defeats:
    /// two jittered copies are never *bit-identical* in time).  Must be
    /// strictly less than `propagation_delay` so every arrival's window is
    /// fully scheduled before it is processed.
    double collision_window = 0.0;

    /// Reception backend; non-ideal backends require `positions` and a
    /// validated `sinr` block.
    MediumBackend backend = MediumBackend::kIdeal;
    SinrParams sinr;
    /// Node geometry for the non-ideal backends; must hold one point per
    /// graph node (the Simulator validates the count against its graph).
    std::vector<Point2D> positions;
};

/// Delivery model.  Stateless for kIdeal; the non-ideal backends carry a
/// spatial grid over `positions` for interferer enumeration.
class Medium {
  public:
    /// Validates the whole configuration with value-bearing
    /// std::invalid_argument: propagation_delay must be positive and
    /// finite, jitter non-negative, loss_probability a probability,
    /// `0 <= collision_window < propagation_delay` (the simulator's
    /// arrival model only inspects already-scheduled deliveries, so a
    /// window reaching `propagation_delay` could collide with arrivals not
    /// in the queue yet and silently under-count collisions), and — for
    /// non-ideal backends — positions present, SINR parameters in range
    /// and `vulnerability_window < propagation_delay` (same completeness
    /// argument).
    explicit Medium(MediumConfig config = {});

    /// Delivery time of a transmission sent at `now` over one link, or
    /// nullopt if the link drops it.  Identical across backends: the
    /// SINR-family decision happens at arrival-processing time and never
    /// perturbs scheduling or the RNG stream.
    [[nodiscard]] std::optional<double> delivery_time(double now, Rng& rng) const {
        if (config_.loss_probability > 0.0 && rng.chance(config_.loss_probability)) {
            return std::nullopt;
        }
        double extra = 0.0;
        if (config_.jitter > 0.0) extra = rng.uniform(0.0, config_.jitter);
        return now + config_.propagation_delay + extra;
    }

    [[nodiscard]] const MediumConfig& config() const noexcept { return config_; }
    [[nodiscard]] MediumBackend backend() const noexcept { return config_.backend; }
    [[nodiscard]] bool ideal() const noexcept {
        return config_.backend == MediumBackend::kIdeal;
    }

    /// Received power of a transmission from `tx` at `rx`:
    /// P * max(d, 1e-9)^-alpha (the floor keeps coincident points finite).
    /// Precondition: non-ideal backend, both ids within positions.
    [[nodiscard]] double signal(NodeId tx, NodeId rx) const;

    /// Interferer-enumeration grid over `positions`; non-null exactly for
    /// the non-ideal backends.  Cell size matches `interference_range`, so
    /// a ball query of that radius scans a 3x3 cell neighborhood.
    [[nodiscard]] const SpatialGrid* grid() const noexcept {
        return grid_ ? &*grid_ : nullptr;
    }

  private:
    MediumConfig config_;
    std::optional<SpatialGrid> grid_;
};

}  // namespace adhoc
