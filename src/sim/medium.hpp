/// \file medium.hpp
/// \brief Wireless medium model: per-link delivery timing and loss.
///
/// The paper's evaluation uses a collision-free MAC (Section 7): every
/// transmission reaches every neighbor after a fixed propagation delay.
/// That is the default here.  Jitter and loss injection exist for the
/// failure-injection test suite — the paper's own assumption (1) is
/// error-free transmission, and its cited follow-up work relieves
/// collisions with small forwarding jitter; the hooks let tests explore
/// exactly that degradation.

#pragma once

#include <optional>
#include <stdexcept>
#include <string>

#include "stats/rng.hpp"

namespace adhoc {

struct MediumConfig {
    double propagation_delay = 1.0;  ///< fixed per-hop latency
    double jitter = 0.0;             ///< extra uniform delay in [0, jitter]
    double loss_probability = 0.0;   ///< independent per-link loss

    /// Collision model: two or more copies arriving at the same node at
    /// exactly the same instant destroy each other (the broadcast-storm
    /// failure mode of Section 1).  The paper's evaluation is
    /// collision-free; its cited follow-up relieves collisions with small
    /// forwarding jitter — `bench/ablation_collisions` reproduces that.
    bool collisions = false;

    /// Half-width of the collision vulnerability interval: with collisions
    /// on, two arrivals at the same node within `collision_window` of each
    /// other destroy both.  The default 0 keeps the historical
    /// exact-same-instant semantics (which jitter almost always defeats:
    /// two jittered copies are never *bit-identical* in time).  Must be
    /// strictly less than `propagation_delay` so every arrival's window is
    /// fully scheduled before it is processed.
    double collision_window = 0.0;
};

/// Stateless delivery model.
class Medium {
  public:
    /// Throws std::invalid_argument unless
    /// `0 <= collision_window < propagation_delay`: the simulator's arrival
    /// model only inspects already-scheduled deliveries, so a window
    /// reaching `propagation_delay` could collide with arrivals that are
    /// not in the queue yet and silently under-count collisions.
    explicit Medium(MediumConfig config = {}) : config_(config) {
        if (config.collision_window < 0.0) {
            throw std::invalid_argument("MediumConfig.collision_window must be >= 0, got " +
                                        std::to_string(config.collision_window));
        }
        if (config.collision_window >= config.propagation_delay) {
            throw std::invalid_argument(
                "MediumConfig.collision_window (" + std::to_string(config.collision_window) +
                ") must be strictly less than propagation_delay (" +
                std::to_string(config.propagation_delay) + ")");
        }
    }

    /// Delivery time of a transmission sent at `now` over one link, or
    /// nullopt if the link drops it.
    [[nodiscard]] std::optional<double> delivery_time(double now, Rng& rng) const {
        if (config_.loss_probability > 0.0 && rng.chance(config_.loss_probability)) {
            return std::nullopt;
        }
        double extra = 0.0;
        if (config_.jitter > 0.0) extra = rng.uniform(0.0, config_.jitter);
        return now + config_.propagation_delay + extra;
    }

    [[nodiscard]] const MediumConfig& config() const noexcept { return config_; }

  private:
    MediumConfig config_;
};

}  // namespace adhoc
