#include "sim/mobility.hpp"

#include <algorithm>
#include <cassert>

#include "graph/traversal.hpp"

namespace adhoc {

RandomWaypoint::RandomWaypoint(std::size_t n, WaypointParams params, Rng& rng)
    : params_(params), nodes_(n) {
    assert(params_.min_speed > 0.0 && params_.max_speed >= params_.min_speed);
    for (WaypointState& s : nodes_) {
        s.position = {rng.uniform(0.0, params_.area_side), rng.uniform(0.0, params_.area_side)};
        retarget(s, rng);
    }
}

RandomWaypoint RandomWaypoint::from_positions(const std::vector<Point2D>& positions,
                                              WaypointParams params, Rng& rng) {
    RandomWaypoint model(positions.size(), params, rng);
    for (std::size_t i = 0; i < positions.size(); ++i) {
        model.nodes_[i].position = positions[i];
    }
    return model;
}

void RandomWaypoint::retarget(WaypointState& s, Rng& rng) {
    s.target = {rng.uniform(0.0, params_.area_side), rng.uniform(0.0, params_.area_side)};
    s.speed = rng.uniform(params_.min_speed, params_.max_speed);
    s.pause_left = params_.pause;
}

void RandomWaypoint::step(double dt, Rng& rng) {
    for (WaypointState& s : nodes_) {
        double remaining = dt;
        while (remaining > 0.0) {
            if (s.pause_left > 0.0) {
                const double pause = std::min(s.pause_left, remaining);
                s.pause_left -= pause;
                remaining -= pause;
                continue;
            }
            const double dist_to_target = distance(s.position, s.target);
            const double reachable = s.speed * remaining;
            if (reachable >= dist_to_target) {
                // Arrive, pause (possibly 0), pick the next waypoint.
                s.position = s.target;
                remaining -= (s.speed > 0.0 ? dist_to_target / s.speed : remaining);
                retarget(s, rng);
            } else {
                const double f = reachable / dist_to_target;
                s.position.x += (s.target.x - s.position.x) * f;
                s.position.y += (s.target.y - s.position.y) * f;
                remaining = 0.0;
            }
        }
    }
}

std::vector<Point2D> RandomWaypoint::positions() const {
    std::vector<Point2D> out;
    out.reserve(nodes_.size());
    for (const WaypointState& s : nodes_) out.push_back(s.position);
    return out;
}

StaleBroadcastResult stale_view_broadcast(const BroadcastAlgorithm& algorithm,
                                          const UnitDiskParams& net_params,
                                          const WaypointParams& move_params, double staleness,
                                          NodeId source, Rng& rng) {
    const UnitDiskNetwork net = generate_network_checked(net_params, rng);

    // Walk the deployed nodes for `staleness` seconds.
    RandomWaypoint model = RandomWaypoint::from_positions(net.positions, move_params, rng);
    if (staleness > 0.0) model.step(staleness, rng);

    const Graph actual = unit_disk_graph(model.positions(), net.range);

    const BroadcastResult result =
        algorithm.broadcast_with_stale_knowledge(net.graph, actual, source, rng);

    StaleBroadcastResult out;
    out.delivery_ratio = static_cast<double>(result.received_count) /
                         static_cast<double>(net.graph.node_count());
    out.forward_count = result.forward_count;
    out.knowledge_connected = true;  // generator rejects disconnected graphs
    out.actual_connected = is_connected(actual);
    return out;
}

}  // namespace adhoc
