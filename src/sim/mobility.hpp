/// \file mobility.hpp
/// \brief Random-waypoint mobility and stale-view broadcast experiments.
///
/// The paper assumes a static topology during the broadcast period
/// (assumption 4) and notes that "the effect of moderate mobility can be
/// balanced by a slight increase in the broadcast redundancy" (Section 1,
/// citing the authors' INFOCOM'04 follow-up).  This module supplies the
/// machinery to quantify that: a random-waypoint model moves the nodes,
/// and `stale_view_broadcast` runs a protocol whose *hello-derived
/// topology knowledge* is a snapshot taken `staleness` seconds before the
/// broadcast, while packets propagate over the *current* topology.
/// Delivery degrades with staleness; redundancy (flooding, backoff) buys
/// it back.

#pragma once

#include <vector>

#include "algorithms/algorithm.hpp"
#include "graph/geometry.hpp"
#include "graph/unit_disk.hpp"
#include "stats/rng.hpp"

namespace adhoc {

/// Random-waypoint parameters.
struct WaypointParams {
    double area_side = 100.0;
    double min_speed = 1.0;   ///< units per second (> 0: no parking)
    double max_speed = 10.0;
    double pause = 0.0;       ///< pause time at each waypoint
};

/// One node's waypoint state.
struct WaypointState {
    Point2D position;
    Point2D target;
    double speed = 0.0;
    double pause_left = 0.0;
};

/// Random-waypoint mobility model over n nodes.
class RandomWaypoint {
  public:
    /// n nodes placed uniformly at random.
    RandomWaypoint(std::size_t n, WaypointParams params, Rng& rng);

    /// Starts the walk from given positions (e.g. a deployed network).
    [[nodiscard]] static RandomWaypoint from_positions(const std::vector<Point2D>& positions,
                                                       WaypointParams params, Rng& rng);

    /// Advances all nodes by `dt` seconds.
    void step(double dt, Rng& rng);

    /// Current positions.
    [[nodiscard]] std::vector<Point2D> positions() const;

    [[nodiscard]] const WaypointParams& params() const noexcept { return params_; }

  private:
    void retarget(WaypointState& s, Rng& rng);

    WaypointParams params_;
    std::vector<WaypointState> nodes_;
};

/// Outcome of a stale-view broadcast trial.
struct StaleBroadcastResult {
    double delivery_ratio = 0.0;   ///< delivered / n over the TRUE topology
    std::size_t forward_count = 0;
    bool knowledge_connected = false;  ///< stale topology was connected
    bool actual_connected = false;     ///< true topology was connected
};

/// Runs one broadcast where the protocol's topology knowledge is
/// `staleness` seconds old.  The network is generated per the paper's
/// recipe, the nodes then move for `staleness` seconds at the *same*
/// transmission range, and the algorithm's forward decisions are made on
/// the old graph while deliveries follow the new one.
[[nodiscard]] StaleBroadcastResult stale_view_broadcast(const BroadcastAlgorithm& algorithm,
                                                        const UnitDiskParams& net_params,
                                                        const WaypointParams& move_params,
                                                        double staleness, NodeId source,
                                                        Rng& rng);

}  // namespace adhoc
