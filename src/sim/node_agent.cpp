#include "sim/node_agent.hpp"

#include <cassert>

namespace adhoc {

KnowledgeBase::KnowledgeBase(const Graph& g, std::size_t k)
    : nodes_(g.node_count()), k_(k), status_cache_(g.node_count()) {
    const std::size_t n = g.node_count();
    for (NodeId v = 0; v < n; ++v) {
        NodeKnowledge& kn = nodes_[v];
        kn.topology = local_topology(g, v, k);
        compile_topology(kn.topology);  // kernels borrow the CSR per decision
        kn.visited.assign(n, 0);
        kn.designated.assign(n, 0);
    }
}

KnowledgeBase::KnowledgeBase(const Graph& g, std::vector<LocalTopology> views)
    : nodes_(g.node_count()), k_(0), status_cache_(g.node_count()) {
    const std::size_t n = g.node_count();
    assert(views.size() == n);
    for (NodeId v = 0; v < n; ++v) {
        NodeKnowledge& kn = nodes_[v];
        kn.topology = std::move(views[v]);
        compile_topology(kn.topology);  // external views may omit members/CSR
        k_ = kn.topology.hops;  // uniform by construction
        kn.visited.assign(n, 0);
        kn.designated.assign(n, 0);
    }
}

bool KnowledgeBase::observe(NodeId observer, const Transmission& tx) {
    NodeKnowledge& kn = nodes_[observer];
    ++kn.receipts;

    kn.visited[tx.sender] = 1;  // snooped: the sender just forwarded
    for (const VisitedRecord& rec : tx.state.history) {
        kn.visited[rec.node] = 1;
        for (NodeId d : rec.designated) {
            kn.designated[d] = 1;
            // Only a *direct* designation obliges this node: a designation
            // by a non-neighbor would have been heard from that node
            // directly when it transmitted.
            if (d == observer && rec.node == tx.sender) kn.designated_self = true;
        }
    }

    const bool first = !kn.received;
    if (first) {
        kn.received = true;
        kn.first_sender = tx.sender;
        kn.first_state = tx.state;
    }
    return first;
}

View KnowledgeBase::view_of(NodeId v, const PriorityKeys& keys) const {
    const NodeKnowledge& kn = nodes_[v];
    std::vector<NodeStatus>& status = status_cache_[v];
    if (status.empty()) status.assign(kn.visited.size(), NodeStatus::kInvisible);
    // Only member slots can differ between calls; everything else remains
    // kInvisible from the initial fill.
    for (NodeId x : kn.topology.members) {
        status[x] = kn.visited[x]      ? NodeStatus::kVisited
                    : kn.designated[x] ? NodeStatus::kDesignated
                                       : NodeStatus::kUnvisited;
    }
    return View(&kn.topology, &status, &keys);
}

}  // namespace adhoc
