#include "sim/node_agent.hpp"

#include <algorithm>
#include <cassert>

namespace adhoc {

void KnowledgeBase::init_state(std::size_t n) {
    words_per_node_ = bits::word_count(n);
    visited_bits_.assign(n * words_per_node_, 0);
    designated_bits_.assign(n * words_per_node_, 0);
    received_.assign(bits::word_count(n), 0);
    decided_.assign(bits::word_count(n), 0);
    designated_self_.assign(bits::word_count(n), 0);
    first_sender_.assign(n, kInvalidNode);
    first_state_.resize(n);
    receipts_.assign(n, 0);
    status_scratch_.assign(n, NodeStatus::kInvisible);
    last_view_node_ = kInvalidNode;
}

KnowledgeBase::KnowledgeBase(const Graph& g, std::size_t k)
    : topologies_(g.node_count()), k_(k) {
    const std::size_t n = g.node_count();
    init_state(n);
    for (NodeId v = 0; v < n; ++v) {
        topologies_[v] = local_topology(g, v, k);
        compile_topology(topologies_[v]);  // kernels borrow the CSR per decision
    }
}

KnowledgeBase::KnowledgeBase(const Graph& g, std::vector<LocalTopology> views)
    : topologies_(g.node_count()), k_(0) {
    const std::size_t n = g.node_count();
    assert(views.size() == n);
    init_state(n);
    for (NodeId v = 0; v < n; ++v) {
        topologies_[v] = std::move(views[v]);
        compile_topology(topologies_[v]);  // external views may omit members/CSR
        k_ = topologies_[v].hops;          // uniform by construction
    }
}

void KnowledgeBase::load_visited(NodeId v, const std::vector<char>& mask) {
    std::uint64_t* row = visited_row(v);
    std::fill(row, row + words_per_node_, 0);
    for (std::size_t x = 0; x < mask.size(); ++x) {
        if (mask[x]) bits::set(row, x);
    }
}

void KnowledgeBase::load_designated(NodeId v, const std::vector<char>& mask) {
    std::uint64_t* row = designated_row(v);
    std::fill(row, row + words_per_node_, 0);
    for (std::size_t x = 0; x < mask.size(); ++x) {
        if (mask[x]) bits::set(row, x);
    }
}

bool KnowledgeBase::observe(NodeId observer, const Transmission& tx) {
    ++receipts_[observer];

    std::uint64_t* visited = visited_row(observer);
    std::uint64_t* designated = designated_row(observer);
    bits::set(visited, tx.sender);  // snooped: the sender just forwarded
    for (const VisitedRecord& rec : tx.state.history) {
        bits::set(visited, rec.node);
        for (NodeId d : rec.designated) {
            bits::set(designated, d);
            // Only a *direct* designation obliges this node: a designation
            // by a non-neighbor would have been heard from that node
            // directly when it transmitted.
            if (d == observer && rec.node == tx.sender) mark_designated_self(observer);
        }
    }

    const bool first = !received(observer);
    if (first) {
        mark_received(observer);
        first_sender_[observer] = tx.sender;
        first_state_[observer] = tx.state;
    }
    return first;
}

View KnowledgeBase::view_of(NodeId v, const PriorityKeys& keys) const {
    // Restore the shared scratch invariant: only the *current* view's
    // member slots may differ from kInvisible.
    if (last_view_node_ != kInvalidNode && last_view_node_ != v) {
        for (NodeId x : topologies_[last_view_node_].members) {
            status_scratch_[x] = NodeStatus::kInvisible;
        }
    }
    last_view_node_ = v;

    const LocalTopology& topo = topologies_[v];
    const std::uint64_t* visited = visited_row(v);
    const std::uint64_t* designated = designated_row(v);
    for (NodeId x : topo.members) {
        status_scratch_[x] = bits::test(visited, x)      ? NodeStatus::kVisited
                             : bits::test(designated, x) ? NodeStatus::kDesignated
                                                         : NodeStatus::kUnvisited;
    }
    return View(&topo, &status_scratch_, &keys);
}

}  // namespace adhoc
