/// \file node_agent.hpp
/// \brief Shared per-node protocol state for dynamic broadcast agents.
///
/// Every dynamic algorithm in the paper maintains the same two kinds of
/// local state (Section 4.3): long-lived k-hop topology (from periodic
/// "hello" messages — precomputed here once per run) and short-lived
/// broadcast state (visited/designated nodes learned by snooping neighbor
/// transmissions and from piggybacked packet history).  `KnowledgeBase`
/// centralizes both so each algorithm only implements its decision rule.

#pragma once

#include <vector>

#include "core/priority.hpp"
#include "core/view.hpp"
#include "graph/khop.hpp"
#include "sim/packet.hpp"

namespace adhoc {

/// Everything one node knows during one broadcast.
struct NodeKnowledge {
    LocalTopology topology;         ///< G_k(v), fixed for the broadcast period
    std::vector<char> visited;      ///< known-visited mask (global id space)
    std::vector<char> designated;   ///< known-designated mask
    bool received = false;          ///< got at least one copy
    bool decided = false;           ///< made its forward/non-forward decision
    bool designated_self = false;   ///< some sender designated this node
    NodeId first_sender = kInvalidNode;
    BroadcastState first_state;     ///< history from the first received copy
    std::size_t receipts = 0;
};

/// Per-run knowledge store for all nodes.
class KnowledgeBase {
  public:
    /// Precomputes G_k(v) for every node (k == 0 -> global information).
    KnowledgeBase(const Graph& g, std::size_t k);

    /// Uses externally assembled views (e.g. from a simulated hello
    /// protocol, possibly lossy).  One topology per node required.
    KnowledgeBase(const Graph& g, std::vector<LocalTopology> views);

    [[nodiscard]] NodeKnowledge& at(NodeId v) { return nodes_[v]; }
    [[nodiscard]] const NodeKnowledge& at(NodeId v) const { return nodes_[v]; }
    [[nodiscard]] std::size_t hops() const noexcept { return k_; }

    /// Folds one overheard transmission into `observer`'s knowledge:
    ///  - the sender is visited (snooping, Section 4.3);
    ///  - every history node is visited (piggybacking);
    ///  - every node in a piggybacked D(v_i) is designated;
    ///  - if the *sender* designated the observer, `designated_self` is set.
    /// On the first receipt, also latches `first_sender`/`first_state`.
    /// Returns true iff this was the first receipt.
    bool observe(NodeId observer, const Transmission& tx);

    /// The observer's current dynamic view (topology + broadcast state).
    /// The returned view borrows both the cached topology and a per-node
    /// status buffer owned by this KnowledgeBase — no allocation or copying
    /// per decision — so it is invalidated by the next `view_of(v, ...)`
    /// call for the same node and must not outlive the KnowledgeBase.
    [[nodiscard]] View view_of(NodeId v, const PriorityKeys& keys) const;

  private:
    std::vector<NodeKnowledge> nodes_;
    std::size_t k_;
    /// Reused status buffers backing the borrowed views; entry v is only
    /// ever rewritten at v's own topology members, so non-member slots stay
    /// kInvisible for the whole run.
    mutable std::vector<std::vector<NodeStatus>> status_cache_;
};

}  // namespace adhoc
