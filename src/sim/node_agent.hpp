/// \file node_agent.hpp
/// \brief Shared per-node protocol state for dynamic broadcast agents.
///
/// Every dynamic algorithm in the paper maintains the same two kinds of
/// local state (Section 4.3): long-lived k-hop topology (from periodic
/// "hello" messages — precomputed here once per run) and short-lived
/// broadcast state (visited/designated nodes learned by snooping neighbor
/// transmissions and from piggybacked packet history).  `KnowledgeBase`
/// centralizes both so each algorithm only implements its decision rule.
///
/// Storage is structure-of-arrays: the visited/designated masks are flat
/// word-parallel bitsets (one `words_per_node` stride per node — 1 bit per
/// peer instead of the old per-node `std::vector<char>`, 8x smaller with
/// zero per-node heap allocations), and the scalar flags
/// (received/decided/designated_self) are n-bit bitsets.  The SoA layout
/// is what lets a 10^5-node run fit in cache-friendly flat memory; call
/// sites keep the ergonomic `at(v)` style through a cheap `KnowledgeRef`
/// proxy.

#pragma once

#include <type_traits>
#include <vector>

#include "core/compact_view.hpp"
#include "core/priority.hpp"
#include "core/view.hpp"
#include "graph/khop.hpp"
#include "sim/packet.hpp"

namespace adhoc {

class KnowledgeBase;

/// Lightweight handle on one node's slice of the SoA store.  Copyable,
/// borrows the KnowledgeBase — do not outlive it.
template <typename KB>
class BasicKnowledgeRef {
  public:
    BasicKnowledgeRef(KB* kb, NodeId v) noexcept : kb_(kb), v_(v) {}

    /// Mutable handles convert to const handles.
    operator BasicKnowledgeRef<const KB>() const noexcept
        requires(!std::is_const_v<KB>)
    {
        return {kb_, v_};
    }

    [[nodiscard]] const LocalTopology& topology() const { return kb_->topology(v_); }
    [[nodiscard]] LocalTopology& mutable_topology() const
        requires(!std::is_const_v<KB>)
    {
        return kb_->topology(v_);
    }

    [[nodiscard]] bool received() const { return kb_->received(v_); }
    [[nodiscard]] bool decided() const { return kb_->decided(v_); }
    [[nodiscard]] bool designated_self() const { return kb_->designated_self(v_); }
    [[nodiscard]] NodeId first_sender() const { return kb_->first_sender(v_); }
    [[nodiscard]] const BroadcastState& first_state() const {
        return kb_->first_state(v_);
    }
    [[nodiscard]] std::size_t receipts() const { return kb_->receipts(v_); }
    [[nodiscard]] bool visited(NodeId x) const { return kb_->visited(v_, x); }
    [[nodiscard]] bool designated(NodeId x) const { return kb_->designated(v_, x); }

    void mark_received() const
        requires(!std::is_const_v<KB>)
    {
        kb_->mark_received(v_);
    }
    void mark_decided() const
        requires(!std::is_const_v<KB>)
    {
        kb_->mark_decided(v_);
    }
    void mark_designated_self() const
        requires(!std::is_const_v<KB>)
    {
        kb_->mark_designated_self(v_);
    }
    void mark_visited(NodeId x) const
        requires(!std::is_const_v<KB>)
    {
        kb_->mark_visited(v_, x);
    }
    void mark_designated(NodeId x) const
        requires(!std::is_const_v<KB>)
    {
        kb_->mark_designated(v_, x);
    }

  private:
    KB* kb_;
    NodeId v_;
};

using KnowledgeRef = BasicKnowledgeRef<KnowledgeBase>;
using ConstKnowledgeRef = BasicKnowledgeRef<const KnowledgeBase>;

/// Per-run knowledge store for all nodes (structure-of-arrays).
class KnowledgeBase {
  public:
    /// Precomputes G_k(v) for every node (k == 0 -> global information).
    KnowledgeBase(const Graph& g, std::size_t k);

    /// Uses externally assembled views (e.g. from a simulated hello
    /// protocol, possibly lossy).  One topology per node required.
    KnowledgeBase(const Graph& g, std::vector<LocalTopology> views);

    [[nodiscard]] KnowledgeRef at(NodeId v) { return {this, v}; }
    [[nodiscard]] ConstKnowledgeRef at(NodeId v) const { return {this, v}; }
    [[nodiscard]] std::size_t hops() const noexcept { return k_; }
    [[nodiscard]] std::size_t node_count() const noexcept { return topologies_.size(); }

    // ---- direct SoA accessors (the proxy forwards here) --------------
    [[nodiscard]] const LocalTopology& topology(NodeId v) const { return topologies_[v]; }
    [[nodiscard]] LocalTopology& topology(NodeId v) { return topologies_[v]; }

    [[nodiscard]] bool received(NodeId v) const { return bits::test(received_.data(), v); }
    [[nodiscard]] bool decided(NodeId v) const { return bits::test(decided_.data(), v); }
    [[nodiscard]] bool designated_self(NodeId v) const {
        return bits::test(designated_self_.data(), v);
    }
    [[nodiscard]] NodeId first_sender(NodeId v) const { return first_sender_[v]; }
    [[nodiscard]] const BroadcastState& first_state(NodeId v) const {
        return first_state_[v];
    }
    [[nodiscard]] std::size_t receipts(NodeId v) const { return receipts_[v]; }

    [[nodiscard]] bool visited(NodeId v, NodeId x) const {
        return bits::test(visited_row(v), x);
    }
    [[nodiscard]] bool designated(NodeId v, NodeId x) const {
        return bits::test(designated_row(v), x);
    }

    void mark_received(NodeId v) { bits::set(received_.data(), v); }
    void mark_decided(NodeId v) { bits::set(decided_.data(), v); }
    void mark_designated_self(NodeId v) { bits::set(designated_self_.data(), v); }
    void mark_visited(NodeId v, NodeId x) { bits::set(visited_row(v), x); }
    void mark_designated(NodeId v, NodeId x) { bits::set(designated_row(v), x); }

    /// Bulk-loads a full visited/designated mask for one node (benchmark
    /// and test fixture hook; the protocol path uses observe()).
    void load_visited(NodeId v, const std::vector<char>& mask);
    void load_designated(NodeId v, const std::vector<char>& mask);

    /// Folds one overheard transmission into `observer`'s knowledge:
    ///  - the sender is visited (snooping, Section 4.3);
    ///  - every history node is visited (piggybacking);
    ///  - every node in a piggybacked D(v_i) is designated;
    ///  - if the *sender* designated the observer, `designated_self` is set.
    /// On the first receipt, also latches `first_sender`/`first_state`.
    /// Returns true iff this was the first receipt.
    bool observe(NodeId observer, const Transmission& tx);

    /// The observer's current dynamic view (topology + broadcast state).
    /// The returned view borrows the cached topology and a status buffer
    /// shared across nodes — no allocation or copying per decision — so it
    /// is invalidated by the next `view_of(...)` call on *any* node and
    /// must not outlive the KnowledgeBase.  (Decision code evaluates one
    /// borrowed view at a time, which is exactly this contract.)
    [[nodiscard]] View view_of(NodeId v, const PriorityKeys& keys) const;

  private:
    void init_state(std::size_t n);

    [[nodiscard]] std::uint64_t* visited_row(NodeId v) {
        return visited_bits_.data() + static_cast<std::size_t>(v) * words_per_node_;
    }
    [[nodiscard]] const std::uint64_t* visited_row(NodeId v) const {
        return visited_bits_.data() + static_cast<std::size_t>(v) * words_per_node_;
    }
    [[nodiscard]] std::uint64_t* designated_row(NodeId v) {
        return designated_bits_.data() + static_cast<std::size_t>(v) * words_per_node_;
    }
    [[nodiscard]] const std::uint64_t* designated_row(NodeId v) const {
        return designated_bits_.data() + static_cast<std::size_t>(v) * words_per_node_;
    }

    std::vector<LocalTopology> topologies_;
    std::size_t k_;
    std::size_t words_per_node_ = 0;

    // Flat per-node masks, `words_per_node_` words per node.
    std::vector<std::uint64_t> visited_bits_;
    std::vector<std::uint64_t> designated_bits_;

    // One bit per node.
    std::vector<std::uint64_t> received_;
    std::vector<std::uint64_t> decided_;
    std::vector<std::uint64_t> designated_self_;

    std::vector<NodeId> first_sender_;
    std::vector<BroadcastState> first_state_;
    std::vector<std::uint32_t> receipts_;

    /// One status buffer shared by all nodes' borrowed views.  Member
    /// slots of the previously served view are reset to kInvisible before
    /// the next view is written, so non-member slots always read
    /// kInvisible — the invariant the coverage kernels rely on.
    mutable std::vector<NodeStatus> status_scratch_;
    mutable NodeId last_view_node_ = kInvalidNode;
};

}  // namespace adhoc
