#include "sim/packet.hpp"

namespace adhoc {

BroadcastState chain_state(const BroadcastState& received, NodeId self,
                           std::vector<NodeId> designated, std::size_t h) {
    BroadcastState out;
    if (h == 0) return out;
    // Keep the most recent h-1 inherited records, then append our own.
    const std::size_t keep = std::min(received.history.size(), h - 1);
    out.history.assign(received.history.end() - static_cast<std::ptrdiff_t>(keep),
                       received.history.end());
    out.history.push_back(VisitedRecord{self, std::move(designated)});
    return out;
}

}  // namespace adhoc
