/// \file packet.hpp
/// \brief Broadcast packet payload: piggybacked broadcast state (Section 5).
///
/// "The broadcast packet that arrives at v carries information of h most
/// recently visited nodes v1, v2, ..., vh, and the set of designated
/// forward neighbors D(vi) selected at each vi (usually for small h such as
/// 1 or 2)."  TDP additionally piggybacks the sender's 2-hop neighbor set.

#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace adhoc {

/// One visited node's record in the piggybacked history.
struct VisitedRecord {
    NodeId node = kInvalidNode;          ///< the visited (forwarding) node
    std::vector<NodeId> designated;      ///< D(node): its designated forward neighbors

    friend bool operator==(const VisitedRecord&, const VisitedRecord&) = default;
};

/// Broadcast state carried in a packet.
struct BroadcastState {
    /// Most recent h visited nodes, oldest first; the last record is always
    /// the current sender.
    std::vector<VisitedRecord> history;

    /// TDP extension (Section 6.3): the sender's N2 set, so the next
    /// forward node can subtract N2(u) rather than N(u).  Empty for every
    /// other protocol.
    std::vector<NodeId> sender_two_hop;

    friend bool operator==(const BroadcastState&, const BroadcastState&) = default;
};

/// One over-the-air transmission.
struct Transmission {
    NodeId sender = kInvalidNode;
    double time = 0.0;
    BroadcastState state;
};

/// Builds the state a forwarding node sends: the received history with the
/// forwarder's own record appended, truncated to the `h` most recent
/// entries.  `h == 0` means no piggybacking at all.
[[nodiscard]] BroadcastState chain_state(const BroadcastState& received, NodeId self,
                                         std::vector<NodeId> designated, std::size_t h);

}  // namespace adhoc
