#include "sim/scale_engine.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/coverage.hpp"
#include "core/view.hpp"
#include "core/view_cache.hpp"

namespace adhoc {

namespace {

/// Reusable fork-join crew for the window phase.  A run executes hundreds
/// of very short phases (one per window); spawning threads per phase costs
/// more than the phase itself, so the workers persist for the whole run and
/// rendezvous on an epoch counter.  Wheels are claimed from an atomic
/// cursor, each exactly once; `run_phase` returns only after every worker
/// has checked the phase in (the acquire on `done_` is the barrier that
/// publishes every wheel's writes to every other wheel).
class PhaseCrew {
  public:
    PhaseCrew(std::size_t jobs, std::size_t wheel_count)
        : wheel_count_(wheel_count) {
        const std::size_t extra = std::min(jobs, wheel_count) - 1;
        workers_.reserve(extra);
        for (std::size_t t = 0; t < extra; ++t) {
            workers_.emplace_back([this] { worker_loop(); });
        }
    }

    ~PhaseCrew() {
        stop_.store(true, std::memory_order_release);
        epoch_.fetch_add(1, std::memory_order_release);
        for (std::thread& t : workers_) t.join();
    }

    template <typename F>
    void run_phase(F&& fn) {
        if (workers_.empty()) {
            for (std::size_t i = 0; i < wheel_count_; ++i) fn(i);
            return;
        }
        fn_ = [&fn](std::size_t i) { fn(i); };
        next_.store(0, std::memory_order_relaxed);
        done_.store(0, std::memory_order_relaxed);
        epoch_.fetch_add(1, std::memory_order_release);
        claim();  // the calling thread is crew too
        while (done_.load(std::memory_order_acquire) < workers_.size()) {
            std::this_thread::yield();
        }
    }

  private:
    void claim() {
        for (std::size_t i;
             (i = next_.fetch_add(1, std::memory_order_relaxed)) < wheel_count_;) {
            fn_(i);
        }
    }

    void worker_loop() {
        std::uint64_t seen = 0;
        while (true) {
            std::size_t spins = 0;
            while (epoch_.load(std::memory_order_acquire) == seen) {
                if (++spins > 4096) std::this_thread::yield();
            }
            ++seen;
            if (stop_.load(std::memory_order_acquire)) return;
            claim();
            done_.fetch_add(1, std::memory_order_release);
        }
    }

    std::size_t wheel_count_;
    std::function<void(std::size_t)> fn_;
    std::vector<std::thread> workers_;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<std::size_t> next_{0};
    std::atomic<std::size_t> done_{0};
    std::atomic<bool> stop_{false};
};

/// One-multiply mix (hash_combine shape).  Order-sensitive — folding the
/// same events in a different order yields a different digest, which is
/// exactly what the determinism gate wants — and cheap enough for the
/// per-event hot loop, unlike byte-wise FNV.
inline std::uint64_t mix(std::uint64_t h, std::uint64_t x) noexcept {
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h * 0x2545f4914f6cdd1dULL;
}

inline constexpr std::uint64_t kDigestBasis = 0xcbf29ce484222325ULL;

/// "No receipt yet this window."  Unreachable as a real key: the high word
/// is the sender's transmission ordinal, and ordinal 0xffffffff is the
/// not-yet-transmitted sentinel — a sender always has a real ordinal.
inline constexpr std::uint64_t kNoKey = ~std::uint64_t{0};
inline constexpr std::uint32_t kNoRank = 0xffffffffu;

/// kAuto view-mode threshold.  A standing ViewCache stores each node's
/// LocalTopology over the *full* id space (visibility mask + subgraph), so
/// cached memory grows ~n^2; past ~10^3 nodes per-decision scratch compiles
/// are the only thing that fits.
inline constexpr std::size_t kCachedViewAutoLimit = 1024;

// ---- faulted windowed replay ------------------------------------------

/// Calendar horizon for *plan* event times (engine-generated events are
/// bounded by the run's own dynamics).  2^20 windows of empty buckets is
/// ~24 MB worst-case — far past any real schedule, cheap enough to keep the
/// resize in push_revent unconditional.
inline constexpr std::size_t kMaxWindows = std::size_t{1} << 20;

// REvent.kind values.  The numeric order is irrelevant: buckets sort by
// (time, seq) only, which is the reference EventQueue's pop order.
inline constexpr std::uint32_t kRFault = 0;
inline constexpr std::uint32_t kRDelivery = 1;
inline constexpr std::uint32_t kRTimer = 2;
inline constexpr std::uint32_t kRControl = 3;
// kRTimer payloads / kRControl message kinds (RecoveryAgent's state machine).
inline constexpr std::uint32_t kBeaconTimerR = 0;
inline constexpr std::uint32_t kNackTimerR = 1;
inline constexpr std::uint32_t kBeaconMsgR = 0;
inline constexpr std::uint32_t kNackMsgR = 1;
/// held_pkt_ sentinel: "holds the packet with an empty history chain" —
/// only the source, whose initial state is empty, ever carries it.
inline constexpr std::uint32_t kHeldEmpty = 0xffffffffu;

}  // namespace

std::uint64_t reference_transmission_digest(const Trace& trace) {
    std::uint64_t h = kDigestBasis;
    for (const TraceEvent& e : trace.events()) {
        if (e.kind != TraceKind::kTransmit) continue;
        h = mix(h, std::bit_cast<std::uint64_t>(e.time));
        h = mix(h, e.node);
    }
    return h;
}

void ScaleEngine::validate_generic_config() const {
    const GenericConfig& gc = config_.generic;
    if (gc.timing != Timing::kStatic && gc.timing != Timing::kFirstReceipt) {
        throw std::invalid_argument(
            "ScaleConfig.generic.timing = " + to_string(gc.timing) +
            ": backoff timings draw per-node timers from the RNG, which the "
            "windowed engine cannot honor — use Static/FR here, or Simulator");
    }
    if (gc.selection != Selection::kSelfPruning) {
        throw std::invalid_argument(
            "ScaleConfig.generic.selection = " + to_string(gc.selection) +
            ": neighbor-designating selections need designation pullback "
            "events — the engine honors self-pruning only; use Simulator");
    }
    if (gc.hops == 0) {
        throw std::invalid_argument(
            "ScaleConfig.generic.hops = 0: global views cost O(n) per "
            "decision and defeat the scale plane — use hops >= 1");
    }
}

ScaleEngine::ScaleEngine(const Graph& graph, ScaleConfig config)
    : graph_(&graph), config_(config) {
    if (!(config_.delay > 0.0)) {
        throw std::invalid_argument("ScaleConfig.delay must be > 0");
    }
    if (config_.wheels == 0) {
        throw std::invalid_argument("ScaleConfig.wheels must be >= 1");
    }
    if (config_.jobs == 0) {
        throw std::invalid_argument("ScaleConfig.jobs must be >= 1");
    }
    const std::size_t n = graph.node_count();
    config_.wheels = std::min(config_.wheels, std::max<std::size_t>(n, 1));
    block_ = (n + config_.wheels - 1) / config_.wheels;
    if (block_ == 0) block_ = 1;
    received_.assign(n, 0);
    forwarded_.assign(n, 0);
    first_sender_.assign(n, kInvalidNode);
    wheels_.resize(config_.wheels);
    prev_.resize(config_.wheels * config_.wheels);
    cur_.resize(config_.wheels * config_.wheels);

    if (config_.policy == ScalePolicy::kGenericCoverage) {
        validate_generic_config();
        const bool cached =
            config_.view_mode == ScaleViewMode::kCached ||
            (config_.view_mode == ScaleViewMode::kAuto && n <= kCachedViewAutoLimit);
        if (cached) {
            cache_ = std::make_unique<ViewCache>(graph, config_.generic.hops);
            graph_ = &cache_->graph();  // flaps mutate the cache's copy
        }
        keys_ = PriorityKeys(*graph_, config_.generic.priority);
        tx_rank_.assign(n, kNoRank);
        best_key_.assign(n, kNoKey);
        chain_.assign(n * chain_stride(), kInvalidNode);
        chain_len_.assign(n, 0);
        scratch_.resize(config_.wheels);
        if (cache_) {
            for (WheelScratch& ws : scratch_) {
                ws.status_row.assign(n, NodeStatus::kUnvisited);
            }
        }
    }
}

ScaleEngine::~ScaleEngine() = default;

void ScaleEngine::flap(NodeId u, NodeId v, bool add) {
    const std::size_t n = graph_->node_count();
    if (u >= n || v >= n || u == v) {
        throw std::invalid_argument("ScaleEngine edge flap: invalid endpoints");
    }
    if (cache_) {
        if (add) {
            cache_->add_edge(u, v);
        } else {
            cache_->remove_edge(u, v);
        }
    } else {
        if (!churn_graph_) {
            churn_graph_.emplace(*graph_);  // copy-on-first-flap
            graph_ = &*churn_graph_;
        }
        if (add) {
            churn_graph_->add_edge(u, v);
        } else {
            churn_graph_->remove_edge(u, v);
        }
    }
    keys_stale_ = true;  // degree/NCR keys follow the topology
}

void ScaleEngine::add_edge(NodeId u, NodeId v) { flap(u, v, true); }

void ScaleEngine::remove_edge(NodeId u, NodeId v) { flap(u, v, false); }

std::size_t ScaleEngine::chain_stride() const noexcept {
    // Static decisions ignore broadcast state entirely, so nothing is
    // piggybacked; first-receipt carries the last `history` visited nodes.
    return config_.generic.timing == Timing::kFirstReceipt ? config_.generic.history
                                                           : 0;
}

bool ScaleEngine::covered_by(NodeId v, NodeId u) const noexcept {
    // True iff every neighbor of v is u itself or a neighbor of u — the
    // self-pruning test over two sorted adjacency rows.
    const auto nv = graph_->neighbors(v);
    const auto nu = graph_->neighbors(u);
    auto it = nu.begin();
    for (NodeId x : nv) {
        if (x == u) continue;
        while (it != nu.end() && *it < x) ++it;
        if (it == nu.end() || *it != x) return false;
    }
    return true;
}

void ScaleEngine::process_wheel(std::size_t w) {
    Wheel& wheel = wheels_[w];
    const std::size_t wheel_count = config_.wheels;
    for (std::size_t d = 0; d < wheel_count; ++d) cur_[w * wheel_count + d].clear();
    // Canonical order: source wheel 0..W-1, generation order within each —
    // exactly the (time, seq) order a per-wheel priority queue would pop,
    // since every pending event shares this window's delivery time.
    for (std::size_t s = 0; s < wheel_count; ++s) {
        for (const Staged& e : prev_[s * wheel_count + w]) {
            const NodeId v = e.node;
            ++wheel.delivered;
            wheel.last_time = std::max(wheel.last_time, e.time);
            wheel.digest = mix(wheel.digest, std::bit_cast<std::uint64_t>(e.time));
            wheel.digest = mix(wheel.digest, (std::uint64_t{v} << 32) | e.sender);
            if (received_[v]) continue;  // duplicate copy: snooped, not re-decided
            received_[v] = 1;
            first_sender_[v] = e.sender;
            const bool forward =
                config_.policy == ScalePolicy::kFlood || !covered_by(v, e.sender);
            if (!forward) continue;
            forwarded_[v] = 1;
            const double next_time = e.time + config_.delay;
            for (NodeId x : graph_->neighbors(v)) {
                cur_[w * wheel_count + wheel_of(x)].push_back({next_time, x, v});
            }
        }
    }
}

std::uint64_t ScaleEngine::receipt_key(NodeId sender, NodeId v) const noexcept {
    // The reference Simulator delivers a window's copies in (sender
    // transmission time, schedule sequence) order, and the sequence numbers
    // follow the sender's fanout loop over its sorted adjacency row.  So
    // (sender's transmission ordinal, index of v in the sender's row) is
    // the exact pop order — recovered here with a binary search instead of
    // widening the Staged record.
    const auto row = graph_->neighbors(sender);
    const auto it = std::lower_bound(row.begin(), row.end(), v);
    const auto idx = static_cast<std::uint64_t>(it - row.begin());
    return (std::uint64_t{tx_rank_[sender]} << 32) | idx;
}

void ScaleEngine::compile_scratch_view(WheelScratch& ws, NodeId v) {
    // Truncated BFS reproducing Definition 2 (khop.cpp) straight into CSR
    // form: members are every node within k hops, and link (a, b) is
    // visible iff min(dist(a), dist(b)) <= k - 1 (both ends being members
    // bounds the max at k already).  Epoch stamps make dist/g2l valid
    // without an O(n) clear per decision.
    const Graph& g = *graph_;
    const std::size_t n = g.node_count();
    if (ws.stamp.size() < n) {
        ws.stamp.resize(n, 0);
        ws.dist.resize(n);
        ws.g2l.resize(n);
    }
    if (++ws.epoch == 0) {  // wrap: invalidate everything once
        std::fill(ws.stamp.begin(), ws.stamp.end(), 0);
        ws.epoch = 1;
    }
    const std::size_t k = config_.generic.hops;
    ws.bfs.clear();
    ws.bfs.push_back(v);
    ws.stamp[v] = ws.epoch;
    ws.dist[v] = 0;
    for (std::size_t head = 0; head < ws.bfs.size(); ++head) {
        const NodeId x = ws.bfs[head];
        if (ws.dist[x] == k) continue;
        for (NodeId y : g.neighbors(x)) {
            if (ws.stamp[y] == ws.epoch) continue;
            ws.stamp[y] = ws.epoch;
            ws.dist[y] = static_cast<std::uint16_t>(ws.dist[x] + 1);
            ws.bfs.push_back(y);
        }
    }
    ws.members.assign(ws.bfs.begin(), ws.bfs.end());
    std::sort(ws.members.begin(), ws.members.end());
    const auto m = static_cast<std::uint32_t>(ws.members.size());
    for (std::uint32_t i = 0; i < m; ++i) ws.g2l[ws.members[i]] = i;
    ws.offsets.resize(m + 1);
    ws.edges.clear();
    const std::size_t interior = k - 1;
    for (std::uint32_t i = 0; i < m; ++i) {
        ws.offsets[i] = static_cast<std::uint32_t>(ws.edges.size());
        const NodeId a = ws.members[i];
        const bool a_interior = ws.dist[a] <= interior;
        for (NodeId b : g.neighbors(a)) {
            if (ws.stamp[b] != ws.epoch) continue;       // outside the ball
            if (!a_interior && ws.dist[b] > interior) continue;  // k-to-k link
            ws.edges.push_back(ws.g2l[b]);
        }
    }
    ws.offsets[m] = static_cast<std::uint32_t>(ws.edges.size());
}

bool ScaleEngine::decide_generic(WheelScratch& ws, NodeId v, NodeId u) {
    const GenericConfig& gc = config_.generic;
    // Decision-time visited set.  Static: empty (the static forward set is
    // computed over all-unvisited views).  First-receipt: exactly what the
    // first received packet carries — the sender's outgoing chain (which
    // ends with the sender itself when history >= 1).
    ws.visited.clear();
    if (gc.timing == Timing::kFirstReceipt) {
        if (const std::size_t h = gc.history; h > 0) {
            const NodeId* chain = chain_.data() + std::size_t{u} * h;
            ws.visited.assign(chain, chain + chain_len_[u]);
        } else {
            ws.visited.push_back(u);
        }
    }
    return decide_with_visited(ws, v);
}

bool ScaleEngine::decide_with_visited(WheelScratch& ws, NodeId v) {
    const GenericConfig& gc = config_.generic;
    bool covered;
    if (cache_) {
        const LocalTopology& topo = cache_->compiled_view(v);
        for (NodeId x : topo.members) ws.status_row[x] = NodeStatus::kUnvisited;
        for (NodeId x : ws.visited) {
            if (topo.visible[x]) ws.status_row[x] = NodeStatus::kVisited;
        }
        const View view(&topo, &ws.status_row, &keys_);
        covered = coverage_condition_holds(view, v, gc.coverage);
    } else {
        compile_scratch_view(ws, v);
        LocalViewScratch& s = LocalViewScratch::tls();
        const auto m = static_cast<std::uint32_t>(ws.members.size());
        s.compact.size = m;
        s.compact.members = ws.members;
        s.compact.offsets = ws.offsets;
        s.compact.edges = ws.edges;
        s.compact.priority.resize(m);
        s.compact.status.resize(m);
        for (std::uint32_t i = 0; i < m; ++i) {
            const NodeId x = ws.members[i];
            NodeStatus st = NodeStatus::kUnvisited;
            for (NodeId y : ws.visited) {
                if (y == x) {
                    st = NodeStatus::kVisited;
                    break;
                }
            }
            s.compact.status[i] = st;
            s.compact.priority[i] = keys_.evaluate(x, st);
        }
        const std::uint32_t lv = ws.g2l[v];
        const Priority pv = keys_.evaluate(v, NodeStatus::kUnvisited);
        covered = evaluate_coverage_compiled(s, lv, pv, gc.coverage).covered;
    }
    return !covered;
}

void ScaleEngine::scan_wheel_generic(std::size_t w) {
    Wheel& wheel = wheels_[w];
    const std::size_t wheel_count = config_.wheels;
    WheelScratch& ws = scratch_[w];
    ws.fresh.clear();
    ws.forwarders.clear();
    // Pass 1: account every delivery and find, per not-yet-received node,
    // the minimum receipt key — the copy the reference Simulator would pop
    // first within this window.
    for (std::size_t s = 0; s < wheel_count; ++s) {
        for (const Staged& e : prev_[s * wheel_count + w]) {
            const NodeId v = e.node;
            ++wheel.delivered;
            wheel.last_time = std::max(wheel.last_time, e.time);
            if (received_[v]) continue;  // duplicate copy: snooped, not re-decided
            const std::uint64_t key = receipt_key(e.sender, v);
            if (best_key_[v] == kNoKey) ws.fresh.push_back(v);
            if (key < best_key_[v]) {
                best_key_[v] = key;
                first_sender_[v] = e.sender;
            }
        }
    }
    // Pass 2: decide each first receipt against its first sender's packet.
    // Chains of this window's senders are final (they transmitted last
    // window), so the decisions are independent across wheels.
    const std::size_t h = chain_stride();
    for (NodeId v : ws.fresh) {
        received_[v] = 1;
        const NodeId u = first_sender_[v];
        if (!decide_generic(ws, v, u)) continue;
        forwarded_[v] = 1;
        if (h > 0) {
            // Outgoing chain: the last min(len(u), h-1) of the sender's
            // chain, then v itself (packet.cpp chain_state semantics).
            const NodeId* cu = chain_.data() + std::size_t{u} * h;
            const std::size_t keep = std::min<std::size_t>(chain_len_[u], h - 1);
            NodeId* cv = chain_.data() + std::size_t{v} * h;
            const NodeId* from = cu + chain_len_[u] - keep;
            for (std::size_t i = 0; i < keep; ++i) cv[i] = from[i];
            cv[keep] = v;
            chain_len_[v] = static_cast<std::uint32_t>(keep + 1);
        }
        ws.forwarders.push_back(v);
    }
}

ScaleResult ScaleEngine::run_generic(NodeId source) {
    const std::size_t n = graph_->node_count();
    std::fill(received_.begin(), received_.end(), 0);
    std::fill(forwarded_.begin(), forwarded_.end(), 0);
    std::fill(first_sender_.begin(), first_sender_.end(), kInvalidNode);
    std::fill(tx_rank_.begin(), tx_rank_.end(), kNoRank);
    std::fill(best_key_.begin(), best_key_.end(), kNoKey);
    std::fill(chain_len_.begin(), chain_len_.end(), 0);
    for (Wheel& wheel : wheels_) wheel = Wheel{};
    for (std::vector<Staged>& bucket : prev_) bucket.clear();
    for (std::vector<Staged>& bucket : cur_) bucket.clear();
    generic_digest_ = kDigestBasis;
    next_rank_ = 0;

    if (keys_stale_) {
        keys_ = PriorityKeys(*graph_, config_.generic.priority);
        keys_stale_ = false;
    }
    // One serial recompile sweep, then the parallel phases read the cache
    // through the const, assertion-guarded accessor — no lazy mutation
    // races inside a window.
    if (cache_) cache_->prepare_all();

    ScaleResult result;
    if (n == 0) return result;

    const std::size_t wheel_count = config_.wheels;
    received_[source] = 1;
    forwarded_[source] = 1;
    tx_rank_[source] = next_rank_++;
    generic_digest_ = mix(generic_digest_, std::bit_cast<std::uint64_t>(0.0));
    generic_digest_ = mix(generic_digest_, source);
    if (const std::size_t h = chain_stride(); h > 0) {
        chain_[std::size_t{source} * h] = source;
        chain_len_[source] = 1;
    }
    {
        const std::size_t w = wheel_of(source);
        for (NodeId x : graph_->neighbors(source)) {
            prev_[w * wheel_count + wheel_of(x)].push_back({config_.delay, x, source});
        }
    }

    std::optional<PhaseCrew> crew;
    constexpr std::size_t kParallelWindow = 4096;
    // All of a window's deliveries share one receive instant, accumulated
    // by repeated addition exactly as the Simulator accumulates now_ +
    // delay — bit-equality of times (hence digests) is preserved.
    double window_time = config_.delay;

    while (true) {
        std::size_t queued = 0;
        for (const std::vector<Staged>& bucket : prev_) queued += bucket.size();
        result.peak_queue_events = std::max(result.peak_queue_events, queued);
        if (queued == 0) break;
        ++result.windows;
        if (config_.jobs > 1 && queued >= kParallelWindow) {
            if (!crew) crew.emplace(config_.jobs, wheel_count);
            crew->run_phase([&](std::size_t w) { scan_wheel_generic(w); });
        } else {
            for (std::size_t w = 0; w < wheel_count; ++w) scan_wheel_generic(w);
        }

        // Serial rank step: merge the window's new forwarders in receipt-key
        // order — the global (time, seq) order the reference Simulator
        // decides in — assign dense transmission ordinals, fold the order
        // digest, and stage the fanout.  O(F log F + fanout F) against the
        // coverage kernels' O(F * ball edges): never the bottleneck.
        merge_.clear();
        for (std::size_t w = 0; w < wheel_count; ++w) {
            for (NodeId v : scratch_[w].forwarders) merge_.push_back({best_key_[v], v});
        }
        std::sort(merge_.begin(), merge_.end());
        for (std::vector<Staged>& bucket : cur_) bucket.clear();
        const double next_time = window_time + config_.delay;
        for (const auto& [key, v] : merge_) {
            tx_rank_[v] = next_rank_++;
            generic_digest_ = mix(generic_digest_, std::bit_cast<std::uint64_t>(window_time));
            generic_digest_ = mix(generic_digest_, v);
            const std::size_t row = wheel_of(v) * wheel_count;
            for (NodeId x : graph_->neighbors(v)) {
                cur_[row + wheel_of(x)].push_back({next_time, x, v});
            }
        }
        prev_.swap(cur_);
        window_time = next_time;
    }

    for (const Wheel& wheel : wheels_) {
        result.delivered_events += wheel.delivered;
        result.completion_time = std::max(result.completion_time, wheel.last_time);
    }
    result.order_digest = generic_digest_;
    result.forward_count =
        static_cast<std::size_t>(std::count(forwarded_.begin(), forwarded_.end(), 1));
    result.received_count =
        static_cast<std::size_t>(std::count(received_.begin(), received_.end(), 1));
    result.full_delivery = result.received_count == n;
    return result;
}

std::size_t ScaleEngine::window_index(double time) const noexcept {
    // Snap near-integer quotients to the boundary (delivery and timer
    // instants are exact multiples of delay, but plan times and backoff
    // products may carry FP noise), otherwise round up: an event at time t
    // fires at the first window boundary >= t.
    const double q = time / config_.delay;
    const double r = std::nearbyint(q);
    const double w =
        std::abs(q - r) <= 1e-9 * std::max(1.0, std::abs(q)) ? r : std::ceil(q);
    return w <= 0.0 ? 0 : static_cast<std::size_t>(w);
}

void ScaleEngine::attach_faults(const faults::FaultPlan* plan) {
    if (plan != nullptr) {
        faults::validate_plan(*plan, graph_->node_count());
        for (std::size_t i = 0; i < plan->events.size(); ++i) {
            if (window_index(plan->events[i].time) >= kMaxWindows) {
                throw std::invalid_argument(
                    "FaultPlan.events[" + std::to_string(i) +
                    "].time = " + std::to_string(plan->events[i].time) +
                    ": past the engine's calendar horizon (2^20 windows of "
                    "delay " +
                    std::to_string(config_.delay) + ")");
            }
        }
    }
    fault_plan_ = plan;
}

void ScaleEngine::set_recovery(const faults::RecoveryConfig& config) {
    if (config.enabled) {
        const auto aligned = [&](double value) {
            if (!std::isfinite(value) || value <= 0.0) return false;
            const double q = value / config_.delay;
            const double r = std::nearbyint(q);
            return r >= 1.0 && std::abs(q - r) <= 1e-9 * std::max(1.0, std::abs(q));
        };
        if (!aligned(config.beacon_interval)) {
            throw std::invalid_argument(
                "RecoveryConfig.beacon_interval = " +
                std::to_string(config.beacon_interval) +
                ": the windowed mirror needs a positive integer multiple of "
                "ScaleConfig.delay = " +
                std::to_string(config_.delay));
        }
        if (!aligned(config.nack_delay)) {
            throw std::invalid_argument(
                "RecoveryConfig.nack_delay = " + std::to_string(config.nack_delay) +
                ": the windowed mirror needs a positive integer multiple of "
                "ScaleConfig.delay = " +
                std::to_string(config_.delay) +
                " (the RecoveryConfig{} default 0.5 is not, at delay 1.0)");
        }
        if (!std::isfinite(config.backoff_factor) || config.backoff_factor < 1.0 ||
            std::nearbyint(config.backoff_factor) != config.backoff_factor) {
            throw std::invalid_argument(
                "RecoveryConfig.backoff_factor = " +
                std::to_string(config.backoff_factor) +
                ": must be an integral factor >= 1 so NACK timers stay on "
                "window boundaries");
        }
        const double max_backoff =
            config.nack_delay *
            std::pow(config.backoff_factor, static_cast<double>(config.max_nacks));
        if (!(max_backoff / config_.delay < static_cast<double>(kMaxWindows))) {
            throw std::invalid_argument(
                "RecoveryConfig: nack_delay * backoff_factor^max_nacks = " +
                std::to_string(max_backoff) +
                " exceeds the engine's calendar horizon");
        }
    }
    recovery_ = config;
}

void ScaleEngine::push_revent(double time, std::uint32_t kind, NodeId node,
                              std::uint32_t payload) {
    const std::size_t w = window_index(time);
    if (cal_.size() <= w) cal_.resize(w + 1);
    cal_[w].push_back({time, r_seq_++, kind, node, payload});
    ++r_pending_;
}

void ScaleEngine::fanout_resilient(NodeId sender, bool control, std::uint32_t payload,
                                   NodeId only_target, double next_time) {
    // Mirrors Simulator::schedule_deliveries exactly: the target skip comes
    // before fault gating (no loss draw for skipped neighbors), and a down
    // link short-circuits the draw (|| in the reference) so the counter
    // stream position stays identical.
    const std::uint32_t kind = control ? kRControl : kRDelivery;
    for (NodeId nbr : graph_->neighbors(sender)) {
        if (only_target != kInvalidNode && nbr != only_target) continue;
        if (!fsession_.link_up(sender, nbr) || fsession_.drop_directed(sender, nbr)) {
            ++r_suppressed_;
            continue;
        }
        push_revent(next_time, kind, nbr, payload);
    }
}

std::uint32_t ScaleEngine::make_packet(NodeId v, std::size_t history) {
    std::uint32_t off = 0;
    std::uint32_t len = 0;
    // Chains exist only where decisions read them: first-receipt generic
    // coverage.  packet.cpp chain_state semantics — the last `history`
    // entries of (first received chain + v), which is the last history-1 of
    // the base plus v itself.
    if (config_.policy == ScalePolicy::kGenericCoverage &&
        config_.generic.timing == Timing::kFirstReceipt && history > 0) {
        std::uint32_t base_off = 0;
        std::uint32_t base_len = 0;
        if (held_pkt_[v] != kHeldEmpty) {
            base_off = packets_[held_pkt_[v]].chain_off;
            base_len = packets_[held_pkt_[v]].chain_len;
        }
        const auto keep = static_cast<std::uint32_t>(
            std::min<std::size_t>(base_len, history - 1));
        r_chain_.reserve(r_chain_.size() + keep + 1);
        off = static_cast<std::uint32_t>(r_chain_.size());
        for (std::uint32_t i = 0; i < keep; ++i) {
            r_chain_.push_back(r_chain_[base_off + base_len - keep + i]);
        }
        r_chain_.push_back(v);
        len = keep + 1;
    }
    const auto pid = static_cast<std::uint32_t>(packets_.size());
    packets_.push_back({v, off, len});
    return pid;
}

void ScaleEngine::transmit_resilient(NodeId v, double now) {
    forwarded_[v] = 1;
    received_[v] = 1;
    generic_digest_ = mix(generic_digest_, std::bit_cast<std::uint64_t>(now));
    generic_digest_ = mix(generic_digest_, v);
    const std::uint32_t pid = make_packet(v, config_.generic.history);
    fanout_resilient(v, false, pid, kInvalidNode, now + config_.delay);
}

void ScaleEngine::resend_resilient(NodeId v, double now) {
    // Mirrors Simulator::resend: accounted separately, not a forward, and
    // NOT folded into the order digest (the reference digest folds
    // kTransmit trace events only).  The repair carries the chain of the
    // holder's *first received* state at the recovery layer's own depth.
    ++r_retransmit_;
    received_[v] = 1;
    const std::uint32_t pid = make_packet(v, recovery_->history);
    fanout_resilient(v, false, pid, kInvalidNode, now + config_.delay);
}

bool ScaleEngine::decide_resilient(WheelScratch& ws, NodeId v, const RPacket& pkt) {
    // Same decision-time visited set as decide_generic, but from the
    // per-packet chain pool: under recovery a first receipt may be a repair
    // whose chain depth differs from the data plane's.
    ws.visited.clear();
    if (config_.generic.timing == Timing::kFirstReceipt) {
        if (pkt.chain_len > 0) {
            const NodeId* chain = r_chain_.data() + pkt.chain_off;
            ws.visited.assign(chain, chain + pkt.chain_len);
        } else {
            ws.visited.push_back(pkt.sender);
        }
    }
    return decide_with_visited(ws, v);
}

ScaleResult ScaleEngine::run_resilient(NodeId source) {
    const std::size_t n = graph_->node_count();
    ScaleResult result;
    if (n == 0) return result;

    std::fill(received_.begin(), received_.end(), 0);
    std::fill(forwarded_.begin(), forwarded_.end(), 0);
    std::fill(first_sender_.begin(), first_sender_.end(), kInvalidNode);
    for (std::vector<REvent>& bucket : cal_) bucket.clear();
    work_.clear();
    packets_.clear();
    controls_.clear();
    r_chain_.clear();
    r_seq_ = 0;
    r_pending_ = 0;
    r_retransmit_ = 0;
    r_control_ = 0;
    r_suppressed_ = 0;
    generic_digest_ = kDigestBasis;
    held_pkt_.assign(n, kHeldEmpty);
    if (recovery_on()) {
        beacons_n_.assign(n, 0);
        nacks_n_.assign(n, 0);
        nack_armed_.assign(n, 0);
        gap_source_.assign(n, kInvalidNode);
        repairs_n_.assign(n, 0);
    }

    const bool generic = config_.policy == ScalePolicy::kGenericCoverage;
    if (generic) {
        if (keys_stale_) {
            keys_ = PriorityKeys(*graph_, config_.generic.priority);
            keys_stale_ = false;
        }
        if (cache_) cache_->prepare_all();
        pre_stamp_.assign(n, 0);
        pre_pkt_.resize(n);
        pre_dec_.resize(n);
        pre_epoch_ = 0;
    }

    // Queue the whole fault schedule first: these events carry the globally
    // lowest insertion sequences, so a crash always beats same-instant
    // deliveries — exactly Simulator::begin's push order.
    const faults::FaultPlan& plan = fault_plan_ != nullptr ? *fault_plan_ : empty_plan_;
    fsession_.reset(plan, n);
    for (std::size_t i = 0; i < plan.events.size(); ++i) {
        push_revent(std::max(plan.events[i].time, 0.0), kRFault, plan.events[i].node,
                    static_cast<std::uint32_t>(i));
    }

    // begin(): the agent's start() runs before any event pops, so the
    // source transmits unconditionally (no fault has been applied yet);
    // then — RecoveryAgent::start order — the source's holder beacon arms
    // AFTER the fanout's insertion sequences.
    transmit_resilient(source, 0.0);
    if (recovery_on() && recovery_->max_beacons > 0) {
        push_revent(recovery_->beacon_interval, kRTimer, source, kBeaconTimerR);
    }

    std::optional<PhaseCrew> crew;
    constexpr std::size_t kParallelWindow = 4096;
    double completion = 0.0;

    for (std::size_t w = 0; r_pending_ > 0 && w < cal_.size(); ++w) {
        if (cal_[w].empty()) continue;
        result.peak_queue_events = std::max(result.peak_queue_events, r_pending_);
        ++result.windows;
        // Swap the bucket out before draining: processing pushes into
        // future buckets, which may reallocate the calendar.
        work_.clear();
        work_.swap(cal_[w]);
        r_pending_ -= work_.size();
        // Within a bucket, (time, seq) is the reference queue's pop order;
        // buckets partition the time axis into disjoint ascending ranges,
        // so the concatenation of sorted buckets IS the global pop order.
        std::sort(work_.begin(), work_.end(), [](const REvent& a, const REvent& b) {
            return a.time != b.time ? a.time < b.time : a.seq < b.seq;
        });

        // Fault prefix: plan events carry the lowest sequences, so they
        // normally sort ahead of all same-window traffic.  Applying them up
        // front freezes up/down state for the window — the precondition for
        // pre-scanning decisions in parallel.
        std::size_t head = 0;
        while (head < work_.size() && work_[head].kind == kRFault) {
            const faults::FaultEvent& fe = plan.events[work_[head].payload];
            fsession_.apply(fe);
            if (config_.churn_updates_views &&
                (fe.kind == faults::FaultKind::kLinkDown ||
                 fe.kind == faults::FaultKind::kLinkUp)) {
                flap(fe.link.a, fe.link.b, fe.kind == faults::FaultKind::kLinkUp);
            }
            completion = std::max(completion, work_[head].time);
            ++head;
        }
        bool fault_prefix_only = true;
        for (std::size_t j = head; j < work_.size(); ++j) {
            if (work_[j].kind == kRFault) {
                fault_prefix_only = false;
                break;
            }
        }
        if (generic && keys_stale_) {  // churn_updates_views rebuilt topology
            keys_ = PriorityKeys(*graph_, config_.generic.priority);
            keys_stale_ = false;
            if (cache_) cache_->prepare_all();
        }

        // Parallel decision pre-scan: coverage decisions are pure functions
        // of (first packet, graph, keys), all frozen at the window boundary
        // once the fault prefix is in.  Find each node's first in-window
        // delivery (bucket order = pop order), decide per wheel in
        // parallel, and let the serial replay consume the verdicts.
        bool prescan = false;
        if (generic && fault_prefix_only && config_.jobs > 1 &&
            work_.size() - head >= kParallelWindow) {
            prescan = true;
            if (++pre_epoch_ == 0) {  // wrap: invalidate everything once
                std::fill(pre_stamp_.begin(), pre_stamp_.end(), 0);
                pre_epoch_ = 1;
            }
            for (WheelScratch& ws : scratch_) ws.fresh.clear();
            for (std::size_t j = head; j < work_.size(); ++j) {
                const REvent& e = work_[j];
                if (e.kind != kRDelivery) continue;
                const NodeId v = e.node;
                if (received_[v] || pre_stamp_[v] == pre_epoch_ ||
                    !fsession_.node_up(v)) {
                    continue;
                }
                pre_stamp_[v] = pre_epoch_;
                pre_pkt_[v] = e.payload;
                scratch_[wheel_of(v)].fresh.push_back(v);
            }
            if (!crew) crew.emplace(config_.jobs, config_.wheels);
            crew->run_phase([&](std::size_t wi) {
                WheelScratch& ws = scratch_[wi];
                for (NodeId v : ws.fresh) {
                    pre_dec_[v] =
                        decide_resilient(ws, v, packets_[pre_pkt_[v]]) ? 1 : 0;
                }
            });
        }

        // Serial replay in pop order.
        for (std::size_t j = head; j < work_.size(); ++j) {
            const REvent& e = work_[j];
            completion = std::max(completion, e.time);
            switch (e.kind) {
                case kRFault: {
                    const faults::FaultEvent& fe = plan.events[e.payload];
                    fsession_.apply(fe);
                    if (config_.churn_updates_views &&
                        (fe.kind == faults::FaultKind::kLinkDown ||
                         fe.kind == faults::FaultKind::kLinkUp)) {
                        flap(fe.link.a, fe.link.b,
                             fe.kind == faults::FaultKind::kLinkUp);
                        if (generic) {
                            keys_ = PriorityKeys(*graph_, config_.generic.priority);
                            keys_stale_ = false;
                            if (cache_) cache_->prepare_all();
                        }
                    }
                    break;
                }
                case kRDelivery: {
                    ++result.delivered_events;
                    const NodeId v = e.node;
                    if (!fsession_.node_up(v)) {
                        ++r_suppressed_;
                        break;
                    }
                    const bool first = received_[v] == 0;
                    received_[v] = 1;
                    if (!first) break;  // duplicate copy: snooped only
                    held_pkt_[v] = e.payload;
                    first_sender_[v] = packets_[e.payload].sender;
                    // RecoveryAgent::on_receive arms the holder beacon
                    // BEFORE the inner agent's fanout sequences.
                    if (recovery_on() && recovery_->max_beacons > 0) {
                        push_revent(e.time + recovery_->beacon_interval, kRTimer, v,
                                    kBeaconTimerR);
                    }
                    bool forward;
                    if (config_.policy == ScalePolicy::kFlood) {
                        forward = true;
                    } else if (config_.policy == ScalePolicy::kSelfPrune) {
                        forward = !covered_by(v, packets_[e.payload].sender);
                    } else if (prescan && pre_stamp_[v] == pre_epoch_) {
                        forward = pre_dec_[v] != 0;
                    } else {
                        forward = decide_resilient(scratch_[wheel_of(v)], v,
                                                   packets_[e.payload]);
                    }
                    if (forward) transmit_resilient(v, e.time);
                    break;
                }
                case kRTimer: {
                    const NodeId v = e.node;
                    if (!fsession_.node_up(v)) {
                        ++r_suppressed_;  // timers die with their node
                        break;
                    }
                    if (!recovery_on()) break;
                    if (e.payload == kBeaconTimerR) {
                        if (!received_[v]) break;  // not a holder
                        ++r_control_;
                        const auto cid = static_cast<std::uint32_t>(controls_.size());
                        controls_.push_back({v, kBeaconMsgR});
                        fanout_resilient(v, true, cid, kInvalidNode,
                                         e.time + config_.delay);
                        if (++beacons_n_[v] < recovery_->max_beacons) {
                            push_revent(e.time + recovery_->beacon_interval, kRTimer,
                                        v, kBeaconTimerR);
                        }
                    } else {
                        nack_armed_[v] = 0;
                        if (received_[v]) break;  // healed while waiting
                        if (gap_source_[v] == kInvalidNode) break;
                        ++r_control_;
                        const auto cid = static_cast<std::uint32_t>(controls_.size());
                        controls_.push_back({v, kNackMsgR});
                        fanout_resilient(v, true, cid, gap_source_[v],
                                         e.time + config_.delay);
                        if (++nacks_n_[v] < recovery_->max_nacks) {
                            // Re-arm under exponential backoff (the repair
                            // or the next beacon may be lost too) — note
                            // the post-increment exponent, vs the
                            // pre-increment one on beacon receipt.
                            nack_armed_[v] = 1;
                            const double backoff =
                                recovery_->nack_delay *
                                std::pow(recovery_->backoff_factor,
                                         static_cast<double>(nacks_n_[v]));
                            push_revent(e.time + backoff, kRTimer, v, kNackTimerR);
                        }
                    }
                    break;
                }
                case kRControl: {
                    const NodeId v = e.node;
                    if (!fsession_.node_up(v)) {
                        ++r_suppressed_;
                        break;
                    }
                    if (!recovery_on()) break;
                    const RControl msg = controls_[e.payload];
                    if (msg.kind == kBeaconMsgR) {
                        if (received_[v]) break;  // nothing missing here
                        gap_source_[v] = msg.sender;
                        if (!nack_armed_[v] && nacks_n_[v] < recovery_->max_nacks) {
                            nack_armed_[v] = 1;
                            const double backoff =
                                recovery_->nack_delay *
                                std::pow(recovery_->backoff_factor,
                                         static_cast<double>(nacks_n_[v]));
                            push_revent(e.time + backoff, kRTimer, v, kNackTimerR);
                        }
                    } else {
                        if (!received_[v]) break;  // stale NACK: no packet here
                        if (repairs_n_[v] >= recovery_->retransmit_budget) break;
                        ++repairs_n_[v];
                        resend_resilient(v, e.time);
                    }
                    break;
                }
                default: break;
            }
        }
    }

    result.completion_time = completion;
    result.order_digest = generic_digest_;
    result.forward_count =
        static_cast<std::size_t>(std::count(forwarded_.begin(), forwarded_.end(), 1));
    result.received_count =
        static_cast<std::size_t>(std::count(received_.begin(), received_.end(), 1));
    result.full_delivery = result.received_count == n;
    result.retransmit_count = r_retransmit_;
    result.control_count = r_control_;
    result.fault_suppressed = r_suppressed_;
    result.down = fsession_.down_mask();
    return result;
}

ScaleResult ScaleEngine::run(NodeId source) {
    // Any attached plan (even an empty one) or armed recovery layer routes
    // through the serial windowed replay — the reference machine's
    // broadcast_resilient always runs with an active fault session, and
    // byte-parity requires mirroring that mode exactly.
    if (fault_plan_ != nullptr || recovery_on()) return run_resilient(source);
    if (config_.policy == ScalePolicy::kGenericCoverage) return run_generic(source);

    const std::size_t n = graph_->node_count();
    std::fill(received_.begin(), received_.end(), 0);
    std::fill(forwarded_.begin(), forwarded_.end(), 0);
    std::fill(first_sender_.begin(), first_sender_.end(), kInvalidNode);
    for (Wheel& wheel : wheels_) wheel = Wheel{};
    for (std::vector<Staged>& bucket : prev_) bucket.clear();
    for (std::vector<Staged>& bucket : cur_) bucket.clear();

    ScaleResult result;
    if (n == 0) return result;

    // The source transmits unconditionally at t = 0 (paper Section 5); its
    // fanout is the first window's schedule.
    received_[source] = 1;
    forwarded_[source] = 1;
    {
        const std::size_t w = wheel_of(source);
        for (NodeId x : graph_->neighbors(source)) {
            prev_[w * config_.wheels + wheel_of(x)].push_back(
                {config_.delay, x, source});
        }
    }

    // Workers are spun up lazily: a window whose event count cannot amortize
    // a barrier rendezvous runs inline on the calling thread instead.  Both
    // paths compute the identical result, so the adaptive choice never shows
    // in counts or digests.
    std::optional<PhaseCrew> crew;
    constexpr std::size_t kParallelWindow = 4096;

    while (true) {
        std::size_t queued = 0;
        for (const std::vector<Staged>& bucket : prev_) queued += bucket.size();
        result.peak_queue_events = std::max(result.peak_queue_events, queued);
        if (queued == 0) break;
        ++result.windows;
        if (config_.jobs > 1 && queued >= kParallelWindow) {
            if (!crew) crew.emplace(config_.jobs, config_.wheels);
            crew->run_phase([&](std::size_t w) { process_wheel(w); });
        } else {
            for (std::size_t w = 0; w < config_.wheels; ++w) process_wheel(w);
        }
        prev_.swap(cur_);
    }

    for (const Wheel& wheel : wheels_) {
        result.delivered_events += wheel.delivered;
        result.completion_time = std::max(result.completion_time, wheel.last_time);
        result.order_digest = mix(result.order_digest, wheel.digest);
    }
    result.forward_count =
        static_cast<std::size_t>(std::count(forwarded_.begin(), forwarded_.end(), 1));
    result.received_count =
        static_cast<std::size_t>(std::count(received_.begin(), received_.end(), 1));
    result.full_delivery = result.received_count == n;
    return result;
}

std::size_t ScaleEngine::state_bytes() const noexcept {
    std::size_t bytes = received_.capacity() + forwarded_.capacity() +
                        first_sender_.capacity() * sizeof(NodeId);
    for (const std::vector<Staged>& bucket : prev_) {
        bytes += bucket.capacity() * sizeof(Staged);
    }
    for (const std::vector<Staged>& bucket : cur_) {
        bytes += bucket.capacity() * sizeof(Staged);
    }
    bytes += tx_rank_.capacity() * sizeof(std::uint32_t) +
             best_key_.capacity() * sizeof(std::uint64_t) +
             chain_.capacity() * sizeof(NodeId) +
             chain_len_.capacity() * sizeof(std::uint32_t) +
             merge_.capacity() * sizeof(std::pair<std::uint64_t, NodeId>);
    for (const WheelScratch& ws : scratch_) {
        bytes += ws.fresh.capacity() * sizeof(NodeId) +
                 ws.forwarders.capacity() * sizeof(NodeId) +
                 ws.visited.capacity() * sizeof(NodeId) +
                 ws.bfs.capacity() * sizeof(NodeId) +
                 ws.dist.capacity() * sizeof(std::uint16_t) +
                 ws.stamp.capacity() * sizeof(std::uint32_t) +
                 ws.g2l.capacity() * sizeof(std::uint32_t) +
                 ws.members.capacity() * sizeof(NodeId) +
                 ws.offsets.capacity() * sizeof(std::uint32_t) +
                 ws.edges.capacity() * sizeof(std::uint32_t) +
                 ws.status_row.capacity() * sizeof(NodeStatus);
    }
    for (const std::vector<REvent>& bucket : cal_) {
        bytes += bucket.capacity() * sizeof(REvent);
    }
    bytes += work_.capacity() * sizeof(REvent) +
             packets_.capacity() * sizeof(RPacket) +
             controls_.capacity() * sizeof(RControl) +
             r_chain_.capacity() * sizeof(NodeId) +
             held_pkt_.capacity() * sizeof(std::uint32_t) +
             beacons_n_.capacity() * sizeof(std::uint32_t) +
             nacks_n_.capacity() * sizeof(std::uint32_t) +
             nack_armed_.capacity() +
             gap_source_.capacity() * sizeof(NodeId) +
             repairs_n_.capacity() * sizeof(std::uint32_t) +
             pre_stamp_.capacity() * sizeof(std::uint32_t) +
             pre_pkt_.capacity() * sizeof(std::uint32_t) +
             pre_dec_.capacity();
    return bytes;
}

}  // namespace adhoc
