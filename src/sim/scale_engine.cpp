#include "sim/scale_engine.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/coverage.hpp"
#include "core/view.hpp"
#include "core/view_cache.hpp"

namespace adhoc {

namespace {

/// Reusable fork-join crew for the window phase.  A run executes hundreds
/// of very short phases (one per window); spawning threads per phase costs
/// more than the phase itself, so the workers persist for the whole run and
/// rendezvous on an epoch counter.  Wheels are claimed from an atomic
/// cursor, each exactly once; `run_phase` returns only after every worker
/// has checked the phase in (the acquire on `done_` is the barrier that
/// publishes every wheel's writes to every other wheel).
class PhaseCrew {
  public:
    PhaseCrew(std::size_t jobs, std::size_t wheel_count)
        : wheel_count_(wheel_count) {
        const std::size_t extra = std::min(jobs, wheel_count) - 1;
        workers_.reserve(extra);
        for (std::size_t t = 0; t < extra; ++t) {
            workers_.emplace_back([this] { worker_loop(); });
        }
    }

    ~PhaseCrew() {
        stop_.store(true, std::memory_order_release);
        epoch_.fetch_add(1, std::memory_order_release);
        for (std::thread& t : workers_) t.join();
    }

    template <typename F>
    void run_phase(F&& fn) {
        if (workers_.empty()) {
            for (std::size_t i = 0; i < wheel_count_; ++i) fn(i);
            return;
        }
        fn_ = [&fn](std::size_t i) { fn(i); };
        next_.store(0, std::memory_order_relaxed);
        done_.store(0, std::memory_order_relaxed);
        epoch_.fetch_add(1, std::memory_order_release);
        claim();  // the calling thread is crew too
        while (done_.load(std::memory_order_acquire) < workers_.size()) {
            std::this_thread::yield();
        }
    }

  private:
    void claim() {
        for (std::size_t i;
             (i = next_.fetch_add(1, std::memory_order_relaxed)) < wheel_count_;) {
            fn_(i);
        }
    }

    void worker_loop() {
        std::uint64_t seen = 0;
        while (true) {
            std::size_t spins = 0;
            while (epoch_.load(std::memory_order_acquire) == seen) {
                if (++spins > 4096) std::this_thread::yield();
            }
            ++seen;
            if (stop_.load(std::memory_order_acquire)) return;
            claim();
            done_.fetch_add(1, std::memory_order_release);
        }
    }

    std::size_t wheel_count_;
    std::function<void(std::size_t)> fn_;
    std::vector<std::thread> workers_;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<std::size_t> next_{0};
    std::atomic<std::size_t> done_{0};
    std::atomic<bool> stop_{false};
};

/// One-multiply mix (hash_combine shape).  Order-sensitive — folding the
/// same events in a different order yields a different digest, which is
/// exactly what the determinism gate wants — and cheap enough for the
/// per-event hot loop, unlike byte-wise FNV.
inline std::uint64_t mix(std::uint64_t h, std::uint64_t x) noexcept {
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h * 0x2545f4914f6cdd1dULL;
}

inline constexpr std::uint64_t kDigestBasis = 0xcbf29ce484222325ULL;

/// "No receipt yet this window."  Unreachable as a real key: the high word
/// is the sender's transmission ordinal, and ordinal 0xffffffff is the
/// not-yet-transmitted sentinel — a sender always has a real ordinal.
inline constexpr std::uint64_t kNoKey = ~std::uint64_t{0};
inline constexpr std::uint32_t kNoRank = 0xffffffffu;

/// kAuto view-mode threshold.  A standing ViewCache stores each node's
/// LocalTopology over the *full* id space (visibility mask + subgraph), so
/// cached memory grows ~n^2; past ~10^3 nodes per-decision scratch compiles
/// are the only thing that fits.
inline constexpr std::size_t kCachedViewAutoLimit = 1024;

}  // namespace

std::uint64_t reference_transmission_digest(const Trace& trace) {
    std::uint64_t h = kDigestBasis;
    for (const TraceEvent& e : trace.events()) {
        if (e.kind != TraceKind::kTransmit) continue;
        h = mix(h, std::bit_cast<std::uint64_t>(e.time));
        h = mix(h, e.node);
    }
    return h;
}

void ScaleEngine::validate_generic_config() const {
    const GenericConfig& gc = config_.generic;
    if (gc.timing != Timing::kStatic && gc.timing != Timing::kFirstReceipt) {
        throw std::invalid_argument(
            "ScaleConfig.generic.timing = " + to_string(gc.timing) +
            ": backoff timings draw per-node timers from the RNG, which the "
            "windowed engine cannot honor — use Static/FR here, or Simulator");
    }
    if (gc.selection != Selection::kSelfPruning) {
        throw std::invalid_argument(
            "ScaleConfig.generic.selection = " + to_string(gc.selection) +
            ": neighbor-designating selections need designation pullback "
            "events — the engine honors self-pruning only; use Simulator");
    }
    if (gc.hops == 0) {
        throw std::invalid_argument(
            "ScaleConfig.generic.hops = 0: global views cost O(n) per "
            "decision and defeat the scale plane — use hops >= 1");
    }
}

ScaleEngine::ScaleEngine(const Graph& graph, ScaleConfig config)
    : graph_(&graph), config_(config) {
    if (!(config_.delay > 0.0)) {
        throw std::invalid_argument("ScaleConfig.delay must be > 0");
    }
    if (config_.wheels == 0) {
        throw std::invalid_argument("ScaleConfig.wheels must be >= 1");
    }
    if (config_.jobs == 0) {
        throw std::invalid_argument("ScaleConfig.jobs must be >= 1");
    }
    const std::size_t n = graph.node_count();
    config_.wheels = std::min(config_.wheels, std::max<std::size_t>(n, 1));
    block_ = (n + config_.wheels - 1) / config_.wheels;
    if (block_ == 0) block_ = 1;
    received_.assign(n, 0);
    forwarded_.assign(n, 0);
    first_sender_.assign(n, kInvalidNode);
    wheels_.resize(config_.wheels);
    prev_.resize(config_.wheels * config_.wheels);
    cur_.resize(config_.wheels * config_.wheels);

    if (config_.policy == ScalePolicy::kGenericCoverage) {
        validate_generic_config();
        const bool cached =
            config_.view_mode == ScaleViewMode::kCached ||
            (config_.view_mode == ScaleViewMode::kAuto && n <= kCachedViewAutoLimit);
        if (cached) {
            cache_ = std::make_unique<ViewCache>(graph, config_.generic.hops);
            graph_ = &cache_->graph();  // flaps mutate the cache's copy
        }
        keys_ = PriorityKeys(*graph_, config_.generic.priority);
        tx_rank_.assign(n, kNoRank);
        best_key_.assign(n, kNoKey);
        chain_.assign(n * chain_stride(), kInvalidNode);
        chain_len_.assign(n, 0);
        scratch_.resize(config_.wheels);
        if (cache_) {
            for (WheelScratch& ws : scratch_) {
                ws.status_row.assign(n, NodeStatus::kUnvisited);
            }
        }
    }
}

ScaleEngine::~ScaleEngine() = default;

void ScaleEngine::flap(NodeId u, NodeId v, bool add) {
    const std::size_t n = graph_->node_count();
    if (u >= n || v >= n || u == v) {
        throw std::invalid_argument("ScaleEngine edge flap: invalid endpoints");
    }
    if (cache_) {
        if (add) {
            cache_->add_edge(u, v);
        } else {
            cache_->remove_edge(u, v);
        }
    } else {
        if (!churn_graph_) {
            churn_graph_.emplace(*graph_);  // copy-on-first-flap
            graph_ = &*churn_graph_;
        }
        if (add) {
            churn_graph_->add_edge(u, v);
        } else {
            churn_graph_->remove_edge(u, v);
        }
    }
    keys_stale_ = true;  // degree/NCR keys follow the topology
}

void ScaleEngine::add_edge(NodeId u, NodeId v) { flap(u, v, true); }

void ScaleEngine::remove_edge(NodeId u, NodeId v) { flap(u, v, false); }

std::size_t ScaleEngine::chain_stride() const noexcept {
    // Static decisions ignore broadcast state entirely, so nothing is
    // piggybacked; first-receipt carries the last `history` visited nodes.
    return config_.generic.timing == Timing::kFirstReceipt ? config_.generic.history
                                                           : 0;
}

bool ScaleEngine::covered_by(NodeId v, NodeId u) const noexcept {
    // True iff every neighbor of v is u itself or a neighbor of u — the
    // self-pruning test over two sorted adjacency rows.
    const auto nv = graph_->neighbors(v);
    const auto nu = graph_->neighbors(u);
    auto it = nu.begin();
    for (NodeId x : nv) {
        if (x == u) continue;
        while (it != nu.end() && *it < x) ++it;
        if (it == nu.end() || *it != x) return false;
    }
    return true;
}

void ScaleEngine::process_wheel(std::size_t w) {
    Wheel& wheel = wheels_[w];
    const std::size_t wheel_count = config_.wheels;
    for (std::size_t d = 0; d < wheel_count; ++d) cur_[w * wheel_count + d].clear();
    // Canonical order: source wheel 0..W-1, generation order within each —
    // exactly the (time, seq) order a per-wheel priority queue would pop,
    // since every pending event shares this window's delivery time.
    for (std::size_t s = 0; s < wheel_count; ++s) {
        for (const Staged& e : prev_[s * wheel_count + w]) {
            const NodeId v = e.node;
            ++wheel.delivered;
            wheel.last_time = std::max(wheel.last_time, e.time);
            wheel.digest = mix(wheel.digest, std::bit_cast<std::uint64_t>(e.time));
            wheel.digest = mix(wheel.digest, (std::uint64_t{v} << 32) | e.sender);
            if (received_[v]) continue;  // duplicate copy: snooped, not re-decided
            received_[v] = 1;
            first_sender_[v] = e.sender;
            const bool forward =
                config_.policy == ScalePolicy::kFlood || !covered_by(v, e.sender);
            if (!forward) continue;
            forwarded_[v] = 1;
            const double next_time = e.time + config_.delay;
            for (NodeId x : graph_->neighbors(v)) {
                cur_[w * wheel_count + wheel_of(x)].push_back({next_time, x, v});
            }
        }
    }
}

std::uint64_t ScaleEngine::receipt_key(NodeId sender, NodeId v) const noexcept {
    // The reference Simulator delivers a window's copies in (sender
    // transmission time, schedule sequence) order, and the sequence numbers
    // follow the sender's fanout loop over its sorted adjacency row.  So
    // (sender's transmission ordinal, index of v in the sender's row) is
    // the exact pop order — recovered here with a binary search instead of
    // widening the Staged record.
    const auto row = graph_->neighbors(sender);
    const auto it = std::lower_bound(row.begin(), row.end(), v);
    const auto idx = static_cast<std::uint64_t>(it - row.begin());
    return (std::uint64_t{tx_rank_[sender]} << 32) | idx;
}

void ScaleEngine::compile_scratch_view(WheelScratch& ws, NodeId v) {
    // Truncated BFS reproducing Definition 2 (khop.cpp) straight into CSR
    // form: members are every node within k hops, and link (a, b) is
    // visible iff min(dist(a), dist(b)) <= k - 1 (both ends being members
    // bounds the max at k already).  Epoch stamps make dist/g2l valid
    // without an O(n) clear per decision.
    const Graph& g = *graph_;
    const std::size_t n = g.node_count();
    if (ws.stamp.size() < n) {
        ws.stamp.resize(n, 0);
        ws.dist.resize(n);
        ws.g2l.resize(n);
    }
    if (++ws.epoch == 0) {  // wrap: invalidate everything once
        std::fill(ws.stamp.begin(), ws.stamp.end(), 0);
        ws.epoch = 1;
    }
    const std::size_t k = config_.generic.hops;
    ws.bfs.clear();
    ws.bfs.push_back(v);
    ws.stamp[v] = ws.epoch;
    ws.dist[v] = 0;
    for (std::size_t head = 0; head < ws.bfs.size(); ++head) {
        const NodeId x = ws.bfs[head];
        if (ws.dist[x] == k) continue;
        for (NodeId y : g.neighbors(x)) {
            if (ws.stamp[y] == ws.epoch) continue;
            ws.stamp[y] = ws.epoch;
            ws.dist[y] = static_cast<std::uint16_t>(ws.dist[x] + 1);
            ws.bfs.push_back(y);
        }
    }
    ws.members.assign(ws.bfs.begin(), ws.bfs.end());
    std::sort(ws.members.begin(), ws.members.end());
    const auto m = static_cast<std::uint32_t>(ws.members.size());
    for (std::uint32_t i = 0; i < m; ++i) ws.g2l[ws.members[i]] = i;
    ws.offsets.resize(m + 1);
    ws.edges.clear();
    const std::size_t interior = k - 1;
    for (std::uint32_t i = 0; i < m; ++i) {
        ws.offsets[i] = static_cast<std::uint32_t>(ws.edges.size());
        const NodeId a = ws.members[i];
        const bool a_interior = ws.dist[a] <= interior;
        for (NodeId b : g.neighbors(a)) {
            if (ws.stamp[b] != ws.epoch) continue;       // outside the ball
            if (!a_interior && ws.dist[b] > interior) continue;  // k-to-k link
            ws.edges.push_back(ws.g2l[b]);
        }
    }
    ws.offsets[m] = static_cast<std::uint32_t>(ws.edges.size());
}

bool ScaleEngine::decide_generic(WheelScratch& ws, NodeId v, NodeId u) {
    const GenericConfig& gc = config_.generic;
    // Decision-time visited set.  Static: empty (the static forward set is
    // computed over all-unvisited views).  First-receipt: exactly what the
    // first received packet carries — the sender's outgoing chain (which
    // ends with the sender itself when history >= 1).
    ws.visited.clear();
    if (gc.timing == Timing::kFirstReceipt) {
        if (const std::size_t h = gc.history; h > 0) {
            const NodeId* chain = chain_.data() + std::size_t{u} * h;
            ws.visited.assign(chain, chain + chain_len_[u]);
        } else {
            ws.visited.push_back(u);
        }
    }

    bool covered;
    if (cache_) {
        const LocalTopology& topo = cache_->compiled_view(v);
        for (NodeId x : topo.members) ws.status_row[x] = NodeStatus::kUnvisited;
        for (NodeId x : ws.visited) {
            if (topo.visible[x]) ws.status_row[x] = NodeStatus::kVisited;
        }
        const View view(&topo, &ws.status_row, &keys_);
        covered = coverage_condition_holds(view, v, gc.coverage);
    } else {
        compile_scratch_view(ws, v);
        LocalViewScratch& s = LocalViewScratch::tls();
        const auto m = static_cast<std::uint32_t>(ws.members.size());
        s.compact.size = m;
        s.compact.members = ws.members;
        s.compact.offsets = ws.offsets;
        s.compact.edges = ws.edges;
        s.compact.priority.resize(m);
        s.compact.status.resize(m);
        for (std::uint32_t i = 0; i < m; ++i) {
            const NodeId x = ws.members[i];
            NodeStatus st = NodeStatus::kUnvisited;
            for (NodeId y : ws.visited) {
                if (y == x) {
                    st = NodeStatus::kVisited;
                    break;
                }
            }
            s.compact.status[i] = st;
            s.compact.priority[i] = keys_.evaluate(x, st);
        }
        const std::uint32_t lv = ws.g2l[v];
        const Priority pv = keys_.evaluate(v, NodeStatus::kUnvisited);
        covered = evaluate_coverage_compiled(s, lv, pv, gc.coverage).covered;
    }
    return !covered;
}

void ScaleEngine::scan_wheel_generic(std::size_t w) {
    Wheel& wheel = wheels_[w];
    const std::size_t wheel_count = config_.wheels;
    WheelScratch& ws = scratch_[w];
    ws.fresh.clear();
    ws.forwarders.clear();
    // Pass 1: account every delivery and find, per not-yet-received node,
    // the minimum receipt key — the copy the reference Simulator would pop
    // first within this window.
    for (std::size_t s = 0; s < wheel_count; ++s) {
        for (const Staged& e : prev_[s * wheel_count + w]) {
            const NodeId v = e.node;
            ++wheel.delivered;
            wheel.last_time = std::max(wheel.last_time, e.time);
            if (received_[v]) continue;  // duplicate copy: snooped, not re-decided
            const std::uint64_t key = receipt_key(e.sender, v);
            if (best_key_[v] == kNoKey) ws.fresh.push_back(v);
            if (key < best_key_[v]) {
                best_key_[v] = key;
                first_sender_[v] = e.sender;
            }
        }
    }
    // Pass 2: decide each first receipt against its first sender's packet.
    // Chains of this window's senders are final (they transmitted last
    // window), so the decisions are independent across wheels.
    const std::size_t h = chain_stride();
    for (NodeId v : ws.fresh) {
        received_[v] = 1;
        const NodeId u = first_sender_[v];
        if (!decide_generic(ws, v, u)) continue;
        forwarded_[v] = 1;
        if (h > 0) {
            // Outgoing chain: the last min(len(u), h-1) of the sender's
            // chain, then v itself (packet.cpp chain_state semantics).
            const NodeId* cu = chain_.data() + std::size_t{u} * h;
            const std::size_t keep = std::min<std::size_t>(chain_len_[u], h - 1);
            NodeId* cv = chain_.data() + std::size_t{v} * h;
            const NodeId* from = cu + chain_len_[u] - keep;
            for (std::size_t i = 0; i < keep; ++i) cv[i] = from[i];
            cv[keep] = v;
            chain_len_[v] = static_cast<std::uint32_t>(keep + 1);
        }
        ws.forwarders.push_back(v);
    }
}

ScaleResult ScaleEngine::run_generic(NodeId source) {
    const std::size_t n = graph_->node_count();
    std::fill(received_.begin(), received_.end(), 0);
    std::fill(forwarded_.begin(), forwarded_.end(), 0);
    std::fill(first_sender_.begin(), first_sender_.end(), kInvalidNode);
    std::fill(tx_rank_.begin(), tx_rank_.end(), kNoRank);
    std::fill(best_key_.begin(), best_key_.end(), kNoKey);
    std::fill(chain_len_.begin(), chain_len_.end(), 0);
    for (Wheel& wheel : wheels_) wheel = Wheel{};
    for (std::vector<Staged>& bucket : prev_) bucket.clear();
    for (std::vector<Staged>& bucket : cur_) bucket.clear();
    generic_digest_ = kDigestBasis;
    next_rank_ = 0;

    if (keys_stale_) {
        keys_ = PriorityKeys(*graph_, config_.generic.priority);
        keys_stale_ = false;
    }
    // One serial recompile sweep, then the parallel phases read the cache
    // through the const, assertion-guarded accessor — no lazy mutation
    // races inside a window.
    if (cache_) cache_->prepare_all();

    ScaleResult result;
    if (n == 0) return result;

    const std::size_t wheel_count = config_.wheels;
    received_[source] = 1;
    forwarded_[source] = 1;
    tx_rank_[source] = next_rank_++;
    generic_digest_ = mix(generic_digest_, std::bit_cast<std::uint64_t>(0.0));
    generic_digest_ = mix(generic_digest_, source);
    if (const std::size_t h = chain_stride(); h > 0) {
        chain_[std::size_t{source} * h] = source;
        chain_len_[source] = 1;
    }
    {
        const std::size_t w = wheel_of(source);
        for (NodeId x : graph_->neighbors(source)) {
            prev_[w * wheel_count + wheel_of(x)].push_back({config_.delay, x, source});
        }
    }

    std::optional<PhaseCrew> crew;
    constexpr std::size_t kParallelWindow = 4096;
    // All of a window's deliveries share one receive instant, accumulated
    // by repeated addition exactly as the Simulator accumulates now_ +
    // delay — bit-equality of times (hence digests) is preserved.
    double window_time = config_.delay;

    while (true) {
        std::size_t queued = 0;
        for (const std::vector<Staged>& bucket : prev_) queued += bucket.size();
        result.peak_queue_events = std::max(result.peak_queue_events, queued);
        if (queued == 0) break;
        ++result.windows;
        if (config_.jobs > 1 && queued >= kParallelWindow) {
            if (!crew) crew.emplace(config_.jobs, wheel_count);
            crew->run_phase([&](std::size_t w) { scan_wheel_generic(w); });
        } else {
            for (std::size_t w = 0; w < wheel_count; ++w) scan_wheel_generic(w);
        }

        // Serial rank step: merge the window's new forwarders in receipt-key
        // order — the global (time, seq) order the reference Simulator
        // decides in — assign dense transmission ordinals, fold the order
        // digest, and stage the fanout.  O(F log F + fanout F) against the
        // coverage kernels' O(F * ball edges): never the bottleneck.
        merge_.clear();
        for (std::size_t w = 0; w < wheel_count; ++w) {
            for (NodeId v : scratch_[w].forwarders) merge_.push_back({best_key_[v], v});
        }
        std::sort(merge_.begin(), merge_.end());
        for (std::vector<Staged>& bucket : cur_) bucket.clear();
        const double next_time = window_time + config_.delay;
        for (const auto& [key, v] : merge_) {
            tx_rank_[v] = next_rank_++;
            generic_digest_ = mix(generic_digest_, std::bit_cast<std::uint64_t>(window_time));
            generic_digest_ = mix(generic_digest_, v);
            const std::size_t row = wheel_of(v) * wheel_count;
            for (NodeId x : graph_->neighbors(v)) {
                cur_[row + wheel_of(x)].push_back({next_time, x, v});
            }
        }
        prev_.swap(cur_);
        window_time = next_time;
    }

    for (const Wheel& wheel : wheels_) {
        result.delivered_events += wheel.delivered;
        result.completion_time = std::max(result.completion_time, wheel.last_time);
    }
    result.order_digest = generic_digest_;
    result.forward_count =
        static_cast<std::size_t>(std::count(forwarded_.begin(), forwarded_.end(), 1));
    result.received_count =
        static_cast<std::size_t>(std::count(received_.begin(), received_.end(), 1));
    result.full_delivery = result.received_count == n;
    return result;
}

ScaleResult ScaleEngine::run(NodeId source) {
    if (config_.policy == ScalePolicy::kGenericCoverage) return run_generic(source);

    const std::size_t n = graph_->node_count();
    std::fill(received_.begin(), received_.end(), 0);
    std::fill(forwarded_.begin(), forwarded_.end(), 0);
    std::fill(first_sender_.begin(), first_sender_.end(), kInvalidNode);
    for (Wheel& wheel : wheels_) wheel = Wheel{};
    for (std::vector<Staged>& bucket : prev_) bucket.clear();
    for (std::vector<Staged>& bucket : cur_) bucket.clear();

    ScaleResult result;
    if (n == 0) return result;

    // The source transmits unconditionally at t = 0 (paper Section 5); its
    // fanout is the first window's schedule.
    received_[source] = 1;
    forwarded_[source] = 1;
    {
        const std::size_t w = wheel_of(source);
        for (NodeId x : graph_->neighbors(source)) {
            prev_[w * config_.wheels + wheel_of(x)].push_back(
                {config_.delay, x, source});
        }
    }

    // Workers are spun up lazily: a window whose event count cannot amortize
    // a barrier rendezvous runs inline on the calling thread instead.  Both
    // paths compute the identical result, so the adaptive choice never shows
    // in counts or digests.
    std::optional<PhaseCrew> crew;
    constexpr std::size_t kParallelWindow = 4096;

    while (true) {
        std::size_t queued = 0;
        for (const std::vector<Staged>& bucket : prev_) queued += bucket.size();
        result.peak_queue_events = std::max(result.peak_queue_events, queued);
        if (queued == 0) break;
        ++result.windows;
        if (config_.jobs > 1 && queued >= kParallelWindow) {
            if (!crew) crew.emplace(config_.jobs, config_.wheels);
            crew->run_phase([&](std::size_t w) { process_wheel(w); });
        } else {
            for (std::size_t w = 0; w < config_.wheels; ++w) process_wheel(w);
        }
        prev_.swap(cur_);
    }

    for (const Wheel& wheel : wheels_) {
        result.delivered_events += wheel.delivered;
        result.completion_time = std::max(result.completion_time, wheel.last_time);
        result.order_digest = mix(result.order_digest, wheel.digest);
    }
    result.forward_count =
        static_cast<std::size_t>(std::count(forwarded_.begin(), forwarded_.end(), 1));
    result.received_count =
        static_cast<std::size_t>(std::count(received_.begin(), received_.end(), 1));
    result.full_delivery = result.received_count == n;
    return result;
}

std::size_t ScaleEngine::state_bytes() const noexcept {
    std::size_t bytes = received_.capacity() + forwarded_.capacity() +
                        first_sender_.capacity() * sizeof(NodeId);
    for (const std::vector<Staged>& bucket : prev_) {
        bytes += bucket.capacity() * sizeof(Staged);
    }
    for (const std::vector<Staged>& bucket : cur_) {
        bytes += bucket.capacity() * sizeof(Staged);
    }
    bytes += tx_rank_.capacity() * sizeof(std::uint32_t) +
             best_key_.capacity() * sizeof(std::uint64_t) +
             chain_.capacity() * sizeof(NodeId) +
             chain_len_.capacity() * sizeof(std::uint32_t) +
             merge_.capacity() * sizeof(std::pair<std::uint64_t, NodeId>);
    for (const WheelScratch& ws : scratch_) {
        bytes += ws.fresh.capacity() * sizeof(NodeId) +
                 ws.forwarders.capacity() * sizeof(NodeId) +
                 ws.visited.capacity() * sizeof(NodeId) +
                 ws.bfs.capacity() * sizeof(NodeId) +
                 ws.dist.capacity() * sizeof(std::uint16_t) +
                 ws.stamp.capacity() * sizeof(std::uint32_t) +
                 ws.g2l.capacity() * sizeof(std::uint32_t) +
                 ws.members.capacity() * sizeof(NodeId) +
                 ws.offsets.capacity() * sizeof(std::uint32_t) +
                 ws.edges.capacity() * sizeof(std::uint32_t) +
                 ws.status_row.capacity() * sizeof(NodeStatus);
    }
    return bytes;
}

}  // namespace adhoc
