#include "sim/scale_engine.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <functional>
#include <optional>
#include <stdexcept>
#include <thread>

namespace adhoc {

namespace {

/// Reusable fork-join crew for the window phase.  A run executes hundreds
/// of very short phases (one per window); spawning threads per phase costs
/// more than the phase itself, so the workers persist for the whole run and
/// rendezvous on an epoch counter.  Wheels are claimed from an atomic
/// cursor, each exactly once; `run_phase` returns only after every worker
/// has checked the phase in (the acquire on `done_` is the barrier that
/// publishes every wheel's writes to every other wheel).
class PhaseCrew {
  public:
    PhaseCrew(std::size_t jobs, std::size_t wheel_count)
        : wheel_count_(wheel_count) {
        const std::size_t extra = std::min(jobs, wheel_count) - 1;
        workers_.reserve(extra);
        for (std::size_t t = 0; t < extra; ++t) {
            workers_.emplace_back([this] { worker_loop(); });
        }
    }

    ~PhaseCrew() {
        stop_.store(true, std::memory_order_release);
        epoch_.fetch_add(1, std::memory_order_release);
        for (std::thread& t : workers_) t.join();
    }

    template <typename F>
    void run_phase(F&& fn) {
        if (workers_.empty()) {
            for (std::size_t i = 0; i < wheel_count_; ++i) fn(i);
            return;
        }
        fn_ = [&fn](std::size_t i) { fn(i); };
        next_.store(0, std::memory_order_relaxed);
        done_.store(0, std::memory_order_relaxed);
        epoch_.fetch_add(1, std::memory_order_release);
        claim();  // the calling thread is crew too
        while (done_.load(std::memory_order_acquire) < workers_.size()) {
            std::this_thread::yield();
        }
    }

  private:
    void claim() {
        for (std::size_t i;
             (i = next_.fetch_add(1, std::memory_order_relaxed)) < wheel_count_;) {
            fn_(i);
        }
    }

    void worker_loop() {
        std::uint64_t seen = 0;
        while (true) {
            std::size_t spins = 0;
            while (epoch_.load(std::memory_order_acquire) == seen) {
                if (++spins > 4096) std::this_thread::yield();
            }
            ++seen;
            if (stop_.load(std::memory_order_acquire)) return;
            claim();
            done_.fetch_add(1, std::memory_order_release);
        }
    }

    std::size_t wheel_count_;
    std::function<void(std::size_t)> fn_;
    std::vector<std::thread> workers_;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<std::size_t> next_{0};
    std::atomic<std::size_t> done_{0};
    std::atomic<bool> stop_{false};
};

/// One-multiply mix (hash_combine shape).  Order-sensitive — folding the
/// same events in a different order yields a different digest, which is
/// exactly what the determinism gate wants — and cheap enough for the
/// per-event hot loop, unlike byte-wise FNV.
inline std::uint64_t mix(std::uint64_t h, std::uint64_t x) noexcept {
    h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h * 0x2545f4914f6cdd1dULL;
}

}  // namespace

ScaleEngine::ScaleEngine(const Graph& graph, ScaleConfig config)
    : graph_(&graph), config_(config) {
    if (!(config_.delay > 0.0)) {
        throw std::invalid_argument("ScaleConfig.delay must be > 0");
    }
    if (config_.wheels == 0) {
        throw std::invalid_argument("ScaleConfig.wheels must be >= 1");
    }
    const std::size_t n = graph.node_count();
    config_.wheels = std::min(config_.wheels, std::max<std::size_t>(n, 1));
    block_ = (n + config_.wheels - 1) / config_.wheels;
    if (block_ == 0) block_ = 1;
    received_.assign(n, 0);
    forwarded_.assign(n, 0);
    first_sender_.assign(n, kInvalidNode);
    wheels_.resize(config_.wheels);
    prev_.resize(config_.wheels * config_.wheels);
    cur_.resize(config_.wheels * config_.wheels);
}

bool ScaleEngine::covered_by(NodeId v, NodeId u) const noexcept {
    // True iff every neighbor of v is u itself or a neighbor of u — the
    // self-pruning test over two sorted adjacency rows.
    const auto nv = graph_->neighbors(v);
    const auto nu = graph_->neighbors(u);
    auto it = nu.begin();
    for (NodeId x : nv) {
        if (x == u) continue;
        while (it != nu.end() && *it < x) ++it;
        if (it == nu.end() || *it != x) return false;
    }
    return true;
}

void ScaleEngine::process_wheel(std::size_t w) {
    Wheel& wheel = wheels_[w];
    const std::size_t wheel_count = config_.wheels;
    for (std::size_t d = 0; d < wheel_count; ++d) cur_[w * wheel_count + d].clear();
    // Canonical order: source wheel 0..W-1, generation order within each —
    // exactly the (time, seq) order a per-wheel priority queue would pop,
    // since every pending event shares this window's delivery time.
    for (std::size_t s = 0; s < wheel_count; ++s) {
        for (const Staged& e : prev_[s * wheel_count + w]) {
            const NodeId v = e.node;
            ++wheel.delivered;
            wheel.last_time = std::max(wheel.last_time, e.time);
            wheel.digest = mix(wheel.digest, std::bit_cast<std::uint64_t>(e.time));
            wheel.digest = mix(wheel.digest, (std::uint64_t{v} << 32) | e.sender);
            if (received_[v]) continue;  // duplicate copy: snooped, not re-decided
            received_[v] = 1;
            first_sender_[v] = e.sender;
            const bool forward =
                config_.policy == ScalePolicy::kFlood || !covered_by(v, e.sender);
            if (!forward) continue;
            forwarded_[v] = 1;
            const double next_time = e.time + config_.delay;
            for (NodeId x : graph_->neighbors(v)) {
                cur_[w * wheel_count + wheel_of(x)].push_back({next_time, x, v});
            }
        }
    }
}

ScaleResult ScaleEngine::run(NodeId source) {
    const std::size_t n = graph_->node_count();
    std::fill(received_.begin(), received_.end(), 0);
    std::fill(forwarded_.begin(), forwarded_.end(), 0);
    std::fill(first_sender_.begin(), first_sender_.end(), kInvalidNode);
    for (Wheel& wheel : wheels_) wheel = Wheel{};
    for (std::vector<Staged>& bucket : prev_) bucket.clear();
    for (std::vector<Staged>& bucket : cur_) bucket.clear();

    ScaleResult result;
    if (n == 0) return result;

    // The source transmits unconditionally at t = 0 (paper Section 5); its
    // fanout is the first window's schedule.
    received_[source] = 1;
    forwarded_[source] = 1;
    {
        const std::size_t w = wheel_of(source);
        for (NodeId x : graph_->neighbors(source)) {
            prev_[w * config_.wheels + wheel_of(x)].push_back(
                {config_.delay, x, source});
        }
    }

    // Workers are spun up lazily: a window whose event count cannot amortize
    // a barrier rendezvous runs inline on the calling thread instead.  Both
    // paths compute the identical result, so the adaptive choice never shows
    // in counts or digests.
    std::optional<PhaseCrew> crew;
    constexpr std::size_t kParallelWindow = 4096;

    while (true) {
        std::size_t queued = 0;
        for (const std::vector<Staged>& bucket : prev_) queued += bucket.size();
        result.peak_queue_events = std::max(result.peak_queue_events, queued);
        if (queued == 0) break;
        ++result.windows;
        if (config_.jobs > 1 && queued >= kParallelWindow) {
            if (!crew) crew.emplace(config_.jobs, config_.wheels);
            crew->run_phase([&](std::size_t w) { process_wheel(w); });
        } else {
            for (std::size_t w = 0; w < config_.wheels; ++w) process_wheel(w);
        }
        prev_.swap(cur_);
    }

    for (const Wheel& wheel : wheels_) {
        result.delivered_events += wheel.delivered;
        result.completion_time = std::max(result.completion_time, wheel.last_time);
        result.order_digest = mix(result.order_digest, wheel.digest);
    }
    result.forward_count =
        static_cast<std::size_t>(std::count(forwarded_.begin(), forwarded_.end(), 1));
    result.received_count =
        static_cast<std::size_t>(std::count(received_.begin(), received_.end(), 1));
    result.full_delivery = result.received_count == n;
    return result;
}

std::size_t ScaleEngine::state_bytes() const noexcept {
    std::size_t bytes = received_.capacity() + forwarded_.capacity() +
                        first_sender_.capacity() * sizeof(NodeId);
    for (const std::vector<Staged>& bucket : prev_) {
        bytes += bucket.capacity() * sizeof(Staged);
    }
    for (const std::vector<Staged>& bucket : cur_) {
        bytes += bucket.capacity() * sizeof(Staged);
    }
    return bytes;
}

}  // namespace adhoc
