/// \file scale_engine.hpp
/// \brief Window-synchronous sharded broadcast engine for million-node runs.
///
/// `Simulator` is the reference machine: one event queue, arbitrary agents,
/// faults, collisions, jitter.  At n = 10^6 its strictly-serial pop loop is
/// the wall.  `ScaleEngine` trades generality for throughput on the paper's
/// evaluation medium (collision-free, fixed propagation delay): because
/// every delivery scheduled while processing window [T, T + d) lands at
/// exactly T + d, events inside one window are causally independent and can
/// be drained in parallel — and, more, the *only* pending events at any
/// moment are the next window's.  No priority queue is needed at all: the
/// staging buckets ARE the schedule.
///
/// Sharding is by *wheel*, not by thread: nodes are block-partitioned into a
/// fixed number of event wheels (`ScaleConfig::wheels`, independent of
/// `jobs`), and the schedule is a double-buffered matrix of staging buckets
/// `out[src][dst]`.  Each window runs ONE phase: wheel `w` walks the
/// previous window's buckets `prev[s][w]` in canonical (source wheel,
/// generation) order — exactly the (time, seq) pop order a per-wheel queue
/// would produce — applies the forwarding policy to its own nodes' state,
/// and stages resulting sends into `cur[w][dst]` in generation order.  A
/// barrier publishes the window, the buffers swap, and the next window
/// begins.
///
/// The phase parallelizes over wheels with any number of worker threads;
/// the result (counts, completion time, and the order digest folded over the
/// canonical drain stream) is byte-identical for every `jobs` value.
/// tests/scale_engine_test.cpp checks that, plus agreement with the
/// reference `Simulator` on the same topology.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace adhoc {

/// Forwarding rule applied on first receipt.
enum class ScalePolicy {
    kFlood,      ///< every node forwards once (blind flooding)
    kSelfPrune,  ///< forward only if N(v) is not covered by N(u) u {u}
};

struct ScaleConfig {
    double delay = 1.0;       ///< uniform per-hop latency (> 0)
    std::size_t wheels = 8;   ///< event-wheel shards; fixes the merged order
    std::size_t jobs = 1;     ///< worker threads; never changes the result
    ScalePolicy policy = ScalePolicy::kFlood;
};

struct ScaleResult {
    std::size_t delivered_events = 0;  ///< delivery events processed
    std::size_t forward_count = 0;     ///< nodes that transmitted (incl. source)
    std::size_t received_count = 0;
    double completion_time = 0.0;
    bool full_delivery = false;
    std::size_t windows = 0;            ///< synchronization rounds executed
    std::size_t peak_queue_events = 0;  ///< max events pending across wheels
    /// Mix-fold over the canonical per-wheel drain stream (wheel-major:
    /// every event's time bits, node, sender).  Equal digests across `jobs`
    /// values prove the processing order never diverged.
    std::uint64_t order_digest = 0;
};

class ScaleEngine {
  public:
    /// The graph must outlive the engine.  Throws std::invalid_argument on
    /// a non-positive delay or zero wheel count.
    ScaleEngine(const Graph& graph, ScaleConfig config = {});

    /// Runs one broadcast from `source` to quiescence.  Reusable: state is
    /// reset on entry.
    [[nodiscard]] ScaleResult run(NodeId source);

    [[nodiscard]] const ScaleConfig& config() const noexcept { return config_; }

    /// Engine-owned working memory (per-node state plus staging-bucket
    /// high-water marks), for the bench's bytes/node metric.
    [[nodiscard]] std::size_t state_bytes() const noexcept;

  private:
    struct Staged {
        double time;  ///< delivery instant
        NodeId node;
        NodeId sender;
    };

    [[nodiscard]] std::size_t wheel_of(NodeId v) const noexcept { return v / block_; }
    void process_wheel(std::size_t w);
    [[nodiscard]] bool covered_by(NodeId v, NodeId u) const noexcept;

    const Graph* graph_;
    ScaleConfig config_;
    std::size_t block_ = 1;  ///< nodes per wheel (last wheel may be short)

    // Per-node state; each node is written only by its owning wheel, and
    // byte-granular vectors keep cross-wheel writes on distinct memory
    // locations (no false word-sharing races, unlike packed bitsets).
    std::vector<char> received_;
    std::vector<char> forwarded_;
    std::vector<NodeId> first_sender_;

    struct Wheel {
        std::size_t delivered = 0;
        double last_time = 0.0;
        std::uint64_t digest = 0xcbf29ce484222325ULL;  // FNV-1a basis
    };
    std::vector<Wheel> wheels_;
    /// Double-buffered staging matrix, indexed [src * wheels + dst].
    /// `prev_` holds the current window's deliveries (read-only during the
    /// phase); `process_wheel(w)` stages the next window into row w of
    /// `cur_`.  Swapped between windows; capacity is kept.
    std::vector<std::vector<Staged>> prev_;
    std::vector<std::vector<Staged>> cur_;
};

}  // namespace adhoc
