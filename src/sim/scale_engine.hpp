/// \file scale_engine.hpp
/// \brief Window-synchronous sharded broadcast engine for million-node runs.
///
/// `Simulator` is the reference machine: one event queue, arbitrary agents,
/// faults, collisions, jitter.  At n = 10^6 its strictly-serial pop loop is
/// the wall.  `ScaleEngine` trades generality for throughput on the paper's
/// evaluation medium (collision-free, fixed propagation delay): because
/// every delivery scheduled while processing window [T, T + d) lands at
/// exactly T + d, events inside one window are causally independent and can
/// be drained in parallel — and, more, the *only* pending events at any
/// moment are the next window's.  No priority queue is needed at all: the
/// staging buckets ARE the schedule.
///
/// Sharding is by *wheel*, not by thread: nodes are block-partitioned into a
/// fixed number of event wheels (`ScaleConfig::wheels`, independent of
/// `jobs`), and the schedule is a double-buffered matrix of staging buckets
/// `out[src][dst]`.  Each window runs ONE phase: wheel `w` walks the
/// previous window's buckets `prev[s][w]` in canonical (source wheel,
/// generation) order — exactly the (time, seq) pop order a per-wheel queue
/// would produce — applies the forwarding policy to its own nodes' state,
/// and stages resulting sends into `cur[w][dst]` in generation order.  A
/// barrier publishes the window, the buffers swap, and the next window
/// begins.
///
/// **Generic coverage at scale.**  `ScalePolicy::kGenericCoverage` runs the
/// paper's coverage-condition decision (Sections 3-4) inside the windowed
/// engine for the honorable axis subset — Static or First-Receipt timing ×
/// self-pruning selection × k-hop views (k >= 1) × any priority/history/
/// coverage knobs.  Under a collision-free uniform-delay medium a
/// first-receipt self-pruning decision depends only on the *first received*
/// transmission, so per-node protocol state collapses to the outgoing
/// history chain (<= h node ids).  Each window the phase computes, per
/// node, the minimum (sender transmission ordinal, adjacency index) receipt
/// key — the exact (time, seq) pop order of the reference Simulator — and
/// evaluates the coverage kernel of src/core/coverage.cpp over a compact
/// local view compiled into per-wheel scratch (truncated BFS reproducing
/// Definition 2, zero allocations in steady state).  A short serial step
/// then ranks the window's new forwarders in receipt-key order, folds the
/// order digest, and stages their fanout.  Result: forward set, counts,
/// completion time and transmission-order digest byte-identical to the
/// serial `Simulator` running `GenericAgent` with the same `GenericConfig`
/// (tests/scale_engine_test.cpp proves it across seeds × wheels × jobs, and
/// the fuzzer's scale oracle keeps proving it continuously).
///
/// Views come from two interchangeable backends: compiled on the fly into
/// per-wheel scratch (`kScratch`, O(ball edges) per decision, no standing
/// memory), or served by a `ViewCache` (`kCached`) that survives topology
/// churn with dirty-ball invalidation — `add_edge`/`remove_edge` between
/// runs recompile only the views inside the flapped link's k-hop ball.
///
/// The phase parallelizes over wheels with any number of worker threads;
/// the result (counts, completion time, and the order digest) is
/// byte-identical for every `jobs` value.
///
/// **Faults at scale.**  `attach_faults` threads a `faults::FaultPlan`
/// (crash/recover schedules, link churn, counter-based asymmetric loss)
/// into the engine, and `set_recovery` arms a window-synchronous mirror of
/// `faults::RecoveryAgent` (holder beacons, gap NACKs under bounded
/// exponential backoff, budgeted repairs).  A faulted run switches to a
/// serial windowed replay over per-window event buckets: every queue push
/// the reference `Simulator` would perform is replicated with the same
/// (time, insertion-sequence) order — fault events bucketed by
/// ceil(time/delay) and applied before same-window deliveries, loss draws
/// through the plan's own counter-based stream in the exact send order,
/// recovery timers at window-aligned instants — so delivery sets, counters,
/// outcome classification and the transmission-order digest are
/// byte-identical to `Simulator::broadcast_resilient` AND invariant under
/// (wheels x jobs).  Generic-coverage decisions, the expensive part, are
/// pre-scanned in parallel over wheels (they are pure functions of state
/// frozen at the window boundary); the serial pass then replays events in
/// canonical order using the precomputed verdicts.  See docs/SCALING.md
/// "Faults at scale" for the window-bucketing contract and the semantics
/// delta of `ScaleConfig::churn_updates_views`.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/priority.hpp"
#include "faults/fault_plan.hpp"
#include "faults/fault_session.hpp"
#include "faults/recovery.hpp"
#include "graph/graph.hpp"
#include "sim/generic_config.hpp"
#include "sim/trace.hpp"

namespace adhoc {

class ViewCache;

/// Forwarding rule applied on first receipt.
enum class ScalePolicy {
    kFlood,      ///< every node forwards once (blind flooding)
    kSelfPrune,  ///< forward only if N(v) is not covered by N(u) u {u}
    /// The paper's generic coverage condition (honorable subset: Static/FR
    /// timing, self-pruning selection, k >= 1 hop views).  Byte-identical
    /// to the serial Simulator running the same `GenericConfig`.
    kGenericCoverage,
};

/// Where `kGenericCoverage` gets its Definition-2 local views.
enum class ScaleViewMode {
    kAuto,     ///< kCached for small graphs, kScratch beyond
    kCached,   ///< ViewCache: standing views, incremental churn invalidation
    kScratch,  ///< per-decision truncated-BFS compile into per-wheel scratch
};

struct ScaleConfig {
    double delay = 1.0;       ///< uniform per-hop latency (> 0)
    std::size_t wheels = 8;   ///< event-wheel shards; fixes the merged order
    std::size_t jobs = 1;     ///< worker threads (>= 1); never changes the result
    ScalePolicy policy = ScalePolicy::kFlood;
    /// Knobs for kGenericCoverage (ignored by the other policies).  The
    /// constructor rejects combinations the windowed engine cannot honor:
    /// backoff timings (need per-node timers and RNG draws), selections
    /// other than self-pruning (need designation pullback events), and
    /// hops == 0 (global views cost O(n) per decision — use Simulator).
    GenericConfig generic;
    ScaleViewMode view_mode = ScaleViewMode::kAuto;
    /// Faulted runs only: when true, link churn events (kLinkDown/kLinkUp)
    /// additionally drive `add_edge`/`remove_edge` through the engine's
    /// view backend — under kCached views the ViewCache's dirty-ball
    /// invalidation recompiles exactly the flapped link's k-hop ball at
    /// the window boundary, so coverage decisions track the churned
    /// topology.  This is a *realism* mode: the reference Simulator keeps
    /// its views static under churn (links are only gated), so the
    /// differential byte-for-byte contract holds only with the default
    /// `false`.
    bool churn_updates_views = false;
};

struct ScaleResult {
    std::size_t delivered_events = 0;  ///< delivery events processed
    std::size_t forward_count = 0;     ///< nodes that transmitted (incl. source)
    std::size_t received_count = 0;
    double completion_time = 0.0;
    bool full_delivery = false;
    std::size_t windows = 0;            ///< synchronization rounds executed
    std::size_t peak_queue_events = 0;  ///< max events pending across wheels
    /// kFlood/kSelfPrune: mix-fold over the canonical per-wheel drain
    /// stream (wheel-major: every event's time bits, node, sender); a
    /// function of (seed, wheels).  kGenericCoverage: mix-fold over the
    /// *global transmission order* (each transmission's time bits and
    /// node), independent of `wheels` as well as `jobs`, and equal to
    /// `reference_transmission_digest` of a Simulator trace of the same
    /// broadcast.  Either way, equal digests across `jobs` values prove
    /// the processing order never diverged.  Faulted runs (any policy) use
    /// the global transmission digest, equal to
    /// `reference_transmission_digest` of the matching resilient Simulator
    /// trace.
    std::uint64_t order_digest = 0;

    // ---- Fault/recovery accounting (zero / empty for fault-free runs),
    // ---- mirroring the BroadcastResult fields of the same names --------
    std::size_t retransmit_count = 0;  ///< recovery repairs sent
    std::size_t control_count = 0;     ///< beacons + NACKs sent
    std::size_t fault_suppressed = 0;  ///< deliveries/timers/links eaten by faults
    std::vector<char> down;            ///< nodes down at end of run (empty: no faults)
};

/// The generic-policy order digest computed from a reference `Simulator`
/// trace: the same mix-fold over (time, node) of every kTransmit event, in
/// trace order.  `ScaleResult::order_digest` of a kGenericCoverage run must
/// equal this for a trace of the same broadcast — the differential anchor
/// used by tests, the fuzz oracle and bench_scale's legacy cross-check.
[[nodiscard]] std::uint64_t reference_transmission_digest(const Trace& trace);

class ScaleEngine {
  public:
    /// The graph must outlive the engine (unless a topology flap is
    /// applied, after which the engine operates on its own copy).  Throws
    /// std::invalid_argument on a non-positive delay, zero wheel or job
    /// count, or generic-policy knobs the engine cannot honor.
    ScaleEngine(const Graph& graph, ScaleConfig config = {});
    ~ScaleEngine();

    ScaleEngine(const ScaleEngine&) = delete;
    ScaleEngine& operator=(const ScaleEngine&) = delete;

    /// Runs one broadcast from `source` to quiescence.  Reusable: state is
    /// reset on entry.
    [[nodiscard]] ScaleResult run(NodeId source);

    [[nodiscard]] const ScaleConfig& config() const noexcept { return config_; }

    /// The topology the next run will use (the constructor argument until
    /// the first flap, the engine's own churned copy afterwards).
    [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

    /// Applies a topology flap between runs (adding an existing edge /
    /// removing an absent one is a no-op).  Under kCached views this is
    /// the incremental-maintenance path: only views whose k-hop ball
    /// touches the link are recompiled (lazily, before the next run).
    /// Must not be called while `run` is executing.
    void add_edge(NodeId u, NodeId v);
    void remove_edge(NodeId u, NodeId v);

    /// Attaches a fault schedule for subsequent runs (nullptr detaches).
    /// The plan must outlive the engine.  Throws `std::invalid_argument`
    /// (via `faults::validate_plan`) on a structurally invalid plan, and
    /// when the plan's horizon exceeds the engine's window calendar
    /// (`time / delay` past 2^20 windows).  Event times need not be
    /// window-aligned: an event at time t is applied at the first window
    /// boundary >= t, before that window's deliveries — exactly when the
    /// reference Simulator, whose delivery instants are all boundaries,
    /// would observe its effect.
    void attach_faults(const faults::FaultPlan* plan);

    /// Arms (or, with `enabled == false`, disarms) the window-synchronous
    /// recovery layer for subsequent runs.  Throws `std::invalid_argument`
    /// unless the config is window-aligned: `beacon_interval` and
    /// `nack_delay` positive integer multiples of `delay`, an integral
    /// `backoff_factor >= 1`, and a maximum backoff within the calendar
    /// horizon.  (The `RecoveryConfig{}` default `nack_delay = 0.5` is NOT
    /// aligned at the default delay 1.0 — pass an aligned value.)
    void set_recovery(const faults::RecoveryConfig& config);

    /// Per-node outcome of the last `run` (differential tests, fuzz
    /// oracle).  1 iff the node transmitted / received a copy.
    [[nodiscard]] const std::vector<char>& forwarded_mask() const noexcept {
        return forwarded_;
    }
    [[nodiscard]] const std::vector<char>& received_mask() const noexcept { return received_; }

    /// True iff generic decisions read a standing ViewCache (kCached /
    /// small-n kAuto); the cache (for churn instrumentation) or nullptr.
    [[nodiscard]] bool cached_views() const noexcept { return cache_ != nullptr; }
    [[nodiscard]] const ViewCache* view_cache() const noexcept { return cache_.get(); }

    /// Engine-owned working memory (per-node state plus staging-bucket
    /// high-water marks), for the bench's bytes/node metric.  Standing
    /// ViewCache views (kCached mode, small n) are not counted.
    [[nodiscard]] std::size_t state_bytes() const noexcept;

  private:
    struct Staged {
        double time;  ///< delivery instant
        NodeId node;
        NodeId sender;
    };

    /// Per-wheel working set of the generic-coverage phase: window-local
    /// first-receipt bookkeeping plus the compact-view compile buffers
    /// (scratch mode) / the borrowed status row (cached mode).  All
    /// buffers only grow — zero allocations per decision in steady state.
    struct WheelScratch {
        std::vector<NodeId> fresh;       ///< first receipts found this window
        std::vector<NodeId> forwarders;  ///< subset of fresh that forwards
        std::vector<NodeId> visited;     ///< decision-time visited set (<= h+1)
        // Scratch-mode view compile: truncated BFS + CSR over local ids.
        std::vector<NodeId> bfs;           ///< BFS queue / discovery order
        std::vector<std::uint16_t> dist;   ///< hop distance from the center
        std::vector<std::uint32_t> stamp;  ///< epoch stamps validating dist/g2l
        std::vector<std::uint32_t> g2l;    ///< global -> local id
        std::uint32_t epoch = 0;
        std::vector<NodeId> members;          ///< ascending global ids
        std::vector<std::uint32_t> offsets;   ///< CSR rows, size m+1
        std::vector<std::uint32_t> edges;     ///< CSR columns (local ids)
        // Cached-mode status row (size n; each view rewrites its members).
        std::vector<NodeStatus> status_row;
    };

    /// One replayed queue entry of the faulted plane.  `payload` indexes
    /// the packet table (kDelivery), the control table (kControl), the
    /// fault plan (kFault), or names the recovery timer kind (kTimer).
    struct REvent {
        double time;
        std::uint64_t seq;  ///< replicated Simulator insertion sequence
        std::uint32_t kind;
        NodeId node;
        std::uint32_t payload;
    };
    /// A replayed data packet: its sender plus the piggybacked history
    /// chain (stored in the pooled `r_chain_`; empty for policies whose
    /// decisions never read packet state).
    struct RPacket {
        NodeId sender;
        std::uint32_t chain_off;
        std::uint32_t chain_len;
    };
    struct RControl {
        NodeId sender;
        std::uint32_t kind;  ///< kBeaconMsg / kNackMsg
    };

    [[nodiscard]] std::size_t wheel_of(NodeId v) const noexcept { return v / block_; }
    void process_wheel(std::size_t w);
    [[nodiscard]] bool covered_by(NodeId v, NodeId u) const noexcept;

    void validate_generic_config() const;
    void flap(NodeId u, NodeId v, bool add);
    [[nodiscard]] ScaleResult run_generic(NodeId source);
    void scan_wheel_generic(std::size_t w);
    [[nodiscard]] std::uint64_t receipt_key(NodeId sender, NodeId v) const noexcept;
    [[nodiscard]] bool decide_generic(WheelScratch& ws, NodeId v, NodeId u);
    void compile_scratch_view(WheelScratch& ws, NodeId v);
    /// Outgoing history chain entries piggybacked per transmission (0 when
    /// the timing is static — children ignore broadcast state anyway).
    [[nodiscard]] std::size_t chain_stride() const noexcept;

    // ---- faulted windowed replay (run_resilient and helpers) ----------
    [[nodiscard]] ScaleResult run_resilient(NodeId source);
    [[nodiscard]] std::size_t window_index(double time) const noexcept;
    void push_revent(double time, std::uint32_t kind, NodeId node, std::uint32_t payload);
    /// Mirrors `Simulator::schedule_deliveries`: per-link fault gating and
    /// counter-based loss draws in sorted-adjacency order, one queued
    /// event (and one insertion sequence) per surviving link.
    void fanout_resilient(NodeId sender, bool control, std::uint32_t payload,
                          NodeId only_target, double next_time);
    /// Mirrors `Simulator::transmit` for a node that decided to forward:
    /// digest fold, packet-table entry (chain derived from the first
    /// received packet under FR timing), fanout.
    void transmit_resilient(NodeId v, double now);
    void resend_resilient(NodeId v, double now);
    /// Appends a packet (sender `v`, chain = last `history` of the first
    /// received chain + v, FR timing only) and returns its table index.
    [[nodiscard]] std::uint32_t make_packet(NodeId v, std::size_t history);
    [[nodiscard]] bool decide_resilient(WheelScratch& ws, NodeId v,
                                        const RPacket& pkt);
    [[nodiscard]] bool recovery_on() const noexcept {
        return recovery_.has_value() && recovery_->enabled;
    }

    /// Decision body shared by the fault-free and faulted planes:
    /// evaluates the coverage condition for `v` with `ws.visited` already
    /// holding the decision-time visited set.
    [[nodiscard]] bool decide_with_visited(WheelScratch& ws, NodeId v);

    const Graph* graph_;
    ScaleConfig config_;
    std::size_t block_ = 1;  ///< nodes per wheel (last wheel may be short)

    // Per-node state; each node is written only by its owning wheel, and
    // byte-granular vectors keep cross-wheel writes on distinct memory
    // locations (no false word-sharing races, unlike packed bitsets).
    std::vector<char> received_;
    std::vector<char> forwarded_;
    std::vector<NodeId> first_sender_;

    struct Wheel {
        std::size_t delivered = 0;
        double last_time = 0.0;
        std::uint64_t digest = 0xcbf29ce484222325ULL;  // FNV-1a basis
    };
    std::vector<Wheel> wheels_;
    /// Double-buffered staging matrix, indexed [src * wheels + dst].
    /// `prev_` holds the current window's deliveries (read-only during the
    /// phase); the phase (kFlood/kSelfPrune) or the serial rank step
    /// (kGenericCoverage) stages the next window into `cur_`.  Swapped
    /// between windows; capacity is kept.
    std::vector<std::vector<Staged>> prev_;
    std::vector<std::vector<Staged>> cur_;

    // ---- kGenericCoverage state --------------------------------------
    PriorityKeys keys_;       ///< static priority keys of the current graph
    bool keys_stale_ = false;  ///< a flap changed degrees/ncr: rebuild lazily
    std::unique_ptr<ViewCache> cache_;  ///< standing views (kCached), or null
    std::optional<Graph> churn_graph_;  ///< scratch-mode mutable copy (lazy)
    std::vector<std::uint32_t> tx_rank_;   ///< global transmission ordinal
    std::vector<std::uint64_t> best_key_;  ///< min receipt key this window
    std::vector<NodeId> chain_;            ///< outgoing history, stride h
    std::vector<std::uint32_t> chain_len_;
    std::vector<WheelScratch> scratch_;  ///< one per wheel
    std::vector<std::pair<std::uint64_t, NodeId>> merge_;  ///< serial rank sort
    std::uint64_t generic_digest_ = 0;
    std::uint32_t next_rank_ = 0;

    // ---- faulted plane state ------------------------------------------
    const faults::FaultPlan* fault_plan_ = nullptr;
    std::optional<faults::RecoveryConfig> recovery_;
    faults::FaultSession fsession_;
    faults::FaultPlan empty_plan_;  ///< session target when recovery runs planless
    std::vector<std::vector<REvent>> cal_;  ///< window calendar buckets
    std::vector<REvent> work_;              ///< bucket being drained
    std::vector<RPacket> packets_;
    std::vector<RControl> controls_;
    std::vector<NodeId> r_chain_;  ///< pooled packet history chains (FR only)
    std::uint64_t r_seq_ = 0;      ///< replicated insertion sequence
    std::size_t r_pending_ = 0;    ///< events queued and not yet drained
    std::size_t r_retransmit_ = 0;
    std::size_t r_control_ = 0;
    std::size_t r_suppressed_ = 0;
    // Per-node recovery-mirror state (holder status is `received_`).
    std::vector<std::uint32_t> held_pkt_;  ///< first received packet (repairs)
    std::vector<std::uint32_t> beacons_n_;
    std::vector<std::uint32_t> nacks_n_;
    std::vector<char> nack_armed_;
    std::vector<NodeId> gap_source_;
    std::vector<std::uint32_t> repairs_n_;
    // Parallel decision pre-scan bookkeeping.
    std::vector<std::uint32_t> pre_stamp_;
    std::vector<std::uint32_t> pre_pkt_;
    std::vector<char> pre_dec_;
    std::uint32_t pre_epoch_ = 0;
};

}  // namespace adhoc
