#include "sim/session.hpp"

#include <cassert>
#include <limits>

namespace adhoc {

SessionResult run_session(const Graph& g, std::vector<BroadcastRequest> requests, Rng& rng,
                          MediumConfig medium) {
    SessionResult result;

    // One steppable simulator per broadcast, all driven on one global
    // clock: at each step the globally earliest pending event (ties broken
    // by request order) is processed.
    std::vector<std::unique_ptr<Simulator>> sims;
    std::vector<Rng> streams;
    sims.reserve(requests.size());
    streams.reserve(requests.size());
    // Workload-derived sizing: one broadcast keeps roughly a propagation
    // window's worth of packets in flight (a node plus its forwarding
    // neighbors, ~1 + avg degree), each fanning out ~avg degree deliveries.
    const std::size_t avg_degree =
        g.node_count() > 0 ? 2 * g.edge_count() / g.node_count() : 0;
    const std::size_t in_flight = 2 * (1 + avg_degree);
    for (const BroadcastRequest& req : requests) {
        assert(req.agent != nullptr && g.contains(req.source));
        sims.push_back(std::make_unique<Simulator>(g, medium));
        sims.back()->reserve_hint(in_flight, in_flight * (1 + avg_degree));
        streams.push_back(rng.fork());
    }
    for (std::size_t i = 0; i < requests.size(); ++i) {
        sims[i]->begin(requests[i].source, *requests[i].agent, streams[i],
                       requests[i].start_time);
    }

    double clock = 0.0;
    for (;;) {
        std::size_t next = requests.size();
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < sims.size(); ++i) {
            if (!sims[i]->has_pending()) continue;
            const double t = sims[i]->next_time();
            if (t < best) {
                best = t;
                next = i;
            }
        }
        if (next == requests.size()) break;  // all drained
        sims[next]->step();
        clock = best;
    }

    result.broadcasts.reserve(requests.size());
    for (std::size_t i = 0; i < sims.size(); ++i) {
        result.broadcasts.push_back(sims[i]->finish());
        result.completion_time = std::max(result.completion_time,
                                          result.broadcasts.back().completion_time);
    }
    (void)clock;
    return result;
}

}  // namespace adhoc
