/// \file session.hpp
/// \brief Multi-broadcast sessions: several broadcasts, one medium.
///
/// The paper analyzes one broadcast at a time; a deployed network carries
/// many, identified by (source, sequence) pairs.  A `Session` schedules M
/// broadcast requests at arbitrary start times over one shared event
/// timeline, giving each its own protocol-agent instance and per-broadcast
/// result.  Under the collision-free medium, concurrent broadcasts are
/// independent — the session tests pin that down (concurrent results ==
/// isolated runs) — and the machinery demonstrates how per-broadcast
/// dynamic state (Section 2's views) coexists across packets in flight.

#pragma once

#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "sim/event_queue.hpp"
#include "sim/medium.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace adhoc {

/// One broadcast request inside a session.
struct BroadcastRequest {
    NodeId source = kInvalidNode;
    double start_time = 0.0;
    std::unique_ptr<Agent> agent;  ///< protocol instance for this broadcast
};

/// Per-broadcast outcome (same fields as a standalone run).
struct SessionResult {
    std::vector<BroadcastResult> broadcasts;  ///< one per request, in order
    double completion_time = 0.0;             ///< last event across all
};

/// Runs all requests over one shared, genuinely interleaved timeline:
/// every event (delivery or timer) carries its broadcast id and is
/// dispatched to that broadcast's agent, so packets of different
/// broadcasts are in flight simultaneously.  Under the collision-free
/// medium the per-broadcast outcomes must equal isolated runs — a session
/// test verifies exactly that.
[[nodiscard]] SessionResult run_session(const Graph& g, std::vector<BroadcastRequest> requests,
                                        Rng& rng, MediumConfig medium = {});

}  // namespace adhoc
