#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>

#include "telemetry/telemetry.hpp"

namespace adhoc {

namespace {

namespace tel = telemetry;

// Static registration (see telemetry.hpp): ids are process-stable, and
// recording against them is a no-op while telemetry is disabled.
const tel::MetricId kRunTimer = tel::timer("sim.run");
const tel::MetricId kNodesGauge = tel::gauge("sim.nodes", "nodes");
const tel::MetricId kDeliveryEvents = tel::counter("sim.events.delivery", "events");
const tel::MetricId kTimerEvents = tel::counter("sim.events.timer", "events");
const tel::MetricId kControlEvents = tel::counter("sim.events.control", "events");
const tel::MetricId kFaultEvents = tel::counter("sim.events.fault", "events");
const tel::MetricId kCollisions = tel::counter("sim.collisions", "events");
const tel::MetricId kSinrRejections = tel::counter("medium.sinr_rejections", "events");
const tel::MetricId kCaptures = tel::counter("medium.captures", "events");
const tel::MetricId kTransmissions = tel::counter("sim.transmissions", "packets");
const tel::MetricId kRetransmissions = tel::counter("sim.retransmissions", "packets");
const tel::MetricId kControlSends = tel::counter("sim.control_messages", "packets");
const tel::MetricId kFaultSuppressed = tel::counter("sim.fault_suppressed", "events");
const tel::MetricId kQueueLen = tel::histogram(
    "sim.queue_len", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}, "events");

}  // namespace

void Agent::on_timer(Simulator&, NodeId, std::size_t, Rng&) {
    // Default: protocols without timers ignore them.
}

void Agent::on_control(Simulator&, NodeId, const ControlMessage&, Rng&) {
    // Default: data-plane agents never see the recovery plane.
}

Simulator::Simulator(const Graph& graph, MediumConfig medium)
    : graph_(&graph), medium_(std::move(medium)) {
    if (!medium_.ideal() &&
        medium_.config().positions.size() != graph_->node_count()) {
        throw std::invalid_argument(
            "MediumConfig.positions holds " +
            std::to_string(medium_.config().positions.size()) +
            " points but the graph has " + std::to_string(graph_->node_count()) +
            " nodes");
    }
}

void Simulator::attach_faults(const faults::FaultPlan* plan) {
    if (plan != nullptr) faults::validate_plan(*plan, graph_->node_count());
    fault_plan_ = plan;
}

void Simulator::reset(std::size_t n) {
    queue_.clear();
    transmissions_.clear();
    control_messages_.clear();
    if (medium_.config().collisions) {
        arrivals_.resize(n);
        for (auto& times : arrivals_) times.clear();  // keep per-node capacity
    } else {
        arrivals_.clear();
    }
    if (!medium_.ideal()) {
        tx_times_.resize(n);
        for (auto& times : tx_times_) times.clear();
    } else {
        tx_times_.clear();
    }
    sinr_rejections_ = 0;
    captures_ = 0;
    transmitted_.assign(n, 0);
    received_.assign(n, 0);
    retransmitted_.assign(n, 0);
    retransmit_count_ = 0;
    control_count_ = 0;
    fault_suppressed_ = 0;
    now_ = 0.0;
    trace_.clear();
    if (trace_enabled_) trace_.enable();
}

BroadcastResult Simulator::run(NodeId source, Agent& agent, Rng& rng) {
    tel::ScopedTimer span(kRunTimer);
    begin(source, agent, rng);
    while (has_pending()) step();
    return finish();
}

void Simulator::begin(NodeId source, Agent& agent, Rng& rng, double start_time) {
    assert(graph_->contains(source));
    reset(graph_->node_count());
    source_ = source;
    rng_ = &rng;
    agent_ = &agent;
    now_ = start_time;
    if (fault_plan_ != nullptr) {
        fault_session_.reset(*fault_plan_, graph_->node_count());
        // Queue the whole schedule up front: fault events at time t carry
        // the lowest insertion sequence among time-t events, so a crash
        // always beats same-instant deliveries (a node cannot receive at
        // the very instant it dies).
        for (std::size_t i = 0; i < fault_plan_->events.size(); ++i) {
            const double at = std::max(fault_plan_->events[i].time, start_time);
            queue_.push(at, EventKind::kFault, fault_plan_->events[i].node, i);
        }
    } else {
        fault_session_ = faults::FaultSession{};
    }
    tel::gauge_sample(kNodesGauge, graph_->node_count());
    agent.start(*this, source, rng);
}

double Simulator::next_time() const { return queue_.peek().time; }

void Simulator::note_arrival(NodeId node, double at) {
    auto& times = arrivals_[node];
    times.insert(std::upper_bound(times.begin(), times.end(), at), at);
}

void Simulator::note_transmission(NodeId v) {
    if (!medium_.ideal()) tx_times_[v].push_back(now_);  // now_ is non-decreasing
}

double Simulator::interference_at(NodeId sender, NodeId receiver, double at) const {
    const MediumConfig& cfg = medium_.config();
    // A transmission at t reaches the receiver around t + propagation_delay;
    // it overlaps the arrival iff that lands within the vulnerability window.
    const double lo = at - cfg.propagation_delay - cfg.sinr.vulnerability_window;
    const double hi = at - cfg.propagation_delay + cfg.sinr.vulnerability_window;
    double sum = 0.0;
    // Deterministic enumeration order (cell row-major, bucket slot) keeps
    // the floating-point summation order — and with it the accept/reject
    // decision — bit-stable across runs and --jobs values.
    medium_.grid()->for_each_in_ball(
        cfg.positions[receiver], cfg.sinr.interference_range, [&](NodeId u) {
            if (u == sender) return;  // the arrival's own signal is not interference
            const auto& times = tx_times_[u];
            const auto first = std::lower_bound(times.begin(), times.end(), lo);
            const auto last = std::upper_bound(first, times.end(), hi);
            if (first != last) {
                sum += static_cast<double>(last - first) * medium_.signal(u, receiver);
            }
        });
    return sum;
}

bool Simulator::medium_accepts(NodeId sender, NodeId receiver, double at) {
    const MediumConfig& cfg = medium_.config();
    const double signal = medium_.signal(sender, receiver);
    const double interference = interference_at(sender, receiver, at);
    if (cfg.backend == MediumBackend::kSinr) {
        // signal / (N + I) >= beta, multiplied out so zero noise and zero
        // interference stay exact (beta = 0 accepts unconditionally).
        if (signal >= cfg.sinr.beta * (cfg.sinr.noise + interference)) {
            if (interference > 0.0) {
                ++captures_;
                tel::count(kCaptures);
            }
            return true;
        }
        return false;
    }
    // kUniformPowerGraph: static zero-interference margin check, and any
    // concurrent interference kills reception outright (no capture).
    if (interference > 0.0) return false;
    return signal >= cfg.sinr.beta * (1.0 + cfg.sinr.margin) * cfg.sinr.noise;
}

bool Simulator::arrival_collided(NodeId node, double at) const {
    const double w = medium_.config().collision_window;
    const auto& times = arrivals_[node];
    const auto lo = std::lower_bound(times.begin(), times.end(), at - w);
    const auto hi = std::upper_bound(times.begin(), times.end(), at + w);
    assert(hi - lo >= 1 && "the arrival being processed must be recorded");
    return (hi - lo) > 1;
}

void Simulator::step() {
    assert(agent_ != nullptr && rng_ != nullptr);
    tel::observe(kQueueLen, queue_.size());
    const Event e = queue_.pop();
    now_ = e.time;
    switch (e.kind) {
        case EventKind::kDelivery: {
            tel::count(kDeliveryEvents);
            if (medium_.config().collisions && arrival_collided(e.node, e.time)) {
                tel::count(kCollisions);
                transmissions_.release_one(e.payload);
                break;  // nothing is received
            }
            if (!medium_.ideal() &&
                !medium_accepts(transmissions_[e.payload].sender, e.node, e.time)) {
                ++sinr_rejections_;
                tel::count(kSinrRejections);
                transmissions_.release_one(e.payload);
                break;  // drowned by interference / below the noise floor
            }
            if (fault_session_.active() && !fault_session_.node_up(e.node)) {
                ++fault_suppressed_;
                tel::count(kFaultSuppressed);
                transmissions_.release_one(e.payload);
                break;  // the receiver is down
            }
            // Copy: this was the slot's last reference if release_one
            // recycles it, and the callback may acquire (overwrite) it.
            const Transmission tx = transmissions_[e.payload];
            transmissions_.release_one(e.payload);
            received_[e.node] = 1;
            trace_.record(now_, TraceKind::kReceive, e.node, tx.sender);
            agent_->on_receive(*this, e.node, tx, *rng_);
            break;
        }
        case EventKind::kTimer:
            tel::count(kTimerEvents);
            if (fault_session_.active() && !fault_session_.node_up(e.node)) {
                ++fault_suppressed_;
                tel::count(kFaultSuppressed);
                break;  // timers die with their node
            }
            agent_->on_timer(*this, e.node, e.payload, *rng_);
            break;
        case EventKind::kControl: {
            tel::count(kControlEvents);
            if (medium_.config().collisions && arrival_collided(e.node, e.time)) {
                tel::count(kCollisions);
                control_messages_.release_one(e.payload);
                break;
            }
            if (!medium_.ideal() &&
                !medium_accepts(control_messages_[e.payload].sender, e.node, e.time)) {
                ++sinr_rejections_;
                tel::count(kSinrRejections);
                control_messages_.release_one(e.payload);
                break;
            }
            if (fault_session_.active() && !fault_session_.node_up(e.node)) {
                ++fault_suppressed_;
                tel::count(kFaultSuppressed);
                control_messages_.release_one(e.payload);
                break;
            }
            const ControlMessage msg = control_messages_[e.payload];
            control_messages_.release_one(e.payload);
            agent_->on_control(*this, e.node, msg, *rng_);
            break;
        }
        case EventKind::kFault:
            tel::count(kFaultEvents);
            assert(fault_plan_ != nullptr && e.payload < fault_plan_->events.size());
            fault_session_.apply(fault_plan_->events[e.payload]);
            break;
    }
}

BroadcastResult Simulator::finish() {
    rng_ = nullptr;
    agent_ = nullptr;

    BroadcastResult result;
    result.transmitted = transmitted_;
    result.received = received_;
    for (std::size_t v = 0; v < transmitted_.size(); ++v) {
        if (transmitted_[v]) ++result.forward_count;
        if (received_[v]) ++result.received_count;
    }
    result.completion_time = now_;
    result.full_delivery = (result.received_count == graph_->node_count());
    result.trace = std::move(trace_);
    result.retransmitted = retransmitted_;
    result.retransmit_count = retransmit_count_;
    result.control_count = control_count_;
    result.fault_suppressed = fault_suppressed_;
    result.sinr_rejections = sinr_rejections_;
    result.captures = captures_;
    if (fault_session_.active()) result.down = fault_session_.down_mask();
    return result;
}

std::size_t Simulator::schedule_deliveries(NodeId sender, EventKind kind,
                                           std::size_t payload, NodeId only_target) {
    assert(rng_ != nullptr);
    std::size_t fanout = 0;
    for (NodeId nbr : graph_->neighbors(sender)) {
        if (only_target != kInvalidNode && nbr != only_target) continue;
        if (fault_session_.active()) {
            if (!fault_session_.link_up(sender, nbr) ||
                fault_session_.drop_directed(sender, nbr)) {
                ++fault_suppressed_;
                tel::count(kFaultSuppressed);
                continue;
            }
        }
        if (const auto at = medium_.delivery_time(now_, *rng_)) {
            queue_.push(*at, kind, nbr, payload);
            ++fanout;
            if (medium_.config().collisions) {
                assert(medium_.config().propagation_delay >
                           medium_.config().collision_window &&
                       "collision accounting needs delay > window");
                note_arrival(nbr, *at);
            }
        }
    }
    return fanout;
}

void Simulator::reserve_hint(std::size_t in_flight_packets, std::size_t pending_events) {
    transmissions_.reserve(in_flight_packets);
    queue_.reserve(pending_events);
}

void Simulator::transmit(NodeId v, BroadcastState state) {
    assert(graph_->contains(v));
    if (transmitted_[v]) return;  // a node forwards at most once
    if (fault_session_.active() && !fault_session_.node_up(v)) return;  // dead air
    transmitted_[v] = 1;
    received_[v] = 1;  // the forwarder trivially holds the packet
    tel::count(kTransmissions);
    trace_.record(now_, TraceKind::kTransmit, v);
    note_transmission(v);

    const std::size_t slot = transmissions_.acquire(Transmission{v, now_, std::move(state)});
    transmissions_.set_pending(slot, schedule_deliveries(v, EventKind::kDelivery, slot));
}

void Simulator::resend(NodeId v, BroadcastState state) {
    assert(graph_->contains(v));
    if (fault_session_.active() && !fault_session_.node_up(v)) return;
    retransmitted_[v] = 1;
    received_[v] = 1;
    ++retransmit_count_;
    tel::count(kRetransmissions);
    trace_.record(now_, TraceKind::kRetransmit, v);
    note_transmission(v);

    const std::size_t slot = transmissions_.acquire(Transmission{v, now_, std::move(state)});
    transmissions_.set_pending(slot, schedule_deliveries(v, EventKind::kDelivery, slot));
}

void Simulator::send_control(NodeId v, std::size_t kind, NodeId target) {
    assert(graph_->contains(v));
    if (fault_session_.active() && !fault_session_.node_up(v)) return;
    ++control_count_;
    tel::count(kControlSends);
    trace_.record(now_, TraceKind::kControl, v, target);
    note_transmission(v);  // control packets radiate interference too

    const std::size_t slot = control_messages_.acquire(ControlMessage{v, kind, target, now_});
    control_messages_.set_pending(
        slot, schedule_deliveries(v, EventKind::kControl, slot, target));
}

void Simulator::schedule_timer(NodeId v, double delay, std::size_t timer_kind) {
    assert(delay >= 0.0);
    queue_.push(now_ + delay, EventKind::kTimer, v, timer_kind);
}

void Simulator::note_prune(NodeId v) { trace_.record(now_, TraceKind::kPrune, v); }

void Simulator::note_designation(NodeId designator, NodeId designee) {
    trace_.record(now_, TraceKind::kDesignate, designee, designator);
}

}  // namespace adhoc
