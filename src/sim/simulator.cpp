#include "sim/simulator.hpp"

#include <cassert>

#include "telemetry/telemetry.hpp"

namespace adhoc {

namespace {

namespace tel = telemetry;

// Static registration (see telemetry.hpp): ids are process-stable, and
// recording against them is a no-op while telemetry is disabled.
const tel::MetricId kRunTimer = tel::timer("sim.run");
const tel::MetricId kNodesGauge = tel::gauge("sim.nodes", "nodes");
const tel::MetricId kDeliveryEvents = tel::counter("sim.events.delivery", "events");
const tel::MetricId kTimerEvents = tel::counter("sim.events.timer", "events");
const tel::MetricId kCollisions = tel::counter("sim.collisions", "events");
const tel::MetricId kTransmissions = tel::counter("sim.transmissions", "packets");
const tel::MetricId kQueueLen = tel::histogram(
    "sim.queue_len", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}, "events");

}  // namespace

void Agent::on_timer(Simulator&, NodeId, std::size_t, Rng&) {
    // Default: protocols without timers ignore them.
}

Simulator::Simulator(const Graph& graph, MediumConfig medium)
    : graph_(&graph), medium_(medium) {}

void Simulator::reset(std::size_t n) {
    queue_.clear();
    transmissions_.clear();
    arrival_counts_.clear();
    transmitted_.assign(n, 0);
    received_.assign(n, 0);
    now_ = 0.0;
    trace_.clear();
    if (trace_enabled_) trace_.enable();
}

BroadcastResult Simulator::run(NodeId source, Agent& agent, Rng& rng) {
    tel::ScopedTimer span(kRunTimer);
    begin(source, agent, rng);
    while (has_pending()) step();
    return finish();
}

void Simulator::begin(NodeId source, Agent& agent, Rng& rng, double start_time) {
    assert(graph_->contains(source));
    reset(graph_->node_count());
    source_ = source;
    rng_ = &rng;
    agent_ = &agent;
    now_ = start_time;
    tel::gauge_sample(kNodesGauge, graph_->node_count());
    agent.start(*this, source, rng);
}

double Simulator::next_time() const { return queue_.peek().time; }

void Simulator::step() {
    assert(agent_ != nullptr && rng_ != nullptr);
    tel::observe(kQueueLen, queue_.size());
    const Event e = queue_.pop();
    now_ = e.time;
    switch (e.kind) {
        case EventKind::kDelivery: {
            tel::count(kDeliveryEvents);
            if (medium_.config().collisions) {
                // Two or more copies landing on this node at this exact
                // instant destroy each other.  All same-instant arrivals
                // are counted at scheduling time (propagation delay > 0
                // guarantees the count is complete before processing).
                const auto key = std::make_pair(e.time, e.node);
                const auto it = arrival_counts_.find(key);
                assert(it != arrival_counts_.end() && it->second.second >= 1);
                const bool collided = it->second.first > 1;
                if (--it->second.second == 0) arrival_counts_.erase(it);
                if (collided) {
                    tel::count(kCollisions);
                    break;  // nothing is received
                }
            }
            // Copy: transmissions_ may reallocate if the callback
            // triggers further transmissions.
            const Transmission tx = transmissions_[e.payload];
            received_[e.node] = 1;
            trace_.record(now_, TraceKind::kReceive, e.node, tx.sender);
            agent_->on_receive(*this, e.node, tx, *rng_);
            break;
        }
        case EventKind::kTimer:
            tel::count(kTimerEvents);
            agent_->on_timer(*this, e.node, e.payload, *rng_);
            break;
    }
}

BroadcastResult Simulator::finish() {
    rng_ = nullptr;
    agent_ = nullptr;

    BroadcastResult result;
    result.transmitted = transmitted_;
    result.received = received_;
    for (std::size_t v = 0; v < transmitted_.size(); ++v) {
        if (transmitted_[v]) ++result.forward_count;
        if (received_[v]) ++result.received_count;
    }
    result.completion_time = now_;
    result.full_delivery = (result.received_count == graph_->node_count());
    result.trace = std::move(trace_);
    return result;
}

void Simulator::transmit(NodeId v, BroadcastState state) {
    assert(graph_->contains(v));
    if (transmitted_[v]) return;  // a node forwards at most once
    transmitted_[v] = 1;
    received_[v] = 1;  // the forwarder trivially holds the packet
    tel::count(kTransmissions);
    trace_.record(now_, TraceKind::kTransmit, v);

    transmissions_.push_back(Transmission{v, now_, std::move(state)});
    const std::size_t idx = transmissions_.size() - 1;
    for (NodeId nbr : graph_->neighbors(v)) {
        assert(rng_ != nullptr);
        if (const auto at = medium_.delivery_time(now_, *rng_)) {
            queue_.push(*at, EventKind::kDelivery, nbr, idx);
            if (medium_.config().collisions) {
                assert(medium_.config().propagation_delay > 0.0 &&
                       "collision accounting needs strictly positive delay");
                auto& counts = arrival_counts_[{*at, nbr}];
                ++counts.first;
                ++counts.second;
            }
        }
    }
}

void Simulator::schedule_timer(NodeId v, double delay, std::size_t timer_kind) {
    assert(delay >= 0.0);
    queue_.push(now_ + delay, EventKind::kTimer, v, timer_kind);
}

void Simulator::note_prune(NodeId v) { trace_.record(now_, TraceKind::kPrune, v); }

void Simulator::note_designation(NodeId designator, NodeId designee) {
    trace_.record(now_, TraceKind::kDesignate, designee, designator);
}

}  // namespace adhoc
