/// \file simulator.hpp
/// \brief Discrete-event broadcast simulator and the protocol agent API.
///
/// One `Simulator` drives one broadcast over one topology.  All protocol
/// behavior lives in an `Agent` (one object managing the per-node state of
/// every node — the simulator tells it *which* node an event is for).  The
/// medium is collision-free by default, matching the paper's evaluation
/// setup; loss/jitter can be injected for robustness tests.
///
/// Determinism: events at equal times fire in scheduling order, and all
/// randomness flows through the caller-provided Rng, so a (seed, topology,
/// agent) triple always reproduces the same run.

#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "sim/event_queue.hpp"
#include "sim/medium.hpp"
#include "sim/packet.hpp"
#include "sim/trace.hpp"
#include "stats/rng.hpp"

namespace adhoc {

class Simulator;

/// Protocol behavior.  One Agent instance serves all nodes of a run.
class Agent {
  public:
    virtual ~Agent() = default;

    /// Called once, before any event.  The source always forwards (paper
    /// Section 5); typical implementations call `sim.transmit(source, ...)`
    /// here with the algorithm's initial designated set.
    virtual void start(Simulator& sim, NodeId source, Rng& rng) = 0;

    /// A copy of the packet arrived at `node` (every neighbor of a sender
    /// receives every transmission — receiving *is* snooping under a
    /// collision-free medium).
    virtual void on_receive(Simulator& sim, NodeId node, const Transmission& tx, Rng& rng) = 0;

    /// A timer scheduled via `sim.schedule_timer` fired.
    virtual void on_timer(Simulator& sim, NodeId node, std::size_t timer_kind, Rng& rng);
};

/// Outcome of one simulated broadcast.
struct BroadcastResult {
    std::vector<char> transmitted;  ///< nodes that forwarded (incl. source)
    std::vector<char> received;     ///< nodes that got at least one copy
    std::size_t forward_count = 0;  ///< paper's metric: |transmitted|
    std::size_t received_count = 0;
    double completion_time = 0.0;   ///< time of last event
    bool full_delivery = false;     ///< received_count == n
    Trace trace;                    ///< populated when tracing enabled
};

class Simulator {
  public:
    explicit Simulator(const Graph& graph, MediumConfig medium = {});

    /// Runs one broadcast from `source` under `agent` (begin + drain +
    /// finish).
    BroadcastResult run(NodeId source, Agent& agent, Rng& rng);

    // ---- Steppable API (used by sessions and debuggers) --------------

    /// Arms a broadcast without processing events.  `agent` and `rng`
    /// must outlive the stepping phase.
    void begin(NodeId source, Agent& agent, Rng& rng, double start_time = 0.0);

    /// True while events remain.
    [[nodiscard]] bool has_pending() const noexcept { return !queue_.empty(); }

    /// Timestamp of the next event.  Precondition: has_pending().
    [[nodiscard]] double next_time() const;

    /// Processes exactly one event.  Precondition: has_pending().
    void step();

    /// Collects the result (normally after the queue drains).
    [[nodiscard]] BroadcastResult finish();

    /// Enables event tracing for subsequent runs.
    void enable_trace() { trace_enabled_ = true; }

    // ---- API available to agents during callbacks -------------------

    /// Queues a transmission by `v` at the current time carrying `state`.
    /// Idempotent: a node transmits at most once; later calls are ignored.
    void transmit(NodeId v, BroadcastState state);

    /// Schedules an `on_timer(node, timer_kind)` callback after `delay`.
    void schedule_timer(NodeId v, double delay, std::size_t timer_kind = 0);

    /// Records a pruning decision in the trace (bookkeeping only).
    void note_prune(NodeId v);

    /// Records a designation in the trace (bookkeeping only).
    void note_designation(NodeId designator, NodeId designee);

    [[nodiscard]] double now() const noexcept { return now_; }
    [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
    [[nodiscard]] bool has_transmitted(NodeId v) const noexcept { return transmitted_[v] != 0; }
    [[nodiscard]] NodeId source() const noexcept { return source_; }

  private:
    void reset(std::size_t n);

    const Graph* graph_;
    Medium medium_;
    EventQueue queue_;
    std::vector<Transmission> transmissions_;
    std::vector<char> transmitted_;
    std::vector<char> received_;
    double now_ = 0.0;
    NodeId source_ = kInvalidNode;
    bool trace_enabled_ = false;
    Trace trace_;
    Rng* rng_ = nullptr;    ///< valid between begin() and finish()
    Agent* agent_ = nullptr;  ///< likewise
    /// Same-instant arrivals per (time, node): {total scheduled, not yet
    /// processed}.  Only populated when the medium's collision model is
    /// on; total > 1 means every copy at that instant is destroyed.
    std::map<std::pair<double, NodeId>, std::pair<int, int>> arrival_counts_;
};

}  // namespace adhoc
