/// \file simulator.hpp
/// \brief Discrete-event broadcast simulator and the protocol agent API.
///
/// One `Simulator` drives one broadcast over one topology.  All protocol
/// behavior lives in an `Agent` (one object managing the per-node state of
/// every node — the simulator tells it *which* node an event is for).  The
/// medium is collision-free by default, matching the paper's evaluation
/// setup; loss/jitter can be injected for robustness tests.
///
/// Faults: a seed-derived `faults::FaultPlan` can be attached before a run.
/// Its events (node crash/recover, link churn) are injected through the
/// same deterministic event queue; down nodes neither transmit, receive nor
/// fire timers, and down links carry nothing.  A control plane
/// (`send_control` / `Agent::on_control`) and a non-idempotent `resend`
/// primitive support NACK-driven recovery layers on top of any agent.
///
/// Determinism: events at equal times fire in scheduling order, and all
/// randomness flows through the caller-provided Rng (fault timing comes
/// pre-computed in the plan; per-link asymmetric loss uses the plan's own
/// counter-based stream), so a (seed, topology, agent, plan) tuple always
/// reproduces the same run.

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "faults/fault_session.hpp"
#include "graph/graph.hpp"
#include "sim/arena.hpp"
#include "sim/event_queue.hpp"
#include "sim/medium.hpp"
#include "sim/packet.hpp"
#include "sim/trace.hpp"
#include "stats/rng.hpp"

namespace adhoc {

class Simulator;

/// A recovery-plane message (beacon, NACK, ...).  Content is opaque to the
/// simulator; `kind` discriminates at the protocol layer.
struct ControlMessage {
    NodeId sender = kInvalidNode;
    std::size_t kind = 0;
    NodeId target = kInvalidNode;  ///< kInvalidNode = local broadcast
    double sent_at = 0.0;
};

/// Protocol behavior.  One Agent instance serves all nodes of a run.
class Agent {
  public:
    virtual ~Agent() = default;

    /// Called once, before any event.  The source always forwards (paper
    /// Section 5); typical implementations call `sim.transmit(source, ...)`
    /// here with the algorithm's initial designated set.
    virtual void start(Simulator& sim, NodeId source, Rng& rng) = 0;

    /// A copy of the packet arrived at `node` (every neighbor of a sender
    /// receives every transmission — receiving *is* snooping under a
    /// collision-free medium).
    virtual void on_receive(Simulator& sim, NodeId node, const Transmission& tx, Rng& rng) = 0;

    /// A timer scheduled via `sim.schedule_timer` fired.
    virtual void on_timer(Simulator& sim, NodeId node, std::size_t timer_kind, Rng& rng);

    /// A control message arrived at `node`.  Default: ignored (data-plane
    /// agents never see the recovery plane).
    virtual void on_control(Simulator& sim, NodeId node, const ControlMessage& msg, Rng& rng);
};

/// Outcome of one simulated broadcast.
struct BroadcastResult {
    std::vector<char> transmitted;  ///< nodes that forwarded (incl. source)
    std::vector<char> received;     ///< nodes that got at least one copy
    std::size_t forward_count = 0;  ///< paper's metric: |transmitted|
    std::size_t received_count = 0;
    double completion_time = 0.0;   ///< time of last event
    bool full_delivery = false;     ///< received_count == n
    Trace trace;                    ///< populated when tracing enabled

    // ---- Fault/recovery accounting (zero / empty for fault-free runs) --
    std::vector<char> retransmitted;    ///< nodes that re-sent via resend()
    std::vector<char> down;             ///< nodes down at end of run (empty: no faults)
    std::size_t retransmit_count = 0;   ///< resend() calls that went out
    std::size_t control_count = 0;      ///< control messages sent
    std::size_t fault_suppressed = 0;   ///< deliveries/timers eaten by faults

    // ---- Physical-layer accounting (zero under the kIdeal backend) ----
    std::size_t sinr_rejections = 0;  ///< arrivals the reception model rejected
    std::size_t captures = 0;         ///< arrivals accepted despite interference
};

class Simulator {
  public:
    /// Throws std::invalid_argument (via Medium) on an invalid medium
    /// config, and when a non-ideal backend's positions count does not
    /// match the graph's node count.
    explicit Simulator(const Graph& graph, MediumConfig medium = {});

    /// Runs one broadcast from `source` under `agent` (begin + drain +
    /// finish).
    BroadcastResult run(NodeId source, Agent& agent, Rng& rng);

    // ---- Steppable API (used by sessions and debuggers) --------------

    /// Arms a broadcast without processing events.  `agent` and `rng`
    /// must outlive the stepping phase.
    void begin(NodeId source, Agent& agent, Rng& rng, double start_time = 0.0);

    /// True while events remain.
    [[nodiscard]] bool has_pending() const noexcept { return !queue_.empty(); }

    /// Timestamp of the next event.  Precondition: has_pending().
    [[nodiscard]] double next_time() const;

    /// Processes exactly one event.  Precondition: has_pending().
    void step();

    /// Collects the result (normally after the queue drains).
    [[nodiscard]] BroadcastResult finish();

    /// Enables event tracing for subsequent runs.
    void enable_trace() { trace_enabled_ = true; }

    /// Attaches a fault schedule for subsequent runs (nullptr detaches).
    /// The plan must outlive the simulator; its timed events are queued at
    /// begin() and applied in event order.  Throws `std::invalid_argument`
    /// (via `faults::validate_plan`) on a structurally invalid plan.
    void attach_faults(const faults::FaultPlan* plan);

    /// Pre-sizes in-flight storage from workload knowledge (e.g. session
    /// count x expected forwards): packet arena slots scale with expected
    /// *concurrent* packets, the event queue with their delivery fanout.
    /// Purely a performance hint; storage still grows on demand.
    void reserve_hint(std::size_t in_flight_packets, std::size_t pending_events);

    // ---- API available to agents during callbacks -------------------

    /// Queues a transmission by `v` at the current time carrying `state`.
    /// Idempotent: a node transmits at most once; later calls are ignored.
    /// No-op while `v` is crashed.
    void transmit(NodeId v, BroadcastState state);

    /// Re-sends the data packet from `v` (recovery repair).  Unlike
    /// `transmit` this is *not* idempotent and does not mark `v` as a
    /// forward node — retransmissions are accounted separately.
    void resend(NodeId v, BroadcastState state);

    /// Sends a control message from `v`.  `target == kInvalidNode` reaches
    /// every current neighbor (local broadcast); otherwise only `target`
    /// (which must be a neighbor) can receive it.
    void send_control(NodeId v, std::size_t kind, NodeId target = kInvalidNode);

    /// Schedules an `on_timer(node, timer_kind)` callback after `delay`.
    void schedule_timer(NodeId v, double delay, std::size_t timer_kind = 0);

    /// Records a pruning decision in the trace (bookkeeping only).
    void note_prune(NodeId v);

    /// Records a designation in the trace (bookkeeping only).
    void note_designation(NodeId designator, NodeId designee);

    [[nodiscard]] double now() const noexcept { return now_; }
    [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
    [[nodiscard]] bool has_transmitted(NodeId v) const noexcept { return transmitted_[v] != 0; }
    [[nodiscard]] bool has_received(NodeId v) const noexcept { return received_[v] != 0; }
    [[nodiscard]] NodeId source() const noexcept { return source_; }

    /// True iff `v` is currently up (always true without an attached plan).
    [[nodiscard]] bool node_up(NodeId v) const noexcept {
        return !fault_session_.active() || fault_session_.node_up(v);
    }

  private:
    void reset(std::size_t n);
    /// Fans one packet (data or control) out of `sender`: per-link fault
    /// gating, medium loss/jitter, and collision bookkeeping.  Returns the
    /// number of delivery events queued (the packet slot's refcount).
    std::size_t schedule_deliveries(NodeId sender, EventKind kind, std::size_t payload,
                                    NodeId only_target = kInvalidNode);
    void note_arrival(NodeId node, double at);
    [[nodiscard]] bool arrival_collided(NodeId node, double at) const;
    /// Records a non-ideal-backend transmission at the current time (the
    /// node radiates regardless of how many links carry the packet).
    void note_transmission(NodeId v);
    /// SINR-family reception decision for an arrival from `sender` at
    /// `receiver` popping at time `at`.  Consumes no randomness; bumps the
    /// capture counter on accept-under-interference.
    [[nodiscard]] bool medium_accepts(NodeId sender, NodeId receiver, double at);
    /// Sum of interfering received powers at `receiver` over the arrival's
    /// vulnerability interval, truncated at `sinr.interference_range`.
    [[nodiscard]] double interference_at(NodeId sender, NodeId receiver, double at) const;

    const Graph* graph_;
    Medium medium_;
    EventQueue queue_;
    /// In-flight packet arenas: a slot lives exactly while delivery events
    /// reference it, so memory is bounded by concurrent packets, not by
    /// the total sent over the run.
    SlotArena<Transmission> transmissions_;
    SlotArena<ControlMessage> control_messages_;
    std::vector<char> transmitted_;
    std::vector<char> received_;
    std::vector<char> retransmitted_;
    double now_ = 0.0;
    NodeId source_ = kInvalidNode;
    bool trace_enabled_ = false;
    Trace trace_;
    Rng* rng_ = nullptr;      ///< valid between begin() and finish()
    Agent* agent_ = nullptr;  ///< likewise
    const faults::FaultPlan* fault_plan_ = nullptr;
    faults::FaultSession fault_session_;
    std::size_t retransmit_count_ = 0;
    std::size_t control_count_ = 0;
    std::size_t fault_suppressed_ = 0;
    /// All scheduled arrival times per node, kept sorted and retained for
    /// the whole run.  Only populated when the collision model is on; an
    /// arrival is destroyed iff another lands within `collision_window` of
    /// it (window 0 = exact tie, the historical semantics).  Completeness:
    /// any event processed at time t can only schedule arrivals at
    /// >= t + propagation_delay > t + collision_window, so every arrival's
    /// window is fully known by the time it pops.
    std::vector<std::vector<double>> arrivals_;
    /// Transmission instants per node, retained for the whole run.  Only
    /// populated for the non-ideal backends; kept sorted for free because
    /// a run's transmit times are non-decreasing.  Completeness: an
    /// arrival at T is only interfered with by transmissions at
    /// t <= T - propagation_delay + vulnerability_window < T, all of which
    /// are processed (hence recorded) before T pops.
    std::vector<std::vector<double>> tx_times_;
    std::size_t sinr_rejections_ = 0;
    std::size_t captures_ = 0;
};

}  // namespace adhoc
