#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

namespace adhoc {

std::size_t Trace::count(TraceKind kind) const {
    return static_cast<std::size_t>(
        std::count_if(events_.begin(), events_.end(),
                      [kind](const TraceEvent& e) { return e.kind == kind; }));
}

std::string Trace::to_string() const {
    std::ostringstream out;
    for (const TraceEvent& e : events_) {
        out << "t=" << e.time << ' ';
        switch (e.kind) {
            case TraceKind::kTransmit: out << "TX   node " << e.node; break;
            case TraceKind::kReceive:
                out << "RX   node " << e.node << " from " << e.other;
                break;
            case TraceKind::kPrune: out << "PRUNE node " << e.node; break;
            case TraceKind::kDesignate:
                out << "DESG node " << e.node << " by " << e.other;
                break;
            case TraceKind::kControl:
                out << "CTRL node " << e.node << " -> " << e.other;
                break;
            case TraceKind::kRetransmit: out << "RTX  node " << e.node; break;
        }
        out << '\n';
    }
    return out.str();
}

}  // namespace adhoc
