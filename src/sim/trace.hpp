/// \file trace.hpp
/// \brief Event trace of one broadcast run, for tests, debugging and the
/// example visualizers.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace adhoc {

enum class TraceKind : std::uint8_t {
    kTransmit,    ///< node forwarded the packet
    kReceive,     ///< node received a copy (sender recorded)
    kPrune,       ///< node decided non-forward
    kDesignate,   ///< node (actor) designated `node` as forward
    // Appended after the original kinds so historical trace digests (the
    // fuzz corpus) are unchanged for fault-free runs.
    kControl,     ///< node sent a control message (recovery beacon/NACK)
    kRetransmit,  ///< node re-sent the data packet (recovery repair)
};

struct TraceEvent {
    double time = 0.0;
    TraceKind kind = TraceKind::kTransmit;
    NodeId node = kInvalidNode;   ///< subject of the event
    NodeId other = kInvalidNode;  ///< sender (receive) / designator (designate)
};

/// Append-only recording of a run.
class Trace {
  public:
    void enable() noexcept { enabled_ = true; }
    [[nodiscard]] bool enabled() const noexcept { return enabled_; }

    void record(double time, TraceKind kind, NodeId node, NodeId other = kInvalidNode) {
        if (enabled_) events_.push_back(TraceEvent{time, kind, node, other});
    }

    void clear() { events_.clear(); }

    [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept { return events_; }

    /// Count of events of one kind.
    [[nodiscard]] std::size_t count(TraceKind kind) const;

    /// Human-readable dump (one line per event), for examples.
    [[nodiscard]] std::string to_string() const;

  private:
    bool enabled_ = false;
    std::vector<TraceEvent> events_;
};

}  // namespace adhoc
