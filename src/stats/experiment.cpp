#include "stats/experiment.hpp"

#include <cassert>

#include "runner/campaign.hpp"

namespace adhoc {

std::vector<SeriesPoint> run_cell(const std::vector<const BroadcastAlgorithm*>& algorithms,
                                  std::size_t node_count, const ExperimentConfig& config) {
    assert(!algorithms.empty());
    ExperimentConfig cell_config = config;
    cell_config.node_counts = {node_count};
    const auto series = run_sweep(algorithms, cell_config);

    std::vector<SeriesPoint> points(algorithms.size());
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
        points[a] = series[a].points.front();
    }
    return points;
}

std::vector<AlgorithmSeries> run_sweep(const std::vector<const BroadcastAlgorithm*>& algorithms,
                                       const ExperimentConfig& config) {
    runner::CampaignOptions options;
    options.jobs = config.jobs;
    return runner::run_campaign(algorithms, config, options);
}

}  // namespace adhoc
