#include "stats/experiment.hpp"

#include <algorithm>
#include <cassert>

namespace adhoc {

std::vector<SeriesPoint> run_cell(const std::vector<const BroadcastAlgorithm*>& algorithms,
                                  std::size_t node_count, const ExperimentConfig& config) {
    assert(!algorithms.empty());
    // Seed derived from (seed, n) so cells are independently reproducible.
    Rng rng(config.seed ^ (0x9e3779b97f4a7c15ULL * (node_count + 1)));

    UnitDiskParams params;
    params.node_count = node_count;
    params.average_degree = config.average_degree;
    params.area_side = config.area_side;

    std::vector<Summary> forward(algorithms.size());
    std::vector<Summary> completion(algorithms.size());
    std::vector<std::size_t> failures(algorithms.size(), 0);

    std::size_t runs = 0;
    while (runs < config.max_runs) {
        Rng run_rng = rng.fork();
        const UnitDiskNetwork net = generate_network_checked(params, run_rng);
        const NodeId source = static_cast<NodeId>(run_rng.index(net.graph.node_count()));

        for (std::size_t a = 0; a < algorithms.size(); ++a) {
            Rng algo_rng = run_rng.fork();
            const BroadcastResult result =
                algorithms[a]->broadcast(net.graph, source, algo_rng);
            forward[a].add(static_cast<double>(result.forward_count));
            completion[a].add(result.completion_time);
            if (!result.full_delivery) ++failures[a];
        }
        ++runs;

        if (runs >= config.min_runs) {
            const bool all_tight = std::all_of(
                forward.begin(), forward.end(), [&](const Summary& s) {
                    return s.ci_within(config.ci_fraction, config.ci_z, config.min_runs);
                });
            if (all_tight) break;
        }
    }

    std::vector<SeriesPoint> points(algorithms.size());
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
        points[a].node_count = node_count;
        points[a].mean_forward = forward[a].mean();
        points[a].ci_half_width = forward[a].ci_half_width(config.ci_z);
        points[a].mean_completion_time = completion[a].mean();
        points[a].runs = runs;
        points[a].delivery_failures = failures[a];
    }
    return points;
}

std::vector<AlgorithmSeries> run_sweep(const std::vector<const BroadcastAlgorithm*>& algorithms,
                                       const ExperimentConfig& config) {
    std::vector<AlgorithmSeries> series(algorithms.size());
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
        series[a].name = algorithms[a]->name();
    }
    for (std::size_t n : config.node_counts) {
        const auto points = run_cell(algorithms, n, config);
        for (std::size_t a = 0; a < algorithms.size(); ++a) {
            series[a].points.push_back(points[a]);
        }
    }
    return series;
}

}  // namespace adhoc
