/// \file experiment.hpp
/// \brief The paper's evaluation harness: paired sweeps over random
/// connected unit disk graphs.
///
/// Each run draws one connected network and one source, then executes
/// *every* algorithm under comparison on that same network — the paired
/// design the paper's per-figure comparisons imply, which also sharply
/// reduces variance.  Repetition continues until every algorithm's 90%
/// confidence interval is within ±1% of its mean (the paper's rule) or a
/// run cap is reached.
///
/// Execution is delegated to the campaign runner (runner/campaign.hpp):
/// runs are seeded by a counter-based splitmix64 hash of
/// (seed, node count, degree, run index) and sharded over `jobs` worker
/// threads.  Results are bit-for-bit identical at any `jobs` value; the
/// stopping rule is evaluated at fixed `min_runs`-sized round boundaries.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "algorithms/algorithm.hpp"
#include "graph/unit_disk.hpp"
#include "stats/summary.hpp"

namespace adhoc {

/// Sweep parameters.
struct ExperimentConfig {
    std::vector<std::size_t> node_counts{20, 30, 40, 50, 60, 70, 80, 90, 100};
    double average_degree = 6.0;
    double area_side = 100.0;

    std::size_t min_runs = 20;
    std::size_t max_runs = 2000;
    double ci_fraction = 0.01;  ///< ±1%
    double ci_z = 1.645;        ///< 90% two-sided
    /// Absolute half-width target used when |mean| is (near) zero, where
    /// the relative ±1% rule can never be satisfied (see Summary::ci_within).
    double ci_abs_epsilon = 1e-9;
    std::uint64_t seed = 42;

    /// Worker threads for the campaign runner (0 = hardware concurrency).
    /// Only changes wall-clock time, never results.
    std::size_t jobs = 1;
};

/// One cell of a result table.
struct SeriesPoint {
    std::size_t node_count = 0;
    double mean_forward = 0.0;
    double ci_half_width = 0.0;
    double mean_completion_time = 0.0;
    std::size_t runs = 0;
    std::size_t delivery_failures = 0;  ///< runs without full delivery (must be 0 for CDS schemes)
};

/// One algorithm's series across the n sweep.
struct AlgorithmSeries {
    std::string name;
    std::vector<SeriesPoint> points;
};

/// Runs the paired sweep.  Algorithms are non-owning pointers.
[[nodiscard]] std::vector<AlgorithmSeries> run_sweep(
    const std::vector<const BroadcastAlgorithm*>& algorithms, const ExperimentConfig& config);

/// Runs a single (n, d) cell and returns one point per algorithm.
[[nodiscard]] std::vector<SeriesPoint> run_cell(
    const std::vector<const BroadcastAlgorithm*>& algorithms, std::size_t node_count,
    const ExperimentConfig& config);

}  // namespace adhoc
