#include "stats/overhead.hpp"

namespace adhoc {

namespace {
constexpr std::size_t kIdBytes = 4;
}

InformationCost information_cost(std::size_t hops, PriorityScheme priority, Timing timing) {
    InformationCost cost;
    // k rounds for k-hop information (Definition 2)...
    cost.hello_rounds = hops;
    // ...plus the extra rounds the priority keys need to converge
    // (Section 4.4): degree +1, ncr +2.
    switch (priority) {
        case PriorityScheme::kId: break;
        case PriorityScheme::kDegree: cost.hello_rounds += 1; break;
        case PriorityScheme::kNcr: cost.hello_rounds += 2; break;
    }
    cost.per_broadcast_recompute = (timing != Timing::kStatic);
    return cost;
}

std::size_t piggyback_bytes(const BroadcastState& state) {
    std::size_t bytes = 0;
    for (const VisitedRecord& rec : state.history) {
        bytes += kIdBytes;                               // the visited node id
        bytes += rec.designated.size() * kIdBytes;       // its designated set
        bytes += 1;                                      // list length octet
    }
    bytes += state.sender_two_hop.size() * kIdBytes;     // TDP's N2 payload
    return bytes;
}

double estimated_piggyback_bytes(std::size_t history, double avg_designated,
                                 std::size_t two_hop_size) {
    return static_cast<double>(history) *
               (kIdBytes + 1 + avg_designated * kIdBytes) +
           static_cast<double>(two_hop_size) * kIdBytes;
}

}  // namespace adhoc
