/// \file overhead.hpp
/// \brief Information-collection and packet-overhead cost model.
///
/// The paper weighs every design choice against its overhead (Sections 4.3
/// and 4.4):
///  - k-hop topology information costs k rounds of "hello" exchanges;
///  - the Degree priority costs one extra round, NCR two (the values must
///    propagate before neighborhood information converges);
///  - piggybacked broadcast state costs bytes in every data packet
///    (h visited records + their designated sets; TDP additionally ships
///    the sender's full N2 set).
/// This module turns a configuration into those numbers so benches can
/// report cost-effectiveness, not just forward counts.

#pragma once

#include <cstddef>

#include "core/priority.hpp"
#include "sim/generic_protocol.hpp"
#include "sim/packet.hpp"

namespace adhoc {

/// Per-node, per-hello-period control overhead of a configuration.
struct InformationCost {
    std::size_t hello_rounds = 0;   ///< rounds before local views converge
    bool per_broadcast_recompute = false;  ///< dynamic timing recomputes status
};

/// Hello rounds needed for k-hop views under a priority scheme
/// (Definition 2 plus Section 4.4's extra rounds; k == 0 models global
/// information as "diameter many" rounds and is reported as such by
/// callers).
[[nodiscard]] InformationCost information_cost(std::size_t hops, PriorityScheme priority,
                                               Timing timing);

/// Bytes of broadcast state piggybacked per packet, assuming 4-byte node
/// ids: h records of (id + designated list) plus TDP's optional N2 list.
[[nodiscard]] std::size_t piggyback_bytes(const BroadcastState& state);

/// Average piggyback bytes over a whole simulated broadcast, derived from
/// per-record sizes of a protocol configuration: `history` records, each
/// with `avg_designated` designated entries.
[[nodiscard]] double estimated_piggyback_bytes(std::size_t history, double avg_designated,
                                               std::size_t two_hop_size = 0);

}  // namespace adhoc
