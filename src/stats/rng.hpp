/// \file rng.hpp
/// \brief Seeded random number generation for reproducible simulations.
///
/// Every experiment in this repository is driven by explicit seeds so that
/// any figure row can be regenerated bit-for-bit.  A thin wrapper around
/// std::mt19937_64 keeps distribution usage in one place and lets tests
/// substitute deterministic streams.

#pragma once

#include <cassert>
#include <cstdint>
#include <random>

namespace adhoc {

/// Deterministic pseudo-random source.
class Rng {
  public:
    using engine_type = std::mt19937_64;

    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

    /// Uniform double in [0, 1).
    [[nodiscard]] double uniform() {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /// Uniform double in [lo, hi).
    [[nodiscard]] double uniform(double lo, double hi) {
        assert(lo <= hi);
        return std::uniform_real_distribution<double>(lo, hi)(engine_);
    }

    /// Uniform integer in [0, n-1].  Precondition: n > 0.
    [[nodiscard]] std::size_t index(std::size_t n) {
        assert(n > 0);
        return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
    }

    /// Bernoulli trial with success probability p.
    [[nodiscard]] bool chance(double p) {
        return std::bernoulli_distribution(p)(engine_);
    }

    /// Derives an independent child stream; used to give each repetition of
    /// an experiment its own seed without correlation.
    [[nodiscard]] Rng fork() {
        const std::uint64_t s = engine_();
        return Rng(s ^ 0xd1b54a32d192ed03ULL);
    }

    [[nodiscard]] engine_type& engine() noexcept { return engine_; }

  private:
    engine_type engine_;
};

}  // namespace adhoc
