#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace adhoc {

void Summary::add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double Summary::variance() const noexcept {
    if (count_ < 2) return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

double Summary::standard_error() const noexcept {
    if (count_ < 2) return 0.0;
    return stddev() / std::sqrt(static_cast<double>(count_));
}

double Summary::ci_half_width(double z) const noexcept { return z * standard_error(); }

bool Summary::ci_within(double fraction, double z, std::size_t min_count,
                        double abs_epsilon) const noexcept {
    if (count_ < min_count) return false;
    // max() keeps the paper's relative rule wherever it is meaningful and
    // falls back to an absolute target as |mean| -> 0, where the relative
    // threshold collapses to zero and no amount of sampling can satisfy it.
    return ci_half_width(z) <= std::max(fraction * std::abs(mean_), abs_epsilon);
}

void Summary::merge(const Summary& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double total = static_cast<double>(count_ + other.count_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ +
           delta * delta * static_cast<double>(count_) * static_cast<double>(other.count_) /
               total;
    mean_ += delta * static_cast<double>(other.count_) / total;
    count_ += other.count_;
}

}  // namespace adhoc
