#include "stats/summary.hpp"

#include <cmath>

namespace adhoc {

void Summary::add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double Summary::variance() const noexcept {
    if (count_ < 2) return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

double Summary::standard_error() const noexcept {
    if (count_ < 2) return 0.0;
    return stddev() / std::sqrt(static_cast<double>(count_));
}

double Summary::ci_half_width(double z) const noexcept { return z * standard_error(); }

bool Summary::ci_within(double fraction, double z, std::size_t min_count) const noexcept {
    if (count_ < min_count || mean_ == 0.0) return false;
    return ci_half_width(z) <= fraction * std::abs(mean_);
}

void Summary::merge(const Summary& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double total = static_cast<double>(count_ + other.count_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ +
           delta * delta * static_cast<double>(count_) * static_cast<double>(other.count_) /
               total;
    mean_ += delta * static_cast<double>(other.count_) / total;
    count_ += other.count_;
}

}  // namespace adhoc
