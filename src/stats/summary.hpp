/// \file summary.hpp
/// \brief Streaming summary statistics and confidence intervals.
///
/// The paper's stopping rule (Section 7): "the simulation is repeated until
/// the 90% confidence interval of the average value is within ±1%".  This
/// module provides the Welford accumulator and the normal-approximation
/// interval that rule needs.

#pragma once

#include <cstddef>

namespace adhoc {

/// Welford online mean/variance accumulator.
class Summary {
  public:
    void add(double x) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return count_; }
    [[nodiscard]] double mean() const noexcept { return mean_; }

    /// Unbiased sample variance (0 for fewer than two samples).
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;

    /// Standard error of the mean (0 for fewer than two samples).
    [[nodiscard]] double standard_error() const noexcept;

    /// Half-width of the confidence interval at the given z quantile
    /// (default 1.645 = 90% two-sided, the paper's choice).
    [[nodiscard]] double ci_half_width(double z = 1.645) const noexcept;

    /// True when the CI half-width is within `fraction` of the mean, or —
    /// for near-zero means, where a relative target can never be met even
    /// by a constant metric — within `abs_epsilon` absolutely.  Requires at
    /// least `min_count` samples.  Without the absolute fallback a metric
    /// that is identically zero (e.g. completion time of a one-node sweep,
    /// or a forward-count delta between tied algorithms) kept every cell
    /// running to `max_runs`.
    [[nodiscard]] bool ci_within(double fraction, double z = 1.645,
                                 std::size_t min_count = 10,
                                 double abs_epsilon = 1e-9) const noexcept;

    /// Merges another accumulator into this one.
    void merge(const Summary& other) noexcept;

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

}  // namespace adhoc
