#include "stats/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace adhoc {

namespace {

std::string cell_value(const SeriesPoint& p, bool show_ci) {
    std::ostringstream out;
    out << std::fixed << std::setprecision(2) << p.mean_forward;
    if (show_ci) out << " ±" << std::setprecision(2) << p.ci_half_width;
    return out.str();
}

}  // namespace

std::string format_grid(const std::vector<std::vector<std::string>>& rows, bool header_rule) {
    if (rows.empty()) return {};
    std::size_t cols = 0;
    for (const auto& r : rows) cols = std::max(cols, r.size());
    std::vector<std::size_t> width(cols, 0);
    for (const auto& r : rows) {
        for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());
    }
    std::ostringstream out;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        for (std::size_t c = 0; c < rows[i].size(); ++c) {
            out << std::left << std::setw(static_cast<int>(width[c]) + 2) << rows[i][c];
        }
        out << '\n';
        if (i == 0 && header_rule) {
            std::size_t total = 0;
            for (std::size_t w : width) total += w + 2;
            out << std::string(total, '-') << '\n';
        }
    }
    return out.str();
}

std::string format_table(const std::string& title, const std::vector<AlgorithmSeries>& series,
                         bool show_ci) {
    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> header{"n"};
    for (const auto& s : series) header.push_back(s.name);
    rows.push_back(std::move(header));

    const std::size_t points = series.empty() ? 0 : series.front().points.size();
    for (std::size_t i = 0; i < points; ++i) {
        std::vector<std::string> row;
        row.push_back(std::to_string(series.front().points[i].node_count));
        for (const auto& s : series) row.push_back(cell_value(s.points[i], show_ci));
        rows.push_back(std::move(row));
    }

    std::ostringstream out;
    out << "== " << title << " ==\n" << format_grid(rows);
    return out.str();
}

void write_csv(std::ostream& out, const std::vector<AlgorithmSeries>& series) {
    out << "n";
    for (const auto& s : series) out << ',' << s.name;
    out << '\n';
    const std::size_t points = series.empty() ? 0 : series.front().points.size();
    for (std::size_t i = 0; i < points; ++i) {
        out << series.front().points[i].node_count;
        for (const auto& s : series) out << ',' << s.points[i].mean_forward;
        out << '\n';
    }
}

void write_gnuplot(std::ostream& out, const std::string& title,
                   const std::vector<AlgorithmSeries>& series) {
    out << "# " << title << "\n# n";
    for (const auto& s : series) out << ' ' << s.name;
    out << '\n';
    const std::size_t points = series.empty() ? 0 : series.front().points.size();
    for (std::size_t i = 0; i < points; ++i) {
        out << series.front().points[i].node_count;
        for (const auto& s : series) out << ' ' << s.points[i].mean_forward;
        out << '\n';
    }
}

}  // namespace adhoc
