/// \file table.hpp
/// \brief Paper-style result tables: aligned text, CSV, gnuplot data.
///
/// Every bench binary prints one table per figure panel in the same layout
/// the paper plots: rows are network sizes, columns are algorithms, cells
/// are mean forward-node counts.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "stats/experiment.hpp"

namespace adhoc {

/// Renders a sweep as an aligned text table.
/// \param title     panel caption, e.g. "d=6, 2-hop".
/// \param series    one column per algorithm.
/// \param show_ci   append ±ci to each cell.
[[nodiscard]] std::string format_table(const std::string& title,
                                       const std::vector<AlgorithmSeries>& series,
                                       bool show_ci = false);

/// Writes the same data as CSV (header: n,<name>,<name>...).
void write_csv(std::ostream& out, const std::vector<AlgorithmSeries>& series);

/// Writes gnuplot-ready whitespace-separated data with a comment header.
void write_gnuplot(std::ostream& out, const std::string& title,
                   const std::vector<AlgorithmSeries>& series);

/// Generic aligned table printer used for non-sweep tables (Table 1 etc.).
[[nodiscard]] std::string format_grid(const std::vector<std::vector<std::string>>& rows,
                                      bool header_rule = true);

}  // namespace adhoc
