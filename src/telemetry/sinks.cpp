#include "telemetry/sinks.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <mutex>
#include <ostream>
#include <sstream>
#include <utility>

namespace adhoc::telemetry {

namespace {

/// Metric names and labels are dotted identifiers, but escape defensively.
std::string escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

void append_u64_array(std::string& out, const std::vector<std::uint64_t>& xs) {
    out += '[';
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (i != 0) out += ',';
        out += std::to_string(xs[i]);
    }
    out += ']';
}

struct JsonlSink {
    std::mutex mutex;
    std::FILE* file = nullptr;
};

JsonlSink& jsonl_sink() {
    static JsonlSink s;
    return s;
}

}  // namespace

// -------------------------------------------------------- metrics export --

std::uint64_t histogram_quantile(const std::vector<std::uint64_t>& bounds,
                                 const std::vector<std::uint64_t>& buckets,
                                 std::uint64_t max_value, double q) {
    std::uint64_t total = 0;
    for (const std::uint64_t b : buckets) total += b;
    if (total == 0) return 0;
    // ceil(q * total) without floating-point accumulation issues: the
    // target rank is at least 1 so q=0 still resolves to the first sample.
    std::uint64_t target = static_cast<std::uint64_t>(q * static_cast<double>(total));
    if (static_cast<double>(target) < q * static_cast<double>(total)) ++target;
    if (target == 0) target = 1;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        cumulative += buckets[i];
        if (cumulative >= target) {
            return i < bounds.size() ? bounds[i] : max_value;
        }
    }
    return max_value;
}

std::string metrics_json(const Snapshot& snapshot, bool include_timing) {
    struct Entry {
        const MetricDef* def;
        const MetricValue* value;
    };
    std::vector<Entry> entries;
    const std::vector<MetricValue>& values = snapshot.values();
    for (MetricId id = 0; id < values.size(); ++id) {
        if (values[id].empty()) continue;
        const MetricDef& def = metric(id);
        if (!include_timing && def.kind == Kind::kTimer) continue;
        entries.push_back({&def, &values[id]});
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.def->name < b.def->name; });

    std::string out = "{";
    bool first = true;
    for (const Entry& e : entries) {
        if (!first) out += ", ";
        first = false;
        out += '"' + escape(e.def->name) + "\": {";
        const MetricValue& v = *e.value;
        switch (e.def->kind) {
            case Kind::kCounter:
                out += "\"kind\": \"counter\", \"value\": " + std::to_string(v.sum);
                break;
            case Kind::kGauge:
                out += "\"kind\": \"gauge\", \"max\": " + std::to_string(v.max) +
                       ", \"samples\": " + std::to_string(v.count);
                break;
            case Kind::kTimer:
                out += "\"kind\": \"timer\", \"count\": " + std::to_string(v.count) +
                       ", \"total_ns\": " + std::to_string(v.sum) +
                       ", \"max_ns\": " + std::to_string(v.max);
                break;
            case Kind::kHistogram: {
                out += "\"kind\": \"histogram\", \"count\": " + std::to_string(v.count) +
                       ", \"sum\": " + std::to_string(v.sum) +
                       ", \"max\": " + std::to_string(v.max) + ", \"bounds\": ";
                append_u64_array(out, e.def->bounds);
                out += ", \"buckets\": ";
                std::vector<std::uint64_t> buckets = v.buckets;
                buckets.resize(e.def->bounds.size() + 1, 0);
                append_u64_array(out, buckets);
                out += ", \"p50\": " +
                       std::to_string(histogram_quantile(e.def->bounds, buckets, v.max, 0.50));
                out += ", \"p95\": " +
                       std::to_string(histogram_quantile(e.def->bounds, buckets, v.max, 0.95));
                out += ", \"p99\": " +
                       std::to_string(histogram_quantile(e.def->bounds, buckets, v.max, 0.99));
                break;
            }
        }
        if (!e.def->unit.empty()) out += ", \"unit\": \"" + escape(e.def->unit) + '"';
        out += '}';
    }
    out += '}';
    return out;
}

void write_metrics_json(std::ostream& out, const Snapshot& snapshot, bool include_timing) {
    out << metrics_json(snapshot, include_timing);
}

// ------------------------------------------------------------ JSONL sink --

void configure_jsonl(const std::string& path) {
    JsonlSink& sink = jsonl_sink();
    std::lock_guard<std::mutex> lock(sink.mutex);
    if (sink.file) std::fclose(sink.file);
    sink.file = std::fopen(path.c_str(), "w");
}

void close_jsonl() {
    JsonlSink& sink = jsonl_sink();
    std::lock_guard<std::mutex> lock(sink.mutex);
    if (sink.file) {
        std::fclose(sink.file);
        sink.file = nullptr;
    }
}

bool jsonl_enabled() {
    JsonlSink& sink = jsonl_sink();
    std::lock_guard<std::mutex> lock(sink.mutex);
    return sink.file != nullptr;
}

void jsonl_write_run(std::string_view label,
                     const std::vector<std::pair<std::string_view, std::uint64_t>>& fields,
                     const Snapshot& snapshot) {
    JsonlSink& sink = jsonl_sink();
    std::lock_guard<std::mutex> lock(sink.mutex);
    if (!sink.file) return;
    std::string line = "{\"type\": \"run\", \"label\": \"" + escape(label) + '"';
    for (const auto& [key, value] : fields) {
        line += ", \"" + escape(key) + "\": " + std::to_string(value);
    }
    line += ", \"ts_ns\": " + std::to_string(timeline_now_ns());
    line += ", \"metrics\": " + metrics_json(snapshot, /*include_timing=*/true) + "}\n";
    std::fputs(line.c_str(), sink.file);
    std::fflush(sink.file);
}

namespace detail {

bool jsonl_consume_spans(const std::vector<Span>& spans) {
    JsonlSink& sink = jsonl_sink();
    std::lock_guard<std::mutex> lock(sink.mutex);
    if (!sink.file) return false;
    for (const Span& span : spans) {
        std::fprintf(sink.file,
                     "{\"type\": \"span\", \"name\": \"%s\", \"ts_ns\": %" PRIu64
                     ", \"dur_ns\": %" PRIu64 ", \"tid\": %" PRIu32 "}\n",
                     escape(metric(span.metric).name).c_str(), span.ts_ns, span.dur_ns,
                     span.tid);
    }
    std::fflush(sink.file);
    return true;
}

}  // namespace detail

// -------------------------------------------------------- JSONL parsing --

namespace {

/// Finds `"key":` and returns the character offset just past the colon
/// (and any following spaces); npos when absent.
std::size_t find_value(std::string_view line, std::string_view key) {
    const std::string needle = '"' + std::string(key) + '"';
    const std::size_t at = line.find(needle);
    if (at == std::string_view::npos) return std::string_view::npos;
    std::size_t pos = at + needle.size();
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == ':')) ++pos;
    return pos;
}

bool parse_u64_at(std::string_view line, std::string_view key, std::uint64_t* out) {
    const std::size_t pos = find_value(line, key);
    if (pos == std::string_view::npos || pos >= line.size()) return false;
    std::uint64_t value = 0;
    std::size_t digits = 0;
    for (std::size_t i = pos; i < line.size() && line[i] >= '0' && line[i] <= '9'; ++i) {
        value = value * 10 + static_cast<std::uint64_t>(line[i] - '0');
        ++digits;
    }
    if (digits == 0) return false;
    *out = value;
    return true;
}

bool parse_string_at(std::string_view line, std::string_view key, std::string* out) {
    std::size_t pos = find_value(line, key);
    if (pos == std::string_view::npos || pos >= line.size() || line[pos] != '"') return false;
    ++pos;
    std::string value;
    while (pos < line.size() && line[pos] != '"') {
        if (line[pos] == '\\' && pos + 1 < line.size()) ++pos;  // unescape quote/backslash
        value += line[pos++];
    }
    if (pos >= line.size()) return false;  // unterminated
    *out = std::move(value);
    return true;
}

}  // namespace

std::optional<SpanRecord> parse_span_line(std::string_view line) {
    std::string type;
    if (!parse_string_at(line, "type", &type) || type != "span") return std::nullopt;
    SpanRecord record;
    std::uint64_t tid = 0;
    if (!parse_string_at(line, "name", &record.name)) return std::nullopt;
    if (!parse_u64_at(line, "ts_ns", &record.ts_ns)) return std::nullopt;
    if (!parse_u64_at(line, "dur_ns", &record.dur_ns)) return std::nullopt;
    if (!parse_u64_at(line, "tid", &tid)) return std::nullopt;
    record.tid = static_cast<std::uint32_t>(tid);
    return record;
}

// -------------------------------------------------------- chrome tracing --

void write_chrome_trace(std::ostream& out, const std::vector<ChromeEvent>& events) {
    out << "{\"traceEvents\":[\n";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const ChromeEvent& e = events[i];
        char num[64];
        out << "{\"name\":\"" << escape(e.name) << "\",\"cat\":\"" << escape(e.cat)
            << "\",\"ph\":\"" << e.ph << "\",\"pid\":1,\"tid\":" << e.tid;
        std::snprintf(num, sizeof(num), "%.3f", e.ts_us);
        out << ",\"ts\":" << num;
        if (e.ph == 'X') {
            std::snprintf(num, sizeof(num), "%.3f", e.dur_us);
            out << ",\"dur\":" << num;
        }
        if (e.ph == 'i') out << ",\"s\":\"t\"";  // instant scope: thread
        if (!e.args_json.empty()) out << ",\"args\":" << e.args_json;
        out << '}' << (i + 1 == events.size() ? "\n" : ",\n");
    }
    out << "],\"displayTimeUnit\":\"ms\"}\n";
}

std::vector<ChromeEvent> chrome_events_from_spans(const std::vector<Span>& spans) {
    std::vector<ChromeEvent> events;
    events.reserve(spans.size());
    for (const Span& span : spans) {
        ChromeEvent e;
        e.name = metric(span.metric).name;
        e.ph = 'X';
        e.tid = span.tid;
        e.ts_us = static_cast<double>(span.ts_ns) / 1000.0;
        e.dur_us = static_cast<double>(span.dur_ns) / 1000.0;
        events.push_back(std::move(e));
    }
    return events;
}

}  // namespace adhoc::telemetry
