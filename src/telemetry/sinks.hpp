/// \file sinks.hpp
/// \brief Telemetry exports: deterministic metrics JSON, streaming JSONL
/// records, and the chrome://tracing event format.
///
/// Three sinks, three jobs:
///
///   1. `metrics_json` — one JSON object mapping metric name to its
///      aggregated value, keys sorted, integers only.  With
///      `include_timing=false` wall-clock timers are omitted, making the
///      document a pure function of the work performed: two campaigns that
///      executed the same runs produce **byte-identical** strings at any
///      `--jobs` value.  This is the form embedded into `BENCH_*.json`.
///   2. JSONL — newline-delimited diagnostic records (`{"type":"run",...}`
///      per harvested run, `{"type":"span",...}` per scoped-timer
///      interval), streamed to the file named by `ADHOC_TELEMETRY=path`.
///      Record order follows execution order and is *not* deterministic
///      under `--jobs > 1`; it is a diagnostics artifact, not a golden.
///   3. chrome://tracing — `write_chrome_trace` renders events loadable by
///      chrome://tracing / Perfetto; `tools/trace_export` builds those
///      events from a JSONL file or from a live demo run.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace adhoc::telemetry {

// ------------------------------------------------------- metrics export --

/// Serializes a snapshot as a JSON object keyed by metric name (sorted).
/// Counters render as {"kind":"counter","value":sum}, gauges as
/// {"kind":"gauge","max":..}, histograms with bounds+buckets+count+sum+max
/// plus p50/p95/p99, timers (only when `include_timing`) with
/// count/total_ns/max_ns.
[[nodiscard]] std::string metrics_json(const Snapshot& snapshot, bool include_timing);
void write_metrics_json(std::ostream& out, const Snapshot& snapshot, bool include_timing);

/// The q-quantile of a merged histogram, resolved to a bucket upper bound:
/// the smallest bound whose cumulative count covers ceil(q * total)
/// samples, or `max_value` for samples landing in the overflow bucket.
/// Integer-only and a pure function of the merged buckets, so campaign
/// percentiles inherit the snapshot merge's jobs-invariance.  Returns 0
/// for an empty histogram.
[[nodiscard]] std::uint64_t histogram_quantile(const std::vector<std::uint64_t>& bounds,
                                               const std::vector<std::uint64_t>& buckets,
                                               std::uint64_t max_value, double q);

// ----------------------------------------------------------- JSONL sink --

/// Opens (truncating) the JSONL stream.  Thread-safe; records from
/// concurrent runs interleave whole-line-atomically.
void configure_jsonl(const std::string& path);
void close_jsonl();
[[nodiscard]] bool jsonl_enabled();

/// Writes one `{"type":"run",...}` record: a label, caller-chosen integer
/// fields (e.g. {"n",50},{"run",12}) and the run's full metrics object.
void jsonl_write_run(
    std::string_view label,
    const std::vector<std::pair<std::string_view, std::uint64_t>>& fields,
    const Snapshot& snapshot);

namespace detail {
/// Streams spans to the JSONL sink; returns false (leaving them to the
/// in-memory store) when no sink is configured.
bool jsonl_consume_spans(const std::vector<Span>& spans);
}  // namespace detail

/// A span line read back from a JSONL file (name resolved, not MetricId).
struct SpanRecord {
    std::string name;
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint32_t tid = 0;
};

/// Parses one JSONL line; nullopt unless it is a well-formed span record.
[[nodiscard]] std::optional<SpanRecord> parse_span_line(std::string_view line);

// ------------------------------------------------------- chrome tracing --

/// One event in the chrome://tracing JSON array format.
struct ChromeEvent {
    std::string name;
    std::string cat = "adhoc";
    char ph = 'X';           ///< 'X' complete, 'i' instant, 'M' metadata
    std::uint32_t tid = 0;
    double ts_us = 0.0;
    double dur_us = 0.0;     ///< 'X' only
    std::string args_json;   ///< raw JSON object, optional
};

/// Writes `{"traceEvents":[...],"displayTimeUnit":"ms"}`.
void write_chrome_trace(std::ostream& out, const std::vector<ChromeEvent>& events);

/// Converts collected spans (names resolved via the registry).
[[nodiscard]] std::vector<ChromeEvent> chrome_events_from_spans(
    const std::vector<Span>& spans);

}  // namespace adhoc::telemetry
