#include "telemetry/telemetry.hpp"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "telemetry/sinks.hpp"

namespace adhoc::telemetry {

namespace detail {
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_spans_enabled{false};
}  // namespace detail

namespace {

// ------------------------------------------------------------- registry --

/// Writers serialize on `mutex`; readers go lock-free via the published
/// `count` (deque references stay valid across growth).  Contract: all
/// registration happens before instrumented worker threads start — true
/// for the namespace-scope `const MetricId` registration idiom every
/// instrumentation site uses.
struct Registry {
    std::mutex mutex;  ///< writers only
    std::deque<MetricDef> defs;
    std::unordered_map<std::string, MetricId> by_name;
    std::atomic<std::size_t> count{0};
};

Registry& registry() {
    static Registry r;
    return r;
}

// --------------------------------------------------------------- frames --

struct Frame {
    std::vector<MetricValue> values;
    Frame* parent = nullptr;
};

thread_local Frame t_root;
thread_local Frame* t_top = &t_root;

/// Element-wise fold of `src` into `dst` (the kind-agnostic merge rule).
void merge_values(std::vector<MetricValue>& dst, const std::vector<MetricValue>& src) {
    if (dst.size() < src.size()) dst.resize(src.size());
    for (std::size_t id = 0; id < src.size(); ++id) {
        const MetricValue& from = src[id];
        if (from.count == 0) continue;
        MetricValue& into = dst[id];
        into.count += from.count;
        into.sum += from.sum;
        if (from.max > into.max) into.max = from.max;
        if (!from.buckets.empty()) {
            if (into.buckets.size() < from.buckets.size()) {
                into.buckets.resize(from.buckets.size(), 0);
            }
            for (std::size_t b = 0; b < from.buckets.size(); ++b) {
                into.buckets[b] += from.buckets[b];
            }
        }
    }
}

MetricValue& slot(Frame& frame, MetricId id) {
    if (frame.values.size() <= id) frame.values.resize(id + 1);
    return frame.values[id];
}

// ---------------------------------------------------------------- spans --

std::chrono::steady_clock::time_point epoch() {
    static const auto start = std::chrono::steady_clock::now();
    return start;
}

std::uint32_t thread_index() {
    static std::atomic<std::uint32_t> next{0};
    thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

struct SpanStore {
    std::mutex mutex;
    std::vector<Span> retained;
};

SpanStore& span_store() {
    static SpanStore s;
    return s;
}

thread_local std::vector<Span> t_spans;

constexpr std::size_t kSpanFlushThreshold = 8192;
constexpr std::size_t kSpanRetainCap = 1 << 20;

// ------------------------------------------------------------- env init --

/// Reads ADHOC_TELEMETRY / ADHOC_TELEMETRY_SPANS once at process start so
/// any binary can be instrumented without code changes.
struct EnvInit {
    EnvInit() {
        if (const char* value = std::getenv("ADHOC_TELEMETRY")) {
            const std::string_view v(value);
            if (!v.empty() && v != "0" && v != "off") {
                set_enabled(true);
                if (v != "1" && v != "on") configure_jsonl(std::string(v));
            }
        }
        if (const char* value = std::getenv("ADHOC_TELEMETRY_SPANS")) {
            const std::string_view v(value);
            if (!v.empty() && v != "0" && v != "off") set_spans_enabled(true);
        }
    }
    ~EnvInit() {
        flush_thread_spans();
        close_jsonl();
    }
};

const EnvInit g_env_init;

}  // namespace

// ---------------------------------------------------------- enable flags --

void set_enabled(bool on) noexcept {
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

void set_spans_enabled(bool on) noexcept {
    detail::g_spans_enabled.store(on, std::memory_order_relaxed);
}

// ----------------------------------------------------------- registration --

MetricId register_metric(MetricDef def) {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    const auto it = reg.by_name.find(def.name);
    if (it != reg.by_name.end()) {
        assert(reg.defs[it->second].kind == def.kind &&
               "metric re-registered with a different kind");
        return it->second;
    }
    const MetricId id = reg.defs.size();
    reg.by_name.emplace(def.name, id);
    reg.defs.push_back(std::move(def));
    reg.count.store(reg.defs.size(), std::memory_order_release);
    return id;
}

MetricId counter(std::string name, std::string unit) {
    return register_metric({std::move(name), std::move(unit), Kind::kCounter, {}});
}

MetricId gauge(std::string name, std::string unit) {
    return register_metric({std::move(name), std::move(unit), Kind::kGauge, {}});
}

MetricId timer(std::string name) {
    return register_metric({std::move(name), "ns", Kind::kTimer, {}});
}

MetricId histogram(std::string name, std::vector<std::uint64_t> bounds, std::string unit) {
    assert(!bounds.empty());
    return register_metric(
        {std::move(name), std::move(unit), Kind::kHistogram, std::move(bounds)});
}

std::size_t metric_count() {
    return registry().count.load(std::memory_order_acquire);
}

const MetricDef& metric(MetricId id) {
    Registry& reg = registry();
    assert(id < reg.count.load(std::memory_order_acquire));
    return reg.defs[id];
}

// -------------------------------------------------------------- recording --

namespace detail {

void record_count(MetricId id, std::uint64_t n) {
    MetricValue& v = slot(*t_top, id);
    ++v.count;
    v.sum += n;
}

void record_gauge(MetricId id, std::uint64_t level) {
    MetricValue& v = slot(*t_top, id);
    ++v.count;
    v.sum += level;
    if (level > v.max) v.max = level;
}

void record_sample(MetricId id, std::uint64_t sample) {
    MetricValue& v = slot(*t_top, id);
    ++v.count;
    v.sum += sample;
    if (sample > v.max) v.max = sample;
    const MetricDef& def = metric(id);
    if (v.buckets.size() < def.bounds.size() + 1) v.buckets.resize(def.bounds.size() + 1, 0);
    std::size_t b = 0;
    while (b < def.bounds.size() && sample > def.bounds[b]) ++b;
    ++v.buckets[b];
}

void record_duration(MetricId id, std::chrono::steady_clock::time_point start) {
    const auto end = std::chrono::steady_clock::now();
    const auto ns =
        static_cast<std::uint64_t>(std::chrono::nanoseconds(end - start).count());
    MetricValue& v = slot(*t_top, id);
    ++v.count;
    v.sum += ns;
    if (ns > v.max) v.max = ns;
    if (spans_enabled()) {
        const auto ts =
            static_cast<std::uint64_t>(std::chrono::nanoseconds(start - epoch()).count());
        t_spans.push_back(Span{id, ts, ns, thread_index()});
        if (t_spans.size() >= kSpanFlushThreshold) flush_thread_spans();
    }
}

}  // namespace detail

// ---------------------------------------------------------------- spans --

std::uint64_t timeline_now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::nanoseconds(std::chrono::steady_clock::now() - epoch()).count());
}

void flush_thread_spans() {
    if (t_spans.empty()) return;
    std::vector<Span> pending;
    pending.swap(t_spans);
    if (detail::jsonl_consume_spans(pending)) return;  // streamed to the JSONL sink
    SpanStore& store = span_store();
    std::lock_guard<std::mutex> lock(store.mutex);
    if (store.retained.size() >= kSpanRetainCap) return;  // bounded memory
    store.retained.insert(store.retained.end(), pending.begin(), pending.end());
}

std::vector<Span> drain_spans() {
    flush_thread_spans();
    SpanStore& store = span_store();
    std::lock_guard<std::mutex> lock(store.mutex);
    std::vector<Span> out;
    out.swap(store.retained);
    return out;
}

// ------------------------------------------------------------- snapshot --

void Snapshot::merge(const Snapshot& other) { merge_values(values_, other.values_); }

void Snapshot::add_count(MetricId id, std::uint64_t n) {
    if (values_.size() <= id) values_.resize(id + 1);
    ++values_[id].count;
    values_[id].sum += n;
}

bool Snapshot::empty() const noexcept {
    for (const MetricValue& v : values_) {
        if (v.count != 0) return false;
    }
    return true;
}

// ------------------------------------------------------------- RunScope --

RunScope::RunScope() {
    if (!enabled()) return;
    auto* frame = new Frame;
    frame->parent = t_top;
    t_top = frame;
    frame_ = frame;
    active_ = true;
}

void RunScope::detach(bool fold_into_parent) {
    auto* frame = static_cast<Frame*>(frame_);
    assert(t_top == frame && "RunScope must end on the thread that created it");
    t_top = frame->parent;
    if (fold_into_parent) merge_values(t_top->values, frame->values);
    flush_thread_spans();
    active_ = false;
}

Snapshot RunScope::harvest() {
    Snapshot out;
    if (!active_) return out;
    auto* frame = static_cast<Frame*>(frame_);
    detach(/*fold_into_parent=*/false);
    out.values() = std::move(frame->values);
    delete frame;
    frame_ = nullptr;
    return out;
}

RunScope::~RunScope() {
    if (!active_) return;
    auto* frame = static_cast<Frame*>(frame_);
    detach(/*fold_into_parent=*/true);
    delete frame;
}

}  // namespace adhoc::telemetry
