/// \file telemetry.hpp
/// \brief Zero-overhead-when-disabled run instrumentation: counters,
/// gauges, scoped timers and fixed-bucket histograms.
///
/// Design (mirrors ns-3's trace-source idea, adapted to this repo's
/// determinism contract):
///
///   * **Static registration.**  Each instrumentation site registers its
///     metric once (typically from a namespace-scope `const MetricId`) and
///     records against the returned dense id.  Registration is mutexed;
///     recording never is.
///   * **Lock-free hot path.**  Every record lands in a thread-local
///     *frame*.  A `RunScope` pushes a fresh frame for the duration of one
///     simulated run; `harvest()` pops it and returns the run's values as
///     a `Snapshot`.  Callers (the campaign runner, the fuzzer) merge
///     per-run snapshots **in run-index order**, the same ordered-merge
///     discipline the Welford aggregation uses, so campaign-level
///     aggregates are bit-identical at any `--jobs` value.
///   * **Zero overhead when disabled.**  Every recording helper starts
///     with a relaxed load of one global flag; when it is false nothing
///     else happens — no clock reads, no TLS traffic, no allocation.  The
///     layer stays compiled in everywhere (bench_micro runs with it built
///     in and disabled, inside the regression gate).
///
/// Enablement: `set_enabled(true)` from code, or the `ADHOC_TELEMETRY`
/// environment variable — `ADHOC_TELEMETRY=1` enables metrics only,
/// `ADHOC_TELEMETRY=path.jsonl` additionally streams per-run JSONL records
/// there (see sinks.hpp).  `ADHOC_TELEMETRY_SPANS=1` also collects scoped-
/// timer span events for the chrome://tracing export (tools/trace_export).

#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace adhoc::telemetry {

using MetricId = std::size_t;

enum class Kind : std::uint8_t {
    kCounter,    ///< monotonically increasing total
    kGauge,      ///< sampled level; aggregates as the maximum seen
    kTimer,      ///< wall-clock durations (ns); excluded from deterministic exports
    kHistogram,  ///< fixed-bucket distribution of integer samples
};

/// Immutable description of one registered metric.
struct MetricDef {
    std::string name;  ///< dotted path, e.g. "sim.events.delivery"
    std::string unit;  ///< "count", "ns", "nodes", ...
    Kind kind = Kind::kCounter;
    std::vector<std::uint64_t> bounds;  ///< histogram bucket upper bounds (inclusive)
};

/// Accumulated state of one metric.  The merge rule is kind-agnostic
/// (count/sum add, max maxes, buckets add element-wise); exports interpret
/// the fields per kind.
struct MetricValue {
    std::uint64_t count = 0;  ///< recordings (counter adds, samples, timer stops)
    std::uint64_t sum = 0;    ///< counter total / sample sum / total ns
    std::uint64_t max = 0;    ///< gauge level / largest sample / longest ns
    std::vector<std::uint64_t> buckets;  ///< histogram only; bounds.size() + 1 slots

    [[nodiscard]] bool empty() const noexcept { return count == 0; }
};

/// A mergeable set of metric values indexed by MetricId.  Integer-only, so
/// merging is associative and order-independent — but callers still merge
/// in run-index order to keep the discipline uniform with the Welford path.
class Snapshot {
  public:
    void merge(const Snapshot& other);

    /// Direct (non-thread-local) recording, for aggregate-level counts
    /// made under the caller's own lock (e.g. "campaign.rounds").
    void add_count(MetricId id, std::uint64_t n = 1);

    [[nodiscard]] bool empty() const noexcept;
    [[nodiscard]] const std::vector<MetricValue>& values() const noexcept { return values_; }
    [[nodiscard]] std::vector<MetricValue>& values() noexcept { return values_; }

  private:
    std::vector<MetricValue> values_;  ///< indexed by MetricId; may be short
};

// ---------------------------------------------------------------- state --

namespace detail {
extern std::atomic<bool> g_enabled;
extern std::atomic<bool> g_spans_enabled;

void record_count(MetricId id, std::uint64_t n);
void record_gauge(MetricId id, std::uint64_t level);
void record_sample(MetricId id, std::uint64_t sample);
void record_duration(MetricId id, std::chrono::steady_clock::time_point start);
}  // namespace detail

/// Master switch, checked (relaxed) at the top of every recording helper.
[[nodiscard]] inline bool enabled() noexcept {
    return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on) noexcept;

/// Span collection for the timeline export (off by default even when
/// metrics are enabled: spans allocate).
[[nodiscard]] inline bool spans_enabled() noexcept {
    return detail::g_spans_enabled.load(std::memory_order_relaxed);
}
void set_spans_enabled(bool on) noexcept;

// --------------------------------------------------------- registration --

/// Registers (or looks up) a metric; same name always yields the same id.
/// Re-registration with a different kind is a programming error (asserted).
MetricId register_metric(MetricDef def);

MetricId counter(std::string name, std::string unit = "count");
MetricId gauge(std::string name, std::string unit = "value");
MetricId timer(std::string name);
MetricId histogram(std::string name, std::vector<std::uint64_t> bounds,
                   std::string unit = "value");

[[nodiscard]] std::size_t metric_count();
[[nodiscard]] const MetricDef& metric(MetricId id);

// ------------------------------------------------------------ recording --

inline void count(MetricId id, std::uint64_t n = 1) {
    if (!enabled()) return;
    detail::record_count(id, n);
}

/// Gauge sample: the aggregate keeps the maximum level observed.
inline void gauge_sample(MetricId id, std::uint64_t level) {
    if (!enabled()) return;
    detail::record_gauge(id, level);
}

/// Histogram sample.
inline void observe(MetricId id, std::uint64_t sample) {
    if (!enabled()) return;
    detail::record_sample(id, sample);
}

/// RAII wall-clock timer; also emits a span event when spans are enabled.
class ScopedTimer {
  public:
    explicit ScopedTimer(MetricId id) : id_(id), armed_(enabled()) {
        if (armed_) start_ = std::chrono::steady_clock::now();
    }
    ~ScopedTimer() {
        if (armed_) detail::record_duration(id_, start_);
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

  private:
    MetricId id_;
    bool armed_;
    std::chrono::steady_clock::time_point start_;
};

// ------------------------------------------------------------- scoping --

/// Captures everything recorded on *this thread* between construction and
/// `harvest()` (or destruction).  `harvest()` detaches the scope and
/// returns its values; without a harvest the destructor folds the values
/// into the enclosing scope (or the thread's root frame), so nested scopes
/// roll up.  Constructing while disabled yields an inert scope.
class RunScope {
  public:
    RunScope();
    ~RunScope();
    RunScope(const RunScope&) = delete;
    RunScope& operator=(const RunScope&) = delete;

    /// Ends the scope and returns what it accumulated.
    [[nodiscard]] Snapshot harvest();

  private:
    void detach(bool fold_into_parent);

    bool active_ = false;
    void* frame_ = nullptr;  ///< detail::Frame*, opaque here
};

// --------------------------------------------------------------- spans --

/// One completed scoped-timer interval, on the process-wide monotonic
/// timeline (ns since the telemetry epoch).
struct Span {
    MetricId metric = 0;
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint32_t tid = 0;  ///< dense per-thread index, not an OS id
};

/// Nanoseconds since the process-wide telemetry epoch (first use).
[[nodiscard]] std::uint64_t timeline_now_ns();

/// Moves out every span flushed so far (thread buffers flush at RunScope
/// boundaries and on drain from their own thread).  When a JSONL sink is
/// configured spans stream there instead and this returns nothing.
[[nodiscard]] std::vector<Span> drain_spans();

/// Flushes the calling thread's pending span buffer.
void flush_thread_spans();

}  // namespace adhoc::telemetry
