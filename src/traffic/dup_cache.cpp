#include "traffic/dup_cache.hpp"

#include <algorithm>
#include <cassert>

namespace adhoc::traffic {

DupCache::DupCache(DupCacheConfig config) : config_(config) {
    assert(config_.max_sources > 0);
    // Whole words keep the slide shift simple; round up silently.
    if (config_.window == 0) config_.window = 64;
    config_.window = (config_.window + 63) / 64 * 64;
}

DupCache::Entry* DupCache::find(NodeId source) {
    for (Entry& e : entries_) {
        if (e.source == source) return &e;
    }
    return nullptr;
}

const DupCache::Entry* DupCache::find(NodeId source) const {
    for (const Entry& e : entries_) {
        if (e.source == source) return &e;
    }
    return nullptr;
}

DupCache::Entry& DupCache::emplace(NodeId source, std::uint32_t seq) {
    if (entries_.size() >= config_.max_sources) {
        // Evict the least-recently-used entry; ties (possible only before
        // the first touch) break on the smallest source id — deterministic.
        auto victim = entries_.begin();
        for (auto it = entries_.begin() + 1; it != entries_.end(); ++it) {
            if (it->last_use < victim->last_use ||
                (it->last_use == victim->last_use && it->source < victim->source)) {
                victim = it;
            }
        }
        entries_.erase(victim);
        ++evictions_;
    }
    Entry e;
    e.source = source;
    // Anchor with `seq` at the *top* of the window (like a slide), not the
    // bottom: jitter can reorder same-source packets, and a bottom anchor
    // would below-window-suppress an earlier seq still in flight.
    e.base = seq >= config_.window ? seq - config_.window + 1 : 0;
    e.bits.assign(config_.window / 64, 0);
    entries_.push_back(std::move(e));
    peak_bytes_ = std::max(peak_bytes_, memory_bytes());
    return entries_.back();
}

CacheInsert DupCache::insert(NodeId source, std::uint32_t seq) {
    Entry* e = find(source);
    if (e == nullptr) {
        Entry& fresh = emplace(source, seq);
        fresh.last_use = ++use_clock_;
        const std::uint32_t offset = seq - fresh.base;
        fresh.bits[offset / 64] |= std::uint64_t{1} << (offset % 64);
        return CacheInsert::kNew;
    }
    e->last_use = ++use_clock_;
    if (seq < e->base) {
        ++below_window_;
        return CacheInsert::kBelowWindow;
    }
    if (seq >= e->base + config_.window) {
        // Slide the window so `seq` lands on the last bit; everything the
        // shift pushes below the new base is forgotten.
        const std::uint32_t new_base = seq - config_.window + 1;
        const std::uint32_t shift = new_base - e->base;
        const std::size_t words = e->bits.size();
        if (shift >= config_.window) {
            std::fill(e->bits.begin(), e->bits.end(), 0);
        } else {
            const std::size_t word_shift = shift / 64;
            const std::size_t bit_shift = shift % 64;
            for (std::size_t i = 0; i < words; ++i) {
                const std::size_t from = i + word_shift;
                std::uint64_t w = from < words ? e->bits[from] >> bit_shift : 0;
                if (bit_shift != 0 && from + 1 < words) {
                    w |= e->bits[from + 1] << (64 - bit_shift);
                }
                e->bits[i] = w;
            }
        }
        e->base = new_base;
        ++window_slides_;
    }
    const std::uint32_t offset = seq - e->base;
    const std::uint64_t mask = std::uint64_t{1} << (offset % 64);
    if ((e->bits[offset / 64] & mask) != 0) return CacheInsert::kDuplicate;
    e->bits[offset / 64] |= mask;
    return CacheInsert::kNew;
}

bool DupCache::holds(NodeId source, std::uint32_t seq) const {
    const Entry* e = find(source);
    if (e == nullptr || seq < e->base || seq >= e->base + config_.window) return false;
    const std::uint32_t offset = seq - e->base;
    return (e->bits[offset / 64] >> (offset % 64) & 1) != 0;
}

}  // namespace adhoc::traffic
