/// \file dup_cache.hpp
/// \brief Bounded per-node duplicate cache for concurrent broadcast
/// sessions: LRU over sources, sliding sequence window per source.
///
/// One-shot runs mark duplicates with a single `received` flag because
/// exactly one message exists.  Under continuous traffic a node sees
/// thousands of `(source, seq)`-identified sessions and must answer "have
/// I seen this one?" in O(1) with *bounded* memory — the classic DTN
/// message-store problem.  The cache keeps at most `max_sources` per-source
/// entries (least-recently-used eviction) and, per source, a `window`-bit
/// bitmap anchored at a sliding base sequence number:
///
///   - seq in [base, base+window): exact membership bit;
///   - seq >= base+window: the window slides forward, forgetting the
///     oldest bits (a slide is counted; forgotten payloads are no longer
///     *held*, so they vanish from summary vectors and cannot serve
///     repairs);
///   - seq < base: conservatively reported as already-seen.  This is the
///     deliberate bounded-memory trade-off: a very late copy of an expired
///     session is suppressed rather than re-flooded.
///
/// Memory therefore never exceeds
/// `max_sources * (kEntryOverheadBytes + window / 8)` bytes per node,
/// which the engine exports as a per-node memory-ceiling gauge.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace adhoc::traffic {

struct DupCacheConfig {
    std::size_t max_sources = 64;  ///< distinct sources tracked (LRU bound)
    std::uint32_t window = 256;    ///< seq-window width in bits per source
};

/// Outcome of recording one `(source, seq)` id.
enum class CacheInsert : std::uint8_t {
    kNew,          ///< first sighting: deliver and consider forwarding
    kDuplicate,    ///< bit already set (or conservatively below the window)
    kBelowWindow,  ///< below the window base: suppressed without a bit check
};

class DupCache {
  public:
    /// Accounting model for one per-source entry, excluding the bitmap:
    /// source id + window base + LRU stamp (documented in docs/TRAFFIC.md).
    static constexpr std::size_t kEntryOverheadBytes = 16;

    explicit DupCache(DupCacheConfig config = {});

    /// Records `(source, seq)`.  kNew means the id was not held before
    /// (the caller should treat the packet as fresh).
    CacheInsert insert(NodeId source, std::uint32_t seq);

    /// True iff the payload is currently *held* (in-window bit set).
    /// Strict, unlike insert's below-window suppression: an expired id is
    /// not held and cannot be advertised or served as a repair.
    [[nodiscard]] bool holds(NodeId source, std::uint32_t seq) const;

    [[nodiscard]] std::size_t source_count() const noexcept { return entries_.size(); }
    [[nodiscard]] std::size_t evictions() const noexcept { return evictions_; }
    [[nodiscard]] std::size_t window_slides() const noexcept { return window_slides_; }
    [[nodiscard]] std::size_t below_window_hits() const noexcept { return below_window_; }

    /// Current footprint under the documented accounting model.  O(1).
    [[nodiscard]] std::size_t memory_bytes() const noexcept {
        return entries_.size() * entry_bytes();
    }
    /// Largest footprint ever reached (== the configured ceiling once the
    /// LRU bound has been hit).
    [[nodiscard]] std::size_t peak_bytes() const noexcept { return peak_bytes_; }
    /// The hard ceiling implied by the configuration.
    [[nodiscard]] std::size_t ceiling_bytes() const noexcept {
        return config_.max_sources * entry_bytes();
    }

    struct Entry {
        NodeId source = kInvalidNode;
        std::uint32_t base = 0;               ///< window start sequence
        std::uint64_t last_use = 0;           ///< logical LRU clock
        std::vector<std::uint64_t> bits;      ///< window/64 words
    };

    /// Entries in insertion order (summaries sort by source themselves).
    [[nodiscard]] const std::vector<Entry>& entries() const noexcept { return entries_; }

    [[nodiscard]] const DupCacheConfig& config() const noexcept { return config_; }

  private:
    [[nodiscard]] std::size_t entry_bytes() const noexcept {
        return kEntryOverheadBytes + config_.window / 8;
    }
    Entry* find(NodeId source);
    [[nodiscard]] const Entry* find(NodeId source) const;
    Entry& emplace(NodeId source, std::uint32_t seq);

    DupCacheConfig config_;
    std::vector<Entry> entries_;
    std::uint64_t use_clock_ = 0;
    std::size_t evictions_ = 0;
    std::size_t window_slides_ = 0;
    std::size_t below_window_ = 0;
    std::size_t peak_bytes_ = 0;
};

}  // namespace adhoc::traffic
